# Empty dependencies file for optimize_file.
# This may be replaced when dependencies are built.
