file(REMOVE_RECURSE
  "CMakeFiles/optimize_file.dir/optimize_file.cpp.o"
  "CMakeFiles/optimize_file.dir/optimize_file.cpp.o.d"
  "optimize_file"
  "optimize_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
