# Empty compiler generated dependencies file for flux_pipeline.
# This may be replaced when dependencies are built.
