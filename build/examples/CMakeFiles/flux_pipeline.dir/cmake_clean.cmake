file(REMOVE_RECURSE
  "CMakeFiles/flux_pipeline.dir/flux_pipeline.cpp.o"
  "CMakeFiles/flux_pipeline.dir/flux_pipeline.cpp.o.d"
  "flux_pipeline"
  "flux_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
