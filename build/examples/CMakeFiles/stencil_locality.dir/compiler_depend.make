# Empty compiler generated dependencies file for stencil_locality.
# This may be replaced when dependencies are built.
