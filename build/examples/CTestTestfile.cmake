# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_tuning "/root/repo/build/examples/matmul_tuning")
set_tests_properties(example_matmul_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_locality "/root/repo/build/examples/stencil_locality")
set_tests_properties(example_stencil_locality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flux_pipeline "/root/repo/build/examples/flux_pipeline")
set_tests_properties(example_flux_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_file "/root/repo/build/examples/optimize_file" "--machine" "parisc" "--report" "--simulate" "--interchange" "--prefetch" "/root/repo/build/examples/smoke.uj")
set_tests_properties(example_optimize_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
