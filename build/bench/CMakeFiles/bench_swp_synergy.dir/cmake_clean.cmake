file(REMOVE_RECURSE
  "CMakeFiles/bench_swp_synergy.dir/bench_swp_synergy.cpp.o"
  "CMakeFiles/bench_swp_synergy.dir/bench_swp_synergy.cpp.o.d"
  "bench_swp_synergy"
  "bench_swp_synergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swp_synergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
