# Empty dependencies file for bench_swp_synergy.
# This may be replaced when dependencies are built.
