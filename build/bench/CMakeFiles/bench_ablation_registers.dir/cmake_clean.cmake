file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_registers.dir/bench_ablation_registers.cpp.o"
  "CMakeFiles/bench_ablation_registers.dir/bench_ablation_registers.cpp.o.d"
  "bench_ablation_registers"
  "bench_ablation_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
