# Empty dependencies file for bench_ablation_registers.
# This may be replaced when dependencies are built.
