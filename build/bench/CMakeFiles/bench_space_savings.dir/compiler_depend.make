# Empty compiler generated dependencies file for bench_space_savings.
# This may be replaced when dependencies are built.
