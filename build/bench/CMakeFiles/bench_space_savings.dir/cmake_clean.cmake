file(REMOVE_RECURSE
  "CMakeFiles/bench_space_savings.dir/bench_space_savings.cpp.o"
  "CMakeFiles/bench_space_savings.dir/bench_space_savings.cpp.o.d"
  "bench_space_savings"
  "bench_space_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
