file(REMOVE_RECURSE
  "CMakeFiles/bench_model_fidelity.dir/bench_model_fidelity.cpp.o"
  "CMakeFiles/bench_model_fidelity.dir/bench_model_fidelity.cpp.o.d"
  "bench_model_fidelity"
  "bench_model_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
