file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_enabling.dir/bench_ablation_enabling.cpp.o"
  "CMakeFiles/bench_ablation_enabling.dir/bench_ablation_enabling.cpp.o.d"
  "bench_ablation_enabling"
  "bench_ablation_enabling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_enabling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
