# Empty compiler generated dependencies file for bench_ablation_enabling.
# This may be replaced when dependencies are built.
