file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_parisc.dir/bench_fig9_parisc.cpp.o"
  "CMakeFiles/bench_fig9_parisc.dir/bench_fig9_parisc.cpp.o.d"
  "bench_fig9_parisc"
  "bench_fig9_parisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_parisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
