# Empty dependencies file for bench_fig9_parisc.
# This may be replaced when dependencies are built.
