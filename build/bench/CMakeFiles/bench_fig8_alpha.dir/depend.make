# Empty dependencies file for bench_fig8_alpha.
# This may be replaced when dependencies are built.
