
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_suite.cpp" "bench/CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ujam_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ujam_report.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ujam_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ujam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ujam_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ujam_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ujam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ujam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/ujam_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/ujam_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/ujam_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
