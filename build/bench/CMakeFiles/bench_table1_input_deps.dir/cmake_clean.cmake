file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_input_deps.dir/bench_table1_input_deps.cpp.o"
  "CMakeFiles/bench_table1_input_deps.dir/bench_table1_input_deps.cpp.o.d"
  "bench_table1_input_deps"
  "bench_table1_input_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_input_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
