# Empty compiler generated dependencies file for bench_table1_input_deps.
# This may be replaced when dependencies are built.
