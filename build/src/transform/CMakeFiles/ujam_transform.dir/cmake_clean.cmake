file(REMOVE_RECURSE
  "CMakeFiles/ujam_transform.dir/distribution.cc.o"
  "CMakeFiles/ujam_transform.dir/distribution.cc.o.d"
  "CMakeFiles/ujam_transform.dir/fusion.cc.o"
  "CMakeFiles/ujam_transform.dir/fusion.cc.o.d"
  "CMakeFiles/ujam_transform.dir/interchange.cc.o"
  "CMakeFiles/ujam_transform.dir/interchange.cc.o.d"
  "CMakeFiles/ujam_transform.dir/normalize.cc.o"
  "CMakeFiles/ujam_transform.dir/normalize.cc.o.d"
  "CMakeFiles/ujam_transform.dir/prefetch_insertion.cc.o"
  "CMakeFiles/ujam_transform.dir/prefetch_insertion.cc.o.d"
  "CMakeFiles/ujam_transform.dir/scalar_replacement.cc.o"
  "CMakeFiles/ujam_transform.dir/scalar_replacement.cc.o.d"
  "CMakeFiles/ujam_transform.dir/unroll_and_jam.cc.o"
  "CMakeFiles/ujam_transform.dir/unroll_and_jam.cc.o.d"
  "libujam_transform.a"
  "libujam_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
