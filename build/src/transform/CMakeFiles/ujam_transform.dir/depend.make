# Empty dependencies file for ujam_transform.
# This may be replaced when dependencies are built.
