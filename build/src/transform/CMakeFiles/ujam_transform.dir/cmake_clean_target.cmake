file(REMOVE_RECURSE
  "libujam_transform.a"
)
