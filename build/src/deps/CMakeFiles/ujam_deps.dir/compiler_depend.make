# Empty compiler generated dependencies file for ujam_deps.
# This may be replaced when dependencies are built.
