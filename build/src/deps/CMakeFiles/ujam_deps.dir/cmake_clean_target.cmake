file(REMOVE_RECURSE
  "libujam_deps.a"
)
