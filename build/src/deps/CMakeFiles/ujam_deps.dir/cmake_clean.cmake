file(REMOVE_RECURSE
  "CMakeFiles/ujam_deps.dir/analyzer.cc.o"
  "CMakeFiles/ujam_deps.dir/analyzer.cc.o.d"
  "CMakeFiles/ujam_deps.dir/dependence.cc.o"
  "CMakeFiles/ujam_deps.dir/dependence.cc.o.d"
  "CMakeFiles/ujam_deps.dir/graph.cc.o"
  "CMakeFiles/ujam_deps.dir/graph.cc.o.d"
  "CMakeFiles/ujam_deps.dir/subscript_tests.cc.o"
  "CMakeFiles/ujam_deps.dir/subscript_tests.cc.o.d"
  "CMakeFiles/ujam_deps.dir/update.cc.o"
  "CMakeFiles/ujam_deps.dir/update.cc.o.d"
  "libujam_deps.a"
  "libujam_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
