
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deps/analyzer.cc" "src/deps/CMakeFiles/ujam_deps.dir/analyzer.cc.o" "gcc" "src/deps/CMakeFiles/ujam_deps.dir/analyzer.cc.o.d"
  "/root/repo/src/deps/dependence.cc" "src/deps/CMakeFiles/ujam_deps.dir/dependence.cc.o" "gcc" "src/deps/CMakeFiles/ujam_deps.dir/dependence.cc.o.d"
  "/root/repo/src/deps/graph.cc" "src/deps/CMakeFiles/ujam_deps.dir/graph.cc.o" "gcc" "src/deps/CMakeFiles/ujam_deps.dir/graph.cc.o.d"
  "/root/repo/src/deps/subscript_tests.cc" "src/deps/CMakeFiles/ujam_deps.dir/subscript_tests.cc.o" "gcc" "src/deps/CMakeFiles/ujam_deps.dir/subscript_tests.cc.o.d"
  "/root/repo/src/deps/update.cc" "src/deps/CMakeFiles/ujam_deps.dir/update.cc.o" "gcc" "src/deps/CMakeFiles/ujam_deps.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
