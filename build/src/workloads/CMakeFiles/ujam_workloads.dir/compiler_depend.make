# Empty compiler generated dependencies file for ujam_workloads.
# This may be replaced when dependencies are built.
