file(REMOVE_RECURSE
  "libujam_workloads.a"
)
