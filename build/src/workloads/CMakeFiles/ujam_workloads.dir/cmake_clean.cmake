file(REMOVE_RECURSE
  "CMakeFiles/ujam_workloads.dir/corpus.cc.o"
  "CMakeFiles/ujam_workloads.dir/corpus.cc.o.d"
  "CMakeFiles/ujam_workloads.dir/suite.cc.o"
  "CMakeFiles/ujam_workloads.dir/suite.cc.o.d"
  "libujam_workloads.a"
  "libujam_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
