
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/corpus.cc" "src/workloads/CMakeFiles/ujam_workloads.dir/corpus.cc.o" "gcc" "src/workloads/CMakeFiles/ujam_workloads.dir/corpus.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/ujam_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/ujam_workloads.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/ujam_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/ujam_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
