# Empty dependencies file for ujam_model.
# This may be replaced when dependencies are built.
