file(REMOVE_RECURSE
  "libujam_model.a"
)
