file(REMOVE_RECURSE
  "CMakeFiles/ujam_model.dir/balance.cc.o"
  "CMakeFiles/ujam_model.dir/balance.cc.o.d"
  "CMakeFiles/ujam_model.dir/machine.cc.o"
  "CMakeFiles/ujam_model.dir/machine.cc.o.d"
  "libujam_model.a"
  "libujam_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
