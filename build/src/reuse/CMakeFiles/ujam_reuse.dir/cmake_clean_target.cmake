file(REMOVE_RECURSE
  "libujam_reuse.a"
)
