# Empty dependencies file for ujam_reuse.
# This may be replaced when dependencies are built.
