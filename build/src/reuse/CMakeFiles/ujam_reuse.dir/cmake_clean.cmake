file(REMOVE_RECURSE
  "CMakeFiles/ujam_reuse.dir/group_reuse.cc.o"
  "CMakeFiles/ujam_reuse.dir/group_reuse.cc.o.d"
  "CMakeFiles/ujam_reuse.dir/locality.cc.o"
  "CMakeFiles/ujam_reuse.dir/locality.cc.o.d"
  "CMakeFiles/ujam_reuse.dir/ugs.cc.o"
  "CMakeFiles/ujam_reuse.dir/ugs.cc.o.d"
  "libujam_reuse.a"
  "libujam_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
