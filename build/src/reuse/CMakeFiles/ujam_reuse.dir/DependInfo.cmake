
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reuse/group_reuse.cc" "src/reuse/CMakeFiles/ujam_reuse.dir/group_reuse.cc.o" "gcc" "src/reuse/CMakeFiles/ujam_reuse.dir/group_reuse.cc.o.d"
  "/root/repo/src/reuse/locality.cc" "src/reuse/CMakeFiles/ujam_reuse.dir/locality.cc.o" "gcc" "src/reuse/CMakeFiles/ujam_reuse.dir/locality.cc.o.d"
  "/root/repo/src/reuse/ugs.cc" "src/reuse/CMakeFiles/ujam_reuse.dir/ugs.cc.o" "gcc" "src/reuse/CMakeFiles/ujam_reuse.dir/ugs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
