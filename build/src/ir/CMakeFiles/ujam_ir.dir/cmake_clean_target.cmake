file(REMOVE_RECURSE
  "libujam_ir.a"
)
