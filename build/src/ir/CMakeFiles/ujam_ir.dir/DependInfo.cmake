
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/array_ref.cc" "src/ir/CMakeFiles/ujam_ir.dir/array_ref.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/array_ref.cc.o.d"
  "/root/repo/src/ir/bound.cc" "src/ir/CMakeFiles/ujam_ir.dir/bound.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/bound.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/ujam_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/ujam_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/ir/CMakeFiles/ujam_ir.dir/interp.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/interp.cc.o.d"
  "/root/repo/src/ir/loop_nest.cc" "src/ir/CMakeFiles/ujam_ir.dir/loop_nest.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/loop_nest.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/ujam_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/stmt.cc" "src/ir/CMakeFiles/ujam_ir.dir/stmt.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/stmt.cc.o.d"
  "/root/repo/src/ir/validation.cc" "src/ir/CMakeFiles/ujam_ir.dir/validation.cc.o" "gcc" "src/ir/CMakeFiles/ujam_ir.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
