# Empty compiler generated dependencies file for ujam_ir.
# This may be replaced when dependencies are built.
