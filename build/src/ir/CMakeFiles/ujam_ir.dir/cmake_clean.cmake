file(REMOVE_RECURSE
  "CMakeFiles/ujam_ir.dir/array_ref.cc.o"
  "CMakeFiles/ujam_ir.dir/array_ref.cc.o.d"
  "CMakeFiles/ujam_ir.dir/bound.cc.o"
  "CMakeFiles/ujam_ir.dir/bound.cc.o.d"
  "CMakeFiles/ujam_ir.dir/builder.cc.o"
  "CMakeFiles/ujam_ir.dir/builder.cc.o.d"
  "CMakeFiles/ujam_ir.dir/expr.cc.o"
  "CMakeFiles/ujam_ir.dir/expr.cc.o.d"
  "CMakeFiles/ujam_ir.dir/interp.cc.o"
  "CMakeFiles/ujam_ir.dir/interp.cc.o.d"
  "CMakeFiles/ujam_ir.dir/loop_nest.cc.o"
  "CMakeFiles/ujam_ir.dir/loop_nest.cc.o.d"
  "CMakeFiles/ujam_ir.dir/printer.cc.o"
  "CMakeFiles/ujam_ir.dir/printer.cc.o.d"
  "CMakeFiles/ujam_ir.dir/stmt.cc.o"
  "CMakeFiles/ujam_ir.dir/stmt.cc.o.d"
  "CMakeFiles/ujam_ir.dir/validation.cc.o"
  "CMakeFiles/ujam_ir.dir/validation.cc.o.d"
  "libujam_ir.a"
  "libujam_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
