file(REMOVE_RECURSE
  "CMakeFiles/ujam_driver.dir/driver.cc.o"
  "CMakeFiles/ujam_driver.dir/driver.cc.o.d"
  "libujam_driver.a"
  "libujam_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
