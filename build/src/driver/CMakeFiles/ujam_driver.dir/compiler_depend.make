# Empty compiler generated dependencies file for ujam_driver.
# This may be replaced when dependencies are built.
