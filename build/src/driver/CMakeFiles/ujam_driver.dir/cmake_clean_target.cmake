file(REMOVE_RECURSE
  "libujam_driver.a"
)
