file(REMOVE_RECURSE
  "libujam_linalg.a"
)
