# Empty compiler generated dependencies file for ujam_linalg.
# This may be replaced when dependencies are built.
