
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/int_vector.cc" "src/linalg/CMakeFiles/ujam_linalg.dir/int_vector.cc.o" "gcc" "src/linalg/CMakeFiles/ujam_linalg.dir/int_vector.cc.o.d"
  "/root/repo/src/linalg/merge_solver.cc" "src/linalg/CMakeFiles/ujam_linalg.dir/merge_solver.cc.o" "gcc" "src/linalg/CMakeFiles/ujam_linalg.dir/merge_solver.cc.o.d"
  "/root/repo/src/linalg/rat_matrix.cc" "src/linalg/CMakeFiles/ujam_linalg.dir/rat_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/ujam_linalg.dir/rat_matrix.cc.o.d"
  "/root/repo/src/linalg/subspace.cc" "src/linalg/CMakeFiles/ujam_linalg.dir/subspace.cc.o" "gcc" "src/linalg/CMakeFiles/ujam_linalg.dir/subspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
