file(REMOVE_RECURSE
  "CMakeFiles/ujam_linalg.dir/int_vector.cc.o"
  "CMakeFiles/ujam_linalg.dir/int_vector.cc.o.d"
  "CMakeFiles/ujam_linalg.dir/merge_solver.cc.o"
  "CMakeFiles/ujam_linalg.dir/merge_solver.cc.o.d"
  "CMakeFiles/ujam_linalg.dir/rat_matrix.cc.o"
  "CMakeFiles/ujam_linalg.dir/rat_matrix.cc.o.d"
  "CMakeFiles/ujam_linalg.dir/subspace.cc.o"
  "CMakeFiles/ujam_linalg.dir/subspace.cc.o.d"
  "libujam_linalg.a"
  "libujam_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
