# Empty compiler generated dependencies file for ujam_baseline.
# This may be replaced when dependencies are built.
