file(REMOVE_RECURSE
  "CMakeFiles/ujam_baseline.dir/brute_force.cc.o"
  "CMakeFiles/ujam_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/ujam_baseline.dir/dep_based.cc.o"
  "CMakeFiles/ujam_baseline.dir/dep_based.cc.o.d"
  "CMakeFiles/ujam_baseline.dir/exact_counts.cc.o"
  "CMakeFiles/ujam_baseline.dir/exact_counts.cc.o.d"
  "libujam_baseline.a"
  "libujam_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
