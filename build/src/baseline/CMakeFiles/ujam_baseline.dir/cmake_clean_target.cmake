file(REMOVE_RECURSE
  "libujam_baseline.a"
)
