# Empty compiler generated dependencies file for ujam_report.
# This may be replaced when dependencies are built.
