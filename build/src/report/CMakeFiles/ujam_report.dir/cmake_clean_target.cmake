file(REMOVE_RECURSE
  "libujam_report.a"
)
