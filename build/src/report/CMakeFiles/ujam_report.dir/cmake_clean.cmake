file(REMOVE_RECURSE
  "CMakeFiles/ujam_report.dir/report.cc.o"
  "CMakeFiles/ujam_report.dir/report.cc.o.d"
  "libujam_report.a"
  "libujam_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
