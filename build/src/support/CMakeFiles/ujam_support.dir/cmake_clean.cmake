file(REMOVE_RECURSE
  "CMakeFiles/ujam_support.dir/diagnostics.cc.o"
  "CMakeFiles/ujam_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/ujam_support.dir/rational.cc.o"
  "CMakeFiles/ujam_support.dir/rational.cc.o.d"
  "CMakeFiles/ujam_support.dir/rng.cc.o"
  "CMakeFiles/ujam_support.dir/rng.cc.o.d"
  "CMakeFiles/ujam_support.dir/string_utils.cc.o"
  "CMakeFiles/ujam_support.dir/string_utils.cc.o.d"
  "libujam_support.a"
  "libujam_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
