file(REMOVE_RECURSE
  "libujam_support.a"
)
