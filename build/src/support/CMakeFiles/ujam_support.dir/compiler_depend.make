# Empty compiler generated dependencies file for ujam_support.
# This may be replaced when dependencies are built.
