file(REMOVE_RECURSE
  "libujam_parser.a"
)
