file(REMOVE_RECURSE
  "CMakeFiles/ujam_parser.dir/lexer.cc.o"
  "CMakeFiles/ujam_parser.dir/lexer.cc.o.d"
  "CMakeFiles/ujam_parser.dir/parser.cc.o"
  "CMakeFiles/ujam_parser.dir/parser.cc.o.d"
  "libujam_parser.a"
  "libujam_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
