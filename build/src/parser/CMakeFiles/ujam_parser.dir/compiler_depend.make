# Empty compiler generated dependencies file for ujam_parser.
# This may be replaced when dependencies are built.
