# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("ir")
subdirs("parser")
subdirs("deps")
subdirs("reuse")
subdirs("model")
subdirs("core")
subdirs("transform")
subdirs("baseline")
subdirs("sim")
subdirs("workloads")
subdirs("report")
subdirs("driver")
