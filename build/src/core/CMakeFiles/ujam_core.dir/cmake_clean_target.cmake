file(REMOVE_RECURSE
  "libujam_core.a"
)
