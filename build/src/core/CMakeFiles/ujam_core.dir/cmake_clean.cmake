file(REMOVE_RECURSE
  "CMakeFiles/ujam_core.dir/optimizer.cc.o"
  "CMakeFiles/ujam_core.dir/optimizer.cc.o.d"
  "CMakeFiles/ujam_core.dir/rrs.cc.o"
  "CMakeFiles/ujam_core.dir/rrs.cc.o.d"
  "CMakeFiles/ujam_core.dir/set_tables.cc.o"
  "CMakeFiles/ujam_core.dir/set_tables.cc.o.d"
  "CMakeFiles/ujam_core.dir/tables.cc.o"
  "CMakeFiles/ujam_core.dir/tables.cc.o.d"
  "CMakeFiles/ujam_core.dir/unroll_space.cc.o"
  "CMakeFiles/ujam_core.dir/unroll_space.cc.o.d"
  "libujam_core.a"
  "libujam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
