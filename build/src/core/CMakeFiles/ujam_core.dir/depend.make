# Empty dependencies file for ujam_core.
# This may be replaced when dependencies are built.
