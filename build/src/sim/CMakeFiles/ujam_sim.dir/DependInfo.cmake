
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ujam_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ujam_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/modulo_schedule.cc" "src/sim/CMakeFiles/ujam_sim.dir/modulo_schedule.cc.o" "gcc" "src/sim/CMakeFiles/ujam_sim.dir/modulo_schedule.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/ujam_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/ujam_sim.dir/pipeline.cc.o.d"
  "/root/repo/src/sim/reuse_distance.cc" "src/sim/CMakeFiles/ujam_sim.dir/reuse_distance.cc.o" "gcc" "src/sim/CMakeFiles/ujam_sim.dir/reuse_distance.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/ujam_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/ujam_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ujam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/ujam_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
