file(REMOVE_RECURSE
  "CMakeFiles/ujam_sim.dir/cache.cc.o"
  "CMakeFiles/ujam_sim.dir/cache.cc.o.d"
  "CMakeFiles/ujam_sim.dir/modulo_schedule.cc.o"
  "CMakeFiles/ujam_sim.dir/modulo_schedule.cc.o.d"
  "CMakeFiles/ujam_sim.dir/pipeline.cc.o"
  "CMakeFiles/ujam_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/ujam_sim.dir/reuse_distance.cc.o"
  "CMakeFiles/ujam_sim.dir/reuse_distance.cc.o.d"
  "CMakeFiles/ujam_sim.dir/simulator.cc.o"
  "CMakeFiles/ujam_sim.dir/simulator.cc.o.d"
  "libujam_sim.a"
  "libujam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ujam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
