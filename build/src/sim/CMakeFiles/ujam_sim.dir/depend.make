# Empty dependencies file for ujam_sim.
# This may be replaced when dependencies are built.
