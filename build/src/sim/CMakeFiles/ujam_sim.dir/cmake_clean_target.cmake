file(REMOVE_RECURSE
  "libujam_sim.a"
)
