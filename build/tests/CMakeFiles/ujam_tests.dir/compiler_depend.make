# Empty compiler generated dependencies file for ujam_tests.
# This may be replaced when dependencies are built.
