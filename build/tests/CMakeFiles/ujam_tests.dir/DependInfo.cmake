
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/ujam_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_deep_nests.cc" "tests/CMakeFiles/ujam_tests.dir/test_deep_nests.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_deep_nests.cc.o.d"
  "/root/repo/tests/test_dep_update.cc" "tests/CMakeFiles/ujam_tests.dir/test_dep_update.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_dep_update.cc.o.d"
  "/root/repo/tests/test_deps.cc" "tests/CMakeFiles/ujam_tests.dir/test_deps.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_deps.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/ujam_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/ujam_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_linalg.cc" "tests/CMakeFiles/ujam_tests.dir/test_linalg.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_linalg.cc.o.d"
  "/root/repo/tests/test_modulo_schedule.cc" "tests/CMakeFiles/ujam_tests.dir/test_modulo_schedule.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_modulo_schedule.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/ujam_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/ujam_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/ujam_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_restructure.cc" "tests/CMakeFiles/ujam_tests.dir/test_restructure.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_restructure.cc.o.d"
  "/root/repo/tests/test_reuse.cc" "tests/CMakeFiles/ujam_tests.dir/test_reuse.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_reuse.cc.o.d"
  "/root/repo/tests/test_reuse_distance.cc" "tests/CMakeFiles/ujam_tests.dir/test_reuse_distance.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_reuse_distance.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/ujam_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/ujam_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_transform.cc" "tests/CMakeFiles/ujam_tests.dir/test_transform.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_transform.cc.o.d"
  "/root/repo/tests/test_transform_ext.cc" "tests/CMakeFiles/ujam_tests.dir/test_transform_ext.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_transform_ext.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ujam_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ujam_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ujam_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ujam_report.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ujam_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ujam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ujam_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ujam_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ujam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ujam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/ujam_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/ujam_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/ujam_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ujam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ujam_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ujam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
