/**
 * @file
 * Tests for the extension transforms: loop normalization, loop
 * interchange with model-driven order selection, and software
 * prefetch insertion -- all anchored by interpreter equivalence.
 */

#include <gtest/gtest.h>

#include "ir/interp.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"
#include "transform/interchange.hh"
#include "transform/normalize.hh"
#include "transform/prefetch_insertion.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

void
expectSameResults(const Program &a, const Program &b, double tol,
                  const char *label)
{
    Interpreter ia(a);
    Interpreter ib(b);
    ia.seedArrays(5);
    ib.seedArrays(5);
    ia.run();
    ib.run();
    EXPECT_EQ(ia.compareArrays(ib, tol), "") << label;
}

// --- normalization -------------------------------------------------------

TEST(Normalize, SteppedLoopBecomesUnit)
{
    Program program = parseProgram(R"(
real a(64)
do i = 3, 41, 2
  a(i) = a(i) + 1.0
end do
)");
    NormalizeResult result = normalizeNest(program.nests()[0]);
    EXPECT_TRUE(result.fullyNormalized());
    EXPECT_TRUE(result.normalized[0]);
    EXPECT_EQ(result.nest.loop(0).step, 1);
    EXPECT_EQ(result.nest.loop(0).lower.evaluate({}), 1);
    EXPECT_EQ(result.nest.loop(0).upper.evaluate({}), 20);

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectSameResults(program, transformed, 0.0, "stepped 1-deep");
}

TEST(Normalize, SubscriptCoefficientsScale)
{
    Program program = parseProgram(R"(
real a(64)
real b(64)
do i = 1, 61, 3
  b(i) = a(i + 2)
end do
)");
    NormalizeResult result = normalizeNest(program.nests()[0]);
    ASSERT_TRUE(result.fullyNormalized());
    // i = 1 + (i'-1)*3: coefficient 3, offset folds to (1-3) = -2.
    const ArrayRef &lhs = result.nest.body()[0].lhsRef();
    EXPECT_EQ(lhs.row(0), (IntVector{3}));
    EXPECT_EQ(lhs.offset(), (IntVector{-2}));

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectSameResults(program, transformed, 0.0, "scaled subscripts");
}

TEST(Normalize, MixedNestOnlyTouchesSteppedLoops)
{
    Program program = parseProgram(R"(
param n = 20
real a(n, n)
do j = 2, 20, 2
  do i = 1, n
    a(i, j) = a(i, j) * 0.5
  end do
end do
)");
    NormalizeResult result = normalizeNest(program.nests()[0]);
    EXPECT_TRUE(result.fullyNormalized());
    EXPECT_TRUE(result.normalized[0]);
    EXPECT_FALSE(result.normalized[1]); // already step 1
    EXPECT_EQ(result.nest.loop(1).upper.toString(), "n");

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectSameResults(program, transformed, 0.0, "mixed nest");
}

TEST(Normalize, SymbolicBoundsReported)
{
    Program program = parseProgram(R"(
param n = 21
real a(n)
do i = 1, n, 2
  a(i) = 0.0
end do
)");
    NormalizeResult result = normalizeNest(program.nests()[0]);
    EXPECT_FALSE(result.fullyNormalized());
    EXPECT_FALSE(result.normalized[0]);
    EXPECT_EQ(result.nest.loop(0).step, 2); // untouched
}

TEST(Normalize, EnablesUnrollAndJam)
{
    // A stepped outer loop normalizes, then unroll-and-jam applies.
    Program program = parseProgram(R"(
param m = 16
real a(40, m)
real b(m)
do j = 1, 39, 2
  do i = 1, m
    a(j, i) = a(j, i) + b(i)
  end do
end do
)");
    NormalizeResult normalized = normalizeNest(program.nests()[0]);
    ASSERT_TRUE(normalized.fullyNormalized());
    Program staged = program;
    staged.nests()[0] = normalized.nest;
    Program transformed = unrollAndJam(staged, 0, IntVector{3, 0});
    expectSameResults(program, transformed, 1e-9, "normalize+ujam");
}

// --- interchange ---------------------------------------------------------

TEST(Interchange, PermuteLoopsRewritesSubscripts)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 8
  do i = 1, 16
    a(i, j) = a(i, j) + 1.0
  end do
end do
)");
    LoopNest permuted = permuteLoops(nest, {1, 0});
    EXPECT_EQ(permuted.loop(0).iv, "i");
    EXPECT_EQ(permuted.loop(1).iv, "j");
    EXPECT_EQ(permuted.loop(0).upper.evaluate({}), 16);
    // a(i, j): the i coefficient moves from column 1 to column 0.
    const ArrayRef &ref = permuted.body()[0].lhsRef();
    EXPECT_EQ(ref.row(0), (IntVector{1, 0}));
    EXPECT_EQ(ref.row(1), (IntVector{0, 1}));
}

TEST(Interchange, EquivalenceWhenLegal)
{
    Program program = parseProgram(R"(
param n = 12
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 2.0 + a(i, j-1)
  end do
end do
)");
    Program transformed = program;
    transformed.nests()[0] = permuteLoops(program.nests()[0], {1, 0});
    expectSameResults(program, transformed, 0.0, "legal interchange");
}

TEST(Interchange, LegalityFromDirections)
{
    // Distance (1, -1): interchange would reverse it.
    LoopNest blocked = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i+1, j-1)
  end do
end do
)");
    DepOptions options;
    options.includeInput = false;
    DependenceGraph graph = analyzeDependences(blocked, options);
    EXPECT_FALSE(interchangeLegal(graph, {1, 0}));
    EXPECT_TRUE(interchangeLegal(graph, {0, 1})); // identity

    // Distance (1, 1) stays lexicographically positive either way.
    LoopNest fine = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i-1, j-1)
  end do
end do
)");
    DependenceGraph graph2 = analyzeDependences(fine, options);
    EXPECT_TRUE(interchangeLegal(graph2, {1, 0}));
}

TEST(Interchange, ChoosesMemoryOrderForMatmul)
{
    // mmjik walks a(i,k) along k (stride n) in the innermost loop;
    // the model must discover the jki order (i innermost, stride 1).
    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    LocalityParams params;
    InterchangeResult result =
        chooseLoopOrder(program.nests()[0], params);
    EXPECT_TRUE(result.changed);
    EXPECT_LT(result.costAfter, result.costBefore);
    EXPECT_EQ(result.nest.loop(2).iv, "i"); // i moved innermost

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectSameResults(program, transformed, 1e-9, "matmul interchange");
}

TEST(Interchange, KeepsGoodOrders)
{
    // mmjki already has i innermost: nothing to gain.
    Program program = loadSuiteProgram(suiteLoop("mmjki"));
    LocalityParams params;
    InterchangeResult result =
        chooseLoopOrder(program.nests()[0], params);
    EXPECT_EQ(result.nest.loop(2).iv, "i");
    EXPECT_LE(result.costAfter, result.costBefore + 1e-12);
}

TEST(Interchange, RespectsBlockingDependence)
{
    // Profitable but illegal: the (1,-1) dependence pins the order.
    Program program = parseProgram(R"(
param n = 16
real a(n + 2, n + 2)
do i = 2, n
  do j = 2, n
    a(i, j) = a(i-1, j+1) + 1.0
  end do
end do
)");
    LocalityParams params;
    InterchangeResult result =
        chooseLoopOrder(program.nests()[0], params);
    EXPECT_FALSE(result.changed);
}

TEST(Interchange, InterchangePlusUnrollAndJam)
{
    // The Wolf/Maydan/Chen combination: permute first, then
    // unroll-and-jam the permuted nest, still semantics-preserving.
    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    LocalityParams params;
    InterchangeResult order =
        chooseLoopOrder(program.nests()[0], params);
    Program staged = program;
    staged.nests()[0] = order.nest;
    Program transformed = unrollAndJam(staged, 0, IntVector{2, 1, 0});
    for (LoopNest &nest : transformed.nests())
        nest = scalarReplace(nest).nest;

    Interpreter a(program, {{"n", 17}});
    Interpreter b(transformed, {{"n", 17}});
    a.seedArrays(3);
    b.seedArrays(3);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, 1e-9), "");
}

// --- prefetch insertion ---------------------------------------------------

TEST(Prefetch, StmtAndRoundTrip)
{
    Program program = parseProgram(R"(
param n = 16
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    prefetch a(i+4, j)
    b(i, j) = a(i, j) * 2.0
  end do
end do
)");
    const Stmt &stmt = program.nests()[0].body()[0];
    ASSERT_TRUE(stmt.isPrefetch());
    EXPECT_EQ(stmt.prefetchRef().array(), "a");
    EXPECT_TRUE(validateProgram(program).empty());

    // Print/parse round trip keeps the prefetch.
    Program reparsed = parseProgram(renderProgram(program));
    EXPECT_TRUE(reparsed.nests()[0].body()[0].isPrefetch());
}

TEST(Prefetch, DoesNotChangeSemantics)
{
    Program plain = parseProgram(R"(
param n = 24
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 2.0
  end do
end do
)");
    PrefetchResult inserted =
        insertPrefetches(plain.nests()[0], PrefetchConfig{6});
    EXPECT_GT(inserted.prefetchesInserted, 0u);
    Program transformed = plain;
    transformed.nests()[0] = inserted.nest;
    expectSameResults(plain, transformed, 0.0, "prefetch semantics");
}

TEST(Prefetch, SkipsRegisterAndCacheResidentSets)
{
    // b(i) is invariant in j (register resident); c(j) is
    // self-temporal in... c(j) varies innermost; a(j) is invariant.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 16
  do i = 1, 16
    a(j) = a(j) + b(i)
  end do
end do
)");
    PrefetchResult result = insertPrefetches(nest, PrefetchConfig{4});
    // a(j) is innermost-invariant: skipped. b(i) streams: prefetched.
    EXPECT_EQ(result.prefetchesInserted, 1u);
    ASSERT_TRUE(result.nest.body()[0].isPrefetch());
    EXPECT_EQ(result.nest.body()[0].prefetchRef().array(), "b");
}

TEST(Prefetch, OutOfRangeIsDroppedSilently)
{
    Program program = parseProgram(R"(
param n = 12
real a(n)
real b(n)
do i = 1, n
  prefetch a(i + 100)
  b(i) = a(i)
end do
)");
    Interpreter interp(program);
    EXPECT_NO_THROW(interp.run());
    EXPECT_EQ(interp.prefetchCount(), 12u);
}

TEST(Prefetch, HidesMissLatencyInSimulator)
{
    Program plain = parseProgram(R"(
param n = 160
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 2.0 + 1.0
  end do
end do
)");
    Program prefetched = plain;
    prefetched.nests()[0] =
        insertPrefetches(plain.nests()[0], PrefetchConfig{8}).nest;

    // A machine with spare bandwidth (2 ports): prefetching wins.
    MachineModel machine = MachineModel::wideIlp();
    SimResult without = simulateProgram(plain, machine);
    SimResult with = simulateProgram(prefetched, machine);
    EXPECT_GT(with.prefetches, 0u);
    EXPECT_LT(with.demandMisses, without.demandMisses / 2);
    EXPECT_LT(with.cycles, without.cycles);
}

TEST(Prefetch, CostsBandwidthOnNarrowMachines)
{
    // One memory port: the prefetch instructions halve the memory
    // issue rate; the pipeline model must charge for them.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 8
  do i = 1, 8
    b(i, j) = a(i, j) * 2.0
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    double before = steadyStateCyclesPerIteration(nest, machine);
    LoopNest with = insertPrefetches(nest, PrefetchConfig{4}).nest;
    double after = steadyStateCyclesPerIteration(with, machine);
    EXPECT_GT(after, before);
}

TEST(Prefetch, SurvivesUnrollAndJamAndScalarReplacement)
{
    Program program = parseProgram(R"(
param n = 20
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i, j-1)
  end do
end do
)");
    Program staged = program;
    staged.nests()[0] =
        insertPrefetches(program.nests()[0], PrefetchConfig{4}).nest;
    Program transformed = unrollAndJam(staged, 0, IntVector{2, 0});
    for (LoopNest &nest : transformed.nests())
        nest = scalarReplace(nest).nest;
    expectSameResults(program, transformed, 1e-9, "prefetch pipeline");
}

} // namespace
} // namespace ujam
