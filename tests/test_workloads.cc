/**
 * @file
 * Tests for the Table-2 suite and the Table-1 corpus generator,
 * including end-to-end integration over the whole suite: analyze,
 * decide, transform, verify semantics, simulate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/brute_force.hh"
#include "baseline/dep_based.hh"
#include "core/optimizer.hh"
#include "ir/interp.hh"
#include "sim/simulator.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "ir/printer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

TEST(Suite, HasNineteenLoops)
{
    ASSERT_EQ(testSuite().size(), 19u);
    EXPECT_EQ(testSuite().front().name, "jacobi");
    EXPECT_EQ(testSuite().back().name, "shal");
    for (std::size_t i = 0; i < testSuite().size(); ++i)
        EXPECT_EQ(testSuite()[i].number, static_cast<int>(i) + 1);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(suiteLoop("mmjik").number, 15);
    EXPECT_THROW(suiteLoop("nope"), FatalError);
}

TEST(Suite, AllLoopsParseAndValidate)
{
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        EXPECT_EQ(program.nests().size(), 1u) << loop.name;
        EXPECT_GE(program.nests()[0].depth(), 2u) << loop.name;
    }
}

TEST(Suite, MostLoopsAreSivSeparable)
{
    // Section 3.5: "nearly all" references fit the SIV separable
    // criteria; in this suite only afold (adjoint convolution) does
    // not.
    std::size_t analyzable = 0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        analyzable += program.nests()[0].allRefsAnalyzable();
    }
    EXPECT_GE(analyzable, 18u);
}

/** Full pipeline: decide -> transform -> verify -> simulate. */
class SuiteIntegration : public ::testing::TestWithParam<int>
{};

TEST_P(SuiteIntegration, DecideTransformVerifySimulate)
{
    const SuiteLoop &loop =
        testSuite()[static_cast<std::size_t>(GetParam())];
    Program program = loadSuiteProgram(loop);
    MachineModel machine = MachineModel::hpPa7100();
    OptimizerConfig config;
    config.maxUnroll = 4;

    UnrollDecision decision =
        chooseUnrollAmounts(program.nests()[0], machine, config);
    EXPECT_LE(decision.registers, machine.fpRegisters) << loop.name;

    Program transformed = unrollAndJam(program, 0, decision.unroll);
    for (LoopNest &nest : transformed.nests())
        nest = scalarReplace(nest).nest;

    // Semantics must hold on a shrunken problem (fast interpreter run)
    // including remainder iterations (odd size).
    ParamBindings small{{"n", 23}, {"m", 19}};
    Interpreter a(program, small);
    Interpreter b(transformed, small);
    a.seedArrays(99);
    b.seedArrays(99);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, 1e-9), "") << loop.name;

    // Simulated time of the transformed loop must not regress badly
    // (capacity effects allow a small overshoot; see EXPERIMENTS.md).
    SimResult before = simulateProgram(program, machine);
    SimResult after = simulateProgram(transformed, machine);
    EXPECT_LT(after.cycles, before.cycles * 1.15) << loop.name;
}

INSTANTIATE_TEST_SUITE_P(AllLoops, SuiteIntegration,
                         ::testing::Range(0, 19));

TEST(SuiteDecisions, TableBruteForceAndDepBasedAgree)
{
    // The headline claim of sections 2 and 5: the UGS tables make the
    // same decisions as both the brute-force method and the
    // dependence-based model, without input dependences.
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests()[0];
        MachineModel machine = MachineModel::decAlpha21064();
        OptimizerConfig config;
        config.maxUnroll = 3;

        UnrollDecision table =
            chooseUnrollAmounts(nest, machine, config);
        BruteForceResult brute =
            bruteForceChooseUnroll(nest, machine, config);
        DepBasedResult deps =
            depBasedChooseUnroll(nest, machine, config);

        EXPECT_EQ(table.unroll, brute.unroll) << loop.name;
        EXPECT_EQ(table.unroll, deps.decision.unroll) << loop.name;
        // And the dependence-based method had to pay for its graph.
        EXPECT_GE(deps.graphBytes, deps.graphBytesNoInput) << loop.name;
    }
}

class DecisionAgreement : public ::testing::TestWithParam<int>
{};

TEST_P(DecisionAgreement, RandomStencilsAllThreeMethodsAgree)
{
    Rng rng(15000 + GetParam());
    std::ostringstream src;
    src << "do j = 1, 48\n  do i = 1, 48\n    a(i, j) = ";
    int reads = static_cast<int>(rng.range(1, 3));
    for (int r = 0; r < reads; ++r) {
        if (r > 0)
            src << " + ";
        switch (rng.range(0, 2)) {
          case 0:
            src << "a(i, j" << rng.range(-3, -1) << ")";
            break;
          case 1:
            src << "b(i" << (rng.chance(0.5) ? "-1" : "") << ", j)";
            break;
          default:
            src << "c(i)";
            break;
        }
    }
    src << "\n  end do\nend do\n";
    LoopNest nest = parseSingleNest(src.str());
    MachineModel machine = rng.chance(0.5)
                               ? MachineModel::decAlpha21064()
                               : MachineModel::hpPa7100();
    OptimizerConfig config;
    config.maxUnroll = 3;
    UnrollDecision table = chooseUnrollAmounts(nest, machine, config);
    BruteForceResult brute =
        bruteForceChooseUnroll(nest, machine, config);
    DepBasedResult deps = depBasedChooseUnroll(nest, machine, config);
    EXPECT_EQ(table.unroll, brute.unroll) << src.str();
    EXPECT_EQ(table.unroll, deps.decision.unroll) << src.str();
}

INSTANTIATE_TEST_SUITE_P(Random, DecisionAgreement,
                         ::testing::Range(0, 20));

TEST(SuiteDecisions, GoldenUnrollVectors)
{
    // Regression net: the decisions the benchmarks report. A model
    // change that moves any of these should be a conscious one.
    struct Golden
    {
        const char *loop;
        const char *alpha;
        const char *parisc;
    };
    static const Golden golden[] = {
        {"jacobi", "(4, 0)", "(4, 0)"},
        {"afold", "(4, 0)", "(4, 0)"},
        {"btrix.2", "(3, 2, 0)", "(2, 2, 0)"},
        {"btrix.7", "(4, 1, 0)", "(4, 1, 0)"},
        {"dflux.16", "(0, 0)", "(0, 0)"},
        {"dmxpy1", "(4, 0)", "(4, 0)"},
        {"mmjik", "(3, 4, 0)", "(3, 3, 0)"},
        {"mmjki", "(2, 3, 0)", "(2, 2, 0)"},
        {"sor", "(4, 0)", "(4, 0)"},
        {"shal", "(2, 0)", "(1, 0)"},
    };
    OptimizerConfig config;
    config.maxUnroll = 4;
    for (const Golden &expectation : golden) {
        Program program = loadSuiteProgram(suiteLoop(expectation.loop));
        UnrollDecision alpha = chooseUnrollAmounts(
            program.nests()[0], MachineModel::decAlpha21064(), config);
        UnrollDecision parisc = chooseUnrollAmounts(
            program.nests()[0], MachineModel::hpPa7100(), config);
        EXPECT_EQ(alpha.unroll.toString(), expectation.alpha)
            << expectation.loop << " on Alpha";
        EXPECT_EQ(parisc.unroll.toString(), expectation.parisc)
            << expectation.loop << " on PA-RISC";
    }
}

TEST(Corpus, DeterministicGeneration)
{
    CorpusConfig config;
    config.routines = 20;
    auto a = generateCorpus(config);
    auto b = generateCorpus(config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].nests.size(), b[i].nests.size());
        for (std::size_t n = 0; n < a[i].nests.size(); ++n) {
            EXPECT_EQ(a[i].nests[n].accesses().size(),
                      b[i].nests[n].accesses().size());
        }
    }
}

TEST(Corpus, StatisticsLandInThePaperBand)
{
    CorpusConfig config;
    config.routines = 400; // subset for test speed
    CorpusStats stats = analyzeCorpus(generateCorpus(config));

    // Section 5.1 shape targets: about half the routines have
    // dependences at all (paper: 649/1187); input deps dominate the
    // total count; the per-routine mean sits mid-range with a wide
    // spread; both the 0% and the 90-100% buckets are populated.
    EXPECT_GT(stats.routinesWithDeps, stats.routinesTotal * 4 / 10);
    EXPECT_LT(stats.routinesWithDeps, stats.routinesTotal * 7 / 10);
    EXPECT_GT(stats.totalInputPercent(), 75.0);
    EXPECT_LT(stats.totalInputPercent(), 95.0);
    EXPECT_GT(stats.meanInputPercent, 45.0);
    EXPECT_LT(stats.meanInputPercent, 80.0);
    EXPECT_GT(stats.stddevInputPercent, 20.0);
    ASSERT_EQ(stats.histogram.size(), 9u);
    EXPECT_GT(stats.histogram[0], 0u); // some 0% routines
    EXPECT_GT(stats.histogram[8],
              stats.routinesWithDeps / 5); // heavy 90-100% bucket
    // The storage claim: dropping input deps saves the same share.
    EXPECT_LT(stats.graphBytesNoInput, stats.graphBytes / 3);
}

TEST(Corpus, NestsSurvivePrintParseRoundTrip)
{
    // Thousands of generated nests through the printer and back:
    // large-scale structural coverage of both components.
    CorpusConfig config;
    config.routines = 150;
    std::size_t nests_checked = 0;
    for (const CorpusRoutine &routine : generateCorpus(config)) {
        for (const LoopNest &nest : routine.nests) {
            std::string text = renderLoopNest(nest);
            LoopNest reparsed = parseSingleNest(text);
            ASSERT_EQ(reparsed.depth(), nest.depth()) << text;
            ASSERT_EQ(reparsed.accesses().size(),
                      nest.accesses().size())
                << text;
            // Same reference structure, access by access.
            auto a = nest.accesses();
            auto b = reparsed.accesses();
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].ref, b[i].ref) << text;
                EXPECT_EQ(a[i].isWrite, b[i].isWrite) << text;
            }
            ++nests_checked;
        }
    }
    EXPECT_GT(nests_checked, 300u);
}

TEST(Corpus, BucketLabelsMatchTable1)
{
    const auto &labels = corpusBucketLabels();
    ASSERT_EQ(labels.size(), 9u);
    EXPECT_EQ(labels.front(), "0%");
    EXPECT_EQ(labels.back(), "90%-100%");
}

TEST(DepBased, ReportsStorageBill)
{
    LoopNest nest = loadSuiteProgram(suiteLoop("collc.2")).nests()[0];
    DepBasedResult result =
        depBasedChooseUnroll(nest, MachineModel::decAlpha21064());
    // collc.2 reads dw four times: six input pairs dominate.
    EXPECT_GT(result.inputEdges, 0u);
    EXPECT_GE(result.graphEdges, result.inputEdges);
    EXPECT_EQ(result.graphBytes - result.graphBytesNoInput,
              result.inputEdges *
                  DependenceGraph::edgeBytes(nest.depth()));
    // The UGS model's records are far smaller than the input-dep
    // portion of the graph for read-heavy loops.
    EXPECT_GT(ugsModelBytes(nest), 0u);
}

} // namespace
} // namespace ujam
