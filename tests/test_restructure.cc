/**
 * @file
 * Tests for loop distribution, loop fusion and innermost unrolling --
 * the restructuring companions of unroll-and-jam -- anchored as
 * always by interpreter equivalence.
 */

#include <gtest/gtest.h>

#include "ir/interp.hh"
#include "ir/printer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "transform/distribution.hh"
#include "transform/fusion.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

void
expectSame(const Program &a, const Program &b, double tol,
           const char *label)
{
    Interpreter x(a);
    Interpreter y(b);
    x.seedArrays(8);
    y.seedArrays(8);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, tol), "")
        << label << "\n"
        << renderProgram(b);
}

// --- distribution ----------------------------------------------------------

TEST(Distribution, IndependentStatementsSplit)
{
    Program program = parseProgram(R"(
param n = 14
real a(n, n)
real b(n, n)
real c(n, n)
real d(n, n)
! nest: two
do j = 1, n
  do i = 1, n
    a(i, j) = c(i, j) * 2.0
    b(i, j) = d(i, j) + 1.0
  end do
end do
)");
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_TRUE(result.changed);
    ASSERT_EQ(result.nests.size(), 2u);
    EXPECT_EQ(result.nests[0].body().size(), 1u);
    EXPECT_EQ(result.nests[0].name(), "two.0");

    Program transformed = program;
    transformed.nests().clear();
    for (LoopNest &nest : result.nests)
        transformed.addNest(std::move(nest));
    expectSame(program, transformed, 0.0, "independent split");
}

TEST(Distribution, ForwardDependenceOrdersGroups)
{
    // Producer a, consumer b: both split, producer first.
    Program program = parseProgram(R"(
param n = 12
real a(n + 2, n + 2)
real b(n + 2, n + 2)
real c(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    a(i, j) = c(i, j) * 2.0
    b(i, j) = a(i, j-1) + 1.0
  end do
end do
)");
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_TRUE(result.changed);
    ASSERT_EQ(result.nests.size(), 2u);
    // The producer of 'a' must run first.
    EXPECT_EQ(result.nests[0].body()[0].lhsRef().array(), "a");

    Program transformed = program;
    transformed.nests().clear();
    for (LoopNest &nest : result.nests)
        transformed.addNest(std::move(nest));
    expectSame(program, transformed, 0.0, "producer first");
}

TEST(Distribution, CycleStaysTogether)
{
    // a feeds b in the same iteration; b feeds a one iteration later:
    // a genuine recurrence cycle, must not split.
    Program program = parseProgram(R"(
param n = 12
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 2, n
  do i = 1, n
    a(i, j) = b(i, j-1) * 0.5
    b(i, j) = a(i, j) + 1.0
  end do
end do
)");
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_FALSE(result.changed);
    ASSERT_EQ(result.nests.size(), 1u);
    EXPECT_EQ(result.groupOf[0], result.groupOf[1]);
}

TEST(Distribution, ScalarTemporariesBindStatements)
{
    Program program = parseProgram(R"(
param n = 10
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    t = a(i, j) * 2.0
    b(i, j) = t + 1.0
  end do
end do
)");
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_FALSE(result.changed);
}

TEST(Distribution, ShallowWaterSplitsIntoFourGroups)
{
    // shal's four statements are mutually independent (each writes a
    // distinct array from shared read-only inputs).
    Program program = loadSuiteProgram(suiteLoop("shal"));
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_TRUE(result.changed);
    EXPECT_EQ(result.nests.size(), 4u);

    Program transformed = program;
    transformed.nests().clear();
    for (LoopNest &nest : result.nests)
        transformed.addNest(std::move(nest));
    Interpreter x(program, {{"n", 19}});
    Interpreter y(transformed, {{"n", 19}});
    x.seedArrays(2);
    y.seedArrays(2);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 0.0), "");
}

// --- fusion ----------------------------------------------------------------

const char *kProducerConsumer = R"(
param n = 16
real a(n + 2, n + 2)
real b(n + 2, n + 2)
real c(n + 2, n + 2)
! nest: produce
do j = 1, n
  do i = 1, n
    a(i, j) = c(i, j) * 2.0
  end do
end do
! nest: consume
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + 1.0
  end do
end do
)";

TEST(Fusion, ProducerConsumerFuses)
{
    Program program = parseProgram(kProducerConsumer);
    ASSERT_TRUE(fusionLegal(program.nests()[0], program.nests()[1]));

    auto [fused, count] = fuseProgram(program);
    EXPECT_EQ(count, 1u);
    ASSERT_EQ(fused.nests().size(), 1u);
    EXPECT_EQ(fused.nests()[0].body().size(), 2u);
    EXPECT_EQ(fused.nests()[0].name(), "produce+consume");
    expectSame(program, fused, 0.0, "producer-consumer fusion");
}

TEST(Fusion, FusionEnablesScalarForwarding)
{
    Program program = parseProgram(kProducerConsumer);
    auto [fused, count] = fuseProgram(program);
    ASSERT_EQ(count, 1u);
    // After fusion, a(i,j) is written then read in one iteration:
    // scalar replacement forwards it and the body load disappears.
    ScalarReplacementResult replaced =
        scalarReplace(fused.nests()[0]);
    EXPECT_GE(replaced.loadsRemoved, 1u);
    Program final_program = fused;
    final_program.nests()[0] = replaced.nest;
    expectSame(program, final_program, 0.0, "fusion + forwarding");
}

TEST(Fusion, BackwardDependenceBlocks)
{
    // The first nest reads a(i, j-1); fused, the second nest's write
    // to a(i, j-1) would land one iteration EARLIER than that read --
    // the read would suddenly see the new value.
    Program program = parseProgram(R"(
param n = 12
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 2, n
  do i = 1, n
    b(i, j) = a(i, j-1) * 2.0
  end do
end do
do j = 2, n
  do i = 1, n
    a(i, j) = b(i, j) + 1.0
  end do
end do
)");
    EXPECT_FALSE(fusionLegal(program.nests()[0], program.nests()[1]));
    auto [fused, count] = fuseProgram(program);
    EXPECT_EQ(count, 0u);
    EXPECT_EQ(fused.nests().size(), 2u);
}

TEST(Fusion, ForwardCrossIterationDependenceIsFine)
{
    // Reading a(i, j+1) against a later write stays forward after
    // fusion: the read at iteration j precedes the write at j+1.
    Program program = parseProgram(R"(
param n = 12
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j+1) * 2.0
  end do
end do
do j = 1, n
  do i = 1, n
    a(i, j) = b(i, j) + 1.0
  end do
end do
)");
    ASSERT_TRUE(fusionLegal(program.nests()[0], program.nests()[1]));
    auto [fused, count] = fuseProgram(program);
    EXPECT_EQ(count, 1u);
    expectSame(program, fused, 0.0, "forward cross-iteration fusion");
}

TEST(Fusion, MismatchedHeadersBlock)
{
    Program program = parseProgram(R"(
param n = 12
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = 1.0
  end do
end do
do j = 2, n
  do i = 1, n
    a(i, j) = a(i, j) * 2.0
  end do
end do
)");
    EXPECT_FALSE(fusionLegal(program.nests()[0], program.nests()[1]));
}

TEST(Fusion, ChainOfThreeFusesGreedily)
{
    Program program = parseProgram(R"(
param n = 10
real a(n, n)
real b(n, n)
real c(n, n)
real d(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 2.0
  end do
end do
do j = 1, n
  do i = 1, n
    c(i, j) = b(i, j) + 1.0
  end do
end do
do j = 1, n
  do i = 1, n
    d(i, j) = c(i, j) * 0.5
  end do
end do
)");
    auto [fused, count] = fuseProgram(program);
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(fused.nests().size(), 1u);
    expectSame(program, fused, 0.0, "three-way fusion");
}

TEST(Fusion, DistributionRoundTrip)
{
    // distribute then fuse returns to one nest with equal semantics.
    Program program = loadSuiteProgram(suiteLoop("shal"));
    DistributionResult distributed =
        distributeNest(program.nests()[0]);
    ASSERT_TRUE(distributed.changed);
    Program pieces = program;
    pieces.nests().clear();
    for (LoopNest &nest : distributed.nests)
        pieces.addNest(std::move(nest));
    auto [fused, count] = fuseProgram(pieces);
    EXPECT_GE(count, 1u);
    Interpreter x(program, {{"n", 17}});
    Interpreter y(fused, {{"n", 17}});
    x.seedArrays(3);
    y.seedArrays(3);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 0.0), "");
}

// --- innermost unrolling -----------------------------------------------------

TEST(InnerUnroll, EquivalenceWithFringe)
{
    Program program = parseProgram(R"(
param n = 13
real a(n + 2, n + 2)
do j = 1, n
  do i = 2, n
    a(i, j) = a(i-1, j) * 0.5 + 1.0
  end do
end do
)");
    for (std::int64_t u : {1, 2, 3, 5}) {
        std::vector<LoopNest> unrolled =
            unrollInnermost(program.nests()[0], u);
        ASSERT_EQ(unrolled.size(), 2u);
        EXPECT_EQ(unrolled[0].loop(1).step, u + 1);
        EXPECT_EQ(unrolled[0].body().size(),
                  static_cast<std::size_t>(u + 1));
        Program transformed = program;
        transformed.nests().clear();
        for (LoopNest &nest : unrolled)
            transformed.addNest(std::move(nest));
        expectSame(program, transformed, 0.0,
                   "inner unroll with recurrence");
    }
}

TEST(InnerUnroll, LegalEvenWhereJamIsNot)
{
    // The (1,-1) dependence forbids unroll-and-jam of j but plain
    // inner unrolling is always safe.
    Program program = parseProgram(R"(
param n = 12
real a(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i+1, j-1) + 1.0
  end do
end do
)");
    std::vector<LoopNest> unrolled =
        unrollInnermost(program.nests()[0], 3);
    Program transformed = program;
    transformed.nests().clear();
    for (LoopNest &nest : unrolled)
        transformed.addNest(std::move(nest));
    expectSame(program, transformed, 0.0, "inner unroll safety");
}

TEST(InnerUnroll, ComposesWithUnrollAndJam)
{
    Program program = parseProgram(R"(
param n = 18
real a(n + 2)
real b(n + 2)
do j = 1, n
  do i = 1, n
    a(j) = a(j) + b(i)
  end do
end do
)");
    std::vector<LoopNest> jammed =
        unrollAndJamNest(program.nests()[0], IntVector{1, 0});
    std::vector<LoopNest> all;
    for (const LoopNest &nest : jammed) {
        for (LoopNest &piece : unrollInnermost(nest, 2))
            all.push_back(std::move(piece));
    }
    Program transformed = program;
    transformed.nests().clear();
    for (LoopNest &nest : all)
        transformed.addNest(std::move(nest));
    expectSame(program, transformed, 1e-9, "uj + inner unroll");
}

// --- randomized ------------------------------------------------------------

class RestructureProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RestructureProperty, DistributeFuseUnrollEquivalence)
{
    Rng rng(8800 + GetParam());
    std::ostringstream src;
    std::int64_t n = rng.range(6, 12);
    src << "param n = " << n << "\n";
    for (char name : {'a', 'b', 'c', 'd'})
        src << "real " << name << "(n + 8, n + 8)\n";
    src << "do j = 1, n\n  do i = 1, n\n";
    int stmts = static_cast<int>(rng.range(2, 4));
    const char *targets[] = {"a", "b", "c", "d"};
    for (int s = 0; s < stmts; ++s) {
        src << "    " << targets[s] << "(i, j) = "
            << targets[rng.range(0, 3)] << "(i, j"
            << (rng.chance(0.5) ? "-1" : "") << ") + "
            << targets[rng.range(0, 3)] << "(i"
            << (rng.chance(0.5) ? "-1" : "") << ", j) * 0.5\n";
    }
    src << "  end do\nend do\n";
    Program program = parseProgram(src.str());

    // distribute -> inner unroll each piece -> compare.
    DistributionResult distributed =
        distributeNest(program.nests()[0]);
    Program transformed = program;
    transformed.nests().clear();
    for (const LoopNest &piece : distributed.nests) {
        for (LoopNest &bit :
             unrollInnermost(piece, rng.range(0, 3)))
            transformed.addNest(std::move(bit));
    }
    expectSame(program, transformed, 0.0, src.str().c_str());
}

INSTANTIATE_TEST_SUITE_P(Random, RestructureProperty,
                         ::testing::Range(0, 25));

} // namespace
} // namespace ujam
