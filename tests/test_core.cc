/**
 * @file
 * Tests for the paper's core machinery: the unroll space, the
 * ComputeTable/Sum pipeline (Figs. 2-3), RRS construction (Fig. 4),
 * the RRS and register tables (Figs. 5, 7) and the optimizer
 * (section 4.5). The central property: table predictions equal
 * brute-force measurement of the actually-unrolled body.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/brute_force.hh"
#include "core/optimizer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"

namespace ujam
{
namespace
{

TEST(UnrollSpace, IndexingRoundTrip)
{
    UnrollSpace space(3, {0, 1}, {2, 3});
    EXPECT_EQ(space.size(), 12u);
    for (std::size_t i = 0; i < space.size(); ++i) {
        IntVector u = space.vectorAt(i);
        EXPECT_EQ(space.indexOf(u), i);
        EXPECT_TRUE(space.contains(u));
        EXPECT_EQ(u[2], 0); // innermost stays 0
    }
    EXPECT_FALSE(space.contains(IntVector{3, 0, 0}));
    EXPECT_FALSE(space.contains(IntVector{0, 0, 1}));
    EXPECT_EQ(space.maxVector(), (IntVector{2, 3, 0}));
}

TEST(UnrollSpace, RejectsInnermostDim)
{
    EXPECT_THROW(UnrollSpace(2, {1}, {4}), PanicError);
    EXPECT_THROW(UnrollSpace(3, {0, 0}, {1, 1}), PanicError);
}

TEST(UnrollTable, BoxAndPrefixSum)
{
    UnrollSpace space(2, {0}, {3});
    UnrollTable table(space, 2);
    table.addBox(IntVector{2, 0}, -1);
    EXPECT_EQ(table.at(IntVector{1, 0}), 2);
    EXPECT_EQ(table.at(IntVector{2, 0}), 1);
    EXPECT_EQ(table.at(IntVector{3, 0}), 1);

    UnrollTable sums = table.prefixSum();
    EXPECT_EQ(sums.at(IntVector{0, 0}), 2);
    EXPECT_EQ(sums.at(IntVector{1, 0}), 4);
    EXPECT_EQ(sums.at(IntVector{2, 0}), 5);
    EXPECT_EQ(sums.at(IntVector{3, 0}), 6);
}

TEST(UnrollTable, TwoDimPrefixSum)
{
    UnrollSpace space(3, {0, 1}, {1, 1});
    UnrollTable ones(space, 1);
    UnrollTable sums = ones.prefixSum();
    // prefix over a box counts the sub-box volume.
    EXPECT_EQ(sums.at(IntVector{0, 0, 0}), 1);
    EXPECT_EQ(sums.at(IntVector{1, 0, 0}), 2);
    EXPECT_EQ(sums.at(IntVector{0, 1, 0}), 2);
    EXPECT_EQ(sums.at(IntVector{1, 1, 0}), 4);
}

/** The paper's Figure 1: a(i,j) store and a(i-2,j) load, unroll i. */
TEST(SetTables, PaperFigure1Counts)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 32
  do j = 1, 32
    a(i, j) = a(i-2, j) + 1.0
  end do
end do
)");
    UnrollSpace space(2, {0}, {3});
    Subspace inner = Subspace::coordinate(2, {1});
    NestTables tables = buildNestTables(nest, space, inner);
    ASSERT_EQ(tables.perUgs.size(), 1u);
    const UnrollTable &gts = tables.perUgs[0].groupTemporal;
    // Before unrolling: 2 GTSs. Copies merge from shift (2,0) on:
    // u=1 -> 4, u=2 -> 5, u=3 -> 6 (the paper's worked example).
    EXPECT_EQ(gts.at(IntVector{0, 0}), 2);
    EXPECT_EQ(gts.at(IntVector{1, 0}), 4);
    EXPECT_EQ(gts.at(IntVector{2, 0}), 5);
    EXPECT_EQ(gts.at(IntVector{3, 0}), 6);
}

TEST(SetTables, InvariantReferenceSelfMerges)
{
    // b(i) under an unrolled j loop: copies are identical; the GTS
    // count must stay 1 for every unroll amount.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 32
  do i = 1, 32
    a(i, j) = b(i)
  end do
end do
)");
    UnrollSpace space(2, {0}, {4});
    Subspace inner = Subspace::coordinate(2, {1});
    NestTables tables = buildNestTables(nest, space, inner);
    const UgsTables *b_tables = nullptr;
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    for (std::size_t s = 0; s < sets.size(); ++s) {
        if (sets[s].array == "b")
            b_tables = &tables.perUgs[s];
    }
    ASSERT_NE(b_tables, nullptr);
    for (std::int64_t u = 0; u <= 4; ++u)
        EXPECT_EQ(b_tables->groupTemporal.at(IntVector{u, 0}), 1);
}

TEST(Rrs, PaperIntroExample)
{
    // a(j) = a(j) + b(i): a's UGS is innermost-invariant (one GTS ->
    // one RRS holding read and write); b is one plain load RRS.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 32
  do i = 1, 32
    a(j) = a(j) + b(i)
  end do
end do
)");
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    ASSERT_EQ(sets.size(), 2u);
    const auto &a_set = sets[0].array == "a" ? sets[0] : sets[1];
    const auto &b_set = sets[0].array == "b" ? sets[0] : sets[1];
    EXPECT_TRUE(a_set.innerInvariant());
    RrsAnalysis a_rrs = computeRegisterReuseSets(a_set);
    ASSERT_EQ(a_rrs.sets.size(), 1u);
    EXPECT_EQ(a_rrs.sets[0].members.size(), 2u);
    EXPECT_EQ(a_rrs.sets[0].registersNeeded, 1);

    RrsAnalysis b_rrs = computeRegisterReuseSets(b_set);
    ASSERT_EQ(b_rrs.sets.size(), 1u);
    EXPECT_FALSE(b_rrs.sets[0].generatorIsDef);
}

TEST(Rrs, DefSplitsReuse)
{
    // Read a(i+2,j) ... write a(i,j) ... read a(i-1,j), i innermost:
    // flow order: a(i+2) touches first, then the store a(i), then
    // a(i-1). The store splits: RRS1 = {a(i+2) read}, RRS2 = {a(i)
    // def, a(i-1) read}.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 32
  do i = 1, 32
    a(i, j) = a(i+2, j) + a(i-1, j)
  end do
end do
)");
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    ASSERT_EQ(sets.size(), 1u);
    RrsAnalysis rrs = computeRegisterReuseSets(sets[0]);
    ASSERT_EQ(rrs.sets.size(), 2u);
    // First set: the early-touching read alone.
    EXPECT_EQ(rrs.sets[0].members.size(), 1u);
    EXPECT_FALSE(rrs.sets[0].generatorIsDef);
    EXPECT_EQ(rrs.sets[0].registersNeeded, 1);
    // Second set: the def feeds the a(i-1) read one iteration later.
    EXPECT_EQ(rrs.sets[1].members.size(), 2u);
    EXPECT_TRUE(rrs.sets[1].generatorIsDef);
    EXPECT_EQ(rrs.sets[1].registersNeeded, 2);
}

TEST(Rrs, InnermostChainRegisters)
{
    // a(i,j) + a(i-1,j) + a(i-3,j) reads: one RRS spanning 3
    // iterations: 4 registers.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 32
  do i = 1, 32
    x = a(i, j) + a(i-1, j) + a(i-3, j)
  end do
end do
)");
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    RrsAnalysis rrs = computeRegisterReuseSets(sets[0]);
    ASSERT_EQ(rrs.sets.size(), 1u);
    EXPECT_EQ(rrs.sets[0].members.size(), 3u);
    EXPECT_EQ(rrs.sets[0].registersNeeded, 4);
    EXPECT_EQ(rrs.totalRegisters(), 4);
}

// --- table vs. brute-force oracle ---------------------------------------

void
expectTablesMatchBruteForce(const LoopNest &nest,
                            const UnrollSpace &space)
{
    Subspace inner =
        Subspace::coordinate(nest.depth(), {nest.depth() - 1});
    LocalityParams params;
    NestTables tables = buildNestTables(nest, space, inner);
    std::int64_t total_gts_check = 0;

    for (std::size_t i = 0; i < space.size(); ++i) {
        IntVector u = space.vectorAt(i);
        BodyCounts exact = measureUnrolledBody(nest, u, inner, params);

        std::int64_t table_gts = 0;
        std::int64_t table_gss = 0;
        for (const UgsTables &t : tables.perUgs) {
            table_gts += t.groupTemporal.at(u);
            table_gss += t.groupSpatial.at(u);
        }
        EXPECT_EQ(table_gts, exact.groupTemporal)
            << "GTS mismatch at u=" << u.toString() << " in\n"
            << nest.name();
        EXPECT_EQ(table_gss, exact.groupSpatial)
            << "GSS mismatch at u=" << u.toString() << " in\n"
            << nest.name();
        EXPECT_EQ(tables.rrsTotal.at(u), exact.memOps)
            << "VM mismatch at u=" << u.toString() << " in\n"
            << nest.name();
        EXPECT_EQ(tables.registersTotal.at(u), exact.registers)
            << "register mismatch at u=" << u.toString() << " in\n"
            << nest.name();
        total_gts_check += table_gts;
    }
    EXPECT_GT(total_gts_check, 0);
}

TEST(TableOracle, StencilLoops)
{
    const char *sources[] = {
        R"(
do j = 1, 32
  do i = 1, 32
    a(i, j) = a(i, j-1) + a(i, j-2) + b(i)
  end do
end do
)",
        R"(
do j = 1, 32
  do i = 1, 32
    a(i, j) = b(i, j) + b(i, j-1) + c(j)
  end do
end do
)",
        R"(
do j = 1, 32
  do i = 1, 32
    a(j) = a(j) + b(i) * c(i, j)
  end do
end do
)",
    };
    for (const char *source : sources) {
        LoopNest nest = parseSingleNest(source);
        UnrollSpace space(2, {0}, {4});
        expectTablesMatchBruteForce(nest, space);
    }
}

TEST(TableOracle, ThreeDeepTwoUnrolledLoops)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 16
  do j = 1, 16
    do k = 1, 16
      c(k, j) = c(k, j) + a(k, i) * b(i, j) + a(k, i-1)
    end do
  end do
end do
)");
    UnrollSpace space(3, {0, 1}, {3, 3});
    expectTablesMatchBruteForce(nest, space);
}

/**
 * Randomized oracle: stencil nests with non-negative outer offsets
 * (sign-consistent, where the tables are exact -- see DESIGN.md).
 */
class TableOracleRandom : public ::testing::TestWithParam<int>
{};

TEST_P(TableOracleRandom, MatchesBruteForce)
{
    Rng rng(7000 + GetParam());
    std::ostringstream src;
    src << "do j = 1, 32\n  do i = 1, 32\n    a(i";
    // LHS a(i + s, j): occasionally shifted.
    std::int64_t ls = rng.range(0, 1);
    if (ls != 0)
        src << "+" << ls;
    src << ", j) = ";
    int reads = static_cast<int>(rng.range(1, 4));
    for (int r = 0; r < reads; ++r) {
        if (r > 0)
            src << " + ";
        switch (rng.range(0, 2)) {
          case 0: // same-array stencil read, non-negative j offset
            src << "a(i";
            if (std::int64_t di = rng.range(-2, 2); di != 0)
                src << (di > 0 ? "+" : "") << di;
            src << ", j";
            if (std::int64_t dj = rng.range(-3, 0); dj != 0)
                src << dj;
            src << ")";
            break;
          case 1: // second-array read
            src << "b(i";
            if (std::int64_t di = rng.range(-1, 1); di != 0)
                src << (di > 0 ? "+" : "") << di;
            src << ", j";
            if (std::int64_t dj = rng.range(-2, 0); dj != 0)
                src << dj;
            src << ")";
            break;
          default: // invariant read
            src << "c(i)";
            break;
        }
    }
    src << "\n  end do\nend do\n";
    LoopNest nest = parseSingleNest(src.str());
    nest.setName(src.str());
    UnrollSpace space(2, {0}, {4});
    expectTablesMatchBruteForce(nest, space);
}

INSTANTIATE_TEST_SUITE_P(RandomStencils, TableOracleRandom,
                         ::testing::Range(0, 30));

TEST(TableOracle, MivReferencesCacheTablesExact)
{
    // afold's b(i+j): non-separable, but the general merge solver
    // still predicts the GTS/GSS counts exactly -- copies along j
    // collapse into the original diagonal stream.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 32
  do i = 1, 32
    a(i) = a(i) + b(i + j) * c(j)
  end do
end do
)");
    UnrollSpace space(2, {0}, {4});
    expectTablesMatchBruteForce(nest, space);

    Subspace inner = Subspace::coordinate(2, {1});
    NestTables tables = buildNestTables(nest, space, inner);
    const UgsTables *b_tables = nullptr;
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    for (std::size_t s = 0; s < sets.size(); ++s) {
        if (sets[s].array == "b")
            b_tables = &tables.perUgs[s];
    }
    ASSERT_NE(b_tables, nullptr);
    EXPECT_FALSE(b_tables->analyzable);
    // One diagonal stream no matter how far j unrolls.
    for (std::int64_t u = 0; u <= 4; ++u)
        EXPECT_EQ(b_tables->groupTemporal.at(IntVector{u, 0}), 1);
}

TEST(Rrs, RationalGtsSplitsByPhaseResidue)
{
    // a(2i) and a(2i+1) fall into one rational GTS (the Wolf-Lam
    // vector-space abstraction) but interleave in memory: they must
    // land in separate register-reuse sets, each needing 1 register.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 16
  do i = 1, 16
    x = a(2*i, j) + a(2*i + 1, j)
  end do
end do
)");
    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    ASSERT_EQ(sets.size(), 1u);
    RrsAnalysis rrs = computeRegisterReuseSets(sets[0]);
    ASSERT_EQ(rrs.sets.size(), 2u);
    EXPECT_EQ(rrs.sets[0].registersNeeded, 1);
    EXPECT_EQ(rrs.sets[1].registersNeeded, 1);

    // Integral-distance strided refs still chain: a(2i) and a(2i-2)
    // are one set spanning one iteration.
    LoopNest chained = parseSingleNest(R"(
do j = 1, 16
  do i = 1, 16
    x = a(2*i, j) + a(2*i - 2, j)
  end do
end do
)");
    RrsAnalysis rrs2 = computeRegisterReuseSets(
        partitionUGS(chained.accesses())[0]);
    ASSERT_EQ(rrs2.sets.size(), 1u);
    EXPECT_EQ(rrs2.sets[0].registersNeeded, 2);
}

// --- optimizer -----------------------------------------------------------

TEST(Optimizer, PaperIntroExampleOnBalancedMachine)
{
    // a(j) = a(j) + b(i): balance 1 (one load, one flop). On a machine
    // with bM = 0.5, unrolling j once halves the loop balance to 0.5.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100(); // bM = 0.5
    OptimizerConfig config;
    config.useCacheModel = false; // the paper's intro ignores cache
    UnrollDecision decision = chooseUnrollAmounts(nest, machine, config);
    EXPECT_EQ(decision.unroll, (IntVector{1, 0}));
    EXPECT_NEAR(decision.predictedBalance, 0.5, 1e-9);
    EXPECT_NEAR(decision.originalBalance, 1.0, 1e-9);
}

TEST(Optimizer, AlreadyBalancedLoopLeftAlone)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064(); // bM = 1
    OptimizerConfig config;
    config.useCacheModel = false;
    UnrollDecision decision = chooseUnrollAmounts(nest, machine, config);
    // Original balance is already 1.0 == bM.
    EXPECT_TRUE(decision.unroll.isZero());
}

TEST(Optimizer, RegisterConstraintCapsUnrolling)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100();
    machine.flopsPerCycle = 16.0; // bM = 1/16: wants deep unrolling
    OptimizerConfig config;
    config.useCacheModel = false;
    config.maxUnroll = 64;

    machine.fpRegisters = 6;
    UnrollDecision tight = chooseUnrollAmounts(nest, machine, config);
    machine.fpRegisters = 64;
    UnrollDecision roomy = chooseUnrollAmounts(nest, machine, config);
    EXPECT_LE(tight.unroll[0], roomy.unroll[0]);
    EXPECT_LE(tight.registers, 6);
    EXPECT_GT(roomy.unroll[0], tight.unroll[0]);
}

TEST(Optimizer, SafetyBoundsRespected)
{
    // Interchange-preventing dependence at distance (3, -1): unroll
    // of j must stay <= 2 no matter how attractive.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(i, j) = a(i+1, j-3) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100();
    machine.flopsPerCycle = 16.0;
    OptimizerConfig config;
    config.useCacheModel = false;
    config.maxUnroll = 16;
    UnrollDecision decision = chooseUnrollAmounts(nest, machine, config);
    EXPECT_LE(decision.unroll[0], 2);
    EXPECT_EQ(decision.safetyBounds[0], 2);
}

TEST(Optimizer, CacheModelPrefersMissReducingLoop)
{
    // Column-major a(i,j) with i innermost: walking j outer streams
    // whole columns. Reuse of a(i,j-1) carried by j cuts misses when
    // j is unrolled; the cache-aware decision must unroll j.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    b(i, j) = a(i, j) * a(i, j-1) * a(i, j-2)
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    OptimizerConfig config;
    UnrollDecision with_cache = chooseUnrollAmounts(nest, machine, config);
    EXPECT_GT(with_cache.unroll[0], 0);
    EXPECT_LT(with_cache.predictedBalance, with_cache.originalBalance);
}

TEST(Optimizer, DegenerateNests)
{
    LoopNest one_deep = parseSingleNest(R"(
do i = 1, 8
  a(i) = a(i) + 1.0
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    UnrollDecision decision = chooseUnrollAmounts(one_deep, machine);
    EXPECT_TRUE(decision.unroll.isZero());
    EXPECT_FALSE(decision.transforms());
}

TEST(Optimizer, DecisionToStringMentionsKeyNumbers)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    UnrollDecision decision =
        chooseUnrollAmounts(nest, MachineModel::hpPa7100());
    std::string text = decision.toString();
    EXPECT_NE(text.find("unroll="), std::string::npos);
    EXPECT_NE(text.find("bM="), std::string::npos);
}

TEST(Optimizer, SingleLoopConfig)
{
    // maxLoops = 1 restricts the search to the best single loop.
    LoopNest nest = parseSingleNest(R"(
do i = 1, 32
  do j = 1, 32
    do k = 1, 32
      c(k, j) = c(k, j) + a(k, i) * b(i, j)
    end do
  end do
end do
)");
    OptimizerConfig config;
    config.maxLoops = 1;
    config.maxUnroll = 3;
    UnrollDecision decision = chooseUnrollAmounts(
        nest, MachineModel::decAlpha21064(), config);
    EXPECT_LE(decision.consideredLoops.size(), 1u);
    std::size_t nonzero = 0;
    for (std::size_t k = 0; k < decision.unroll.size(); ++k)
        nonzero += decision.unroll[k] != 0;
    EXPECT_LE(nonzero, 1u);
}

TEST(Optimizer, RegisterLimitToggle)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100();
    machine.flopsPerCycle = 32.0; // wants very deep unrolling
    machine.fpRegisters = 4;
    OptimizerConfig config;
    config.useCacheModel = false;
    config.maxUnroll = 32;

    UnrollDecision constrained =
        chooseUnrollAmounts(nest, machine, config);
    config.limitRegisters = false;
    UnrollDecision unconstrained =
        chooseUnrollAmounts(nest, machine, config);
    EXPECT_LT(constrained.unroll[0], unconstrained.unroll[0]);
    EXPECT_LE(constrained.registers, 4);
}

TEST(Optimizer, LineSizeShapesCacheDecisions)
{
    // Larger lines make spatial streams cheaper (Eq. 1 divides by
    // the line length), so predicted misses must drop monotonically.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    b(i, j) = a(i, j) * a(i, j-1)
  end do
end do
)");
    double last = 1e30;
    for (std::int64_t line : {16, 32, 64, 128}) {
        MachineModel machine = MachineModel::decAlpha21064();
        machine.lineBytes = line;
        OptimizerConfig config;
        config.maxUnroll = 2;
        UnrollDecision decision =
            chooseUnrollAmounts(nest, machine, config);
        EXPECT_LT(decision.misses, last);
        last = decision.misses;
    }
}

// --- brute force agreement ------------------------------------------------

class BruteForceAgreement : public ::testing::TestWithParam<int>
{};

TEST_P(BruteForceAgreement, SameDecisionAsTables)
{
    static const char *sources[] = {
        R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)",
        R"(
do j = 1, 64
  do i = 1, 64
    a(i, j) = a(i, j-1) + a(i, j-2) + b(i)
  end do
end do
)",
        R"(
do j = 1, 32
  do k = 1, 32
    do i = 1, 32
      c(i, j) = c(i, j) + a(i, k) * b(k, j)
    end do
  end do
end do
)",
        R"(
do j = 1, 64
  do i = 1, 64
    b(i, j) = a(i, j) * a(i, j-1) * a(i, j-2)
  end do
end do
)",
    };
    LoopNest nest = parseSingleNest(sources[GetParam()]);
    for (const MachineModel &machine :
         {MachineModel::decAlpha21064(), MachineModel::hpPa7100()}) {
        OptimizerConfig config;
        config.maxUnroll = 4;
        UnrollDecision table_decision =
            chooseUnrollAmounts(nest, machine, config);
        BruteForceResult brute =
            bruteForceChooseUnroll(nest, machine, config);
        EXPECT_EQ(table_decision.unroll, brute.unroll)
            << "on " << machine.name;
        EXPECT_NEAR(table_decision.predictedBalance,
                    brute.predictedBalance, 1e-9)
            << "on " << machine.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Loops, BruteForceAgreement,
                         ::testing::Range(0, 4));

} // namespace
} // namespace ujam
