/**
 * @file
 * The parallel pipeline's determinism contract, and regression
 * pinning of the allocation-free table kernels.
 *
 * Everything parallel in ujam computes into index-addressed slots
 * and reduces them in index order, so any thread count must produce
 * byte-identical output. These tests run the pipeline, the
 * brute-force baseline and the corpus census at 1, 2 and N threads
 * and compare outputs exactly. The table-kernel regressions pin the
 * stride-walk rewrites of addBox, prefixSum and
 * computeRegisterTable against straightforward reference
 * implementations (the pre-rewrite algorithms) on the Table-2 suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>

#include "baseline/brute_force.hh"
#include "core/optimizer.hh"
#include "driver/driver.hh"
#include "ir/printer.hh"
#include "linalg/merge_solver.hh"
#include "parser/parser.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

// --- thread pool basics --------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     64,
                     [](std::size_t i) {
                         if (i == 17)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    std::atomic<int> total{0};
    parallelFor(4, 4, [&](std::size_t) {
        // Nested requests must not deadlock or clobber the outer job.
        parallelFor(8, 0, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SerialWidthRunsInCallerOrder)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- pipeline determinism ------------------------------------------------

Program
wholeSuiteProgram()
{
    Program all;
    for (const SuiteLoop &loop : testSuite()) {
        Program one = loadSuiteProgram(loop);
        for (const ArrayDecl &decl : one.arrays())
            all.declareArray(decl);
        for (const LoopNest &nest : one.nests())
            all.addNest(nest);
    }
    return all;
}

TEST(ParallelDeterminism, PipelineIdenticalAcrossThreadCounts)
{
    Program program = wholeSuiteProgram();
    MachineModel machine = MachineModel::decAlpha21064();

    PipelineConfig config;
    config.threads = 1;
    PipelineResult serial = optimizeProgram(program, machine, config);
    const std::string serial_summary = serial.summary();
    const std::string serial_text = renderProgram(serial.program);
    ASSERT_FALSE(serial_summary.empty());

    for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
        config.threads = threads;
        PipelineResult parallel =
            optimizeProgram(program, machine, config);
        EXPECT_EQ(parallel.summary(), serial_summary)
            << "threads=" << threads;
        EXPECT_EQ(renderProgram(parallel.program), serial_text)
            << "threads=" << threads;
        ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
        for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
            EXPECT_EQ(parallel.outcomes[i].decision.unroll,
                      serial.outcomes[i].decision.unroll);
        }
    }
}

TEST(ParallelDeterminism, PipelineWithAllStagesIdentical)
{
    Program program = wholeSuiteProgram();
    MachineModel machine = MachineModel::hpPa7100();

    PipelineConfig config;
    config.fuse = true;
    config.distribute = true;
    config.interchange = true;
    config.prefetch = true;
    config.threads = 1;
    PipelineResult serial = optimizeProgram(program, machine, config);

    config.threads = 0;
    PipelineResult parallel = optimizeProgram(program, machine, config);
    EXPECT_EQ(parallel.summary(), serial.summary());
    EXPECT_EQ(renderProgram(parallel.program),
              renderProgram(serial.program));
}

TEST(ParallelDeterminism, BruteForceIdenticalAcrossThreadCounts)
{
    MachineModel machine = MachineModel::decAlpha21064();
    for (const std::string name : {"mmjik", "jacobi", "dmxpy1"}) {
        Program program = loadSuiteProgram(suiteLoop(name));
        OptimizerConfig config;
        config.threads = 1;
        BruteForceResult serial = bruteForceChooseUnroll(
            program.nests().front(), machine, config);
        for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
            config.threads = threads;
            BruteForceResult parallel = bruteForceChooseUnroll(
                program.nests().front(), machine, config);
            EXPECT_EQ(parallel.unroll, serial.unroll) << name;
            EXPECT_EQ(parallel.predictedBalance,
                      serial.predictedBalance)
                << name;
            EXPECT_EQ(parallel.registers, serial.registers) << name;
            EXPECT_EQ(parallel.pointsEvaluated, serial.pointsEvaluated)
                << name;
            EXPECT_EQ(parallel.peakBodyRefs, serial.peakBodyRefs)
                << name;
            EXPECT_EQ(parallel.totalBodyRefs, serial.totalBodyRefs)
                << name;
        }
    }
}

TEST(ParallelDeterminism, CorpusIdenticalAcrossThreadCounts)
{
    CorpusConfig config;
    config.routines = 150; // subset for test speed
    config.threads = 1;
    auto serial_corpus = generateCorpus(config);
    CorpusStats serial = analyzeCorpus(serial_corpus, 1);

    for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
        config.threads = threads;
        auto corpus = generateCorpus(config);
        ASSERT_EQ(corpus.size(), serial_corpus.size());
        for (std::size_t r = 0; r < corpus.size(); ++r) {
            ASSERT_EQ(corpus[r].nests.size(),
                      serial_corpus[r].nests.size());
            for (std::size_t n = 0; n < corpus[r].nests.size(); ++n) {
                EXPECT_EQ(renderLoopNest(corpus[r].nests[n]),
                          renderLoopNest(serial_corpus[r].nests[n]));
            }
        }
        CorpusStats stats = analyzeCorpus(corpus, threads);
        EXPECT_EQ(stats.totalDeps, serial.totalDeps);
        EXPECT_EQ(stats.totalInputDeps, serial.totalInputDeps);
        EXPECT_EQ(stats.routinesWithDeps, serial.routinesWithDeps);
        EXPECT_EQ(stats.histogram, serial.histogram);
        // Bit-identical, not approximately equal: the reduction order
        // is pinned, so even the floating-point moments must match.
        EXPECT_EQ(stats.meanInputPercent, serial.meanInputPercent);
        EXPECT_EQ(stats.stddevInputPercent, serial.stddevInputPercent);
        EXPECT_EQ(stats.graphBytes, serial.graphBytes);
        EXPECT_EQ(stats.graphBytesNoInput, serial.graphBytesNoInput);
    }
}

// --- table-kernel regressions against the pre-rewrite algorithms ---------

/** The pre-rewrite addBox: test every point against the box corner. */
void
referenceAddBox(UnrollTable &table, const IntVector &from,
                std::int64_t delta)
{
    const UnrollSpace &space = table.space();
    for (std::size_t i = 0; i < space.size(); ++i) {
        if (from.allLessEq(space.vectorAt(i)))
            table.atIndex(i) += delta;
    }
}

/** The pre-rewrite prefixSum: per-point decode and re-index. */
UnrollTable
referencePrefixSum(const UnrollTable &table)
{
    const UnrollSpace &space = table.space();
    UnrollTable result = table;
    for (std::size_t d = 0; d < space.dims().size(); ++d) {
        for (std::size_t i = 0; i < space.size(); ++i) {
            IntVector u = space.vectorAt(i);
            if (u[space.dims()[d]] == 0)
                continue;
            IntVector prev = u;
            prev[space.dims()[d]] -= 1;
            result.atIndex(i) += result.atIndex(space.indexOf(prev));
        }
    }
    return result;
}

TEST(TableKernels, AddBoxMatchesReference)
{
    Rng rng(20260806);
    for (int trial = 0; trial < 50; ++trial) {
        std::size_t depth = static_cast<std::size_t>(rng.range(2, 4));
        std::vector<std::size_t> dims;
        std::vector<std::int64_t> limits;
        for (std::size_t k = 0; k + 1 < depth; ++k) {
            if (rng.chance(0.8)) {
                dims.push_back(k);
                limits.push_back(rng.range(0, 5));
            }
        }
        UnrollSpace space(depth, dims, limits);
        UnrollTable fast(space, 0), slow(space, 0);
        for (int box = 0; box < 8; ++box) {
            IntVector from(depth);
            for (std::size_t k = 0; k < depth; ++k)
                from[k] = rng.range(-2, 6);
            std::int64_t delta = rng.range(-3, 3);
            fast.addBox(from, delta);
            referenceAddBox(slow, from, delta);
        }
        for (std::size_t i = 0; i < space.size(); ++i)
            EXPECT_EQ(fast.atIndex(i), slow.atIndex(i)) << trial;
    }
}

TEST(TableKernels, PrefixSumMatchesReference)
{
    Rng rng(424242);
    for (int trial = 0; trial < 50; ++trial) {
        std::size_t depth = static_cast<std::size_t>(rng.range(2, 4));
        std::vector<std::size_t> dims;
        std::vector<std::int64_t> limits;
        for (std::size_t k = 0; k + 1 < depth; ++k) {
            if (rng.chance(0.8)) {
                dims.push_back(k);
                limits.push_back(rng.range(0, 5));
            }
        }
        UnrollSpace space(depth, dims, limits);
        UnrollTable table(space, 0);
        for (std::size_t i = 0; i < space.size(); ++i)
            table.atIndex(i) = rng.range(-10, 10);
        UnrollTable fast = table.prefixSum();
        UnrollTable slow = referencePrefixSum(table);
        for (std::size_t i = 0; i < space.size(); ++i)
            EXPECT_EQ(fast.atIndex(i), slow.atIndex(i)) << trial;
    }
}

/**
 * The pre-rewrite computeRegisterTable (the seed implementation,
 * verbatim modulo formatting): per-point re-scan of all npoints to
 * find the copy sub-box, vectorAt/indexOf per element.
 */
UnrollTable
referenceRegisterTable(const UniformlyGeneratedSet &ugs,
                       const RrsAnalysis &rrs, const UnrollSpace &space)
{
    UnrollTable table(space, 0);
    const std::size_t nsets = rrs.sets.size();
    if (nsets == 0)
        return table;

    std::vector<std::int64_t> phase_lo(nsets), phase_hi(nsets);
    for (std::size_t r = 0; r < nsets; ++r) {
        const RegisterReuseSet &set = rrs.sets[r];
        Rational lo = touchPhase(
            ugs.members[set.members.front()].ref.offset(), rrs.innerDim,
            rrs.innerCoeff);
        phase_lo[r] = lo.floor();
        phase_hi[r] = phase_lo[r] + set.registersNeeded - 1;
    }

    std::vector<IntVector> leaders(nsets);
    std::vector<std::size_t> classes(nsets);
    for (std::size_t r = 0; r < nsets; ++r) {
        leaders[r] = rrs.sets[r].leaderOffset;
        classes[r] = rrs.sets[r].mrrs;
    }

    struct MergeEdge
    {
        std::size_t absorber;
        IntVector shift;
    };
    std::vector<std::vector<MergeEdge>> edges(nsets);
    const std::vector<bool> unrollable = space.unrollableFlags();
    const RatMatrix &subscript = ugs.subscript;
    Subspace inner =
        Subspace::coordinate(space.depth(), {space.depth() - 1});

    const bool invariant = ugs.innerInvariant();
    for (std::size_t k = 0; k < nsets; ++k) {
        if (!invariant && rrs.sets[k].generatorIsDef)
            continue;
        for (std::size_t j = 0; j < nsets; ++j) {
            if (j == k || classes[j] != classes[k])
                continue;
            IntVector delta = leaders[j] - leaders[k];
            auto shift =
                solveMergeShift(subscript, delta, inner, unrollable);
            if (!shift.has_value() || shift->isZero())
                continue;
            if (shift->allLessEq(space.maxVector()))
                edges[k].push_back({j, *shift});
        }
        for (std::size_t dim : space.dims()) {
            IntVector unit(space.depth());
            unit[dim] = 1;
            RatVector image = subscript.apply(unit);
            IntVector target(subscript.rows());
            bool integral = true;
            for (std::size_t r = 0; r < image.size(); ++r) {
                if (!image[r].isInteger()) {
                    integral = false;
                    break;
                }
                target[r] = -image[r].toInteger();
            }
            if (!integral)
                continue;
            auto shift = solveMergeShift(
                subscript, target, inner,
                std::vector<bool>(space.depth(), false));
            if (shift.has_value())
                edges[k].push_back({k, unit});
        }
    }

    const std::size_t npoints = space.size();
    std::vector<std::size_t> parent(nsets * npoints);
    std::vector<std::int64_t> lo(nsets * npoints), hi(nsets * npoints);

    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (std::size_t ui = 0; ui < npoints; ++ui) {
        IntVector u = space.vectorAt(ui);
        std::vector<std::size_t> copy_index;
        for (std::size_t ci = 0; ci < npoints; ++ci) {
            if (space.vectorAt(ci).allLessEq(u))
                copy_index.push_back(ci);
        }
        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t ci : copy_index) {
                std::size_t id = r * npoints + ci;
                parent[id] = id;
                lo[id] = phase_lo[r];
                hi[id] = phase_hi[r];
            }
        }
        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t ci : copy_index) {
                IntVector up = space.vectorAt(ci);
                for (const MergeEdge &edge : edges[r]) {
                    if (!edge.shift.allLessEq(up))
                        continue;
                    IntVector origin = up - edge.shift;
                    std::size_t a = find(r * npoints + ci);
                    std::size_t b = find(edge.absorber * npoints +
                                         space.indexOf(origin));
                    if (a == b)
                        continue;
                    parent[a] = b;
                    lo[b] = std::min(lo[b], lo[a]);
                    hi[b] = std::max(hi[b], hi[a]);
                }
            }
        }
        std::int64_t registers = 0;
        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t ci : copy_index) {
                std::size_t id = r * npoints + ci;
                if (find(id) == id)
                    registers += hi[id] - lo[id] + 1;
            }
        }
        table.atIndex(ui) = registers;
    }
    return table;
}

TEST(TableKernels, RegisterTableMatchesPreRewriteOnSuite)
{
    std::size_t compared_tables = 0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests().front();
        if (nest.depth() < 2)
            continue;
        std::vector<std::size_t> dims;
        for (std::size_t k = 0; k + 1 < nest.depth() && k < 2; ++k)
            dims.push_back(k);
        UnrollSpace space(nest.depth(), dims, 6);
        for (const UniformlyGeneratedSet &ugs :
             partitionUGS(nest.accesses())) {
            if (!ugs.analyzable())
                continue;
            RrsAnalysis rrs = computeRegisterReuseSets(ugs);
            UnrollTable fast = computeRegisterTable(ugs, rrs, space);
            UnrollTable slow = referenceRegisterTable(ugs, rrs, space);
            for (std::size_t i = 0; i < space.size(); ++i)
                EXPECT_EQ(fast.atIndex(i), slow.atIndex(i))
                    << loop.name << " index " << i;
            ++compared_tables;
        }
    }
    // The suite must actually exercise the kernel.
    EXPECT_GE(compared_tables, 19u);
}

TEST(TableKernels, NestTablesUnchangedBySpaceShape)
{
    // The set-count builder (stride-walk box marking) against the
    // same tables computed through the public prefix-sum identity:
    // table values must be monotone box counts, spot-checked against
    // brute-force body measurement elsewhere (test_core). Here: the
    // three-dim odometer paths, which the 2-loop suite spaces miss.
    LoopNest nest = parseSingleNest(R"(
do k = 1, 16
  do j = 1, 16
    do i = 1, 16
      a(i, j, k) = a(i, j, k) + a(i+1, j, k) + a(i, j+1, k) + b(i, j, k)
    end do
  end do
end do
)");
    UnrollSpace space(3, {0, 1}, {3, 4});
    Subspace localized = Subspace::coordinate(3, {2});
    NestTables tables = buildNestTables(nest, space, localized);
    ASSERT_FALSE(tables.perUgs.empty());
    for (const UgsTables &t : tables.perUgs) {
        // Set counts grow monotonically with the unroll box.
        for (std::size_t i = 0; i < space.size(); ++i) {
            IntVector u = space.vectorAt(i);
            for (std::size_t d : space.dims()) {
                if (u[d] == 0)
                    continue;
                IntVector prev = u;
                prev[d] -= 1;
                EXPECT_LE(t.groupTemporal.at(prev),
                          t.groupTemporal.at(u));
                EXPECT_LE(t.groupSpatial.at(prev),
                          t.groupSpatial.at(u));
            }
        }
    }
}

} // namespace
} // namespace ujam
