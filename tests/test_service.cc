/**
 * @file
 * Tests for the ujam-serve subsystem: the cache key (what is and is
 * not semantic), the two-tier result cache, the NDJSON protocol
 * parser (including a deterministic malformed-input fuzz), batch-mode
 * determinism -- responses bit-identical across thread widths and
 * across hit/miss -- persistence across a server restart, the metrics
 * schema, and a socket smoke test with concurrent clients, deadline
 * expiry and graceful shutdown (the TSan target).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "parser/parser.hh"
#include "service/cache.hh"
#include "support/diagnostics.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "support/json.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

const char *kSource = R"(
param n = 64
real a(n, n)
real b(n, n)
! nest: sweep
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) + b(j, i)
  end do
end do
)";

Program
sourceProgram()
{
    return parseProgram(kSource, "<test>");
}

/** A fresh per-test directory under the gtest temp root. */
std::string
scratchDir(const std::string &tag)
{
    return testing::TempDir() + "ujam-serve-" + tag + "-" +
           std::to_string(getpid());
}

std::string
requestLine(const std::string &op, const std::string &id,
            const std::string &source,
            const std::string &options_json = "")
{
    JsonWriter json;
    json.beginObject();
    json.field("op", op);
    if (!id.empty())
        json.field("id", id);
    if (!source.empty())
        json.field("source", source);
    if (!options_json.empty())
        json.key("options").rawValue(options_json);
    json.endObject();
    return json.str();
}

std::string
batch(UjamServer &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    server.runBatch(in, out);
    return out.str();
}

/** @return response.status, or "<unparseable>" on a broken frame. */
std::string
responseStatus(const std::string &frame)
{
    JsonParseResult parsed = parseJson(frame);
    if (!parsed.ok() || !parsed.value->isObject())
        return "<unparseable>";
    const JsonValue *status = parsed.value->find("status");
    return status && status->isString() ? status->stringValue
                                        : "<unparseable>";
}

// --- the cache key --------------------------------------------------

TEST(ServiceCache, KeyChangesWithEverySemanticInput)
{
    Program program = sourceProgram();
    PipelineConfig config;
    MachineModel alpha = MachineModel::decAlpha21064();
    std::string base =
        computeCacheKey("optimize", program, alpha, config);

    std::vector<std::string> keys{base};
    auto vary = [&](auto mutate) {
        PipelineConfig c = config;
        MachineModel m = alpha;
        std::string op = "optimize";
        mutate(c, m, op);
        keys.push_back(computeCacheKey(op, program, m, c));
        EXPECT_NE(keys.back(), base);
    };

    vary([](PipelineConfig &, MachineModel &m, std::string &) {
        m = MachineModel::hpPa7100();
    });
    vary([](PipelineConfig &, MachineModel &m, std::string &) {
        // The preset *definition* is semantic, not just its name.
        m.fpRegisters += 1;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.lint = LintMode::Strict;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.lintOptions.maxUnroll += 1;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.optimizer.maxUnroll += 1;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.optimizer.depRangePrune = false;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.prefetch = true;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.prefetchConfig.distanceIters += 1;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.safety.oracle = true;
    });
    vary([](PipelineConfig &c, MachineModel &, std::string &) {
        c.safety.faults.push_back(
            parseFaultSpecs("unroll:0:throw").front());
    });
    vary([](PipelineConfig &, MachineModel &, std::string &op) {
        op = "lint";
    });

    // All distinct pairwise, not merely distinct from the base.
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());

    // The analysis engine's version is part of the hashed text, so a
    // dataflow release invalidates cached findings automatically.
    std::string text = canonicalRequestText("lint", program, alpha,
                                            config, {});
    EXPECT_NE(text.find("analysis.version = "), std::string::npos);
    EXPECT_NE(text.find("optimizer.depRangePrune = "),
              std::string::npos);
}

TEST(ServiceCache, ThreadCountExcluded)
{
    Program program = sourceProgram();
    MachineModel alpha = MachineModel::decAlpha21064();
    PipelineConfig config;
    std::string base =
        computeCacheKey("optimize", program, alpha, config);

    for (std::size_t threads : {std::size_t(1), std::size_t(8)}) {
        PipelineConfig c = config;
        c.threads = threads;
        c.optimizer.threads = threads;
        EXPECT_EQ(computeCacheKey("optimize", program, alpha, c),
                  base);
    }
}

TEST(ServiceCache, FormattingInsensitive)
{
    // Same nest, different whitespace and comments: the key hashes
    // the parsed IR, not the source bytes.
    const char *reformatted = R"(
param n = 64


real a(n, n)
real b(n, n)
! nest: sweep
! a scribble that changes nothing
do j = 1, n
    do i = 1, n
      a(i, j)   =   a(i, j) + b(j, i)
    end do
end do
)";
    MachineModel alpha = MachineModel::decAlpha21064();
    PipelineConfig config;
    EXPECT_EQ(computeCacheKey("optimize", sourceProgram(), alpha,
                              config),
              computeCacheKey("optimize",
                              parseProgram(reformatted, "<other>"),
                              alpha, config));
}

// --- the result cache -----------------------------------------------

TEST(ResultCacheTier, LruEvictsTheColdestEntry)
{
    ResultCache cache(2);
    cache.put("k1", "v1");
    cache.put("k2", "v2");
    ASSERT_TRUE(cache.get("k1")); // k1 now warmer than k2
    cache.put("k3", "v3");        // evicts k2

    EXPECT_EQ(cache.memoryEntries(), 2u);
    EXPECT_TRUE(cache.get("k1"));
    EXPECT_FALSE(cache.get("k2"));
    EXPECT_EQ(cache.get("k3").value(), "v3");
}

TEST(ResultCacheTier, DiskSurvivesAndPromotes)
{
    std::string dir = scratchDir("tier");
    {
        ResultCache cache(4, dir);
        cache.put("deadbeef", "payload");
    }
    ResultCache reopened(4, dir);
    CacheTier tier = CacheTier::Miss;
    std::optional<std::string> hit = reopened.get("deadbeef", &tier);
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, "payload");
    EXPECT_EQ(tier, CacheTier::Disk);

    // The disk hit was promoted into the memory tier.
    reopened.get("deadbeef", &tier);
    EXPECT_EQ(tier, CacheTier::Memory);
}

// --- protocol parsing -----------------------------------------------

TEST(ServiceProtocol, RejectsMalformedRequests)
{
    const char *bad[] = {
        "",
        "not json",
        "[1, 2]",
        "{}",
        "{\"op\": 7}",
        "{\"op\": \"bogus\"}",
        "{\"op\": \"optimize\"}",                    // missing source
        "{\"op\": \"optimize\", \"source\": 3}",
        "{\"op\": \"ping\", \"id\": 5}",
        "{\"op\": \"ping\", \"surprise\": true}",
        "{\"op\": \"optimize\", \"source\": \"x\","
        " \"machine\": \"cray\"}",
        "{\"op\": \"optimize\", \"source\": \"x\","
        " \"options\": {\"max_unroll\": 0}}",
        "{\"op\": \"optimize\", \"source\": \"x\","
        " \"options\": {\"frobnicate\": 1}}",
        "{\"op\": \"optimize\", \"source\": \"x\","
        " \"deadline_ms\": -1}",
    };
    for (const char *line : bad) {
        RequestParse parsed = parseRequest(line);
        EXPECT_FALSE(parsed.ok()) << line;
        EXPECT_FALSE(parsed.error.empty()) << line;
    }
}

TEST(ServiceProtocol, AcceptsTheDocumentedOptions)
{
    RequestParse parsed = parseRequest(
        requestLine("optimize", "r1", kSource,
                    R"({"max_unroll": 6, "lint": "strict",
                        "prefetch": true, "prefetch_distance": 4,
                        "oracle": true, "threads": 3})"));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const ServiceRequest &request = *parsed.request;
    EXPECT_EQ(request.id, "r1");
    EXPECT_EQ(request.config.optimizer.maxUnroll, 6);
    EXPECT_EQ(request.config.lintOptions.maxUnroll, 6);
    EXPECT_EQ(request.config.lint, LintMode::Strict);
    EXPECT_TRUE(request.config.prefetch);
    EXPECT_EQ(request.config.prefetchConfig.distanceIters, 4);
    EXPECT_TRUE(request.config.safety.oracle);
    EXPECT_EQ(request.config.threads, 3u);
}

// --- batch mode -----------------------------------------------------

TEST(ServiceBatch, HitIsByteIdenticalToMiss)
{
    UjamServer server({});
    std::string line = requestLine("optimize", "same", kSource);
    std::string first = batch(server, line + "\n");
    std::string second = batch(server, line + "\n");

    EXPECT_EQ(first, second);
    EXPECT_EQ(server.metrics().cacheMisses.get(), 1u);
    EXPECT_EQ(server.metrics().cacheMemoryHits.get(), 1u);
}

TEST(ServiceBatch, LintHitIsByteIdenticalToMiss)
{
    // The lint op rides the same content-addressed cache as
    // optimize/codegen: the second identical request must be a memory
    // hit whose response frame is byte-identical to the computed one.
    UjamServer server({});
    std::string line = requestLine("lint", "lint-same", kSource,
                                   R"({"lint": "warn"})");
    std::string first = batch(server, line + "\n");
    std::string second = batch(server, line + "\n");

    EXPECT_EQ(first, second);
    EXPECT_EQ(server.metrics().cacheMisses.get(), 1u);
    EXPECT_EQ(server.metrics().cacheMemoryHits.get(), 1u);
    EXPECT_EQ(server.metrics().cacheStores.get(), 1u);
    // A different op over the same program must not collide.
    std::string other = batch(
        server, requestLine("optimize", "lint-same", kSource) + "\n");
    EXPECT_EQ(server.metrics().cacheMisses.get(), 2u);
}

TEST(ServiceBatch, OutputInvariantAcrossThreadWidths)
{
    std::string input;
    for (const SuiteLoop &loop : testSuite()) {
        if (loop.number > 6)
            break;
        input += requestLine("optimize", loop.name, loop.source) +
                 "\n";
        input += requestLine("lint", "lint-" + loop.name, loop.source,
                             R"({"lint": "warn"})") +
                 "\n";
    }

    std::string reference;
    for (std::size_t width : {std::size_t(1), std::size_t(2),
                              std::size_t(8)}) {
        ServerConfig config;
        config.threads = width;
        UjamServer server(std::move(config));
        std::string output = batch(server, input);
        if (reference.empty())
            reference = output;
        else
            EXPECT_EQ(output, reference) << "width " << width;
    }
}

TEST(ServiceBatch, PersistentCacheSurvivesRestart)
{
    std::string dir = scratchDir("restart");
    std::string line = requestLine("optimize", "r", kSource);

    std::string cold;
    {
        ServerConfig config;
        config.cacheDir = dir;
        UjamServer server(std::move(config));
        cold = batch(server, line + "\n");
        EXPECT_EQ(server.metrics().cacheStores.get(), 1u);
    }

    ServerConfig config;
    config.cacheDir = dir;
    UjamServer restarted(std::move(config));
    std::string warm = batch(restarted, line + "\n");

    EXPECT_EQ(warm, cold);
    EXPECT_EQ(restarted.metrics().cacheDiskHits.get(), 1u);
    EXPECT_EQ(restarted.metrics().cacheMisses.get(), 0u);
}

TEST(ServiceBatch, NoCacheBypassesBothTiers)
{
    UjamServer server({});
    std::string line =
        "{\"op\": \"optimize\", \"no_cache\": true, \"source\": " +
        jsonQuote(kSource) + "}";
    std::string first = batch(server, line + "\n");
    std::string second = batch(server, line + "\n");

    EXPECT_EQ(first, second); // still deterministic, just uncached
    EXPECT_EQ(server.metrics().cacheBypassed.get(), 2u);
    EXPECT_EQ(server.metrics().cacheStores.get(), 0u);
}

TEST(ServiceBatch, ZeroDeadlineTimesOutDeterministically)
{
    UjamServer server({});
    std::string response = server.processLine(
        "{\"op\": \"optimize\", \"deadline_ms\": 0, \"source\": " +
        jsonQuote(kSource) + "}");
    EXPECT_EQ(responseStatus(response), "timeout");
    EXPECT_EQ(server.metrics().requestsTimeout.get(), 1u);
}

// --- metrics --------------------------------------------------------

TEST(ServiceMetricsDoc, StableSchemaAndCumulativeBuckets)
{
    UjamServer server({});
    batch(server, requestLine("optimize", "m", kSource) + "\n");

    JsonParseResult parsed = parseJson(server.metricsSnapshot());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue &root = *parsed.value;
    for (const char *section :
         {"requests", "cache", "pipeline", "latency_us"}) {
        const JsonValue *value = root.find(section);
        ASSERT_NE(value, nullptr) << section;
        EXPECT_TRUE(value->isObject()) << section;
    }
    EXPECT_EQ(root.find("requests")->find("total")->asInt(), 1);
    EXPECT_EQ(root.find("pipeline")->find("nests_optimized")->asInt(),
              1);

    // Each histogram's cumulative "le" counts must be non-decreasing
    // and end at the observation count.
    const JsonValue *stage = root.find("latency_us")->find("total");
    ASSERT_NE(stage, nullptr);
    const JsonValue *buckets = stage->find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    std::int64_t previous = 0;
    for (const JsonValue &bucket : buckets->elements) {
        std::int64_t count = *bucket.find("count")->asInt();
        EXPECT_GE(count, previous);
        previous = count;
    }
    EXPECT_EQ(previous, *stage->find("count")->asInt());
}

// --- protocol fuzz (ctest -L fuzz-fast) -----------------------------

TEST(ServiceFuzz, BatchParserSurvivesMalformedFrames)
{
    UjamServer server({});
    std::string seed_line = requestLine("optimize", "fuzz", kSource);
    Rng rng(20260806);

    for (int i = 0; i < 400; ++i) {
        std::string line = seed_line;
        switch (rng.range(0, 3)) {
          case 0: // flip random bytes
            for (int n = rng.range(1, 8); n > 0; --n) {
                std::size_t at = rng.range(0, line.size() - 1);
                line[at] = static_cast<char>(rng.range(1, 255));
            }
            break;
          case 1: // truncate
            line.resize(rng.range(0, line.size() - 1));
            break;
          case 2: // splice random JSON-ish fragments
            line.insert(rng.range(0, line.size() - 1),
                        "{\"\\u0000\":[1e309,{}]}");
            break;
          case 3: { // pure garbage
            line.clear();
            for (int n = rng.range(1, 64); n > 0; --n)
                line.push_back(static_cast<char>(rng.range(0, 255)));
            break;
          }
        }
        if (line.empty() || line.find('\n') != std::string::npos)
            continue;
        // Whatever came in, a well-formed response frame comes out.
        std::string response = server.processLine(line);
        EXPECT_NE(responseStatus(response), "<unparseable>")
            << "input: " << line;
    }

    // The split counters cover every rejected *frame*; requestsError
    // additionally counts well-formed frames whose DSL source fails
    // to parse, so the sum is a lower bound, never an overcount.
    const ServiceMetrics &metrics = server.metrics();
    EXPECT_GE(metrics.requestsError.get(),
              metrics.requestsMalformed.get() +
                  metrics.requestsBadOp.get() +
                  metrics.requestsBadField.get());
    EXPECT_GT(metrics.requestsMalformed.get(), 0u);
}

// --- socket mode (the TSan smoke) -----------------------------------

TEST(ServiceSocket, ConcurrentClientsDeadlinesAndShutdown)
{
    ServerConfig config;
    config.socketPath = "/tmp/ujam-serve-test-" +
                        std::to_string(getpid()) + ".sock";
    config.threads = 4;
    UjamServer server(std::move(config));
    server.start();
    const std::string socket_path = "/tmp/ujam-serve-test-" +
                                    std::to_string(getpid()) +
                                    ".sock";

    std::string optimize_line = requestLine("optimize", "c", kSource);
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            ServeClient client;
            if (!client.connect(socket_path)) {
                failures.fetch_add(1);
                return;
            }
            for (int round = 0; round < 3; ++round) {
                if (responseStatus(client.request(
                        "{\"op\": \"ping\"}")) != "ok")
                    failures.fetch_add(1);
                if (responseStatus(client.request(optimize_line)) !=
                    "ok")
                    failures.fetch_add(1);
            }
            if (c == 0) {
                // One expired deadline: a deterministic timeout.
                std::string frame =
                    "{\"op\": \"optimize\", \"deadline_ms\": 0, "
                    "\"source\": " +
                    jsonQuote(kSource) + "}";
                if (responseStatus(client.request(frame)) !=
                    "timeout")
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(failures.load(), 0);

    // Graceful shutdown by request, not by destructor.
    ServeClient closer;
    ASSERT_TRUE(closer.connect(socket_path));
    EXPECT_EQ(responseStatus(closer.request("{\"op\": \"shutdown\"}")),
              "ok");
    server.waitForShutdown();
    server.stop();
    EXPECT_GT(server.metrics().cacheMemoryHits.get(), 0u);
}

// --- sharded, corruption-tolerant disk tier -------------------------

TEST(ResultCacheShard, RoutesByKeyPrefixAndPersists)
{
    std::string dir = scratchDir("shards");
    ResultCacheConfig config;
    config.memoryCapacity = 2;
    config.diskDir = dir;
    config.shards = 4;

    std::vector<std::string> keys{"00aa", "40bb", "80cc", "c0dd"};
    {
        ResultCache cache(config);
        for (const std::string &key : keys) {
            EXPECT_EQ(cache.shardOf(key),
                      static_cast<std::size_t>(
                          std::stoul(key.substr(0, 2), nullptr, 16) %
                          4));
            cache.put(key, "value-" + key);
            EXPECT_NE(cache.diskPath(key).find("shard-"),
                      std::string::npos);
            EXPECT_TRUE(
                std::filesystem::exists(cache.diskPath(key)));
        }
    }

    // A fresh cache (cold memory tier) must serve every shard.
    ResultCache reopened(config);
    for (const std::string &key : keys) {
        CacheTier tier = CacheTier::Miss;
        auto hit = reopened.get(key, &tier);
        ASSERT_TRUE(hit.has_value()) << key;
        EXPECT_EQ(*hit, "value-" + key);
        EXPECT_EQ(tier, CacheTier::Disk);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheShard, TruncatedEntryQuarantinedAsMiss)
{
    std::string dir = scratchDir("truncate");
    ResultCacheConfig config;
    config.diskDir = dir;
    config.shards = 2;
    ResultCache cache(config);
    cache.put("00feed", "a result worth keeping around");

    std::string path = cache.diskPath("00feed");
    ASSERT_TRUE(std::filesystem::exists(path));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    // Cold read path: a fresh cache so the memory tier cannot mask
    // the damage.
    ResultCache reopened(config);
    CacheTier tier = CacheTier::Memory;
    EXPECT_FALSE(reopened.get("00feed", &tier).has_value());
    EXPECT_EQ(tier, CacheTier::Miss);
    EXPECT_EQ(reopened.diskQuarantined(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path));

    // The damaged file is kept for postmortem, not served.
    std::string shard_dir =
        std::filesystem::path(path).parent_path().parent_path();
    EXPECT_TRUE(
        std::filesystem::exists(shard_dir + "/quarantine/00feed"));

    // A re-store heals the entry byte-identically.
    reopened.put("00feed", "a result worth keeping around");
    ResultCache healed(config);
    auto hit = healed.get("00feed");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "a result worth keeping around");
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheShard, BitFlipQuarantinedAsMiss)
{
    std::string dir = scratchDir("bitflip");
    ResultCacheConfig config;
    config.diskDir = dir;
    ResultCache cache(config);
    cache.put("00cafe", "payload protected by sha-256");

    std::string path = cache.diskPath("00cafe");
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file.is_open());
        file.seekp(-3, std::ios::end);
        char byte = 0;
        file.seekg(file.tellp());
        file.get(byte);
        file.seekp(-1, std::ios::cur);
        file.put(static_cast<char>(byte ^ 0x01));
    }

    ResultCache reopened(config);
    EXPECT_FALSE(reopened.get("00cafe").has_value());
    EXPECT_EQ(reopened.diskQuarantined(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheShard, PerShardBudgetEvictsOldestEntries)
{
    std::string dir = scratchDir("budget");
    ResultCacheConfig config;
    config.memoryCapacity = 1;
    config.diskDir = dir;
    config.shards = 2;
    config.maxDiskBytes = 2048; // 1024 per shard
    ResultCache cache(config);

    // ~16 entries of ~200 bytes into each shard: far past budget.
    std::string value(200, 'x');
    for (int i = 0; i < 16; ++i) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "%02x", i * 2);
        cache.put(std::string(hex) + "even", value); // shard 0
        std::snprintf(hex, sizeof hex, "%02x", i * 2 + 1);
        cache.put(std::string(hex) + "odd", value); // shard 1
    }
    EXPECT_GT(cache.diskEvictions(), 0u);

    // Each shard must respect its own slice of the budget.
    for (std::size_t shard = 0; shard < 2; ++shard) {
        std::uint64_t bytes = 0;
        std::string shard_dir =
            dir + "/shard-0" + std::to_string(shard);
        for (auto &entry :
             std::filesystem::recursive_directory_iterator(
                 shard_dir)) {
            if (entry.is_regular_file())
                bytes += entry.file_size();
        }
        EXPECT_LE(bytes, 1024u) << "shard " << shard;
    }
    std::filesystem::remove_all(dir);
}

// --- process-level fault specs --------------------------------------

TEST(ProcessFaultSpecs, GrammarRoutesSplitsAndRejects)
{
    MixedFaultSpecs mixed = parseMixedFaultSpecs(
        "unroll:0:throw, worker_crash:2:1, slow_response:1:50, "
        "cache_corrupt, worker_hang:3");
    ASSERT_EQ(mixed.pipeline.size(), 1u);
    ASSERT_EQ(mixed.process.size(), 4u);

    EXPECT_EQ(mixed.process[0].kind, ProcessFaultKind::WorkerCrash);
    EXPECT_EQ(mixed.process[0].ordinal, std::uint64_t{2});
    EXPECT_EQ(mixed.process[0].arg, std::int64_t{1});

    EXPECT_EQ(mixed.process[1].kind, ProcessFaultKind::SlowResponse);
    EXPECT_EQ(mixed.process[1].arg, std::int64_t{50});

    // A bare kind fires on every request.
    EXPECT_EQ(mixed.process[2].kind, ProcessFaultKind::CacheCorrupt);
    EXPECT_FALSE(mixed.process[2].ordinal.has_value());
    EXPECT_TRUE(mixed.process[2].matches(1));
    EXPECT_TRUE(mixed.process[2].matches(999));

    EXPECT_EQ(mixed.process[3].kind, ProcessFaultKind::WorkerHang);
    EXPECT_TRUE(mixed.process[3].matches(3));
    EXPECT_FALSE(mixed.process[3].matches(4));

    // Ordinals are 1-based; 0 is a spec error, not "never".
    EXPECT_THROW(parseMixedFaultSpecs("worker_crash:0"), FatalError);
    // Pipeline specs are not valid where only process specs belong.
    EXPECT_THROW(parseProcessFaultSpecs("unroll:0:throw"), FatalError);

    ::setenv("UJAM_FAULT", "worker_crash:7:2,unroll:0:throw", 1);
    std::vector<ProcessFaultSpec> process = processFaultSpecsFromEnv();
    std::vector<FaultSpec> pipeline = faultSpecsFromEnv();
    ::unsetenv("UJAM_FAULT");
    ASSERT_EQ(process.size(), 1u);
    EXPECT_EQ(process[0].toString(), "worker_crash:7:2");
    // The pipeline half never sees process specs (cache-key purity).
    ASSERT_EQ(pipeline.size(), 1u);
}

TEST(ServiceFault, SlowResponseDelaysTheMatchingRequest)
{
    ServerConfig config;
    config.workerFaults = std::vector<ProcessFaultSpec>{
        parseProcessFaultSpecs("slow_response:1:150").front()};
    UjamServer server(std::move(config));

    auto start = std::chrono::steady_clock::now();
    std::string first =
        server.processLine(requestLine("optimize", "slow", kSource));
    auto slow_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(responseStatus(first), "ok");
    EXPECT_GE(slow_ms, 150);

    // Only the first request matches the ordinal.
    start = std::chrono::steady_clock::now();
    server.processLine(requestLine("ping", "", ""));
    std::string second = server.processLine(
        requestLine("optimize", "fast", kSource, "{\"max_unroll\": 2}"));
    auto fast_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(responseStatus(second), "ok");
    EXPECT_LT(fast_ms, 150);
}

TEST(ServiceFault, CacheCorruptFaultIsDetectedOnRead)
{
    std::string dir = scratchDir("corrupt-fault");
    std::string line = requestLine("optimize", "cc", kSource);

    std::string expected;
    {
        ServerConfig clean;
        clean.cacheDir = dir + "-reference";
        UjamServer server(std::move(clean));
        expected = server.processLine(line);
    }

    {
        ServerConfig config;
        config.cacheDir = dir;
        config.workerFaults = std::vector<ProcessFaultSpec>{
            parseProcessFaultSpecs("cache_corrupt:1").front()};
        UjamServer server(std::move(config));
        // Served from the pipeline; the *store* is then corrupted.
        EXPECT_EQ(server.processLine(line), expected);
    }

    // A fresh server (cold memory tier) must detect the corruption,
    // quarantine the entry and recompute byte-identically.
    ServerConfig config;
    config.cacheDir = dir;
    config.workerFaults = std::vector<ProcessFaultSpec>{};
    UjamServer server(std::move(config));
    EXPECT_EQ(server.processLine(line), expected);
    EXPECT_EQ(server.cache().diskQuarantined(), 1u);
    EXPECT_EQ(server.metrics().cacheMisses.get(), 1u);

    // And the healed entry now disk-hits.
    ServerConfig healed;
    healed.cacheDir = dir;
    healed.workerFaults = std::vector<ProcessFaultSpec>{};
    UjamServer after(std::move(healed));
    EXPECT_EQ(after.processLine(line), expected);
    EXPECT_EQ(after.metrics().cacheDiskHits.get(), 1u);
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir + "-reference");
}

// --- degraded (cache-only) mode -------------------------------------

TEST(ServiceDegraded, ServesHitsRejectsMisses)
{
    std::string dir = scratchDir("degraded");
    std::string line = requestLine("optimize", "d", kSource);

    std::string expected;
    {
        ServerConfig warm;
        warm.cacheDir = dir;
        UjamServer server(std::move(warm));
        expected = server.processLine(line);
        ASSERT_EQ(responseStatus(expected), "ok");
    }

    ServerConfig config;
    config.cacheDir = dir;
    config.degraded = true;
    UjamServer server(std::move(config));

    // Cached work is served byte-identically...
    EXPECT_EQ(server.processLine(line), expected);
    // ...misses are refused, not computed...
    std::string miss = server.processLine(
        requestLine("optimize", "d2", kSource, "{\"max_unroll\": 2}"));
    EXPECT_EQ(responseStatus(miss), "degraded");
    EXPECT_EQ(server.metrics().requestsDegraded.get(), 1u);
    EXPECT_EQ(server.metrics().nestsOptimized.get(), 0u);
    // ...and non-pipeline ops still answer.
    EXPECT_EQ(responseStatus(server.processLine("{\"op\": \"ping\"}")),
              "ok");

    // Degraded mode probes the cache even for no_cache requests:
    // refusing a hit it already holds would only hurt the client.
    std::string no_cache =
        "{\"op\": \"optimize\", \"id\": \"d\", \"no_cache\": true, "
        "\"source\": " +
        jsonQuote(kSource) + "}";
    EXPECT_EQ(responseStatus(server.processLine(no_cache)), "ok");
    std::filesystem::remove_all(dir);
}

// --- idle-connection timeout ----------------------------------------

TEST(ServiceSocket, IdleConnectionsAreReaped)
{
    ServerConfig config;
    config.socketPath = "/tmp/ujam-serve-idle-" +
                        std::to_string(getpid()) + ".sock";
    config.threads = 1;
    config.idleTimeoutMs = 100;
    std::string socket_path = config.socketPath;
    UjamServer server(std::move(config));
    server.start();

    ServeClient idler;
    ASSERT_TRUE(idler.connect(socket_path));
    // Say nothing; the server must reclaim the worker slot.
    auto give_up = std::chrono::steady_clock::now() +
                   std::chrono::seconds(5);
    while (server.metrics().connectionsIdleClosed.get() == 0 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.metrics().connectionsIdleClosed.get(), 1u);

    // An active client on the same server is untouched.
    ServeClient active;
    ASSERT_TRUE(active.connect(socket_path));
    EXPECT_EQ(responseStatus(active.request("{\"op\": \"ping\"}")),
              "ok");
    server.stop();
}

// --- extended metrics schema ----------------------------------------

TEST(ServiceMetricsDoc, ShardAndSupervisorSections)
{
    ServerConfig config;
    config.cacheShards = 4;
    config.supervisorStats = [] {
        SupervisorStats stats;
        stats.workersConfigured = 2;
        stats.workersAlive = 1;
        stats.restartsTotal = 3;
        stats.crashesTotal = 4;
        stats.degraded = true;
        stats.degradedTransitions = 1;
        stats.forcedKills = 2;
        stats.workers = {WorkerStats{3, 4, false, 0, 9},
                         WorkerStats{0, 0, true, 0, 0}};
        return stats;
    };
    UjamServer server(std::move(config));

    JsonParseResult parsed = parseJson(server.metricsSnapshot());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue &root = *parsed.value;

    const JsonValue *cache = root.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(*cache->find("shard_count")->asInt(), 4);
    EXPECT_EQ(*cache->find("disk_quarantined")->asInt(), 0);
    const JsonValue *shards = cache->find("shards");
    ASSERT_TRUE(shards && shards->isArray());
    ASSERT_EQ(shards->elements.size(), 4u);
    for (const JsonValue &shard : shards->elements)
        for (const char *key : {"disk_hits", "disk_stores",
                                "disk_evictions", "disk_quarantined"})
            ASSERT_NE(shard.find(key), nullptr) << key;

    const JsonValue *supervisor = root.find("supervisor");
    ASSERT_NE(supervisor, nullptr);
    EXPECT_EQ(*supervisor->find("workers_configured")->asInt(), 2);
    EXPECT_EQ(*supervisor->find("workers_alive")->asInt(), 1);
    EXPECT_EQ(*supervisor->find("restarts_total")->asInt(), 3);
    EXPECT_EQ(*supervisor->find("crashes_total")->asInt(), 4);
    EXPECT_EQ(*supervisor->find("forced_kills")->asInt(), 2);
    const JsonValue *workers = supervisor->find("workers");
    ASSERT_TRUE(workers && workers->isArray());
    ASSERT_EQ(workers->elements.size(), 2u);
    EXPECT_EQ(*workers->elements[0].find("last_signal")->asInt(), 9);

    // Single-process servers must not grow a supervisor section.
    UjamServer plain({});
    JsonParseResult without = parseJson(plain.metricsSnapshot());
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(without.value->find("supervisor"), nullptr);
}

} // namespace
} // namespace ujam
