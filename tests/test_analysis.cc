/**
 * @file
 * The static analyzer: rule catalog, renderers (golden files), the
 * lint-aware pipeline, and the accuracy contract against the
 * differential oracle -- every nest the safety net rolls back must
 * already carry an error finding, purely statically.
 */

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/findings_baseline.hh"
#include "analysis/linter.hh"
#include "analysis/render.hh"
#include "driver/driver.hh"
#include "ir/builder.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "support/diagnostics.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace
{

using namespace ujam;

MachineModel
alpha()
{
    return MachineModel::decAlpha21064();
}

LintResult
lintSource(const std::string &source,
           const std::string &name = "<input>",
           const LintOptions &options = {})
{
    return lintProgram(parseProgram(source, name), alpha(), options);
}

/** All findings for one rule id. */
std::vector<LintDiagnostic>
findingsFor(const LintResult &result, const std::string &rule)
{
    std::vector<LintDiagnostic> out;
    for (const LintDiagnostic &diag : result.diagnostics) {
        if (diag.ruleId == rule)
            out.push_back(diag);
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

const std::string kGoldenDir = UJAM_TEST_GOLDEN_DIR;

// --- rule catalog stability -----------------------------------------

TEST(LintCatalog, RuleIdsAreStable)
{
    // Appending new rules is fine; renumbering or dropping one breaks
    // every consumer of the SARIF output. This list is the contract.
    std::vector<std::string> expected = {
        "UJ001", "UJ002", "UJ003", "UJ004", "UJ005", "UJ006", "UJ007",
        "UJ008", "UJ009", "UJ010", "UJ011", "UJ012", "UJ013", "UJ014",
        "UJ015", "UJ016", "UJ017", "UJ018", "UJ019", "UJ020", "UJ021",
        "UJ022",
    };
    ASSERT_GE(lintRules().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(lintRules()[i]->id(), expected[i]);
        EXPECT_STRNE(lintRules()[i]->summary(), "");
        // --explain renders details(); every rule must have a story.
        EXPECT_STRNE(lintRules()[i]->details(), "");
    }
}

// --- individual rules -----------------------------------------------

TEST(LintRules, PerfectNestViolation)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    pre t = a(i, 1)\n"
                                   "    a(i, j) = a(i, j) + t\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ001");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_EQ(findings[0].loc.line, 5);
}

TEST(LintRules, ShallowNestNote)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n)\n"
                                   "do i = 1, n\n"
                                   "  a(i) = a(i) + 1.0\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ002");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_EQ(result.errorCount(), 0u);
}

TEST(LintRules, UndeclaredArrayAndRankMismatch)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = c(i, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ003");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("undeclared array 'c'"),
              std::string::npos);
    EXPECT_EQ(findings[0].loc.line, 5);
    EXPECT_TRUE(result.nestHasErrors(0));
}

TEST(LintRules, UnevaluableBound)
{
    // Builder-made program: loop bound over a parameter that has no
    // default. The parser cannot produce this; the API can.
    Program program;
    program.declareArray({"a", {Bound::constant(8), Bound::constant(8)}});
    LoopNest nest = NestBuilder()
                        .name("unevaluable")
                        .loop("i", 1, 8)
                        .loop("j", 1, 8)
                        .assign("a", {idx("i"), idx("j")}, lit(0.0))
                        .build();
    nest.loop(0).upper = Bound::param("m");
    program.addNest(nest);

    LintResult result = lintProgram(program, alpha(), {});
    auto findings = findingsFor(result, "UJ004");
    ASSERT_GE(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_NE(findings[0].message.find("does not evaluate"),
              std::string::npos);
}

TEST(LintRules, NonRectangularBound)
{
    Program program;
    program.declareArray({"a", {Bound::constant(8), Bound::constant(8)}});
    LoopNest nest = NestBuilder()
                        .name("triangular")
                        .loop("i", 1, 8)
                        .loop("j", 1, 8)
                        .assign("a", {idx("i"), idx("j")}, lit(0.0))
                        .build();
    nest.loop(1).upper = Bound::param("i"); // triangular: j <= i
    program.addNest(nest);

    LintResult result = lintProgram(program, alpha(), {});
    auto findings = findingsFor(result, "UJ005");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("rectangular"), std::string::npos);
}

TEST(LintRules, ZeroTripWarning)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = n, 1\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(i, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ006");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_EQ(findings[0].loc.line, 3);
}

TEST(LintRules, OverflowRiskWarning)
{
    Program program;
    program.declareArray({"a", {Bound::constant(8)}});
    LoopNest nest = NestBuilder()
                        .name("huge")
                        .loop("i", 1, 8)
                        .assign("a", {idx("i")}, lit(0.0))
                        .build();
    nest.loop(0).upper = Bound::constant(std::int64_t(1) << 33);
    program.addNest(nest);

    LintResult result = lintProgram(program, alpha(), {});
    auto findings = findingsFor(result, "UJ007");
    ASSERT_GE(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
}

TEST(LintRules, CoupledSubscriptsWarning)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i + j, j) = a(i + j, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ008");
    // One finding per distinct reference shape, not per occurrence.
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("coupled"), std::string::npos);
}

TEST(LintRules, ReachViolation)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "real b(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    b(i, j) = a(i + 20, j)\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ009");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_EQ(findings[0].loc.line, 6);
    EXPECT_NE(findings[0].message.find("outside extent"),
              std::string::npos);
}

TEST(LintRules, CarriedScalarError)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "real b(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    b(i, j) = s + 1.0\n"
                                   "    s = a(i, j) * 2.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ010");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_EQ(findings[0].loc.line, 6);
}

TEST(LintRules, ScalarReductionIsANoteNotAnError)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    s = s + a(i, j)\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ010");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("reduction"), std::string::npos);
    EXPECT_EQ(result.errorCount(), 0u);
}

TEST(LintRules, BlockedUnrollExplanation)
{
    // Flow dependence b(i,j) -> b(i-1,j+1): carried by i at distance
    // 1 with a backward inner component, so i is not unrollable.
    LintResult result = lintSource("param n = 8\n"
                                   "real b(n, n)\n"
                                   "do i = 2, n\n"
                                   "  do j = 1, n\n"
                                   "    b(i, j) = b(i - 1, j + 1) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ011");
    ASSERT_GE(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("loop 'i'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("flow"), std::string::npos);
}

TEST(LintRules, CrossSetWriteWarning)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(j, i) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ012");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("uniformly generated"),
              std::string::npos);
}

TEST(LintRules, InductionVariableMisuse)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = i + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ013");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_NE(findings[0].message.find("induction variable"),
              std::string::npos);
}

TEST(LintRules, RegisterPressureNote)
{
    // The "shal" suite workload needs 84 registers at its
    // balance-optimal unroll on a 32-register machine; the rule must
    // name both the wish and the settlement.
    Program program = loadSuiteProgram(suiteLoop("shal"));
    LintResult result = lintProgram(program, alpha(), {});
    auto findings = findingsFor(result, "UJ014");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("registers"), std::string::npos);
    EXPECT_NE(findings[0].message.find("settles"), std::string::npos);
}

// --- dataflow-powered rules (UJ015..UJ022) --------------------------

TEST(LintRules, PostTransformReachWarn)
{
    // Untransformed, a(i + 5, j) tops out at 13 <= 8 + halo 8; at the
    // dependence-legal maximum unroll of i the reach grows to 21.
    // Smaller candidates survive, so this is a warning, not an error.
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "real b(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    b(i, j) = a(i + 5, j)\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ015");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("outside extent"),
              std::string::npos);
    EXPECT_EQ(result.errorCount(), 0u);
}

TEST(LintRules, PostTransformReachError)
{
    // a(i + 8, j) sits exactly at extent + halo untransformed (no
    // UJ009), but already one unrolled copy of i escapes: no
    // transformed version of this nest can pass the reach validator.
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "real b(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    b(i, j) = a(i + 8, j)\n"
                                   "  end do\n"
                                   "end do\n");
    EXPECT_TRUE(findingsFor(result, "UJ009").empty());
    auto findings = findingsFor(result, "UJ015");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Error);
    EXPECT_NE(findings[0].message.find("single unrolled copy"),
              std::string::npos);
}

TEST(LintRules, ProvenZeroTripSurvivesSymbolicSibling)
{
    // UJ006 needs the whole nest evaluable; the symbolic upper bound
    // on i blinds it. The interval domain still proves j dead from
    // its own constant bounds, and attaches a machine-applicable fix.
    Program program;
    program.declareArray(
        {"a", {Bound::constant(8), Bound::constant(8)}});
    LoopNest nest = NestBuilder()
                        .name("deadj")
                        .loop("i", 1, 8)
                        .loop("j", 8, 1)
                        .assign("a", {idx("i"), idx("j")}, lit(0.0))
                        .build();
    nest.loop(0).upper = Bound::param("m");
    program.addNest(nest);

    LintResult result = lintProgram(program, alpha(), {});
    EXPECT_TRUE(findingsFor(result, "UJ006").empty());
    auto findings = findingsFor(result, "UJ016");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("zero iterations"),
              std::string::npos);
    ASSERT_TRUE(findings[0].fix.has_value());
    EXPECT_EQ(findings[0].fix->original, "8, 1");
    EXPECT_EQ(findings[0].fix->replacement, "1, 8");
}

TEST(LintRules, FlatIndexOverflowWarning)
{
    // Every subscript stays below 2^31 (so UJ007 is silent), but the
    // column-major fold (j - 1 + halo) * padded-leading-extent tops
    // 2^31 for the trailing dimension.
    LintResult result = lintSource("param n = 50000\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(i, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    EXPECT_TRUE(findingsFor(result, "UJ007").empty());
    auto findings = findingsFor(result, "UJ017");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("32-bit"), std::string::npos);
}

TEST(LintRules, DeadFringeNote)
{
    // A fringe loop starting past its own aligned upper bound: with
    // n = 8 the alignment term is exact (align(1, 8, 4) = 8), so the
    // fringe range [9, 8] is proven empty.
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1 + align(1, n, 4), n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(i, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ018");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("dead code"), std::string::npos);
}

TEST(LintRules, StrideContradictionNote)
{
    // Column-major arrays traversed j-innermost along the second
    // subscript: each innermost iteration moves a full padded column
    // (24 elements >= the 4-element line). All three references
    // qualify; the finding is advice (the locality model prices the
    // misses correctly), so the program stays warning-free.
    LintResult result =
        lintSource("param n = 8\n"
                   "real a(n, n)\n"
                   "real b(n, n)\n"
                   "do i = 1, n\n"
                   "  do j = 1, n\n"
                   "    b(i, j) = a(i, j) + a(i, j - 1)\n"
                   "  end do\n"
                   "end do\n");
    auto findings = findingsFor(result, "UJ019");
    ASSERT_EQ(findings.size(), 3u);
    for (const LintDiagnostic &diag : findings) {
        EXPECT_EQ(diag.severity, LintSeverity::Note);
        EXPECT_NE(diag.message.find("residue class"), std::string::npos);
    }
    EXPECT_EQ(result.warnCount(), 0u);

    // i-innermost traversal is stride-1: no finding.
    LintResult transposed =
        lintSource("param n = 8\n"
                   "real a(n, n)\n"
                   "real b(n, n)\n"
                   "do j = 1, n\n"
                   "  do i = 1, n\n"
                   "    b(i, j) = a(i, j) + 1.0\n"
                   "  end do\n"
                   "end do\n");
    EXPECT_TRUE(findingsFor(transposed, "UJ019").empty());
}

TEST(LintRules, RangeAliasWarning)
{
    // The UJ012 kernel: a written through two subscript matrices.
    // The interval domain sharpens the modeling note into a proof --
    // both sets touch [1, 8] x [1, 8], so they genuinely alias.
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 1, n\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(j, i) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ020");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Warn);
    EXPECT_NE(findings[0].message.find("provably overlap"),
              std::string::npos);
}

TEST(LintRules, RangePruneReportNote)
{
    // The whole nest is provably dead, so the pre-filter deletes the
    // b(k,j) -> b(k-1,j) dependence; UJ021 reports the deletion.
    LintResult result = lintSource("param n = 8\n"
                                   "real b(n, n)\n"
                                   "do k = 8, 1\n"
                                   "  do j = 1, n\n"
                                   "    b(k, j) = b(k - 1, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ021");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("pre-filter"), std::string::npos);
    EXPECT_NE(findings[0].message.find("provably runs zero iterations"),
              std::string::npos);
}

TEST(LintRules, SingleTripNote)
{
    LintResult result = lintSource("param n = 8\n"
                                   "real a(n, n)\n"
                                   "do i = 5, 5\n"
                                   "  do j = 1, n\n"
                                   "    a(i, j) = a(i, j) + 1.0\n"
                                   "  end do\n"
                                   "end do\n");
    auto findings = findingsFor(result, "UJ022");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, LintSeverity::Note);
    EXPECT_NE(findings[0].message.find("exactly one iteration"),
              std::string::npos);
}

// --- findings baselines ---------------------------------------------

TEST(LintBaseline, RoundTripSuppressesEverythingItRecorded)
{
    std::string source = readFile(kGoldenDir + "/golden.uj");
    LintResult result = lintSource(source, "golden.uj");
    ASSERT_GE(result.diagnostics.size(), 4u);

    std::string text = renderBaseline({result});
    EXPECT_EQ(text.find("#"), 0u); // header comment first
    FindingsBaseline baseline = parseBaseline(text);
    EXPECT_FALSE(baseline.fingerprints.empty());

    LintResult filtered = lintSource(source, "golden.uj");
    std::size_t removed = applyBaseline(filtered, baseline);
    EXPECT_EQ(removed, result.diagnostics.size());
    EXPECT_TRUE(filtered.diagnostics.empty());
}

TEST(LintBaseline, FingerprintIgnoresLocationButNotMessage)
{
    LintDiagnostic diag;
    diag.ruleId = "UJ009";
    diag.nestName = "reach";
    diag.message = "subscript escapes";
    diag.loc = SourceLoc{10, 3};
    std::string a = findingFingerprint("f.uj", diag);
    EXPECT_EQ(a.size(), 16u);

    // Moving the finding does not invalidate a baseline entry...
    diag.loc = SourceLoc{99, 1};
    EXPECT_EQ(findingFingerprint("f.uj", diag), a);
    // ...but a different message (or source) is a different finding.
    diag.message = "subscript escapes further";
    EXPECT_NE(findingFingerprint("f.uj", diag), a);
    diag.message = "subscript escapes";
    EXPECT_NE(findingFingerprint("g.uj", diag), a);
}

TEST(LintBaseline, ParserSkipsCommentsBlanksAndExtraColumns)
{
    FindingsBaseline baseline = parseBaseline(
        "# ujam-lint baseline v1\n"
        "\n"
        "0123456789abcdef UJ001 a.uj nest1\n"
        "fedcba9876543210\n"
        "   \n");
    EXPECT_EQ(baseline.fingerprints.size(), 2u);
    EXPECT_TRUE(baseline.fingerprints.count("0123456789abcdef"));
    EXPECT_TRUE(baseline.fingerprints.count("fedcba9876543210"));
}

// --- linter behavior ------------------------------------------------

TEST(Linter, SeverityOrderingAndFiltering)
{
    std::string source = readFile(kGoldenDir + "/golden.uj");
    LintResult all = lintSource(source, "golden.uj");
    ASSERT_GE(all.diagnostics.size(), 4u);
    for (std::size_t i = 1; i < all.diagnostics.size(); ++i) {
        EXPECT_GE(static_cast<int>(all.diagnostics[i - 1].severity),
                  static_cast<int>(all.diagnostics[i].severity));
    }

    LintOptions errors_only;
    errors_only.minSeverity = LintSeverity::Error;
    LintResult filtered = lintSource(source, "golden.uj", errors_only);
    EXPECT_EQ(filtered.diagnostics.size(), filtered.errorCount());
    EXPECT_EQ(filtered.errorCount(), all.errorCount());
}

TEST(Linter, CleanProgramIsClean)
{
    LintResult result =
        lintSource("param n = 8\n"
                   "real a(n, n)\n"
                   "real b(n, n)\n"
                   "do i = 1, n\n"
                   "  do j = 1, n\n"
                   "    b(i, j) = a(i, j) + a(i, j - 1)\n"
                   "  end do\n"
                   "end do\n");
    EXPECT_EQ(result.errorCount(), 0u);
    EXPECT_EQ(result.warnCount(), 0u);
}

TEST(Linter, SuiteWorkloadsHaveNoErrorFindings)
{
    // The evaluation suite goes through the pipeline without a single
    // rollback (the safety-net tests assert that), so a lint error on
    // any of its kernels would be a false positive.
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        LintResult result = lintProgram(program, alpha(), {});
        EXPECT_EQ(result.errorCount(), 0u)
            << loop.name << ":\n" << renderText(result);
    }
}

// --- renderers ------------------------------------------------------

TEST(LintRender, SourceExcerptCaretIsUtf8Aware)
{
    // Byte column 11 on a line whose first 10 bytes hold 7 code
    // points ("-- \xC3\xA9\xC3\xA8\xC3\xAA " = dash dash space
    // e-acute e-grave e-circumflex space): the caret must sit 7
    // columns in, not 10.
    std::string source = "-- \xC3\xA9\xC3\xA8\xC3\xAA x = 1\n";
    std::string excerpt = sourceExcerpt(source, SourceLoc{1, 11});
    EXPECT_EQ(excerpt,
              "  -- \xC3\xA9\xC3\xA8\xC3\xAA x = 1\n  "
              "       ^\n");

    // ASCII positions are unaffected.
    EXPECT_EQ(sourceExcerpt("abc\ndef\n", SourceLoc{2, 2}),
              "  def\n   ^\n");
    // Unknown locations and out-of-range lines render nothing.
    EXPECT_EQ(sourceExcerpt("abc\n", SourceLoc{}), "");
    EXPECT_EQ(sourceExcerpt("abc\n", SourceLoc{7, 1}), "");
}

TEST(LintRender, TextMatchesGolden)
{
    std::string source = readFile(kGoldenDir + "/golden.uj");
    LintResult result = lintSource(source, "golden.uj");
    std::string text = renderText(result, source);
    std::string golden = readFile(kGoldenDir + "/lint_text.golden");
    if (std::getenv("UJAM_UPDATE_GOLDEN")) {
        std::ofstream(kGoldenDir + "/lint_text.golden") << text;
        GTEST_SKIP() << "golden updated";
    }
    EXPECT_EQ(text, golden);
}

TEST(LintRender, SarifMatchesGolden)
{
    std::string source = readFile(kGoldenDir + "/golden.uj");
    LintResult result = lintSource(source, "golden.uj");
    std::string sarif = renderSarif(result);
    std::string golden = readFile(kGoldenDir + "/lint_sarif.golden");
    if (std::getenv("UJAM_UPDATE_GOLDEN")) {
        std::ofstream(kGoldenDir + "/lint_sarif.golden") << sarif;
        GTEST_SKIP() << "golden updated";
    }
    EXPECT_EQ(sarif, golden);

    // Structural invariants beyond the byte-for-byte match.
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    for (const auto &rule : lintRules())
        EXPECT_NE(sarif.find(std::string("\"id\": \"") + rule->id() +
                             "\""),
                  std::string::npos);
}

TEST(LintRender, SarifColumnsAreCodePointsAndSpanTheToken)
{
    // The finding sits on "alpha" at byte column 5; the region must
    // cover exactly that identifier in code-point columns.
    LintResult result;
    result.sourceName = "cols.uj";
    LintDiagnostic diag;
    diag.ruleId = "UJ001";
    diag.severity = LintSeverity::Error;
    diag.loc = SourceLoc{1, 5};
    diag.message = "m";
    result.diagnostics.push_back(diag);

    std::string sarif = renderSarif(result, "do  alpha = 1\n");
    EXPECT_NE(sarif.find("\"startColumn\": 5"), std::string::npos);
    EXPECT_NE(sarif.find("\"endColumn\": 10"), std::string::npos);

    // Without source text the lexer's byte column is all we have:
    // keep startColumn, omit endColumn rather than fabricate one.
    std::string blind = renderSarif(result);
    EXPECT_NE(blind.find("\"startColumn\": 5"), std::string::npos);
    EXPECT_EQ(blind.find("\"endColumn\""), std::string::npos);
}

TEST(LintRender, SarifEndColumnIsUtf8Aware)
{
    // "-- \xC3\xA9\xC3\xA8\xC3\xAA x = 1": byte column 11 is the
    // identifier "x", but only 7 code points precede it. Both column
    // fields must count code points (SARIF's unit), matching the
    // caret renderer.
    LintResult result;
    result.sourceName = "utf8.uj";
    LintDiagnostic diag;
    diag.ruleId = "UJ002";
    diag.severity = LintSeverity::Note;
    diag.loc = SourceLoc{1, 11};
    diag.message = "m";
    result.diagnostics.push_back(diag);

    std::string sarif =
        renderSarif(result, "-- \xC3\xA9\xC3\xA8\xC3\xAA x = 1\n");
    EXPECT_NE(sarif.find("\"startColumn\": 8"), std::string::npos);
    EXPECT_NE(sarif.find("\"endColumn\": 9"), std::string::npos);
}

TEST(LintRender, SarifEmitsFixReplacements)
{
    // A finding carrying a LintFix renders as a SARIF fix: the
    // deleted region covers the original text on the finding's line,
    // and insertedContent carries the replacement.
    LintResult result;
    result.sourceName = "fix.uj";
    LintDiagnostic diag;
    diag.ruleId = "UJ016";
    diag.severity = LintSeverity::Warn;
    diag.loc = SourceLoc{1, 4};
    diag.message = "loop 'i' provably runs zero iterations";
    diag.fix = LintFix{"swap the inverted constant bounds", "8, 1",
                       "1, 8"};
    result.diagnostics.push_back(diag);

    std::string source = "do i = 8, 1\nend do\n";
    std::string sarif = renderSarif(result, source);
    EXPECT_NE(sarif.find("\"fixes\""), std::string::npos);
    EXPECT_NE(sarif.find("\"artifactChanges\""), std::string::npos);
    EXPECT_NE(sarif.find("\"deletedRegion\""), std::string::npos);
    EXPECT_NE(sarif.find("\"insertedContent\""), std::string::npos);
    EXPECT_NE(sarif.find("1, 8"), std::string::npos);
    // "8, 1" starts at code-point column 8 and is 4 columns wide.
    EXPECT_NE(sarif.find("\"startColumn\": 8"), std::string::npos);
    EXPECT_NE(sarif.find("\"endColumn\": 12"), std::string::npos);

    // When the original text is not on the line (stale fix), the fix
    // is dropped rather than mis-anchored; the result stays valid.
    std::string stale = renderSarif(result, "do i = 1, n\nend do\n");
    EXPECT_EQ(stale.find("\"fixes\""), std::string::npos);
    // And with no source at all there is nothing to anchor to.
    EXPECT_EQ(renderSarif(result).find("\"fixes\""), std::string::npos);
}

TEST(LintRender, JsonEscapesAndCounts)
{
    LintResult result;
    result.sourceName = "we\"ird\\name.uj";
    LintDiagnostic diag;
    diag.ruleId = "UJ001";
    diag.severity = LintSeverity::Error;
    diag.message = "line1\nline2\t\"quoted\"";
    result.diagnostics.push_back(diag);

    std::string json = renderJson(result);
    EXPECT_NE(json.find("we\\\"ird\\\\name.uj"), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2\\t\\\"quoted\\\""),
              std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    // Unknown location: no line/col keys at all.
    EXPECT_EQ(json.find("\"line\""), std::string::npos);
}

// --- SARIF smoke over the workload corpora --------------------------

TEST(LintCorpus, SarifOverSuiteAndCorpusKeepsItsInvariants)
{
    std::vector<LintResult> results;

    // Suite workloads come from real DSL text: every finding must
    // carry a resolvable location (its line exists in the source and
    // the caret renderer accepts it).
    for (const SuiteLoop &loop : testSuite()) {
        Program program = parseProgram(loop.source, "suite:" + loop.name);
        LintResult result = lintProgram(program, alpha(), {});
        for (const LintDiagnostic &diag : result.diagnostics) {
            EXPECT_TRUE(diag.loc.known())
                << loop.name << ": " << diag.toString(result.sourceName);
            EXPECT_NE(sourceExcerpt(loop.source, diag.loc), "")
                << loop.name << ": " << diag.toString(result.sourceName);
        }
        results.push_back(std::move(result));
    }

    // Corpus routines are synthesized IR (no source text); their
    // findings legitimately carry no location, and the SARIF writer
    // must omit the region rather than fabricate line 0.
    CorpusConfig config;
    config.routines = 12;
    config.seed = 20260806;
    config.threads = 1;
    for (const CorpusRoutine &routine : generateCorpus(config)) {
        Program program;
        for (const LoopNest &nest : routine.nests) {
            for (const Access &access : nest.accesses()) {
                if (program.hasArray(access.ref.array()))
                    continue;
                ArrayDecl decl;
                decl.name = access.ref.array();
                for (std::size_t d = 0; d < access.ref.dims(); ++d)
                    decl.extents.push_back(Bound::constant(300));
                program.declareArray(std::move(decl));
            }
            program.addNest(nest);
        }
        program.setSourceName("corpus:" + routine.name);
        results.push_back(lintProgram(program, alpha(), {}));
    }

    // No duplicate findings within any run.
    for (const LintResult &result : results) {
        std::set<std::string> seen;
        for (const LintDiagnostic &diag : result.diagnostics) {
            std::string key = concat(diag.ruleId, "@", diag.nestIndex,
                                     "@", diag.loc.toString(), "@",
                                     diag.message);
            EXPECT_TRUE(seen.insert(key).second)
                << result.sourceName << ": duplicate " << key;
        }
    }

    std::string sarif = renderSarifRuns(results);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_EQ(sarif.find("\"startLine\": 0"), std::string::npos);

    // Every reported ruleId is in the declared catalog.
    std::set<std::string> catalog;
    for (const auto &rule : lintRules())
        catalog.insert(rule->id());
    for (const LintResult &result : results) {
        for (const LintDiagnostic &diag : result.diagnostics)
            EXPECT_TRUE(catalog.count(diag.ruleId)) << diag.ruleId;
    }
}

// --- pipeline integration -------------------------------------------

const char *kHazardSource =
    "param n = 8\n"
    "real a(n, n)\n"
    "real b(n, n)\n"
    "real c(n, n)\n"
    "! nest: prehdr\n"
    "do i = 1, n\n"
    "  do j = 1, n\n"
    "    pre t = a(i, 1)\n"
    "    a(i, j) = a(i, j) + t\n"
    "  end do\n"
    "end do\n"
    "! nest: reach\n"
    "do i = 1, n\n"
    "  do j = 1, n\n"
    "    b(i, j) = a(i + 20, j)\n"
    "  end do\n"
    "end do\n"
    "! nest: carried\n"
    "do i = 1, n\n"
    "  do j = 1, n\n"
    "    b(i, j) = a(i, j) + a(i, j - 1) + s\n"
    "    s = a(i, j) * 0.5\n"
    "  end do\n"
    "end do\n"
    "! nest: clean\n"
    "do i = 1, n\n"
    "  do j = 1, n\n"
    "    c(i, j) = a(i, j) + a(i, j - 1)\n"
    "  end do\n"
    "end do\n";

PipelineConfig
oracleConfig(LintMode lint)
{
    PipelineConfig config;
    config.safety.oracle = true;
    // Cap the unroll so the jammed main loop actually executes at
    // n = 8 (at the default cap of 8 the 9-copy body needs 9 trips
    // and align() leaves everything to the un-jammed fringe nest,
    // which would make the carried-scalar hazard unobservable).
    config.optimizer.maxUnroll = 4;
    config.lint = lint;
    return config;
}

TEST(LintPipeline, WarnModeReportsWithoutSkipping)
{
    Program program = parseProgram(kHazardSource, "hazards.uj");
    PipelineResult result =
        optimizeProgram(program, alpha(), oracleConfig(LintMode::Warn));
    EXPECT_GE(result.lint.errorCount(), 3u);
    for (const NestOutcome &outcome : result.outcomes)
        EXPECT_FALSE(outcome.lintSkipped);
    // Warn mode leaves the hazards in: the safety net must do the
    // containing.
    EXPECT_GT(result.containedFaults(), 0u);
    EXPECT_NE(result.summary().find("lint:"), std::string::npos);
}

TEST(LintPipeline, StrictModeSkipsFlaggedNestsAndAvoidsAllRollbacks)
{
    Program program = parseProgram(kHazardSource, "hazards.uj");

    // Without lint, the hazard nests are only saved by the safety
    // net: the run must contain at least one fault.
    PipelineResult unchecked =
        optimizeProgram(program, alpha(), oracleConfig(LintMode::Off));
    EXPECT_GT(unchecked.containedFaults(), 0u);

    // Every rolled-back nest must have been statically flagged at
    // error severity -- the analyzer predicts the safety net.
    LintResult lint = lintProgram(program, alpha(), {});
    for (std::size_t n = 0; n < unchecked.outcomes.size(); ++n) {
        if (!unchecked.outcomes[n].contained.empty()) {
            EXPECT_TRUE(lint.nestHasErrors(n))
                << "nest " << n << " rolled back without a lint error";
        }
    }

    // Strict mode: flagged nests are skipped before any stage runs,
    // so nothing is ever rolled back, and the clean nest still gets
    // its transformation.
    PipelineResult strict =
        optimizeProgram(program, alpha(), oracleConfig(LintMode::Strict));
    EXPECT_EQ(strict.containedFaults(), 0u)
        << safetyReport(strict);
    EXPECT_TRUE(strict.outcomes[0].lintSkipped);
    EXPECT_TRUE(strict.outcomes[1].lintSkipped);
    EXPECT_TRUE(strict.outcomes[2].lintSkipped);
    EXPECT_FALSE(strict.outcomes[3].lintSkipped);
    EXPECT_TRUE(strict.outcomes[3].decision.transforms());
    EXPECT_NE(safetyReport(strict).find("skipped by strict lint"),
              std::string::npos);

    // The crafted carried-scalar nest is only interesting if the
    // optimizer actually unrolls it when unchecked; guard the guard.
    EXPECT_FALSE(unchecked.outcomes[2].contained.empty())
        << "nest 'carried' no longer rolls back; strengthen the kernel";
}

/**
 * The acceptance contract on the generated corpus: run a slice of
 * Table 1 routines through the oracle-checked pipeline, and require
 * that every nest the safety net rolled back was flagged at error
 * severity by the purely static analyzer -- no interpreter runs, no
 * transforms, just the rules. Strict mode must then be rollback-free.
 */
TEST(LintPipeline, OracleRollbacksAreStaticallyPredictedOnTheCorpus)
{
    CorpusConfig corpus_config;
    corpus_config.routines = 15;
    corpus_config.seed = 20260806;
    corpus_config.threads = 1;
    std::vector<CorpusRoutine> corpus = generateCorpus(corpus_config);

    std::size_t exercised = 0;
    for (const CorpusRoutine &routine : corpus) {
        for (const LoopNest &nest : routine.nests) {
            // Shrink bounds and synthesize conforming declarations so
            // the oracle's interpreter runs stay cheap (the same
            // reduction the safety-net fuzz tests apply).
            LoopNest small = nest;
            for (std::size_t k = 0; k < small.depth(); ++k) {
                if (small.loop(k).upper.evaluate({}) > 10)
                    small.loop(k).upper = Bound::constant(10);
            }
            Program program;
            bool ranks_consistent = true;
            for (const Access &access : small.accesses()) {
                if (program.hasArray(access.ref.array())) {
                    if (program.array(access.ref.array())
                            .extents.size() != access.ref.dims()) {
                        ranks_consistent = false;
                    }
                    continue;
                }
                ArrayDecl decl;
                decl.name = access.ref.array();
                for (std::size_t d = 0; d < access.ref.dims(); ++d)
                    decl.extents.push_back(Bound::constant(16));
                program.declareArray(std::move(decl));
            }
            if (!ranks_consistent)
                continue;
            program.addNest(small);
            if (!validateProgramStrict(program).empty())
                continue;
            ++exercised;

            PipelineResult result = optimizeProgram(
                program, alpha(), oracleConfig(LintMode::Off));
            if (result.containedFaults() == 0)
                continue;

            LintResult lint = lintProgram(program, alpha(), {});
            EXPECT_TRUE(lint.nestHasErrors(0))
                << routine.name << ": rolled back but not flagged:\n"
                << safetyReport(result);

            PipelineResult strict = optimizeProgram(
                program, alpha(), oracleConfig(LintMode::Strict));
            EXPECT_EQ(strict.containedFaults(), 0u)
                << routine.name << ":\n" << safetyReport(strict);
        }
    }
    EXPECT_GT(exercised, 10u);
}

} // namespace
