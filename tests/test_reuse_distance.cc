/**
 * @file
 * Tests for the reuse-distance profiler, including a brute-force
 * stack-distance oracle and the link to LRU hit ratios.
 */

#include <gtest/gtest.h>

#include <set>

#include "parser/parser.hh"
#include "sim/cache.hh"
#include "sim/reuse_distance.hh"
#include "support/rng.hh"
#include "transform/scalar_replacement.hh"

namespace ujam
{
namespace
{

/** O(n^2) oracle: distinct lines since the previous same-line access. */
std::vector<std::int64_t>
bruteDistances(const std::vector<std::int64_t> &lines)
{
    std::vector<std::int64_t> result;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::int64_t distance = ReuseDistanceProfiler::coldMiss;
        for (std::size_t j = i; j > 0; --j) {
            if (lines[j - 1] == lines[i]) {
                std::set<std::int64_t> between(lines.begin() + j,
                                               lines.begin() + i);
                between.erase(lines[i]);
                distance = static_cast<std::int64_t>(between.size());
                break;
            }
        }
        result.push_back(distance);
    }
    return result;
}

TEST(ReuseDistance, SimpleStream)
{
    ReuseDistanceProfiler profiler(1);
    // a b a  -> a: cold, b: cold, a: one distinct line (b) between.
    EXPECT_EQ(profiler.access(10), ReuseDistanceProfiler::coldMiss);
    EXPECT_EQ(profiler.access(20), ReuseDistanceProfiler::coldMiss);
    EXPECT_EQ(profiler.access(10), 1);
    // immediate repeat: distance 0.
    EXPECT_EQ(profiler.access(10), 0);
    EXPECT_EQ(profiler.coldMisses(), 2u);
    EXPECT_EQ(profiler.accesses(), 4u);
}

TEST(ReuseDistance, LineGranularity)
{
    ReuseDistanceProfiler profiler(4);
    EXPECT_EQ(profiler.access(0), ReuseDistanceProfiler::coldMiss);
    EXPECT_EQ(profiler.access(3), 0);  // same line
    EXPECT_EQ(profiler.access(4), ReuseDistanceProfiler::coldMiss);
    EXPECT_EQ(profiler.access(1), 1);  // line 0 again, past line 1
}

class ReuseDistanceOracle : public ::testing::TestWithParam<int>
{};

TEST_P(ReuseDistanceOracle, MatchesBruteForce)
{
    Rng rng(9900 + GetParam());
    std::vector<std::int64_t> stream;
    std::size_t n = static_cast<std::size_t>(rng.range(50, 400));
    for (std::size_t i = 0; i < n; ++i)
        stream.push_back(rng.range(0, 30));

    ReuseDistanceProfiler profiler(1);
    std::vector<std::int64_t> got;
    for (std::int64_t addr : stream)
        got.push_back(profiler.access(addr));
    EXPECT_EQ(got, bruteDistances(stream));
}

INSTANTIATE_TEST_SUITE_P(Random, ReuseDistanceOracle,
                         ::testing::Range(0, 15));

TEST(ReuseDistance, PredictsFullyAssociativeLruHits)
{
    // The defining property: hitFractionBelow(C) equals the hit ratio
    // of a fully-associative LRU cache with C lines (cold misses
    // excluded on the profiler side, included in the cache, so
    // compare on warm accesses).
    Rng rng(123);
    std::vector<std::int64_t> stream;
    for (int i = 0; i < 4000; ++i)
        stream.push_back(rng.range(0, 299));

    const std::int64_t lines = 64;
    ReuseDistanceProfiler profiler(1);
    CacheSim cache(lines * 8, 8, lines, 8); // fully associative
    std::uint64_t warm_hits = 0;
    std::uint64_t warm = 0;
    for (std::int64_t addr : stream) {
        std::int64_t d = profiler.access(addr);
        bool hit = cache.access(addr, false);
        if (d != ReuseDistanceProfiler::coldMiss) {
            ++warm;
            warm_hits += hit;
            EXPECT_EQ(hit, d < lines);
        }
    }
    EXPECT_NEAR(profiler.hitFractionBelow(lines),
                static_cast<double>(warm_hits) /
                    static_cast<double>(warm),
                1e-12);
}

TEST(ReuseDistance, ProgramProfileShowsStencilLocality)
{
    Program program = parseProgram(R"(
param n = 48
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i, j-1) + a(i, j-2)
  end do
end do
)");
    ReuseDistanceProfiler profiler = profileReuseDistances(program, 4);
    // The a(i,j-1)/a(i,j-2) reuse spans about one column of lines:
    // nearly everything hits within a few hundred lines.
    EXPECT_GT(profiler.hitFractionBelow(256), 0.95);
    // Almost nothing is reused within a handful of lines except the
    // same-iteration b/a line neighbours.
    EXPECT_LT(profiler.hitFractionBelow(2), 0.9);
}

TEST(ReuseDistance, ScalarReplacementShrinksTheStream)
{
    Program program = parseProgram(R"(
param n = 48
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j) + a(i-2, j)
  end do
end do
)");
    ReuseDistanceProfiler before = profileReuseDistances(program, 4);

    Program replaced = program;
    replaced.nests()[0] = scalarReplace(program.nests()[0]).nest;
    ReuseDistanceProfiler after = profileReuseDistances(replaced, 4);

    // The register-forwarded loads vanish from the address stream.
    EXPECT_LT(after.accesses(), before.accesses() * 2 / 3);
    // What remains keeps its cold-footprint (same data touched).
    EXPECT_EQ(after.coldMisses(), before.coldMisses());
}

} // namespace
} // namespace ujam
