/**
 * @file
 * Tests for the modulo scheduler: graph construction, MII bounds,
 * schedule validity (every edge and resource constraint verified),
 * and the software-pipelining interactions with unroll-and-jam.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "parser/parser.hh"
#include "sim/modulo_schedule.hh"
#include "sim/pipeline.hh"
#include "support/rng.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{
namespace
{

/** Assert every edge and modulo-resource constraint holds. */
void
verifySchedule(const OpGraph &graph, const MachineModel &machine,
               const ModuloScheduleResult &result)
{
    ASSERT_GT(result.achievedII, 0);
    ASSERT_EQ(result.startCycle.size(), graph.nodes.size());
    for (const OpEdge &edge : graph.edges) {
        EXPECT_GE(result.startCycle[edge.dst],
                  result.startCycle[edge.src] + edge.latency -
                      result.achievedII * edge.distance)
            << "edge " << edge.src << "->" << edge.dst;
    }
    std::vector<int> mem(static_cast<std::size_t>(result.achievedII), 0);
    std::vector<int> issue(static_cast<std::size_t>(result.achievedII),
                           0);
    std::vector<int> fp(static_cast<std::size_t>(result.achievedII), 0);
    for (std::size_t v = 0; v < graph.nodes.size(); ++v) {
        std::size_t slot = static_cast<std::size_t>(
            result.startCycle[v] % result.achievedII);
        ++issue[slot];
        switch (graph.nodes[v].kind) {
          case OpNode::Kind::Load:
          case OpNode::Kind::Store:
          case OpNode::Kind::Prefetch:
            ++mem[slot];
            break;
          case OpNode::Kind::Fp:
            ++fp[slot];
            break;
          default:
            break;
        }
    }
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(result.achievedII); ++s) {
        EXPECT_LE(issue[s], machine.issueWidth);
        EXPECT_LE(mem[s], machine.memPorts);
        EXPECT_LE(fp[s], static_cast<int>(machine.flopsPerCycle));
    }
}

ModuloScheduleResult
scheduleBody(const char *source, const MachineModel &machine,
             OpGraph *graph_out = nullptr)
{
    LoopNest nest = parseSingleNest(source);
    OpGraph graph = OpGraph::fromBody(nest, machine);
    ModuloScheduleResult result = moduloSchedule(graph, machine);
    verifySchedule(graph, machine, result);
    if (graph_out)
        *graph_out = graph;
    return result;
}

TEST(ModuloSchedule, StreamingBodyIsResourceBound)
{
    // 3 memory ops, 1 flop, one port: II = 3, no recurrence.
    MachineModel machine = MachineModel::decAlpha21064();
    ModuloScheduleResult result = scheduleBody(R"(
do j = 1, 8
  do i = 1, 8
    c(i, j) = a(i, j) + b(i, j)
  end do
end do
)",
                                               machine);
    EXPECT_EQ(result.resourceMii, 3);
    EXPECT_EQ(result.recurrenceMii, 1);
    EXPECT_EQ(result.achievedII, 3);
    // The schedule still pays latencies inside one iteration.
    EXPECT_GE(result.scheduleLength, machine.loadLatency + 1);
}

TEST(ModuloSchedule, AccumulatorBoundByFpLatency)
{
    // t = t + a(i,j): the FP latency chains iterations.
    MachineModel machine = MachineModel::decAlpha21064(); // fpLat 6
    ModuloScheduleResult result = scheduleBody(R"(
do j = 1, 8
  do i = 1, 8
    t = t + a(i, j)
  end do
end do
)",
                                               machine);
    EXPECT_EQ(result.recurrenceMii, machine.fpLatency);
    EXPECT_EQ(result.achievedII, machine.fpLatency);
}

TEST(ModuloSchedule, UnrollAndJamBreaksTheAccumulatorWall)
{
    // The paper's future-work synergy: one accumulator is latency
    // bound; unroll-and-jam creates independent accumulators, so the
    // II per ORIGINAL iteration falls until resources bind.
    Program program = parseProgram(R"(
param n = 32
real a(n + 2)
real b(n + 2)
do j = 1, n
  do i = 1, n
    a(j) = a(j) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();

    LoopNest original =
        scalarReplace(program.nests()[0]).nest;
    double ii1 = softwarePipelinedII(original, machine);
    EXPECT_DOUBLE_EQ(ii1, machine.fpLatency); // one chained sum

    LoopNest unrolled =
        unrollAndJamNest(program.nests()[0], IntVector{3, 0}).front();
    LoopNest replaced = scalarReplace(unrolled).nest;
    double ii4 = softwarePipelinedII(replaced, machine);
    // Four independent accumulators share the same 6-cycle window.
    EXPECT_LE(ii4 / 4.0, ii1 / 2.0);
}

TEST(ModuloSchedule, MemoryCarriedRecurrence)
{
    // a(i) = a(i-1)*0.5: store -> next-iteration load closes a cycle
    // through the multiply.
    MachineModel machine = MachineModel::decAlpha21064();
    ModuloScheduleResult result = scheduleBody(R"(
do j = 1, 8
  do i = 2, 8
    a(i, j) = a(i-1, j) * 0.5
  end do
end do
)",
                                               machine);
    // Cycle: load(3) + fp(6) + store->load(1) over distance 1.
    EXPECT_GE(result.recurrenceMii, machine.fpLatency);
    EXPECT_EQ(result.achievedII, result.mii());
}

TEST(ModuloSchedule, DistanceRelaxesRecurrence)
{
    // a(i) = a(i-3)*0.5: the same cycle spread over 3 iterations.
    MachineModel machine = MachineModel::decAlpha21064();
    ModuloScheduleResult near = scheduleBody(R"(
do j = 1, 8
  do i = 2, 8
    a(i, j) = a(i-1, j) * 0.5
  end do
end do
)",
                                             machine);
    ModuloScheduleResult far = scheduleBody(R"(
do j = 1, 8
  do i = 4, 8
    a(i, j) = a(i-3, j) * 0.5
  end do
end do
)",
                                            machine);
    EXPECT_LT(far.recurrenceMii, near.recurrenceMii);
}

TEST(ModuloSchedule, RotationChainsDoNotInflateII)
{
    // Scalar-replaced stencil: rotations are cross-iteration moves
    // but form no arithmetic cycle; II stays resource bound.
    Program program = parseProgram(R"(
param n = 16
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j) + a(i-2, j)
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    LoopNest replaced = scalarReplace(program.nests()[0]).nest;
    OpGraph graph = OpGraph::fromBody(replaced, machine);
    ModuloScheduleResult result = moduloSchedule(graph, machine);
    verifySchedule(graph, machine, result);
    // 6 ops (load, 2 fp, store, 2 rotation moves) on a 2-wide issue:
    // resource MII 3; the rotations carry values but close no
    // arithmetic cycle, so recurrence does not bind.
    EXPECT_EQ(result.resourceMii, 3);
    EXPECT_EQ(result.recurrenceMii, 1);
    // The simplified IMS has no ejection step: allow a small gap
    // above the lower bound.
    EXPECT_LE(result.achievedII, result.mii() + 2);
}

TEST(ModuloSchedule, PipelineHeuristicIsALowerEnvelope)
{
    // The cheap steady-state model never exceeds the scheduled II.
    const char *sources[] = {
        R"(
do j = 1, 8
  do i = 1, 8
    c(i, j) = a(i, j) + b(i, j)
  end do
end do
)",
        R"(
do j = 1, 8
  do i = 1, 8
    s(j) = s(j) + a(i, j) * b(i, j)
  end do
end do
)",
    };
    MachineModel machine = MachineModel::hpPa7100();
    for (const char *source : sources) {
        LoopNest nest = parseSingleNest(source);
        double heuristic = steadyStateCyclesPerIteration(nest, machine);
        double scheduled = softwarePipelinedII(nest, machine);
        EXPECT_LE(heuristic, scheduled + 1e-9) << source;
    }
}

class ModuloScheduleRandom : public ::testing::TestWithParam<int>
{};

TEST_P(ModuloScheduleRandom, RandomBodiesScheduleValidly)
{
    Rng rng(17000 + GetParam());
    std::ostringstream src;
    src << "do j = 1, 8\n  do i = 2, 8\n";
    int stmts = static_cast<int>(rng.range(1, 3));
    for (int s = 0; s < stmts; ++s) {
        const char *target = (s == 0) ? "a" : (s == 1) ? "b" : "c";
        src << "    " << target << "(i, j) = " << target << "(i"
            << -rng.range(1, 2) << ", j) * 0.5 + "
            << ((s % 2) ? "a" : "b") << "(i, j"
            << (rng.chance(0.5) ? "-1" : "") << ")\n";
    }
    src << "  end do\nend do\n";
    LoopNest nest = parseSingleNest(src.str());
    MachineModel machine = rng.chance(0.5)
                               ? MachineModel::decAlpha21064()
                               : MachineModel::wideIlp();
    OpGraph graph = OpGraph::fromBody(nest, machine);
    ModuloScheduleResult result = moduloSchedule(graph, machine);
    verifySchedule(graph, machine, result);
    EXPECT_GE(result.achievedII, result.mii());
}

INSTANTIATE_TEST_SUITE_P(Random, ModuloScheduleRandom,
                         ::testing::Range(0, 20));

} // namespace
} // namespace ujam
