/**
 * @file
 * The C code-generation backend: golden source emission (matmul,
 * stencil, scalar-replaced, fringe), emitter determinism and name
 * hygiene, checksum agreement with the interpreter, the compiled
 * differential roundtrip over the whole evaluation suite
 * (self-skipping without a host compiler), the service "codegen" op,
 * the split request-error counters, and disk-cache byte-budget
 * eviction.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "codegen/c_emitter.hh"
#include "codegen/checksum.hh"
#include "codegen/compile.hh"
#include "driver/driver.hh"
#include "ir/interp.hh"
#include "parser/parser.hh"
#include "service/cache.hh"
#include "service/server.hh"
#include "support/json.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

const std::string kGoldenDir = UJAM_TEST_GOLDEN_DIR;

MachineModel
alpha()
{
    return MachineModel::decAlpha21064();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Compare text against a golden file; UJAM_UPDATE_GOLDEN rewrites
 * the file instead (and skips, like the lint renderer goldens).
 */
void
expectGolden(const std::string &name, const std::string &text)
{
    std::string path = kGoldenDir + "/" + name;
    if (std::getenv("UJAM_UPDATE_GOLDEN")) {
        std::ofstream(path) << text;
        GTEST_SKIP() << "golden updated: " << name;
    }
    EXPECT_EQ(text, readFile(path)) << name;
}

Program
suiteProgram(const std::string &name)
{
    return loadSuiteProgram(suiteLoop(name));
}

/** The default pipeline (normalize + unroll-and-jam + scalar
 * replacement) on one suite loop. */
Program
transformedProgram(const std::string &name)
{
    PipelineConfig config;
    config.threads = 1;
    config.optimizer.threads = 1;
    PipelineResult result =
        optimizeProgram(suiteProgram(name), alpha(), config);
    return result.program;
}

std::string
batch(UjamServer &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    server.runBatch(in, out);
    return out.str();
}

/** A fresh per-test directory under the gtest temp root. */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "ujam-codegen-" + tag +
                      "-" + std::to_string(getpid());
    std::filesystem::remove_all(dir);
    return dir;
}

// --- golden C sources -----------------------------------------------

TEST(CodegenGolden, Matmul)
{
    CodegenUnit unit = emitCProgram(suiteProgram("mmjik"));
    expectGolden("codegen_matmul.c.golden", unit.source);
}

TEST(CodegenGolden, Stencil)
{
    CodegenUnit unit = emitCProgram(suiteProgram("jacobi"));
    expectGolden("codegen_stencil.c.golden", unit.source);
}

TEST(CodegenGolden, ScalarReplaced)
{
    CodegenOptions options;
    options.variantLabel = "transformed";
    CodegenUnit unit =
        emitCProgram(transformedProgram("mmjik"), options);
    // The interesting content: unroll-and-jam plus scalar replacement
    // must actually have fired, or the golden pins the wrong thing.
    EXPECT_NE(unit.source,
              emitCProgram(suiteProgram("mmjik")).source);
    expectGolden("codegen_scalar_replaced.c.golden", unit.source);
}

TEST(CodegenGolden, Fringe)
{
    CodegenOptions options;
    options.variantLabel = "transformed";
    CodegenUnit unit =
        emitCProgram(transformedProgram("jacobi"), options);
    // The jammed stencil leaves a fringe nest behind the aligned main
    // loop; the symbolic bounds survive as comments.
    EXPECT_NE(unit.source.find("align("), std::string::npos);
    expectGolden("codegen_fringe.c.golden", unit.source);
}

// --- emitter behaviour ----------------------------------------------

TEST(CodegenEmitter, DeterministicAndLabelled)
{
    Program program = suiteProgram("jacobi");
    CodegenOptions options;
    options.variantLabel = "variant-tag";
    CodegenUnit first = emitCProgram(program, options);
    CodegenUnit second = emitCProgram(program, options);
    EXPECT_EQ(first.source, second.source);
    EXPECT_NE(first.source.find("Variant: variant-tag"),
              std::string::npos);
    EXPECT_NE(first.source.find("\nmain(int argc"),
              std::string::npos);

    options.emitMain = false;
    CodegenUnit library = emitCProgram(program, options);
    EXPECT_EQ(library.source.find("\nmain(int argc"),
              std::string::npos);
    // The fixed entry ABI is present either way.
    for (const char *entry :
         {"\nujam_init(", "\nujam_run(", "\nujam_array_checksum(",
          "\nujam_checksum("})
        EXPECT_NE(library.source.find(entry), std::string::npos)
            << entry;
}

TEST(CodegenEmitter, RenamesCollidingIdentifiers)
{
    // "main" collides with the harness, "ujamx" invades the runtime's
    // namespace; both must be emitted under fresh C names while the
    // DSL spellings survive in comments.
    const char *source = R"(
real main(8)
real ujamx(8)
! nest: clash
do i = 1, 8
  main(i) = main(i) + ujamx(i)
end do
)";
    CodegenUnit unit =
        emitCProgram(parseProgram(source, "<clash>"));
    EXPECT_NE(unit.source.find("main_2"), std::string::npos);
    EXPECT_NE(unit.source.find("x_ujamx"), std::string::npos);
    // The declared-order array name list keeps the DSL spellings.
    ASSERT_EQ(unit.arrayNames.size(), 2u);
    EXPECT_EQ(unit.arrayNames[0], "main");
    EXPECT_EQ(unit.arrayNames[1], "ujamx");
}

TEST(CodegenEmitter, ParamOverridesBindExtents)
{
    const char *source = R"(
param n = 16
real a(n)
! nest: fill
do i = 1, n
  a(i) = a(i) + 1.0
end do
)";
    Program program = parseProgram(source, "<params>");
    CodegenOptions options;
    options.paramOverrides["n"] = 4;
    CodegenUnit unit = emitCProgram(program, options);
    EXPECT_EQ(unit.params.at("n"), 4);
    // Extent 4 plus the 16 halo elements on the single dimension.
    EXPECT_NE(unit.source.find("[20]"), std::string::npos);
}

// --- checksum -------------------------------------------------------

TEST(CodegenChecksum, MatchesReferenceFnv1a)
{
    // Independent re-derivation of the byte-wise FNV-1a fold.
    double values[] = {0.0, 1.5, -2.25e10};
    std::uint64_t expected = kChecksumSeed;
    for (double v : values) {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        for (int b = 0; b < 8; ++b) {
            expected ^= (bits >> (8 * b)) & 0xffu;
            expected *= 1099511628211ULL;
        }
    }
    EXPECT_EQ(checksumDoubles(kChecksumSeed, values, 3), expected);
    EXPECT_EQ(checksumDoubles(kChecksumSeed, values, 0),
              kChecksumSeed);
    EXPECT_EQ(checksumHex(0), "0000000000000000");
    EXPECT_EQ(checksumHex(0xdeadbeef12345678ULL),
              "deadbeef12345678");
}

TEST(CodegenChecksum, TransformedInterpreterRunAgrees)
{
    // The pipeline is semantics-preserving under the interpreter, so
    // the checksum oracle must already agree before any compiler is
    // involved; the compiled roundtrip below then closes the loop.
    for (const char *name : {"jacobi", "mmjik", "dmxpy0"}) {
        Program original = suiteProgram(name);
        Program transformed = transformedProgram(name);

        Interpreter base(original);
        base.seedArrays(9717);
        base.run();
        Interpreter opt(transformed);
        opt.seedArrays(9717);
        opt.run();
        EXPECT_EQ(interpreterChecksum(base, original),
                  interpreterChecksum(opt, transformed))
            << name;
    }
}

// --- compiled differential roundtrip (ctest -L codegen) -------------

class CodegenRoundtrip
    : public testing::TestWithParam<SuiteLoop>
{
};

TEST_P(CodegenRoundtrip, CompiledVariantsMatchInterpreter)
{
    if (hostCCompiler().empty())
        GTEST_SKIP() << "no host C compiler on PATH";

    const SuiteLoop &loop = GetParam();
    Program original = loadSuiteProgram(loop);
    Program transformed = transformedProgram(loop.name);

    CodegenOptions options;
    CodegenUnit original_unit = emitCProgram(original, options);
    options.variantLabel = "transformed";
    CodegenUnit transformed_unit =
        emitCProgram(transformed, options);

    Interpreter interp(original);
    interp.seedArrays(options.seed);
    interp.run();
    std::uint64_t oracle = interpreterChecksum(interp, original);

    VariantRun original_run = compileAndRun(
        original_unit.source, loop.name + "-orig", "", options.seed);
    ASSERT_TRUE(original_run.ok) << original_run.error << "\n"
                                 << original_run.output;
    VariantRun transformed_run =
        compileAndRun(transformed_unit.source, loop.name + "-ujam",
                      "", options.seed);
    ASSERT_TRUE(transformed_run.ok) << transformed_run.error << "\n"
                                    << transformed_run.output;

    // The acceptance bar: both compiled variants agree with each
    // other and with the ir/interp oracle, bit-exactly.
    EXPECT_EQ(original_run.checksum, oracle) << loop.name;
    EXPECT_EQ(transformed_run.checksum, oracle) << loop.name;

    // Per-array agreement localizes a failure to one array.
    for (const std::string &array : original_unit.arrayNames) {
        std::optional<std::uint64_t> per_array =
            parseArrayChecksumOutput(original_run.output, array);
        ASSERT_TRUE(per_array.has_value()) << array;
        EXPECT_EQ(*per_array,
                  interpreterArrayChecksum(interp, array))
            << loop.name << "/" << array;
    }
}

std::string
roundtripName(const testing::TestParamInfo<SuiteLoop> &info)
{
    std::string name = info.param.name;
    for (char &c : name) {
        if (c == '.')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllLoops, CodegenRoundtrip,
                         testing::ValuesIn(testSuite()),
                         roundtripName);

// --- the service "codegen" op ---------------------------------------

const char *kServeSource =
    "param n = 8\\nreal a(n, n)\\n! nest: sweep\\ndo j = 1, n\\n"
    "  do i = 1, n\\n    a(i, j) = a(i, j) * 2.0\\n  end do\\n"
    "end do\\n";

std::string
codegenRequest(const std::string &id,
               const std::string &options_json = "")
{
    std::string line = "{\"op\": \"codegen\", \"id\": \"" + id +
                       "\", \"source\": \"" + kServeSource + "\"";
    if (!options_json.empty())
        line += ", \"options\": " + options_json;
    return line + "}";
}

TEST(ServiceCodegen, ReturnsBothVariants)
{
    UjamServer server({});
    std::string out = batch(
        server,
        codegenRequest("c1", "{\"seed\": 42, \"params\": {\"n\": 6}}") +
            "\n");

    JsonParseResult parsed =
        parseJson(out.substr(0, out.find('\n')));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue &root = *parsed.value;
    EXPECT_EQ(root.find("status")->stringValue, "ok");
    const JsonValue *result = root.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result->find("seed")->asInt(), 42);
    EXPECT_EQ(*result->find("params")->find("n")->asInt(), 6);
    for (const char *field : {"original_c", "transformed_c"}) {
        const JsonValue *variant = result->find(field);
        ASSERT_NE(variant, nullptr) << field;
        EXPECT_NE(variant->stringValue.find("ujam_checksum"),
                  std::string::npos)
            << field;
    }
    EXPECT_EQ(result->find("arrays")->elements.size(), 1u);
    EXPECT_EQ(result->find("entry")->find("run")->stringValue,
              "ujam_run");
}

TEST(ServiceCodegen, HitIsByteIdenticalToMiss)
{
    UjamServer server({});
    std::string line = codegenRequest("same");
    std::string out = batch(server, line + "\n" + line + "\n");
    std::size_t split = out.find('\n');
    ASSERT_NE(split, std::string::npos);
    EXPECT_EQ(out.substr(0, split), out.substr(split + 1, split));
    EXPECT_EQ(server.metrics().cacheMemoryHits.get(), 1u);
    EXPECT_EQ(server.metrics().opCodegen.get(), 2u);
}

TEST(ServiceCodegen, EmissionOptionsAreSemanticInTheKey)
{
    Program program = parseProgram(
        "param n = 8\nreal a(n)\n! nest: k\ndo i = 1, n\n"
        "  a(i) = a(i) + 1.0\nend do\n",
        "<key>");
    PipelineConfig config;
    MachineModel machine = alpha();

    CodegenOptions base;
    std::string base_key =
        computeCacheKey("codegen", program, machine, config, base);

    CodegenOptions seeded = base;
    seeded.seed = 1;
    CodegenOptions no_main = base;
    no_main.emitMain = false;
    CodegenOptions bound = base;
    bound.paramOverrides["n"] = 5;
    // Presentation only; must NOT change the key.
    CodegenOptions labelled = base;
    labelled.variantLabel = "renamed";

    EXPECT_NE(computeCacheKey("codegen", program, machine, config,
                              seeded),
              base_key);
    EXPECT_NE(computeCacheKey("codegen", program, machine, config,
                              no_main),
              base_key);
    EXPECT_NE(computeCacheKey("codegen", program, machine, config,
                              bound),
              base_key);
    EXPECT_EQ(computeCacheKey("codegen", program, machine, config,
                              labelled),
              base_key);

    // The canonical text carries the schema version: bumping it is
    // what invalidates persisted entries across format changes.
    std::string text = canonicalRequestText("codegen", program,
                                            machine, config, base);
    EXPECT_EQ(text.rfind("ujam-serve-cache-v4\n", 0), 0u);
    EXPECT_NE(text.find("codegen.seed = "), std::string::npos);
    // The autotuner's knobs are part of the v4 text too.
    EXPECT_NE(text.find("tune.budgetMs = "), std::string::npos);
}

// --- split request-error counters -----------------------------------

TEST(ServiceErrorKinds, CountersSplitByFailureShape)
{
    UjamServer server({});
    server.processLine("this is not json");
    server.processLine("{\"op\": \"explode\"}");
    server.processLine("{\"op\": \"codegen\", \"source\": \"x\", "
                       "\"machine\": \"cray\"}");

    JsonParseResult parsed = parseJson(server.metricsSnapshot());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *requests = parsed.value->find("requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(*requests->find("errors")->asInt(), 3);
    EXPECT_EQ(*requests->find("malformed")->asInt(), 1);
    EXPECT_EQ(*requests->find("bad_op")->asInt(), 1);
    EXPECT_EQ(*requests->find("bad_field")->asInt(), 1);
    EXPECT_EQ(*requests->find("by_op")->find("codegen")->asInt(), 0);
}

// --- disk-cache byte budget (ctest -L service) ------------------------

std::uint64_t
diskBytes(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::uint64_t total = 0;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec))
            total += it->file_size(ec);
    }
    return total;
}

TEST(ResultCacheEviction, ByteBudgetEvictsOldestFirst)
{
    std::string dir = scratchDir("evict");
    std::string value(1024, 'v');
    // Budget for two entries (header included); the third insert
    // must evict the oldest.
    std::uint64_t entry = ResultCache::diskEntryBytes(value.size());
    ResultCache cache(8, dir, 2 * entry);

    auto key = [](char c) { return std::string(64, c); };
    cache.put(key('a'), value);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put(key('b'), value);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put(key('c'), value);

    EXPECT_GE(cache.diskEvictions(), 1u);
    EXPECT_LE(diskBytes(dir), 2 * entry);

    // A fresh instance sees only the disk tier: the oldest entry is
    // gone, the newest survives.
    ResultCache fresh(8, dir);
    EXPECT_FALSE(fresh.get(key('a')).has_value());
    EXPECT_TRUE(fresh.get(key('c')).has_value());

    std::filesystem::remove_all(dir);
}

TEST(ResultCacheEviction, DiskHitRefreshesRecency)
{
    std::string dir = scratchDir("evict-lru");
    std::string value(1024, 'v');
    std::uint64_t entry = ResultCache::diskEntryBytes(value.size());
    ResultCache cache(8, dir, 2 * entry);

    auto key = [](char c) { return std::string(64, c); };
    cache.put(key('a'), value);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put(key('b'), value);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // Touch 'a' through a fresh instance (a disk hit), making 'b'
    // the least recently used entry.
    {
        ResultCache toucher(8, dir, 2 * entry);
        ASSERT_TRUE(toucher.get(key('a')).has_value());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put(key('c'), value);

    ResultCache fresh(8, dir);
    EXPECT_TRUE(fresh.get(key('a')).has_value());
    EXPECT_FALSE(fresh.get(key('b')).has_value());
    EXPECT_TRUE(fresh.get(key('c')).has_value());

    std::filesystem::remove_all(dir);
}

TEST(ResultCacheEviction, UnboundedByDefault)
{
    std::string dir = scratchDir("evict-off");
    ResultCache cache(8, dir);
    EXPECT_EQ(cache.maxDiskBytes(), 0u);
    std::string value(1024, 'v');
    for (char c = 'a'; c <= 'j'; ++c)
        cache.put(std::string(64, c), value);
    EXPECT_EQ(cache.diskEvictions(), 0u);
    EXPECT_GE(diskBytes(dir), 10 * value.size());
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ujam
