/**
 * @file
 * Unit tests for the DSL lexer and parser, including print/parse
 * round trips.
 */

#include <gtest/gtest.h>

#include "ir/interp.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "parser/lexer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"

namespace ujam
{
namespace
{

TEST(Lexer, TokenizesBasics)
{
    auto tokens = tokenize("do i = 1, n\n  a(i) = 2.5 * b(i-1)\nend do\n");
    ASSERT_GT(tokens.size(), 10u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Ident);
    EXPECT_EQ(tokens[0].text, "do");
    EXPECT_EQ(tokens[1].text, "i");
    EXPECT_EQ(tokens[2].kind, TokenKind::Equals);
    EXPECT_EQ(tokens[3].kind, TokenKind::Integer);
    EXPECT_EQ(tokens[3].intValue, 1);
    EXPECT_EQ(tokens.back().kind, TokenKind::End);
}

TEST(Lexer, FloatsAndCase)
{
    auto tokens = tokenize("X = 2.5");
    EXPECT_EQ(tokens[0].text, "x"); // case folded
    EXPECT_EQ(tokens[2].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(tokens[2].floatValue, 2.5);
}

TEST(Lexer, CommentsAndNestNames)
{
    auto tokens = tokenize("! plain comment\n! nest: mm_jik\ndo i = 1, 2\n");
    EXPECT_EQ(tokens[0].kind, TokenKind::NestName);
    EXPECT_EQ(tokens[0].text, "mm_jik");
}

TEST(Lexer, TracksLineNumbers)
{
    auto tokens = tokenize("a = 1\nb = 2\n");
    // find token 'b'
    bool found = false;
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Ident && t.text == "b") {
            EXPECT_EQ(t.line, 2);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_THROW(tokenize("a = 1 @ 2"), FatalError);
}

const char *kSaxpySource = R"(
param n = 8
param m = 4
real a(n)
real b(m)

! nest: sum
do j = 1, n
  do i = 1, m
    a(j) = a(j) + b(i)
  end do
end do
)";

TEST(Parser, ParsesProgram)
{
    Program program = parseProgram(kSaxpySource);
    EXPECT_EQ(program.paramDefaults().at("n"), 8);
    EXPECT_EQ(program.paramDefaults().at("m"), 4);
    ASSERT_EQ(program.nests().size(), 1u);
    const LoopNest &nest = program.nests()[0];
    EXPECT_EQ(nest.name(), "sum");
    EXPECT_EQ(nest.depth(), 2u);
    EXPECT_EQ(nest.loop(0).iv, "j");
    EXPECT_EQ(nest.loop(1).iv, "i");
    ASSERT_EQ(nest.body().size(), 1u);
    EXPECT_TRUE(nest.body()[0].isReduction());
    EXPECT_TRUE(validateProgram(program).empty());
}

TEST(Parser, SubscriptForms)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(2*i-1, j+2) = b(i, 3) + c(4)
  end do
end do
)");
    auto accesses = nest.accesses();
    ASSERT_EQ(accesses.size(), 3u);
    // b(i, 3)
    EXPECT_EQ(accesses[0].ref.array(), "b");
    EXPECT_EQ(accesses[0].ref.row(0), (IntVector{0, 1}));
    EXPECT_EQ(accesses[0].ref.offset(), (IntVector{0, 3}));
    // c(4): depth matches nest, all-zero row.
    EXPECT_EQ(accesses[1].ref.row(0), (IntVector{0, 0}));
    EXPECT_EQ(accesses[1].ref.offset(), (IntVector{4}));
    // a(2*i-1, j+2) write
    EXPECT_TRUE(accesses[2].isWrite);
    EXPECT_EQ(accesses[2].ref.row(0), (IntVector{0, 2}));
    EXPECT_EQ(accesses[2].ref.offset(), (IntVector{-1, 2}));
}

TEST(Parser, ExpressionPrecedence)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 4
  x = 1 + 2 * 3 - 4 / 2
end do
)");
    // Evaluate via interpreter to confirm shape: 1 + 6 - 2 = 5.
    Program program;
    program.addNest(nest);
    Interpreter interp(program);
    interp.run();
    EXPECT_DOUBLE_EQ(interp.scalar("x"), 5.0);
}

TEST(Parser, UnaryMinusAndParens)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 1
  x = -(2 + 3) * -2.0
end do
)");
    Program program;
    program.addNest(nest);
    Interpreter interp(program);
    interp.run();
    EXPECT_DOUBLE_EQ(interp.scalar("x"), 10.0);
}

TEST(Parser, TripleNestAndStep)
{
    LoopNest nest = parseSingleNest(R"(
do k = 1, 10, 2
  do j = 1, 10
    do i = 1, 10
      a(i, j, k) = 0
    end do
  end do
end do
)");
    EXPECT_EQ(nest.depth(), 3u);
    EXPECT_EQ(nest.loop(0).step, 2);
    EXPECT_EQ(nest.loop(2).iv, "i");
}

TEST(Parser, SymbolicBounds)
{
    Program program = parseProgram(R"(
param n = 20
real a(2*n + 1)
do i = 2, 2*n - 1
  a(i) = 0
end do
)");
    const Loop &loop = program.nests()[0].loop(0);
    EXPECT_EQ(loop.lower.evaluate(program.paramDefaults()), 2);
    EXPECT_EQ(loop.upper.evaluate(program.paramDefaults()), 39);
    EXPECT_EQ(program.array("a").extents[0].evaluate(
                  program.paramDefaults()),
              41);
}

TEST(Parser, AlignBoundsAndPre)
{
    Program program = parseProgram(R"(
param n = 10
real a(n)
real b(n)
do j = 1, align(1, n, 3), 3
  do i = 1, n
    pre t0 = a(j)
    b(i) = t0 + b(i)
  end do
end do
)");
    const LoopNest &nest = program.nests()[0];
    EXPECT_EQ(nest.loop(0).upper.evaluate(program.paramDefaults()), 9);
    ASSERT_EQ(nest.preheader().size(), 1u);
    EXPECT_FALSE(nest.preheader()[0].lhsIsArray());
    EXPECT_EQ(nest.preheader()[0].lhsScalar(), "t0");
}

TEST(Parser, ScalarAssignment)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 5
  t = a(i)
  a(i) = t * t
end do
)");
    ASSERT_EQ(nest.body().size(), 2u);
    EXPECT_FALSE(nest.body()[0].lhsIsArray());
    EXPECT_TRUE(nest.body()[1].lhsIsArray());
}

TEST(Parser, ErrorsCarryFileLineAndColumn)
{
    try {
        parseProgram("do i = 1, 5\n  a(i = 2\nend do\n");
        FAIL() << "expected syntax error";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("<input>:2:"),
                  std::string::npos)
            << err.what();
    }
    try {
        parseProgram("do i = 1, 5\n  a(i = 2\nend do\n", "bad.uj");
        FAIL() << "expected syntax error";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("bad.uj:2:"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Parser, StampsSourceLocations)
{
    Program program = parseProgram(
        "param n = 8\nreal a(n)\n! nest: k\ndo i = 1, n\n"
        "  a(i) = a(i) + 1.0\nend do\n",
        "loc.uj");
    EXPECT_EQ(program.sourceName(), "loc.uj");
    ASSERT_EQ(program.nests().size(), 1u);
    const LoopNest &nest = program.nests().front();
    EXPECT_EQ(nest.loop(0).loc.line, 4);
    EXPECT_EQ(nest.loop(0).loc.col, 1);
    ASSERT_EQ(nest.body().size(), 1u);
    EXPECT_EQ(nest.body()[0].loc().line, 5);
    EXPECT_EQ(nest.body()[0].loc().col, 3);
    EXPECT_EQ(nest.body()[0].lhsRef().loc().line, 5);
    std::vector<Access> accesses = nest.accesses();
    ASSERT_EQ(accesses.size(), 2u);
    // The RHS read points at its own column, not the statement's.
    EXPECT_EQ(accesses[0].ref.loc().line, 5);
    EXPECT_EQ(accesses[0].ref.loc().col, 10);
    // Locations never participate in structural equality.
    EXPECT_EQ(accesses[0].ref, accesses[1].ref);
}

TEST(Parser, RejectsUnknownIvInSubscript)
{
    EXPECT_THROW(parseSingleNest("do i = 1, 5\n  a(q) = 0\nend do\n"),
                 FatalError);
}

TEST(Parser, RejectsImperfectNest)
{
    // A statement between the loops is not part of the grammar unless
    // marked 'pre'.
    EXPECT_THROW(parseProgram(R"(
do j = 1, 5
  x = 0
  do i = 1, 5
    a(i, j) = x
  end do
end do
)"),
                 FatalError);
}

TEST(Parser, RejectsMissingEnd)
{
    EXPECT_THROW(parseProgram("do i = 1, 5\n  a(i) = 0\n"), FatalError);
}

TEST(Parser, MultipleNests)
{
    Program program = parseProgram(R"(
real a(10)
! nest: first
do i = 1, 10
  a(i) = 1
end do
! nest: second
do i = 1, 10
  a(i) = a(i) + 1
end do
)");
    ASSERT_EQ(program.nests().size(), 2u);
    EXPECT_EQ(program.nests()[0].name(), "first");
    EXPECT_EQ(program.nests()[1].name(), "second");
}

TEST(Parser, PrintParseRoundTrip)
{
    Program program = parseProgram(kSaxpySource);
    std::string printed = renderProgram(program);
    Program reparsed = parseProgram(printed);
    ASSERT_EQ(reparsed.nests().size(), 1u);

    // Semantics must survive the round trip.
    Interpreter a(program);
    Interpreter b(reparsed);
    a.seedArrays(3);
    b.seedArrays(3);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, 0.0), "");
}

TEST(Parser, RoundTripWithPreheaderAndStep)
{
    const char *source = R"(
param n = 9
real a(n)
real b(n)
do j = 1, align(1, n, 2), 2
  do i = 1, n
    pre t0 = a(j)
    b(i) = t0 + b(i) + a(j+1)
  end do
end do
)";
    Program program = parseProgram(source);
    Program reparsed = parseProgram(renderProgram(program));
    Interpreter x(program);
    Interpreter y(reparsed);
    x.seedArrays(11);
    y.seedArrays(11);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 0.0), "");
    EXPECT_EQ(reparsed.nests()[0].preheader().size(), 1u);
    EXPECT_EQ(reparsed.nests()[0].loop(0).step, 2);
}

// --- hardening regressions: reduced inputs from the fuzz sweep ------
//
// Each case below previously crashed (stack overflow), hung (infinite
// loop / runaway allocation), or silently mis-lexed. All must now be
// rejected with a FatalError.

TEST(ParserHardening, DeepLoopNestingIsFatalNotStackOverflow)
{
    std::string source;
    for (int i = 0; i < 1000; ++i)
        source += concat("do i", std::to_string(i), " = 1, 2\n");
    source += "x = 1\n";
    for (int i = 0; i < 1000; ++i)
        source += "end do\n";
    EXPECT_THROW(parseProgram(source), FatalError);
}

TEST(ParserHardening, DeepParensAreFatalNotStackOverflow)
{
    std::string source = "do i = 1, 2\n  x = ";
    source.append(100000, '(');
    source += "1";
    source.append(100000, ')');
    source += "\nend do\n";
    EXPECT_THROW(parseProgram(source), FatalError);
}

TEST(ParserHardening, LongUnaryMinusChainIsFatalNotStackOverflow)
{
    std::string source = "do i = 1, 2\n  x = ";
    source.append(100000, '-');
    source += "1\nend do\n";
    EXPECT_THROW(parseProgram(source), FatalError);
}

TEST(ParserHardening, DeepAlignNestingIsFatalNotStackOverflow)
{
    std::string source = "do i = 1, ";
    for (int k = 0; k < 10000; ++k)
        source += "align(1, ";
    source += "5";
    for (int k = 0; k < 10000; ++k)
        source += ", 2)";
    source += "\n  x = 1\nend do\n";
    EXPECT_THROW(parseProgram(source), FatalError);
}

TEST(ParserHardening, ModerateNestingStillParses)
{
    // The depth caps must not reject reasonable programs.
    std::string source;
    for (int i = 0; i < 16; ++i)
        source += concat("do i", std::to_string(i), " = 1, 2\n");
    source += "  x = ((((1 + 2))))\n";
    for (int i = 0; i < 16; ++i)
        source += "end do\n";
    Program program = parseProgram(source);
    EXPECT_EQ(program.nests().at(0).depth(), 16u);
}

TEST(ParserHardening, ZeroStepIsFatalNotInfiniteLoop)
{
    // Interpreting "do i = 1, 5, 0" used to spin forever.
    EXPECT_THROW(parseProgram("do i = 1, 5, 0\n  x = 1\nend do\n"),
                 FatalError);
}

TEST(ParserHardening, InterpreterRejectsNonPositiveStep)
{
    // Programmatically built nests bypass the parser's step check.
    LoopNest nest = parseSingleNest("do i = 1, 5\n  x = 1\nend do\n");
    nest.loop(0).step = 0;
    Program program;
    program.addNest(std::move(nest));
    Interpreter interp(program);
    EXPECT_THROW(interp.run(), FatalError);
}

TEST(ParserHardening, HugeIntegerLiteralIsFatal)
{
    // 92233720368547 * 100000 used to overflow int64 during bound
    // evaluation (undefined behaviour).
    EXPECT_THROW(parseProgram("param n = 92233720368547\n"), FatalError);
    EXPECT_THROW(tokenize("x = 99999999999999999999999999"), FatalError);
    // The cap itself is accepted.
    auto tokens = tokenize("x = 1000000000");
    EXPECT_EQ(tokens[2].intValue, 1000000000);
}

TEST(ParserHardening, HugeArrayExtentIsFatalInInterpreter)
{
    // 1016^3 elements (halo included) would allocate ~8.5 GB and
    // previously hung the host; the interpreter now refuses.
    Program program = parseProgram(R"(
param n = 1000
real a(n, n, n)
do i = 1, n
  a(i, 1, 1) = 0
end do
)");
    EXPECT_THROW(Interpreter interp(program), FatalError);
}

TEST(ParserHardening, MultiDotLiteralIsFatalNotSilentPrefixParse)
{
    // "1..5" used to lex as 1.0 with the "..5" silently dropped.
    EXPECT_THROW(tokenize("x = 1..5"), FatalError);
    EXPECT_THROW(tokenize("x = 1.2.3"), FatalError);
}

TEST(ParserHardening, TruncatedInputsAreFatalNotHangs)
{
    const char *cases[] = {
        "do",
        "do i",
        "do i =",
        "do i = 1,",
        "do i = 1, 5",
        "do i = 1, 5\n  a(i",
        "do i = 1, 5\n  a(i) = ",
        "do i = 1, 5\n  a(i) = b(",
        "do i = 1, 5\n  x = 1\n",
        "real a(",
        "real a(n",
        "param n",
        "param n =",
        "do i = 1, align(1, n\n",
    };
    for (const char *text : cases)
        EXPECT_THROW(parseProgram(text), FatalError) << text;
}

} // namespace
} // namespace ujam
