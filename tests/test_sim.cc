/**
 * @file
 * Tests for the cache simulator, the pipeline model and the program
 * simulator, including analytic miss-count checks on known access
 * patterns.
 */

#include <gtest/gtest.h>

#include "parser/parser.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{
namespace
{

TEST(CacheSim, SequentialStreamMissesOncePerLine)
{
    CacheSim cache(1024, 32, 1, 8); // 4 elements per line
    for (std::int64_t i = 0; i < 400; ++i)
        cache.access(i, false);
    EXPECT_EQ(cache.accesses(), 400u);
    EXPECT_EQ(cache.misses(), 100u);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.25);
}

TEST(CacheSim, TemporalReuseHits)
{
    CacheSim cache(1024, 32, 1, 8);
    for (int round = 0; round < 10; ++round) {
        for (std::int64_t i = 0; i < 64; ++i) // 512B working set: fits
            cache.access(i, round % 2 == 0);
    }
    EXPECT_EQ(cache.misses(), 16u); // only the first sweep misses
}

TEST(CacheSim, CapacityEviction)
{
    CacheSim cache(1024, 32, 1, 8); // 128 elements capacity
    for (int round = 0; round < 4; ++round) {
        for (std::int64_t i = 0; i < 256; ++i) // 2x capacity
            cache.access(i, false);
    }
    // Every line evicted before reuse: all accesses miss at line rate.
    EXPECT_EQ(cache.misses(), 4u * 64u);
}

TEST(CacheSim, ConflictVsAssociativity)
{
    // Two streams exactly one cache-size apart: direct-mapped
    // thrashes, 2-way does not.
    CacheSim direct(1024, 32, 1, 8);
    CacheSim twoway(1024, 32, 2, 8);
    for (std::int64_t i = 0; i < 128; ++i) {
        direct.access(i, false);
        direct.access(i + 128, false);
        twoway.access(i, false);
        twoway.access(i + 128, false);
    }
    EXPECT_EQ(direct.misses(), 256u); // ping-pong, every access misses
    EXPECT_EQ(twoway.misses(), 64u);  // one miss per line per stream
}

TEST(CacheSim, LruWithinSet)
{
    // 2-way, one set per... make 2 sets: capacity 4 lines.
    CacheSim cache(128, 32, 2, 8); // 2 sets x 2 ways
    // Three lines in set 0: 0, 8(->line2... addresses in elements:
    // line = addr*8/32: addr 0..3 line0(set0), addr 8..11 line2(set0),
    // addr 16..19 line4(set0).
    cache.access(0, false);  // miss
    cache.access(8, false);  // miss
    cache.access(0, false);  // hit (LRU now 8)
    cache.access(16, false); // miss, evicts 8
    cache.access(0, false);  // hit
    cache.access(8, false);  // miss again
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(CacheSim, FlushInvalidates)
{
    CacheSim cache(1024, 32, 1, 8);
    cache.access(0, false);
    cache.flush();
    cache.resetStats();
    cache.access(0, false);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheSim, BadGeometryPanics)
{
    EXPECT_THROW(CacheSim(1000, 24, 1, 8), PanicError); // non-pow2 line
    EXPECT_THROW(CacheSim(100, 32, 1, 8), PanicError);  // ragged sets
}

TEST(Pipeline, CountsBodyOps)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    t0 = a(i, j)
    b(i, j) = t0 * 2.0 + c(i)
    t1 = t0
  end do
end do
)");
    BodyOps ops = countBodyOps(nest);
    EXPECT_EQ(ops.loads, 2u);  // a(i,j), c(i)
    EXPECT_EQ(ops.stores, 1u); // b(i,j)
    EXPECT_EQ(ops.flops, 2u);
    EXPECT_EQ(ops.moves, 1u);  // t1 = t0
    EXPECT_EQ(ops.memOps(), 3u);
    EXPECT_EQ(ops.totalOps(), 6u);
}

TEST(Pipeline, RecurrenceDetection)
{
    // Scalar accumulation: recurrence.
    EXPECT_TRUE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    t = t + a(i, j)
  end do
end do
)")));
    // Pure rotation copies: no recurrence.
    EXPECT_FALSE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    t0 = a(i, j)
    b(i, j) = t0 + 1.0
    t1 = t0
  end do
end do
)")));
    // Rotation feeding an arithmetic use of its own chain: cycle.
    EXPECT_TRUE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    t0 = t1 * 0.5
    a(i, j) = t0
    t1 = t0
  end do
end do
)")));
    // Invariant array reduction: recurrence.
    EXPECT_TRUE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    s(j) = s(j) + a(i, j)
  end do
end do
)")));
    // Reduction over the innermost-varying element: no cross-inner
    // chain (each i accumulates a different element).
    EXPECT_FALSE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    s(i) = s(i) + a(i, j)
  end do
end do
)")));
    // First-order array recurrence along the innermost loop.
    EXPECT_TRUE(bodyHasArithmeticRecurrence(parseSingleNest(R"(
do j = 1, 4
  do i = 2, 4
    a(i, j) = a(i-1, j) * 0.5 + 1.0
  end do
end do
)")));
}

TEST(Pipeline, SteadyStateBounds)
{
    MachineModel machine = MachineModel::decAlpha21064();
    // 3 memory ops, 2 flops on a 1-mem/1-fp dual issue: mem-bound at 3.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    c(i, j) = a(i, j) + b(i, j)
  end do
end do
)");
    EXPECT_DOUBLE_EQ(steadyStateCyclesPerIteration(nest, machine), 3.0);

    // A recurrence raises the floor to the FP latency.
    LoopNest recur = parseSingleNest(R"(
do j = 1, 4
  do i = 1, 4
    s(j) = s(j) + a(i, j)
  end do
end do
)");
    EXPECT_DOUBLE_EQ(steadyStateCyclesPerIteration(recur, machine),
                     static_cast<double>(machine.fpLatency));
}

TEST(Simulator, CyclesScaleWithWork)
{
    Program small = parseProgram(R"(
param n = 16
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) * 0.5
  end do
end do
)");
    Program large = parseProgram(R"(
param n = 32
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) * 0.5
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    SimResult rs = simulateProgram(small, machine);
    SimResult rl = simulateProgram(large, machine);
    EXPECT_EQ(rs.iterations, 256u);
    EXPECT_EQ(rl.iterations, 1024u);
    EXPECT_GT(rl.cycles, 3.0 * rs.cycles);
}

TEST(Simulator, MissesMatchStreamingExpectation)
{
    // Pure streaming write over 64KB: one miss per 32B line.
    Program program = parseProgram(R"(
param n = 90
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = 1.0
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    SimResult result = simulateProgram(program, machine);
    // 8100 accesses; columns of 90 elements are not line aligned, so
    // allow one extra miss per column.
    EXPECT_GE(result.cacheMisses, 8100u / 4);
    EXPECT_LE(result.cacheMisses, 8100u / 4 + 90u);
}

TEST(Simulator, ScalarReplacementSavesCycles)
{
    Program program = parseProgram(R"(
param n = 96
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i+1, j) + a(i+2, j)
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    SimResult before = simulateProgram(program, machine);

    Program replaced = program;
    replaced.nests()[0] = scalarReplace(program.nests()[0]).nest;
    SimResult after = simulateProgram(replaced, machine);
    EXPECT_LT(after.cycles, before.cycles);
    EXPECT_LT(after.loads, before.loads);
}

TEST(Simulator, PrefetchHidesMissLatency)
{
    Program program = parseProgram(R"(
param n = 200
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 0.5
  end do
end do
)");
    MachineModel plain = MachineModel::wideIlp();
    MachineModel prefetch = MachineModel::wideIlpPrefetch();
    SimResult without = simulateProgram(program, plain);
    SimResult with = simulateProgram(program, prefetch);
    EXPECT_EQ(without.cacheMisses, with.cacheMisses);
    EXPECT_LT(with.cycles, without.cycles);
}

TEST(Simulator, BoardCacheSoftensCapacityMisses)
{
    // Working set larger than L1 but inside the L2: with the board
    // cache the same misses cost far less.
    Program program = parseProgram(R"(
param n = 64
real a(n, n)
real b(n, n)
do r = 1, 4
  do j = 1, n
    do i = 1, n
      b(i, j) = b(i, j) + a(i, j) * 0.5
    end do
  end do
end do
)");
    MachineModel with_l2 = MachineModel::decAlpha21064();
    MachineModel without = with_l2;
    without.l2Bytes = 0;
    without.missPenaltyCycles = with_l2.missPenaltyCycles;

    SimResult a = simulateProgram(program, with_l2);
    SimResult b = simulateProgram(program, without);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses); // same L1 behaviour
    EXPECT_LT(a.cycles, b.cycles);           // cheaper stalls
}

TEST(Simulator, PerNestBreakdownSumsToTotal)
{
    Program program = parseProgram(R"(
param n = 40
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = 1.0
  end do
end do
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) + 1.0
  end do
end do
)");
    MachineModel machine = MachineModel::decAlpha21064();
    SimResult result = simulateProgram(program, machine);
    ASSERT_EQ(result.nestCycles.size(), 2u);
    EXPECT_DOUBLE_EQ(result.nestCycles[0] + result.nestCycles[1],
                     result.cycles);
}

} // namespace
} // namespace ujam
