/**
 * @file
 * Supervision-tree tests (ctest -L serve-robust): worker crash
 * containment under concurrent clients, the crash-loop circuit
 * breaker into degraded cache-only mode, dispatch-mode fd passing,
 * SIGTERM draining, the restart-backoff and crash-window helpers,
 * and one exec-based test that kill -9s a worker of the real
 * ujam-serve binary mid-service.
 *
 * The in-process tests fork() a Supervisor from the test binary.
 * That is safe here -- and only here -- because the supervisor is
 * single-threaded until it stops forking, and the test process
 * spawns no threads before the fork.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/supervisor.hh"
#include "support/json.hh"

namespace ujam
{
namespace
{

const char *kSource = R"(
param n = 16
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) + b(j, i)
  end do
end do
)";

std::string
scratchDir(const std::string &tag)
{
    return testing::TempDir() + "ujam-sup-" + tag + "-" +
           std::to_string(getpid());
}

std::string
socketPath(const std::string &tag)
{
    return "/tmp/ujam-sup-" + tag + "-" + std::to_string(getpid()) +
           ".sock";
}

std::string
optimizeLine(const std::string &id, int max_unroll = 0)
{
    JsonWriter json;
    json.beginObject();
    json.field("op", "optimize");
    json.field("id", id);
    json.field("source", kSource);
    if (max_unroll > 0) {
        json.key("options")
            .beginObject()
            .field("max_unroll", static_cast<std::int64_t>(max_unroll))
            .endObject();
    }
    json.endObject();
    return json.str();
}

std::string
responseStatus(const std::string &frame)
{
    JsonParseResult parsed = parseJson(frame);
    if (!parsed.ok() || !parsed.value->isObject())
        return "<unparseable>";
    const JsonValue *status = parsed.value->find("status");
    return status && status->isString() ? status->stringValue
                                        : "<unparseable>";
}

/** Run a Supervisor in a forked child; its exit code is run()'s. */
pid_t
startSupervisor(const SupervisorConfig &config)
{
    pid_t pid = ::fork();
    if (pid == 0) {
        try {
            Supervisor supervisor(config);
            ::_exit(supervisor.run());
        } catch (...) {
            ::_exit(2);
        }
    }
    return pid;
}

int
waitForExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/** Fetch and parse the supervisor section of the metrics document. */
SupervisorStats
fetchSupervisorStats(const std::string &socket_path)
{
    ServeClient client;
    SupervisorStats stats;
    if (!client.connect(socket_path))
        return stats;
    std::string response =
        client.requestWithRetry("{\"op\": \"metrics\"}", 5);
    JsonParseResult parsed = parseJson(response);
    if (!parsed.ok())
        return stats;
    const JsonValue *result = parsed.value->find("result");
    const JsonValue *sup = result ? result->find("supervisor") : nullptr;
    if (!sup)
        return stats;
    stats.workersConfigured = static_cast<std::uint64_t>(
        *sup->find("workers_configured")->asInt());
    stats.workersAlive = static_cast<std::uint64_t>(
        *sup->find("workers_alive")->asInt());
    stats.restartsTotal = static_cast<std::uint64_t>(
        *sup->find("restarts_total")->asInt());
    stats.crashesTotal = static_cast<std::uint64_t>(
        *sup->find("crashes_total")->asInt());
    const JsonValue *degraded = sup->find("degraded");
    stats.degraded = degraded && degraded->isBool() &&
                     degraded->boolValue;
    return stats;
}

void
shutdownService(const std::string &socket_path)
{
    ServeClient closer;
    if (closer.connect(socket_path))
        closer.request("{\"op\": \"shutdown\"}");
}

// --- pure helpers ---------------------------------------------------

TEST(SupervisorBackoff, DeterministicExponentialAndBounded)
{
    // Same history, same delay -- restart schedules are reproducible.
    EXPECT_EQ(restartBackoffMs(50, 5000, 1, 0),
              restartBackoffMs(50, 5000, 1, 0));

    // Exponential growth up to the cap, jitter included.
    std::int64_t previous = 0;
    for (std::uint64_t crash = 1; crash <= 12; ++crash) {
        std::int64_t delay = restartBackoffMs(50, 5000, crash, 3);
        EXPECT_GE(delay, previous / 2) << crash; // monotone-ish base
        EXPECT_LE(delay, 5000) << crash;
        EXPECT_GE(delay, 50) << crash;
        previous = delay;
    }
    EXPECT_EQ(restartBackoffMs(50, 5000, 30, 1), 5000);

    // Sibling workers get different jitter for the same crash count.
    bool differs = false;
    for (std::size_t worker = 1; worker < 8 && !differs; ++worker)
        differs = restartBackoffMs(50, 5000, 3, worker) !=
                  restartBackoffMs(50, 5000, 3, 0);
    EXPECT_TRUE(differs);

    // Degenerate knobs stay sane.
    EXPECT_GE(restartBackoffMs(0, 0, 1, 0), 1);
    EXPECT_LE(restartBackoffMs(100, 10, 5, 0), 100);
}

TEST(SupervisorBackoff, CrashWindowTripsOnlyInsideTheWindow)
{
    CrashWindow window(3, 1000);
    EXPECT_FALSE(window.recordCrash(0));
    EXPECT_FALSE(window.recordCrash(100));
    EXPECT_FALSE(window.recordCrash(200));
    EXPECT_EQ(window.inWindow(200), 3u);
    // The fourth crash inside the window trips the breaker.
    EXPECT_TRUE(window.recordCrash(300));

    // Spread far enough apart, crashes never accumulate.
    CrashWindow slow(3, 1000);
    for (std::int64_t at = 0; at < 10000; at += 2000)
        EXPECT_FALSE(slow.recordCrash(at));
    EXPECT_EQ(slow.inWindow(8000), 1u);
    EXPECT_EQ(slow.inWindow(10000), 0u);
}

// --- crash containment (the acceptance scenario) --------------------

TEST(SupervisorRobust, WorkerCrashLosesOnlyItsConnections)
{
    std::string dir = scratchDir("crash");
    std::string sock = socketPath("crash");

    // Reference answers from an unsupervised, fault-free server.
    std::vector<std::string> lines;
    for (int i = 1; i <= 4; ++i)
        lines.push_back(optimizeLine("req", i));
    std::vector<std::string> expected;
    {
        ServerConfig reference;
        reference.cacheDir = dir + "-reference";
        reference.workerFaults = std::vector<ProcessFaultSpec>{};
        UjamServer server(std::move(reference));
        for (const std::string &line : lines)
            expected.push_back(server.processLine(line));
    }

    SupervisorConfig config;
    config.server.socketPath = sock;
    config.server.cacheDir = dir;
    config.server.cacheShards = 4;
    config.server.threads = 2;
    // Worker 0 is SIGKILLed while serving its second request -- once
    // per service lifetime (the ordinal counts in shared memory).
    config.server.workerFaults = std::vector<ProcessFaultSpec>{
        parseProcessFaultSpecs("worker_crash:2:0").front()};
    config.workers = 4;
    config.dispatch = true; // deterministic round-robin placement
    config.backoffBaseMs = 10;
    config.backoffMaxMs = 100;
    pid_t supervisor = startSupervisor(config);
    ASSERT_GT(supervisor, 0);

    // Four concurrent clients, each sending every request. The one
    // whose worker dies mid-batch reconnects and resends; everyone
    // must end up with the reference bytes.
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&] {
            ServeClient client;
            if (!client.connect(sock, 5000)) {
                mismatches.fetch_add(100);
                return;
            }
            for (std::size_t i = 0; i < lines.size(); ++i) {
                std::string response =
                    client.requestWithRetry(lines[i], 10);
                if (response != expected[i])
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);

    // The crash happened, was contained, and the slot came back.
    auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    SupervisorStats stats;
    while (std::chrono::steady_clock::now() < give_up) {
        stats = fetchSupervisorStats(sock);
        if (stats.crashesTotal >= 1 && stats.workersAlive == 4)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_EQ(stats.crashesTotal, 1u);
    EXPECT_GE(stats.restartsTotal, 1u);
    EXPECT_EQ(stats.workersAlive, 4u);
    EXPECT_FALSE(stats.degraded);

    shutdownService(sock);
    EXPECT_EQ(waitForExit(supervisor), 0);
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir + "-reference");
}

TEST(SupervisorRobust, CrashLoopTripsBreakerIntoCacheOnlyMode)
{
    std::string dir = scratchDir("breaker");
    std::string sock = socketPath("breaker");
    std::string cached_line = optimizeLine("warm");

    // Pre-populate the persistent cache with one answer.
    std::string expected;
    {
        ServerConfig warm;
        warm.cacheDir = dir;
        warm.workerFaults = std::vector<ProcessFaultSpec>{};
        UjamServer server(std::move(warm));
        expected = server.processLine(cached_line);
        ASSERT_EQ(responseStatus(expected), "ok");
    }

    SupervisorConfig config;
    config.server.socketPath = sock;
    config.server.cacheDir = dir;
    config.server.threads = 1;
    // Every pipeline request kills its worker: a reproducible crash.
    config.server.workerFaults = std::vector<ProcessFaultSpec>{
        parseProcessFaultSpecs("worker_crash").front()};
    config.workers = 2;
    config.breakerCrashes = 2;
    config.breakerWindowMs = 30000;
    config.backoffBaseMs = 5;
    config.backoffMaxMs = 20;
    config.drainMs = 2000;
    pid_t supervisor = startSupervisor(config);
    ASSERT_GT(supervisor, 0);

    // Hammer until the breaker trips and "degraded" frames appear.
    auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    bool degraded_seen = false;
    int attempt = 0;
    while (!degraded_seen &&
           std::chrono::steady_clock::now() < give_up) {
        ServeClient client;
        if (!client.connect(sock, 2000)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        std::string line =
            optimizeLine("miss-" + std::to_string(attempt++), 2);
        std::string response = client.requestWithRetry(line, 2);
        if (responseStatus(response) == "degraded")
            degraded_seen = true;
    }
    ASSERT_TRUE(degraded_seen);

    // Cached answers survive degradation byte-identically; nothing
    // new is computed; the metrics say why.
    ServeClient client;
    ASSERT_TRUE(client.connect(sock, 2000));
    EXPECT_EQ(client.requestWithRetry(cached_line, 5), expected);
    SupervisorStats stats = fetchSupervisorStats(sock);
    EXPECT_TRUE(stats.degraded);
    EXPECT_GE(stats.crashesTotal, 3u);
    client.close();

    shutdownService(sock);
    EXPECT_EQ(waitForExit(supervisor), kExitDegraded);
    std::filesystem::remove_all(dir);
}

// --- shutdown paths -------------------------------------------------

TEST(SupervisorRobust, SigtermDrainsEveryWorker)
{
    std::string sock = socketPath("sigterm");
    SupervisorConfig config;
    config.server.socketPath = sock;
    config.server.threads = 1;
    config.server.workerFaults = std::vector<ProcessFaultSpec>{};
    config.workers = 3;
    config.drainMs = 5000;
    pid_t supervisor = startSupervisor(config);
    ASSERT_GT(supervisor, 0);

    ServeClient client;
    ASSERT_TRUE(client.connect(sock, 5000));
    ASSERT_EQ(responseStatus(client.request("{\"op\": \"ping\"}")),
              "ok");
    client.close();

    ::kill(supervisor, SIGTERM);
    EXPECT_EQ(waitForExit(supervisor), 0);
    EXPECT_FALSE(std::filesystem::exists(sock));
}

TEST(SupervisorRobust, ShutdownFrameDrainsTheWholeService)
{
    std::string sock = socketPath("shutdown");
    SupervisorConfig config;
    config.server.socketPath = sock;
    config.server.threads = 1;
    config.server.workerFaults = std::vector<ProcessFaultSpec>{};
    config.workers = 3;
    pid_t supervisor = startSupervisor(config);
    ASSERT_GT(supervisor, 0);

    ServeClient client;
    ASSERT_TRUE(client.connect(sock, 5000));
    EXPECT_EQ(responseStatus(client.request("{\"op\": \"shutdown\"}")),
              "ok");
    client.close();
    EXPECT_EQ(waitForExit(supervisor), 0);
}

TEST(SupervisorRobust, DispatchModePassesConnections)
{
    std::string sock = socketPath("dispatch");
    SupervisorConfig config;
    config.server.socketPath = sock;
    config.server.threads = 1;
    config.server.workerFaults = std::vector<ProcessFaultSpec>{};
    config.workers = 2;
    config.dispatch = true;
    pid_t supervisor = startSupervisor(config);
    ASSERT_GT(supervisor, 0);

    // Several short-lived connections: round-robin must hand each
    // to a live worker and every one must answer.
    for (int i = 0; i < 6; ++i) {
        ServeClient client;
        ASSERT_TRUE(client.connect(sock, 5000)) << i;
        EXPECT_EQ(responseStatus(client.request("{\"op\": \"ping\"}")),
                  "ok")
            << i;
    }

    shutdownService(sock);
    EXPECT_EQ(waitForExit(supervisor), 0);
}

// --- the real binary, a real kill -9 --------------------------------

#ifdef UJAM_SERVE_BIN
TEST(SupervisorRobust, ExternalSigkillOfRealWorkerIsContained)
{
    std::string dir = scratchDir("extkill");
    std::string sock = socketPath("extkill");

    pid_t supervisor = ::fork();
    ASSERT_GE(supervisor, 0);
    if (supervisor == 0) {
        ::execl(UJAM_SERVE_BIN, UJAM_SERVE_BIN, "--socket",
                sock.c_str(), "--workers", "4", "--cache-dir",
                dir.c_str(), "--threads", "1", "--backoff-base-ms",
                "10", static_cast<char *>(nullptr));
        ::_exit(127);
    }

    ServeClient client;
    ASSERT_TRUE(client.connect(sock, 5000));
    ASSERT_EQ(responseStatus(client.request("{\"op\": \"ping\"}")),
              "ok");
    client.close();

    // Find one worker: a child of the supervisor.
    pid_t worker = -1;
    auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (worker < 0 && std::chrono::steady_clock::now() < give_up) {
        for (const auto &entry :
             std::filesystem::directory_iterator("/proc")) {
            std::string name = entry.path().filename();
            if (name.find_first_not_of("0123456789") !=
                std::string::npos)
                continue;
            std::ifstream stat(entry.path() / "stat");
            std::string token;
            pid_t pid = 0, ppid = 0;
            stat >> pid >> token >> token >> ppid;
            if (ppid == supervisor) {
                worker = pid;
                break;
            }
        }
        if (worker < 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    ASSERT_GT(worker, 0) << "no worker child found";

    ::kill(worker, SIGKILL);

    // Service keeps answering and the slot is re-forked.
    give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    SupervisorStats stats;
    while (std::chrono::steady_clock::now() < give_up) {
        stats = fetchSupervisorStats(sock);
        if (stats.restartsTotal >= 1 && stats.workersAlive == 4)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_GE(stats.restartsTotal, 1u);
    EXPECT_EQ(stats.workersAlive, 4u);
    EXPECT_GE(stats.crashesTotal, 1u);

    shutdownService(sock);
    EXPECT_EQ(waitForExit(supervisor), 0);
    std::filesystem::remove_all(dir);
}
#endif // UJAM_SERVE_BIN

} // namespace
} // namespace ujam
