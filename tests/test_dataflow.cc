/**
 * @file
 * The symbolic dataflow engine: interval/congruence domain algebra,
 * the abstract interpretation over nests, and the soundness property
 * -- for fuzzed parameter bindings, the static per-array subscript
 * intervals must contain every subscript the concrete interpreter
 * actually produces (DataflowProperty, part of the fuzz-fast label).
 */

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "analysis/dataflow.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

// --- Interval algebra -----------------------------------------------

TEST(Interval, BasicPredicates)
{
    EXPECT_TRUE(Interval::top() == Interval::top());
    EXPECT_FALSE(Interval::top().bounded());
    EXPECT_FALSE(Interval::top().isEmpty());
    EXPECT_TRUE(Interval::point(3).isPoint());
    EXPECT_TRUE(Interval::empty().isEmpty());
    EXPECT_TRUE(Interval::closed(2, 1).isEmpty());

    EXPECT_TRUE(Interval::closed(1, 5).contains(1));
    EXPECT_TRUE(Interval::closed(1, 5).contains(5));
    EXPECT_FALSE(Interval::closed(1, 5).contains(6));
    EXPECT_FALSE(Interval::empty().contains(0));
    EXPECT_TRUE(Interval::top().contains(kMax));
}

TEST(Interval, HullAndDisjoint)
{
    Interval h = Interval::hull(Interval::closed(1, 3),
                                Interval::closed(7, 9));
    EXPECT_EQ(h, Interval::closed(1, 9));
    // Hull with an unbounded side loses that side.
    Interval half = Interval::hull(Interval::closed(1, 3),
                                   Interval::top());
    EXPECT_FALSE(half.bounded());

    EXPECT_TRUE(Interval::disjoint(Interval::closed(1, 3),
                                   Interval::closed(4, 9)));
    EXPECT_FALSE(Interval::disjoint(Interval::closed(1, 4),
                                    Interval::closed(4, 9)));
    // Disjointness against an unbounded interval is never provable...
    EXPECT_FALSE(Interval::disjoint(Interval::closed(1, 3),
                                    Interval::top()));
    // ...but an empty interval is disjoint from everything.
    EXPECT_TRUE(Interval::disjoint(Interval::empty(), Interval::top()));
}

TEST(Interval, Arithmetic)
{
    EXPECT_EQ(Interval::closed(1, 4).plus(Interval::closed(-2, 3)),
              Interval::closed(-1, 7));
    EXPECT_EQ(Interval::closed(1, 4).shifted(10),
              Interval::closed(11, 14));
    EXPECT_EQ(Interval::closed(1, 4).scaled(3), Interval::closed(3, 12));
    // A negative factor swaps the ends.
    EXPECT_EQ(Interval::closed(1, 4).scaled(-2),
              Interval::closed(-8, -2));
    EXPECT_EQ(Interval::closed(1, 4).scaled(0), Interval::point(0));
}

TEST(Interval, ArithmeticSaturates)
{
    Interval huge = Interval::closed(kMax - 1, kMax);
    EXPECT_EQ(huge.plus(Interval::closed(10, 10)).hi, kMax);
    EXPECT_EQ(huge.scaled(2).hi, kMax);
    EXPECT_EQ(Interval::closed(kMin, kMin + 1).shifted(-5).lo, kMin);
    EXPECT_EQ(satAdd(kMax, 1), kMax);
    EXPECT_EQ(satAdd(kMin, -1), kMin);
    EXPECT_EQ(satMul(kMax / 2, 3), kMax);
    EXPECT_EQ(satMul(kMin / 2, 3), kMin);
    EXPECT_EQ(satMul(kMax, -2), kMin);
}

TEST(Interval, ToString)
{
    EXPECT_EQ(Interval::closed(2, 143).toString(), "[2, 143]");
    EXPECT_EQ(Interval::top().toString(), "top");
    EXPECT_EQ(Interval::empty().toString(), "empty");
}

// --- Congruence algebra ---------------------------------------------

TEST(Congruence, NormalizationAndMembership)
{
    Congruence c = Congruence::stride(4, -3); // -3 mod 4 == 1
    EXPECT_EQ(c.modulus, 4);
    EXPECT_EQ(c.residue, 1);
    EXPECT_TRUE(c.admits(5));
    EXPECT_TRUE(c.admits(-3));
    EXPECT_FALSE(c.admits(4));

    EXPECT_TRUE(Congruence::top().admits(7));
    EXPECT_TRUE(Congruence::constant(7).admits(7));
    EXPECT_FALSE(Congruence::constant(7).admits(8));
    EXPECT_TRUE(Congruence::stride(1, 0).isTop());
}

TEST(Congruence, JoinIsTheGcdLattice)
{
    // Two constants join to a stride of their difference.
    Congruence j = Congruence::join(Congruence::constant(3),
                                    Congruence::constant(7));
    EXPECT_TRUE(j.admits(3));
    EXPECT_TRUE(j.admits(7));
    EXPECT_TRUE(j.admits(11));

    // Same fact joins to itself.
    Congruence s = Congruence::stride(6, 2);
    EXPECT_EQ(Congruence::join(s, s), s);

    // mod 4 and mod 6 collapse to mod gcd-structure; join must admit
    // every member of both inputs.
    Congruence a = Congruence::stride(4, 1);
    Congruence b = Congruence::stride(6, 3);
    Congruence ab = Congruence::join(a, b);
    for (std::int64_t v = -24; v <= 24; ++v) {
        if (a.admits(v) || b.admits(v)) {
            EXPECT_TRUE(ab.admits(v)) << v;
        }
    }
}

TEST(Congruence, Arithmetic)
{
    Congruence c = Congruence::stride(4, 1);
    // (1 mod 4) + (2 mod 4) = (3 mod 4); adding a constant shifts.
    EXPECT_EQ(c.plus(Congruence::stride(4, 2)),
              Congruence::stride(4, 3));
    EXPECT_EQ(c.plus(Congruence::constant(5)),
              Congruence::stride(4, 2));
    // Scaling multiplies modulus and residue.
    Congruence scaled = c.scaled(3);
    EXPECT_TRUE(scaled.admits(3));
    EXPECT_TRUE(scaled.admits(15));
    EXPECT_FALSE(scaled.admits(6));
    EXPECT_EQ(c.scaled(0), Congruence::constant(0));
}

// --- boundInterval --------------------------------------------------

TEST(BoundInterval, PointTopAndAligned)
{
    ParamBindings params{{"n", 10}};
    EXPECT_EQ(boundInterval(Bound::param("n"), params),
              Interval::point(10));
    EXPECT_EQ(boundInterval(Bound::constant(3), params),
              Interval::point(3));
    // An unbound parameter widens to top.
    EXPECT_FALSE(boundInterval(Bound::param("m"), params).bounded());

    // align(1, 10, 3) = 9 exactly when both sub-bounds are points.
    Bound aligned = Bound::alignedUpper(Bound::constant(1),
                                        Bound::param("n"), 3);
    EXPECT_EQ(boundInterval(aligned, params), Interval::point(9));
    // With the upper bound unbound the window keeps only what is
    // certain: never below lower - 1 (the zero-trip rendering).
    Bound open = Bound::alignedUpper(Bound::constant(1),
                                     Bound::param("m"), 3);
    Interval window = boundInterval(open, params);
    EXPECT_TRUE(window.hasLo);
    EXPECT_EQ(window.lo, 0);
    EXPECT_FALSE(window.hasHi);
}

// --- NestDataflow ---------------------------------------------------

Program
parse(const char *source)
{
    return parseProgram(source, "<dataflow-test>");
}

TEST(NestDataflowFacts, LoopValuesTripAndStride)
{
    Program program = parse("param n = 9\n"
                            "real a(n)\n"
                            "real b(n)\n"
                            "do j = 1, align(1, n, 2), 2\n"
                            "  do i = 1, n\n"
                            "    b(i) = b(i) + a(j)\n"
                            "  end do\n"
                            "end do\n");
    NestDataflow df(program, program.nests()[0],
                    program.paramDefaults(), 8);
    ASSERT_EQ(df.loops().size(), 2u);

    const LoopDataflow &j = df.loops()[0];
    // align(1, 9, 2) = 8: four iterations at j = 1, 3, 5, 7.
    EXPECT_EQ(j.values, Interval::closed(1, 8));
    // j == 1 (mod 2): the step congruence.
    EXPECT_TRUE(j.cong.admits(1));
    EXPECT_TRUE(j.cong.admits(7));
    EXPECT_FALSE(j.cong.admits(2));
    EXPECT_EQ(j.trip, Interval::point(4));
    EXPECT_FALSE(j.provablyEmpty());
    EXPECT_FALSE(j.provablySingle());

    const LoopDataflow &i = df.loops()[1];
    EXPECT_EQ(i.values, Interval::closed(1, 9));
    EXPECT_EQ(i.trip, Interval::point(9));

    EXPECT_FALSE(df.provablyEmpty());
    EXPECT_TRUE(df.allInBounds());
    EXPECT_TRUE(df.allInHalo());
}

TEST(NestDataflowFacts, AccessFactsAndInnerStride)
{
    Program program = parse("param n = 8\n"
                            "real a(n, n)\n"
                            "real b(n, n)\n"
                            "do i = 1, n\n"
                            "  do j = 1, n\n"
                            "    b(i, j) = a(i, j - 1) + 1.0\n"
                            "  end do\n"
                            "end do\n");
    const LoopNest &nest = program.nests()[0];
    NestDataflow df(program, nest, program.paramDefaults(), 8);
    ASSERT_EQ(df.accesses().size(), nest.accesses().size());

    // Find the a(i, j-1) read.
    const AccessDataflow *read = nullptr;
    for (const AccessDataflow &ad : df.accesses()) {
        if (ad.array == "a" && !ad.isWrite)
            read = &ad;
    }
    ASSERT_NE(read, nullptr);
    ASSERT_EQ(read->dims.size(), 2u);
    EXPECT_EQ(read->dims[0].range, Interval::closed(1, 8));
    EXPECT_EQ(read->dims[1].range, Interval::closed(0, 7));
    EXPECT_TRUE(read->inHalo);
    EXPECT_FALSE(read->inBounds); // j - 1 reaches 0

    // Column-major with a padded leading extent of 8 + 2*8 = 24:
    // advancing j (the innermost loop) jumps a full padded column.
    ASSERT_TRUE(read->innerStride.has_value());
    EXPECT_EQ(*read->innerStride, 24);
    EXPECT_TRUE(read->flat.bounded());
    EXPECT_FALSE(read->flat.isEmpty());
    EXPECT_GE(read->flat.lo, 0);
}

TEST(NestDataflowFacts, EmptyAndSingleTripLoops)
{
    Program program = parse("param n = 8\n"
                            "real a(n, n)\n"
                            "do i = 5, 5\n"
                            "  do j = 8, 1\n"
                            "    a(i, j) = a(i, j) + 1.0\n"
                            "  end do\n"
                            "end do\n");
    NestDataflow df(program, program.nests()[0],
                    program.paramDefaults(), 8);
    EXPECT_TRUE(df.loops()[0].provablySingle());
    EXPECT_TRUE(df.loops()[1].provablyEmpty());
    EXPECT_TRUE(df.provablyEmpty());
}

TEST(NestDataflowFacts, UnboundParameterWidensToTop)
{
    Program program;
    program.declareArray(
        {"a", {Bound::constant(8), Bound::constant(8)}});
    LoopNest nest = NestBuilder()
                        .name("widen")
                        .loop("i", 1, 8)
                        .loop("j", 1, 8)
                        .assign("a", {idx("i"), idx("j")}, lit(0.0))
                        .build();
    nest.loop(0).upper = Bound::param("m");
    program.addNest(nest);

    NestDataflow df(program, nest, program.paramDefaults(), 8);
    EXPECT_FALSE(df.loops()[0].values.bounded());
    EXPECT_TRUE(df.loops()[0].values.hasLo); // lower bound still known
    // i's subscript interval is unbounded, so no certificate...
    EXPECT_FALSE(df.allInHalo());
    // ...but j's facts survive the widening untouched.
    EXPECT_EQ(df.loops()[1].values, Interval::closed(1, 8));
}

TEST(NestDataflowFacts, UnrolledDimRangeGrowsForward)
{
    Program program = parse("param n = 8\n"
                            "real a(n, n)\n"
                            "real b(n, n)\n"
                            "do i = 1, n\n"
                            "  do j = 1, n\n"
                            "    b(i, j) = a(i + 2, j)\n"
                            "  end do\n"
                            "end do\n");
    const LoopNest &nest = program.nests()[0];
    NestDataflow df(program, nest, program.paramDefaults(), 8);
    // Execution order: the a(i + 2, j) read precedes the write.
    std::vector<Access> accesses = nest.accesses();
    ASSERT_EQ(accesses[0].ref.array(), "a");
    const ArrayRef &ref = accesses[0].ref;

    EXPECT_EQ(df.unrolledDimRange(ref, 0, IntVector{0, 0}),
              Interval::closed(3, 10));
    // Unroll i by 3: copies at iv + 0..3, reach grows by 3 forward.
    EXPECT_EQ(df.unrolledDimRange(ref, 0, IntVector{3, 0}),
              Interval::closed(3, 13));
    // The j dimension is not affected by unrolling i.
    EXPECT_EQ(df.unrolledDimRange(ref, 1, IntVector{3, 0}),
              Interval::closed(1, 8));
}

// --- the soundness property against the interpreter -----------------

/**
 * Static-over-approximation check for one program: run the concrete
 * interpreter with subscript tracking, then require every observed
 * per-array min/max subscript to lie inside the hull of the abstract
 * per-access intervals of the nests that touch the array.
 */
void
expectSoundOn(const Program &program, const ParamBindings &overrides,
              std::uint64_t seed, const std::string &label)
{
    Interpreter interp(program, overrides);
    interp.trackSubscriptRanges(true);
    interp.seedArrays(seed);
    interp.run();

    // Hull the abstract ranges per array dimension over every nest.
    std::map<std::string, std::vector<Interval>> abstract;
    for (const LoopNest &nest : program.nests()) {
        NestDataflow df(program, nest, interp.params(),
                        Interpreter::haloElems);
        auto fold = [&](const AccessDataflow &ad) {
            auto [it, fresh] = abstract.try_emplace(ad.array);
            if (fresh)
                it->second.assign(ad.dims.size(), Interval::empty());
            for (std::size_t d = 0;
                 d < ad.dims.size() && d < it->second.size(); ++d) {
                it->second[d] =
                    Interval::hull(it->second[d], ad.dims[d].range);
            }
        };
        for (const AccessDataflow &ad : df.accesses())
            fold(ad);
        for (const AccessDataflow &ad : df.headerAccesses())
            fold(ad);
    }

    for (const auto &[array, dims] : interp.observedSubscriptRanges()) {
        auto it = abstract.find(array);
        ASSERT_NE(it, abstract.end()) << label << ": " << array;
        ASSERT_EQ(it->second.size(), dims.size())
            << label << ": " << array;
        for (std::size_t d = 0; d < dims.size(); ++d) {
            EXPECT_TRUE(it->second[d].contains(dims[d].min))
                << label << ": " << array << " dim " << d + 1
                << " observed min " << dims[d].min << " outside "
                << it->second[d].toString();
            EXPECT_TRUE(it->second[d].contains(dims[d].max))
                << label << ": " << array << " dim " << d + 1
                << " observed max " << dims[d].max << " outside "
                << it->second[d].toString();
        }
    }
}

TEST(DataflowProperty, SuiteIntervalsCoverInterpreterUnderParamFuzz)
{
    // Every suite loop under fuzzed parameter bindings: per-item
    // stream derivation keeps each (loop, round) reproducible in
    // isolation.
    constexpr std::uint64_t kMaster = 20260809;
    std::uint64_t item = 0;
    for (const SuiteLoop &loop : testSuite()) {
        for (int round = 0; round < 3; ++round, ++item) {
            Rng rng(Rng::deriveStream(kMaster, item));
            Program program = loadSuiteProgram(loop);
            // One shared value per round: suite loops relate their
            // parameters (an extent in one may bound a loop in
            // another), so independent fuzz could step outside the
            // halo and turn a soundness check into a fault check.
            std::int64_t value = rng.range(3, 12);
            ParamBindings overrides;
            for (const auto &kv : program.paramDefaults())
                overrides[kv.first] = value;
            expectSoundOn(program, overrides, rng.next(),
                          concat(loop.name, " round ", round));
        }
    }
}

TEST(DataflowProperty, RandomNestsIntervalsCoverInterpreter)
{
    // Random builder nests with random offsets -- shapes the suite
    // does not cover (negative offsets on every dim, repeated arrays).
    constexpr std::uint64_t kMaster = 97170809;
    for (int item = 0; item < 40; ++item) {
        Rng rng(Rng::deriveStream(kMaster, item));
        Program program;
        program.declareArray(
            {"a", {Bound::constant(12), Bound::constant(12)}});
        program.declareArray(
            {"b", {Bound::constant(12), Bound::constant(12)}});

        NestBuilder b;
        b.loop("i", 1, rng.range(2, 10)).loop("j", 1, rng.range(2, 10));
        auto off = [&]() { return rng.range(-3, 3); };
        ExprPtr rhs = b.read("a", {idx("i", off()), idx("j", off())});
        int extra = static_cast<int>(rng.range(1, 3));
        for (int r = 0; r < extra; ++r) {
            rhs = add(std::move(rhs),
                      b.read("a", {idx("i", off()), idx("j", off())}));
        }
        b.assign("b", {idx("i"), idx("j")}, rhs);
        LoopNest nest = b.name(concat("rand", item)).build();
        program.addNest(nest);
        if (!validateProgram(program).empty())
            continue;

        expectSoundOn(program, {}, rng.next(), concat("rand", item));
    }
}

} // namespace
} // namespace ujam
