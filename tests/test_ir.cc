/**
 * @file
 * Unit tests for the IR: references, expressions, statements, bounds,
 * nests, builder, printer, validation and the interpreter.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interp.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "support/diagnostics.hh"

namespace ujam
{
namespace
{

ArrayRef
makeRef2(const std::string &name, std::int64_t ci, std::int64_t cj)
{
    // a(i + ci, j + cj) in a depth-2 nest.
    return ArrayRef(name, {IntVector{1, 0}, IntVector{0, 1}},
                    IntVector{ci, cj});
}

TEST(ArrayRef, UniformlyGenerated)
{
    ArrayRef a = makeRef2("a", 0, 0);
    ArrayRef b = makeRef2("a", -2, 1);
    ArrayRef c = makeRef2("b", 0, 0);
    EXPECT_TRUE(a.uniformlyGeneratedWith(b));
    EXPECT_FALSE(a.uniformlyGeneratedWith(c));

    ArrayRef transposed("a", {IntVector{0, 1}, IntVector{1, 0}},
                        IntVector{0, 0});
    EXPECT_FALSE(a.uniformlyGeneratedWith(transposed));
}

TEST(ArrayRef, SivSeparable)
{
    EXPECT_TRUE(makeRef2("a", 1, -1).isSivSeparable());
    // a(i+j, j) couples two induction variables in one subscript.
    ArrayRef coupled("a", {IntVector{1, 1}, IntVector{0, 1}},
                     IntVector{0, 0});
    EXPECT_FALSE(coupled.isSivSeparable());
    // a(i, i) uses one induction variable in two subscripts.
    ArrayRef repeated("a", {IntVector{1, 0}, IntVector{1, 0}},
                      IntVector{0, 0});
    EXPECT_FALSE(repeated.isSivSeparable());
}

TEST(ArrayRef, ShiftedAppliesSubscriptMatrix)
{
    ArrayRef a("a", {IntVector{2, 0}, IntVector{0, 1}}, IntVector{1, 0});
    ArrayRef shifted = a.shifted(IntVector{3, 1});
    EXPECT_EQ(shifted.offset(), (IntVector{7, 1}));
    EXPECT_TRUE(a.uniformlyGeneratedWith(shifted));
}

TEST(ArrayRef, SpatialMatrixZeroesFirstRow)
{
    ArrayRef a = makeRef2("a", 4, 5);
    RatMatrix hs = a.spatialSubscriptMatrix();
    EXPECT_TRUE(hs.at(0, 0).isZero());
    EXPECT_EQ(hs.at(1, 1), Rational(1));
    EXPECT_EQ(a.spatialOffset(), (IntVector{0, 5}));
}

TEST(ArrayRef, LoopAndTermQueries)
{
    ArrayRef a("a", {IntVector{0, 3}, IntVector{0, 0}}, IntVector{0, 7});
    EXPECT_EQ(a.loopForDim(0), 1);
    EXPECT_EQ(a.loopForDim(1), -1);
    auto [dim, coeff] = a.termForLoop(1);
    EXPECT_EQ(dim, 0);
    EXPECT_EQ(coeff, 3);
    auto [dim0, coeff0] = a.termForLoop(0);
    EXPECT_EQ(dim0, -1);
    EXPECT_EQ(coeff0, 0);
}

TEST(ArrayRef, ToStringRendersAffineForms)
{
    ArrayRef a("a", {IntVector{1, 0}, IntVector{0, -2}}, IntVector{-1, 3});
    EXPECT_EQ(a.toString({"i", "j"}), "a(i-1, -2*j+3)");
    ArrayRef c("c", {IntVector{0, 0}}, IntVector{5});
    EXPECT_EQ(c.toString({"i", "j"}), "c(5)");
}

TEST(Expr, FlopCounting)
{
    // (x + 2.0) * x / x  -> 3 flops
    ExprPtr x = Expr::scalar("x");
    ExprPtr e = divide(mul(add(x, lit(2.0)), x), x);
    EXPECT_EQ(e->countFlops(), 3u);
    EXPECT_EQ(lit(1.0)->countFlops(), 0u);
}

TEST(Expr, RewriteArrayReads)
{
    ArrayRef a = makeRef2("a", 0, 0);
    ExprPtr e = add(Expr::arrayRead(a), Expr::arrayRead(a));
    ExprPtr rewritten = e->rewriteArrayReads([](const ArrayRef &) {
        return Expr::scalar("t0");
    });
    EXPECT_EQ(rewritten->lhs()->kind(), Expr::Kind::Scalar);
    EXPECT_EQ(rewritten->rhs()->scalarName(), "t0");
}

TEST(Stmt, ReductionDetection)
{
    ArrayRef a = makeRef2("a", 0, 0);
    ArrayRef b = makeRef2("b", 0, 0);
    Stmt reduction = Stmt::assignArray(
        a, add(Expr::arrayRead(a), Expr::arrayRead(b)));
    EXPECT_TRUE(reduction.isReduction());

    Stmt copy = Stmt::assignArray(a, Expr::arrayRead(b));
    EXPECT_FALSE(copy.isReduction());

    // a(i,j) = a(i-1,j) + b: not a reduction (different element).
    Stmt stencil = Stmt::assignArray(
        a, add(Expr::arrayRead(makeRef2("a", -1, 0)), Expr::arrayRead(b)));
    EXPECT_FALSE(stencil.isReduction());

    // Multiplication does not hide the read under a +.
    Stmt scaled = Stmt::assignArray(
        a, mul(Expr::arrayRead(a), Expr::arrayRead(b)));
    EXPECT_FALSE(scaled.isReduction());
}

TEST(Bound, ConstantAndParam)
{
    Bound c = Bound::constant(42);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.evaluate({}), 42);

    Bound p = Bound::param("n", 2, -1);
    EXPECT_FALSE(p.isConstant());
    EXPECT_EQ(p.evaluate({{"n", 10}}), 19);
    EXPECT_THROW(p.evaluate({}), FatalError);
}

TEST(Bound, SumMergesTerms)
{
    Bound s = Bound::sum(Bound::param("n"), Bound::param("m", 3, 2));
    EXPECT_EQ(s.evaluate({{"n", 5}, {"m", 4}}), 19);
    Bound cancel = Bound::sum(Bound::param("n"), Bound::param("n", -1));
    EXPECT_TRUE(cancel.isConstant());
}

TEST(Bound, AlignedUpper)
{
    // align(1, 10, 3): trips 10, 3 full steps of 3 -> last covered is 9.
    Bound b = Bound::alignedUpper(Bound::constant(1), Bound::constant(10), 3);
    EXPECT_EQ(b.evaluate({}), 9);
    // Exactly divisible: align(1, 9, 3) = 9.
    EXPECT_EQ(
        Bound::alignedUpper(Bound::constant(1), Bound::constant(9), 3)
            .evaluate({}),
        9);
    // Empty range: align(5, 4, 2) = 5 + 0 - 1 = 4 (keeps range empty).
    EXPECT_EQ(
        Bound::alignedUpper(Bound::constant(5), Bound::constant(4), 2)
            .evaluate({}),
        4);
    // Symbolic: align(1, n, 4) with n = 11 -> 8.
    EXPECT_EQ(Bound::alignedUpper(Bound::constant(1), Bound::param("n"), 4)
                  .evaluate({{"n", 11}}),
              8);
}

TEST(Loop, TripCount)
{
    Loop loop{"i", Bound::constant(1), Bound::param("n"), 2};
    EXPECT_EQ(loop.tripCount({{"n", 10}}), 5);
    EXPECT_EQ(loop.tripCount({{"n", 9}}), 5);
    EXPECT_EQ(loop.tripCount({{"n", 0}}), 0);
}

LoopNest
buildSaxpyNest()
{
    NestBuilder b;
    b.loop("j", Bound::constant(1), Bound::param("n"))
        .loop("i", Bound::constant(1), Bound::param("m"));
    b.assign("a", {idx("j")},
             add(b.read("a", {idx("j")}), b.read("b", {idx("i")})));
    return b.name("sum").build();
}

TEST(NestBuilder, BuildsNest)
{
    LoopNest nest = buildSaxpyNest();
    EXPECT_EQ(nest.depth(), 2u);
    EXPECT_EQ(nest.name(), "sum");
    EXPECT_EQ(nest.bodyFlops(), 1u);
    EXPECT_TRUE(nest.allRefsAnalyzable());

    std::vector<Access> accesses = nest.accesses();
    ASSERT_EQ(accesses.size(), 3u);
    EXPECT_FALSE(accesses[0].isWrite); // a(j) read
    EXPECT_FALSE(accesses[1].isWrite); // b(i) read
    EXPECT_TRUE(accesses[2].isWrite);  // a(j) write
    EXPECT_EQ(accesses[2].ref.array(), "a");
}

TEST(NestBuilder, RejectsDuplicateIvsAndUnknownIvs)
{
    NestBuilder b;
    b.loop("i", 1, 10);
    EXPECT_THROW(b.loop("i", 1, 5), FatalError);
    EXPECT_THROW(b.ref("a", {idx("q")}), FatalError);
}

Program
buildSaxpyProgram()
{
    Program program;
    program.setParamDefault("n", 6);
    program.setParamDefault("m", 5);
    program.declareArray({"a", {Bound::param("n")}});
    program.declareArray({"b", {Bound::param("m")}});
    program.addNest(buildSaxpyNest());
    return program;
}

TEST(Validation, AcceptsGoodProgram)
{
    Program program = buildSaxpyProgram();
    EXPECT_TRUE(validateProgram(program).empty());
}

TEST(Validation, FlagsProblems)
{
    Program program = buildSaxpyProgram();
    // Undeclared array.
    NestBuilder b;
    b.loop("i", 1, 4);
    b.assign("zz", {idx("i")}, lit(0.0));
    program.addNest(b.build());
    std::vector<std::string> problems = validateProgram(program);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("zz"), std::string::npos);
}

TEST(Validation, FlagsRankMismatch)
{
    Program program = buildSaxpyProgram();
    NestBuilder b;
    b.loop("i", 1, 4);
    b.assign("a", {idx("i"), idx("i", 1)}, lit(0.0));
    // Note: two subscripts on rank-1 'a', and also non-separable rows.
    program.addNest(b.build());
    std::vector<std::string> problems = validateProgram(program);
    EXPECT_FALSE(problems.empty());
}

TEST(Interpreter, SaxpyComputesExpectedSums)
{
    Program program = buildSaxpyProgram();
    Interpreter interp(program);
    // a starts at zero; set b(i) = i via direct writes using a seeded
    // pattern is awkward, so run with all-zero arrays: result zero.
    interp.run();
    for (std::int64_t j = 1; j <= 6; ++j)
        EXPECT_EQ(interp.element("a", {j}), 0.0);
    // Loads: a(j) and b(i) per iteration; stores: a(j).
    EXPECT_EQ(interp.iterationCount(), 30u);
    EXPECT_EQ(interp.loadCount(), 60u);
    EXPECT_EQ(interp.storeCount(), 30u);
}

TEST(Interpreter, SeededRunAccumulates)
{
    Program program = buildSaxpyProgram();
    Interpreter interp(program);
    interp.seedArrays(42);
    // Record b's values before the run (the nest does not write b).
    double expected[7] = {0, 0, 0, 0, 0, 0, 0};
    double bsum = 0.0;
    for (std::int64_t i = 1; i <= 5; ++i)
        bsum += interp.element("b", {i});
    for (std::int64_t j = 1; j <= 6; ++j)
        expected[j] = interp.element("a", {j}) + bsum;
    interp.run();
    for (std::int64_t j = 1; j <= 6; ++j)
        EXPECT_NEAR(interp.element("a", {j}), expected[j], 1e-12);
}

TEST(Interpreter, ParamOverrides)
{
    Program program = buildSaxpyProgram();
    Interpreter interp(program, {{"n", 2}, {"m", 3}});
    interp.run();
    EXPECT_EQ(interp.iterationCount(), 6u);
}

TEST(Interpreter, HaloToleratesSmallOverrun)
{
    Program program;
    program.declareArray({"a", {Bound::constant(4)}});
    NestBuilder b;
    b.loop("i", 1, 4);
    b.assign("a", {idx("i")}, b.read("a", {idx("i", 2)}));
    program.addNest(b.build());
    Interpreter interp(program);
    EXPECT_NO_THROW(interp.run()); // reads a(5), a(6): inside the halo
}

TEST(Interpreter, FarOutOfBoundsIsFatal)
{
    Program program;
    program.declareArray({"a", {Bound::constant(4)}});
    NestBuilder b;
    b.loop("i", 1, 4);
    b.assign("a", {idx("i")}, b.read("a", {idx("i", 100)}));
    program.addNest(b.build());
    Interpreter interp(program);
    EXPECT_THROW(interp.run(), FatalError);
}

TEST(Interpreter, AccessCallbackSeesColumnMajorAddresses)
{
    Program program;
    program.declareArray(
        {"a", {Bound::constant(4), Bound::constant(4)}});
    NestBuilder b;
    b.loop("j", 1, 2).loop("i", 1, 2);
    b.assign("a", {idx("i"), idx("j")}, lit(1.0));
    program.addNest(b.build());

    Interpreter interp(program);
    std::vector<std::int64_t> addrs;
    interp.setAccessCallback([&](std::int64_t addr, MemAccessKind kind) {
        EXPECT_EQ(kind, MemAccessKind::Write);
        addrs.push_back(addr);
    });
    interp.run();
    ASSERT_EQ(addrs.size(), 4u);
    // Column-major: consecutive i differ by 1, consecutive j by the
    // padded column stride.
    EXPECT_EQ(addrs[1] - addrs[0], 1);
    EXPECT_EQ(addrs[3] - addrs[2], 1);
    EXPECT_EQ(addrs[2] - addrs[0], addrs[3] - addrs[1]);
    EXPECT_GT(addrs[2] - addrs[0], 1);
}

TEST(Interpreter, PreheaderRunsPerOuterIteration)
{
    // s accumulates a(1, j) once per outer iteration via preheader.
    Program program;
    program.declareArray({"cnt", {Bound::constant(8)}});
    NestBuilder b;
    b.loop("j", 1, 3).loop("i", 1, 4);
    b.assign("cnt", {idx("j")},
             add(b.read("cnt", {idx("j")}), Expr::scalar("s")));
    LoopNest nest = b.build();
    // Preheader: s = 2.0 (executed once per j).
    nest.preheader().push_back(Stmt::assignScalar("s", lit(2.0)));
    program.addNest(nest);

    Interpreter interp(program);
    interp.run();
    for (std::int64_t j = 1; j <= 3; ++j)
        EXPECT_EQ(interp.element("cnt", {j}), 8.0); // 4 iterations x 2.0
    EXPECT_EQ(interp.scalar("s"), 2.0);
}

TEST(Interpreter, CompareArraysDetectsDifferences)
{
    Program program = buildSaxpyProgram();
    Interpreter a(program);
    Interpreter b(program);
    a.seedArrays(7);
    b.seedArrays(7);
    EXPECT_EQ(a.compareArrays(b, 1e-12), "");
    a.run();
    std::string diff = a.compareArrays(b, 1e-12);
    EXPECT_NE(diff, "");
    EXPECT_NE(diff.find("'a'"), std::string::npos);
}

TEST(Printer, RendersNestSource)
{
    LoopNest nest = buildSaxpyNest();
    std::string text = renderLoopNest(nest);
    EXPECT_NE(text.find("do j = 1, n"), std::string::npos);
    EXPECT_NE(text.find("do i = 1, m"), std::string::npos);
    EXPECT_NE(text.find("a(j) = (a(j) + b(i))"), std::string::npos);
    EXPECT_NE(text.find("end do"), std::string::npos);
}

TEST(Printer, RendersProgramWithDeclarations)
{
    Program program = buildSaxpyProgram();
    std::string text = renderProgram(program);
    EXPECT_NE(text.find("param n = 6"), std::string::npos);
    EXPECT_NE(text.find("real a(n)"), std::string::npos);
    EXPECT_NE(text.find("! nest: sum"), std::string::npos);
}

TEST(Printer, RendersStepAndAlignedBounds)
{
    NestBuilder b;
    b.loop("j", Bound::constant(1),
           Bound::alignedUpper(Bound::constant(1), Bound::param("n"), 2), 2);
    b.assign("a", {idx("j")}, lit(0.0));
    std::string text = renderLoopNest(b.build());
    EXPECT_NE(text.find("do j = 1, align(1, n, 2), 2"), std::string::npos);
}

} // namespace
} // namespace ujam
