/**
 * @file
 * Unit and property tests for dependence analysis.
 *
 * The property test checks the analyzer against a brute-force oracle
 * that enumerates small concrete iteration spaces and records every
 * actual same-location access pair.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "deps/analyzer.hh"
#include "deps/subscript_tests.hh"
#include "ir/builder.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

LoopNest
nestFrom(const char *source)
{
    return parseSingleNest(source);
}

TEST(SubscriptTests, ZivIndependent)
{
    // a(i, 1) vs a(i, 2): never the same element.
    NestBuilder b;
    b.loop("j", 1, 4).loop("i", 1, 4);
    ArrayRef r1 = b.ref("a", {idx("i"), Subscript::constant(1)});
    ArrayRef r2 = b.ref("a", {idx("i"), Subscript::constant(2)});
    EXPECT_FALSE(solveAccessPair(r1, r2).has_value());
}

TEST(SubscriptTests, StrongSivDistance)
{
    NestBuilder b;
    b.loop("j", 1, 4).loop("i", 1, 4);
    ArrayRef r1 = b.ref("a", {idx("i"), idx("j")});
    ArrayRef r2 = b.ref("a", {idx("i", -1), idx("j", 2)});
    auto rel = solveAccessPair(r1, r2);
    ASSERT_TRUE(rel.has_value());
    // i = i' - 1  => i' - i = 1; j = j' + 2 => j' - j = -2.
    EXPECT_EQ((*rel)[0].kind, LoopRelation::Kind::Exact);
    EXPECT_EQ((*rel)[0].exact, -2);
    EXPECT_EQ((*rel)[1].kind, LoopRelation::Kind::Exact);
    EXPECT_EQ((*rel)[1].exact, 1);
}

TEST(SubscriptTests, StrongSivNonIntegerIndependent)
{
    NestBuilder b;
    b.loop("i", 1, 8);
    ArrayRef r1 = b.ref("a", {scaled("i", 2)});
    ArrayRef r2 = b.ref("a", {scaled("i", 2, 1)});
    EXPECT_FALSE(solveAccessPair(r1, r2).has_value());
}

TEST(SubscriptTests, WeakZeroIsStar)
{
    NestBuilder b;
    b.loop("i", 1, 8);
    ArrayRef fixed = b.ref("a", {Subscript::constant(3)});
    ArrayRef moving = b.ref("a", {idx("i")});
    auto rel = solveAccessPair(moving, fixed);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ((*rel)[0].kind, LoopRelation::Kind::Star);
}

TEST(SubscriptTests, WeakCrossing)
{
    // a(i) vs a(10 - i): crossing; feasible, direction unknown.
    NestBuilder b;
    b.loop("i", 1, 8);
    ArrayRef r1 = b.ref("a", {idx("i")});
    ArrayRef r2 = b.ref("a", {scaled("i", -1, 10)});
    auto rel = solveAccessPair(r1, r2);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ((*rel)[0].kind, LoopRelation::Kind::Star);
}

TEST(SubscriptTests, GcdInfeasible)
{
    // a(2i) vs a(2i'+1): parity mismatch.
    NestBuilder b;
    b.loop("i", 1, 8);
    ArrayRef even = b.ref("a", {scaled("i", 2)});
    ArrayRef odd = b.ref("a", {scaled("i", 2, 1)});
    EXPECT_FALSE(solveAccessPair(even, odd).has_value());
}

TEST(SubscriptTests, MivGcdFeasibleIsStar)
{
    // a(i + j) style coupling via two different loops in one dim is
    // not SIV separable per reference, but the pair test still works:
    // a(2i) vs a(j).
    NestBuilder b;
    b.loop("j", 1, 8).loop("i", 1, 8);
    ArrayRef r1 = b.ref("a", {scaled("i", 2)});
    ArrayRef r2 = b.ref("a", {idx("j")});
    auto rel = solveAccessPair(r1, r2);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ((*rel)[0].kind, LoopRelation::Kind::Star);
    EXPECT_EQ((*rel)[1].kind, LoopRelation::Kind::Star);
}

TEST(SubscriptTests, UnconstrainedLoopStaysFree)
{
    NestBuilder b;
    b.loop("j", 1, 4).loop("i", 1, 4);
    ArrayRef r1 = b.ref("a", {idx("i")});
    ArrayRef r2 = b.ref("a", {idx("i", -1)});
    auto rel = solveAccessPair(r1, r2);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ((*rel)[0].kind, LoopRelation::Kind::Free);
    EXPECT_EQ((*rel)[1].kind, LoopRelation::Kind::Exact);
    EXPECT_EQ((*rel)[1].exact, 1);
}

TEST(Analyzer, StencilFlowDependence)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i, j-1) + 1.0
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    // Expect: flow a(i,j) -> a(i,j-1) read at distance (1, 0), plus
    // the input self/pair edges? a(i,j-1) vs a(i,j-1) has no self dep
    // (all loops constrained, d = 0). Reads: only a(i,j-1); one read,
    // no read-read pair other than itself.
    ASSERT_EQ(graph.size(), 1u);
    const Dependence &edge = graph.edges()[0];
    EXPECT_EQ(edge.kind, DepKind::Flow);
    EXPECT_TRUE(edge.hasDistance);
    EXPECT_EQ(edge.distance, (IntVector{1, 0}));
    EXPECT_EQ(edge.dirs[0], DepDir::Lt);
    EXPECT_EQ(edge.dirs[1], DepDir::Eq);
    EXPECT_EQ(edge.carrierLevel(), 0);
}

TEST(Analyzer, InputDependencesCountedAndSkippable)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = b(i, j) + b(i, j-1) + b(i, j-2)
  end do
end do
)");
    DependenceGraph with_input = analyzeDependences(nest);
    // b pairs: (b0,b1) d=(1,0), (b0,b2) d=(2,0), (b1,b2) d=(1,0):
    // three input edges; 'a' has no dependence.
    EXPECT_EQ(with_input.size(), 3u);
    EXPECT_EQ(with_input.inputCount(), 3u);
    EXPECT_DOUBLE_EQ(with_input.inputFraction(), 1.0);

    DepOptions no_input;
    no_input.includeInput = false;
    DependenceGraph without = analyzeDependences(nest, no_input);
    EXPECT_EQ(without.size(), 0u);
    EXPECT_LT(without.storageBytes(), with_input.storageBytes());
}

TEST(Analyzer, LoopInvariantSelfInputDependence)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = c(i)
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    // c(i) reused across j: input self dependence with dir (*, =).
    ASSERT_EQ(graph.size(), 1u);
    const Dependence &edge = graph.edges()[0];
    EXPECT_EQ(edge.kind, DepKind::Input);
    EXPECT_EQ(edge.src, edge.dst);
    EXPECT_EQ(edge.dirs[0], DepDir::Star);
    EXPECT_EQ(edge.dirs[1], DepDir::Eq);
    EXPECT_FALSE(edge.hasDistance);
    EXPECT_TRUE(edge.representative);
    EXPECT_EQ(edge.distance, (IntVector{1, 0}));
}

TEST(Analyzer, ReductionEdgesTagged)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    s(j) = s(j) + b(i, j)
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    ASSERT_GT(graph.size(), 0u);
    std::size_t reduction_edges = 0;
    for (const Dependence &edge : graph.edges())
        reduction_edges += edge.reduction;
    // read s(j) vs write s(j): flow+anti collapse into Star edges
    // across i, plus the write-write self edge: all tagged.
    EXPECT_GE(reduction_edges, 2u);
}

TEST(Analyzer, AntiDependenceOrientation)
{
    LoopNest nest = nestFrom(R"(
do i = 1, 10
  do k = 1, 10
    a(i, k) = a(i+1, k) * 0.5
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    ASSERT_EQ(graph.size(), 1u);
    const Dependence &edge = graph.edges()[0];
    // Read a(i+1,k) at iteration i touches what the write touches at
    // i+1: read first -> anti dependence, distance (1, 0).
    EXPECT_EQ(edge.kind, DepKind::Anti);
    EXPECT_EQ(edge.distance, (IntVector{1, 0}));
}

TEST(SafeUnroll, CleanStencilUnbounded)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i, j-1) + 1.0
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    IntVector bounds = safeUnrollBounds(nest, graph, 8);
    EXPECT_EQ(bounds, (IntVector{8, 0}));
}

TEST(SafeUnroll, InterchangePreventingDependenceLimits)
{
    // a(i, j) = a(i+1, j-1): dep distance (1, -1): carried by j with
    // inner '>': unroll-and-jam of j illegal beyond distance-1 = 0.
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i+1, j-1)
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    IntVector bounds = safeUnrollBounds(nest, graph, 8);
    EXPECT_EQ(bounds[0], 0);
}

TEST(SafeUnroll, DistanceGivesPartialFreedom)
{
    // dep distance (3, -1): jamming up to 2 copies stays legal.
    LoopNest nest = nestFrom(R"(
do j = 1, 20
  do i = 1, 20
    a(i, j) = a(i+1, j-3)
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    IntVector bounds = safeUnrollBounds(nest, graph, 8);
    EXPECT_EQ(bounds[0], 2);
}

TEST(SafeUnroll, ReductionDoesNotConstrain)
{
    LoopNest nest = nestFrom(R"(
do j = 1, 10
  do i = 1, 10
    s(i) = s(i) + a(i, j)
  end do
end do
)");
    DependenceGraph graph = analyzeDependences(nest);
    IntVector bounds = safeUnrollBounds(nest, graph, 8);
    EXPECT_EQ(bounds[0], 8);
}

TEST(GraphStats, EdgeBytesGrowWithDepth)
{
    EXPECT_GT(DependenceGraph::edgeBytes(3), DependenceGraph::edgeBytes(1));
    EXPECT_GE(DependenceGraph::edgeBytes(1), 48u);
}

// --- brute-force oracle property test -----------------------------------

/**
 * Enumerate a small concrete iteration space and record which ordered
 * access pairs (src textual-or-iteration earlier) touch the same
 * address, keyed by (src ordinal, dst ordinal, kind).
 */
std::set<std::tuple<std::size_t, std::size_t, DepKind>>
bruteForcePairs(const LoopNest &nest, std::int64_t extent)
{
    std::vector<Access> accesses = nest.accesses();
    const std::size_t depth = nest.depth();

    // Iterate the space; track, per address, every (ordinal, time).
    struct Touch
    {
        std::size_t ordinal;
        bool write;
        std::uint64_t time;
    };
    std::map<std::pair<std::string, std::int64_t>, std::vector<Touch>>
        touches;

    std::vector<std::int64_t> iv(depth, 1);
    std::uint64_t time = 0;
    for (;;) {
        for (const Access &access : accesses) {
            std::int64_t flat = 0;
            std::int64_t stride = 1;
            for (std::size_t d = 0; d < access.ref.dims(); ++d) {
                std::int64_t sub = access.ref.offset()[d];
                for (std::size_t k = 0; k < depth; ++k)
                    sub += access.ref.row(d)[k] * iv[k];
                flat += sub * stride;
                stride *= 1024;
            }
            touches[{access.ref.array(), flat}].push_back(
                {access.ordinal, access.isWrite, time++});
        }
        // Advance odometer (innermost fastest).
        std::size_t k = depth;
        while (k > 0) {
            --k;
            if (++iv[k] <= extent)
                break;
            iv[k] = 1;
            if (k == 0)
                return [&] {
                    std::set<std::tuple<std::size_t, std::size_t, DepKind>>
                        pairs;
                    for (const auto &[addr, list] : touches) {
                        for (std::size_t x = 0; x < list.size(); ++x) {
                            for (std::size_t y = x + 1; y < list.size();
                                 ++y) {
                                DepKind kind =
                                    list[x].write
                                        ? (list[y].write ? DepKind::Output
                                                         : DepKind::Flow)
                                        : (list[y].write ? DepKind::Anti
                                                         : DepKind::Input);
                                pairs.insert({list[x].ordinal,
                                              list[y].ordinal, kind});
                            }
                        }
                    }
                    return pairs;
                }();
        }
    }
}

/**
 * Every concretely-observed dependence pair must be covered by some
 * edge of the analyzer's graph (analysis must be conservative).
 */
void
expectGraphCovers(const LoopNest &nest)
{
    DependenceGraph graph = analyzeDependences(nest);
    auto observed = bruteForcePairs(nest, 4);
    for (const auto &[src, dst, kind] : observed) {
        bool covered = false;
        for (const Dependence &edge : graph.edges()) {
            // An edge covers the pair if it connects the same two
            // ordinals (in either orientation) with the same kind.
            bool same_pair = (edge.src == src && edge.dst == dst) ||
                             (edge.src == dst && edge.dst == src);
            if (same_pair && edge.kind == kind)
                covered = true;
        }
        EXPECT_TRUE(covered)
            << "missed " << depKindName(kind) << " between ordinals "
            << src << " and " << dst << " in nest:\n"
            << nest.name();
    }
}

class DepCoverage : public ::testing::TestWithParam<int>
{};

TEST_P(DepCoverage, AnalyzerCoversBruteForce)
{
    Rng rng(1000 + GetParam());
    // Random 2-deep nest over one array with small offsets.
    NestBuilder b;
    b.loop("j", 1, 4).loop("i", 1, 4);

    auto random_ref = [&]() {
        return b.ref("a", {idx("i", rng.range(-2, 2)),
                           idx("j", rng.range(-2, 2))});
    };
    ExprPtr rhs = Expr::arrayRead(random_ref());
    int extra = static_cast<int>(rng.range(1, 3));
    for (int r = 0; r < extra; ++r)
        rhs = add(rhs, Expr::arrayRead(random_ref()));
    ArrayRef lhs = random_ref();
    b.assign("a", {idx("i", lhs.offset()[0]), idx("j", lhs.offset()[1])},
             rhs);
    LoopNest nest = b.name(concat("random", GetParam())).build();
    expectGraphCovers(nest);
}

INSTANTIATE_TEST_SUITE_P(RandomNests, DepCoverage,
                         ::testing::Range(0, 25));

// --- range pre-filter differential over the suite -------------------

/**
 * Like bruteForcePairs, but honoring the nest's own bounds (including
 * steps and aligned uppers) evaluated under the given bindings --
 * exactly the iteration space the range pre-filter reasons about.
 */
std::set<std::tuple<std::size_t, std::size_t, DepKind>>
observedPairs(const LoopNest &nest, const ParamBindings &params)
{
    std::vector<Access> accesses = nest.accesses();
    const std::size_t depth = nest.depth();

    std::vector<std::int64_t> lo(depth), hi(depth), step(depth);
    for (std::size_t k = 0; k < depth; ++k) {
        lo[k] = nest.loop(k).lower.evaluate(params);
        hi[k] = nest.loop(k).upper.evaluate(params);
        step[k] = std::max<std::int64_t>(1, nest.loop(k).step);
        if (lo[k] > hi[k])
            return {}; // a zero-trip loop empties the whole nest
    }

    struct Touch
    {
        std::size_t ordinal;
        bool write;
        std::uint64_t time;
    };
    std::map<std::pair<std::string, std::int64_t>, std::vector<Touch>>
        touches;

    std::vector<std::int64_t> iv = lo;
    std::uint64_t time = 0;
    bool more = true;
    while (more) {
        for (const Access &access : accesses) {
            std::int64_t flat = 0;
            std::int64_t stride = 1;
            for (std::size_t d = 0; d < access.ref.dims(); ++d) {
                std::int64_t sub = access.ref.offset()[d];
                for (std::size_t k = 0;
                     k < depth && k < access.ref.row(d).size(); ++k) {
                    sub += access.ref.row(d)[k] * iv[k];
                }
                flat += sub * stride;
                stride *= 4096;
            }
            touches[{access.ref.array(), flat}].push_back(
                {access.ordinal, access.isWrite, time++});
        }
        std::size_t k = depth;
        more = false;
        while (k > 0) {
            --k;
            iv[k] += step[k];
            if (iv[k] <= hi[k]) {
                more = true;
                break;
            }
            iv[k] = lo[k];
        }
    }

    std::set<std::tuple<std::size_t, std::size_t, DepKind>> pairs;
    for (const auto &[addr, list] : touches) {
        for (std::size_t x = 0; x < list.size(); ++x) {
            for (std::size_t y = x + 1; y < list.size(); ++y) {
                DepKind kind =
                    list[x].write
                        ? (list[y].write ? DepKind::Output
                                         : DepKind::Flow)
                        : (list[y].write ? DepKind::Anti
                                         : DepKind::Input);
                pairs.insert(
                    {list[x].ordinal, list[y].ordinal, kind});
            }
        }
    }
    return pairs;
}

TEST(RangePrune, SuitePrunedGraphIsAnExactPartitionAtDefaults)
{
    // With and without the pre-filter, over every suite loop: each
    // edge is either kept or reported pruned, never silently dropped.
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests()[0];

        DepOptions base;
        base.includeInput = false; // the optimizer's view
        DependenceGraph full = analyzeDependences(nest, base);

        DepOptions filtered = base;
        filtered.rangePrune = true;
        filtered.params = program.paramDefaults();
        std::vector<PrunedEdge> pruned;
        filtered.pruned = &pruned;
        DependenceGraph sharp = analyzeDependences(nest, filtered);

        EXPECT_EQ(sharp.size() + pruned.size(), full.size())
            << loop.name;
        for (const PrunedEdge &edge : pruned)
            EXPECT_FALSE(edge.reason.empty()) << loop.name;
    }
}

TEST(RangePrune, SuiteClampedPrunesEdgesWithoutLosingRealOnes)
{
    // Clamp every parameter to 4: small enough to enumerate the
    // iteration space exhaustively, and tight enough that constant
    // subscript sections (vpenta.7's x(1,j) vs x(3..4,j)) become
    // provably disjoint. Every pruned edge is checked against the
    // brute-force oracle under the SAME bindings: a pruned edge whose
    // access pair concretely shares an address would be a soundness
    // bug, not a sharpness win.
    std::size_t total_pruned = 0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests()[0];

        ParamBindings clamped = program.paramDefaults();
        for (auto &[name, value] : clamped)
            value = 4;

        DepOptions options;
        options.includeInput = false;
        options.rangePrune = true;
        options.params = clamped;
        std::vector<PrunedEdge> pruned;
        options.pruned = &pruned;
        analyzeDependences(nest, options);
        total_pruned += pruned.size();
        if (pruned.empty())
            continue;

        auto observed = observedPairs(nest, clamped);
        for (const PrunedEdge &edge : pruned) {
            bool real =
                observed.count({edge.src, edge.dst, edge.kind}) ||
                observed.count({edge.dst, edge.src, edge.kind});
            EXPECT_FALSE(real)
                << loop.name << ": pruned a real " << depKindName(edge.kind)
                << " dependence between ordinals " << edge.src << " and "
                << edge.dst << " (" << edge.reason << ")";
        }
    }
    // The filter must actually bite somewhere on the suite (vpenta.7
    // prunes by dimension disjointness under this clamp).
    EXPECT_GE(total_pruned, 1u);
}

} // namespace
} // namespace ujam
