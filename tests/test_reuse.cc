/**
 * @file
 * Unit tests for UGS partitioning, group reuse and the Eq. 1 cost
 * model, including the paper's own worked examples.
 */

#include <gtest/gtest.h>

#include "parser/parser.hh"
#include "reuse/locality.hh"
#include "support/diagnostics.hh"

namespace ujam
{
namespace
{

std::vector<UniformlyGeneratedSet>
ugsOf(const char *source)
{
    return partitionUGS(parseSingleNest(source).accesses());
}

TEST(Ugs, PaperSection34Example)
{
    // do i / do j: a(i,j) + a(i,j+1) + a(i,j+2): one UGS, H = I.
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    x = a(i, j) + a(i, j+1) + a(i, j+2)
  end do
end do
)");
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0].members.size(), 3u);
    EXPECT_EQ(sets[0].subscript, RatMatrix::identity(2));
}

TEST(Ugs, DifferentArraysAndMatricesSeparate)
{
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    a(i, j) = a(j, i) + b(i, j) + 2.0 * b(i, j-4)
  end do
end do
)");
    // a(i,j) and a(j,i): two different H -> two sets; both b
    // references share one set. Textual order: a(j,i) read first,
    // then the two b reads, then the a(i,j) write.
    ASSERT_EQ(sets.size(), 3u);
    EXPECT_EQ(sets[0].array, "a");
    EXPECT_EQ(sets[0].members.size(), 1u); // a(j,i)
    EXPECT_EQ(sets[1].array, "b");
    EXPECT_EQ(sets[1].members.size(), 2u);
    EXPECT_EQ(sets[2].array, "a");
    EXPECT_EQ(sets[2].members.size(), 1u); // a(i,j) write
}

TEST(Ugs, MembersKeepTextualOrderAndWrites)
{
    auto sets = ugsOf(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i-1, j) + a(i, j)
  end do
end do
)");
    ASSERT_EQ(sets.size(), 1u);
    ASSERT_EQ(sets[0].members.size(), 3u);
    EXPECT_FALSE(sets[0].members[0].isWrite);
    EXPECT_TRUE(sets[0].members[2].isWrite);
}

TEST(SelfReuse, TemporalFromKernel)
{
    // b(i) in a (j, i) nest: ker H = span{e_j}.
    auto sets = ugsOf(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = b(i)
  end do
end do
)");
    const UniformlyGeneratedSet *b_set = nullptr;
    for (const auto &set : sets) {
        if (set.array == "b")
            b_set = &set;
    }
    ASSERT_NE(b_set, nullptr);
    Subspace rst = b_set->selfTemporalSpace();
    EXPECT_EQ(rst.dim(), 1u);
    EXPECT_TRUE(rst.contains(IntVector{1, 0}));
}

TEST(SelfReuse, SpatialAlongContiguousDimension)
{
    // a(i, j) with i innermost: RSS = ker Hs = span{e_i}; RST = 0.
    auto sets = ugsOf(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = 1.0
  end do
end do
)");
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_TRUE(sets[0].selfTemporalSpace().isZero());
    Subspace rss = sets[0].selfSpatialSpace();
    EXPECT_EQ(rss.dim(), 1u);
    EXPECT_TRUE(rss.contains(IntVector{0, 1}));

    Subspace inner = Subspace::coordinate(2, {1});
    EXPECT_EQ(classifySelfReuse(sets[0], inner), SelfReuse::Spatial);
}

TEST(GroupReuse, TemporalPartitionInnermostLocalized)
{
    // Paper Fig. 1 shape: a(i,j) and a(i-2,j), localized = {j}:
    // two GTSs before unrolling.
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    a(i, j) = a(i-2, j) + 1.0
  end do
end do
)");
    ASSERT_EQ(sets.size(), 1u);
    Subspace inner = Subspace::coordinate(2, {1});
    auto gts = groupTemporalSets(sets[0], inner);
    EXPECT_EQ(gts.size(), 2u);
    // Localizing i as well merges them.
    auto gts_both =
        groupTemporalSets(sets[0], Subspace::coordinate(2, {0, 1}));
    EXPECT_EQ(gts_both.size(), 1u);
}

TEST(GroupReuse, InnermostDifferencesMerge)
{
    // a(i,j), a(i,j+1), a(i,j+2) with j innermost: one GTS.
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    x = a(i, j) + a(i, j+1) + a(i, j+2)
  end do
end do
)");
    Subspace inner = Subspace::coordinate(2, {1});
    auto gts = groupTemporalSets(sets[0], inner);
    ASSERT_EQ(gts.size(), 1u);
    EXPECT_EQ(gts[0].members.size(), 3u);
    // Leader is the lex-smallest offset: a(i, j).
    EXPECT_EQ(sets[0].members[gts[0].leader].ref.offset(),
              (IntVector{0, 0}));
}

TEST(GroupReuse, SpatialMergesAcrossFirstDimension)
{
    // a(i,j) and a(i+1,j) (i contiguous): different GTS (localized j)
    // but same GSS.
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    x = a(i, j) + a(i+1, j)
  end do
end do
)");
    Subspace inner = Subspace::coordinate(2, {1});
    EXPECT_EQ(groupTemporalSets(sets[0], inner).size(), 2u);
    EXPECT_EQ(groupSpatialSets(sets[0], inner).size(), 1u);
}

TEST(GroupReuse, SpatialDoesNotMergeAcrossOtherDimensions)
{
    auto sets = ugsOf(R"(
do i = 1, 10
  do j = 1, 10
    x = a(i, j) + a(i, j+5)
  end do
end do
)");
    // j is innermost-localized, so j+5 merges temporally anyway; use
    // outer-dim difference instead with localized = innermost only.
    // Here instead check a(i,j) vs a(i,j+5) under localized {i}: the
    // +5 in a non-contiguous dim must not be spatial-merged.
    Subspace li = Subspace::coordinate(2, {0});
    EXPECT_EQ(groupTemporalSets(sets[0], li).size(), 2u);
    EXPECT_EQ(groupSpatialSets(sets[0], li).size(), 2u);
}

TEST(EquationOne, StreamCounts)
{
    LocalityParams params;
    params.cacheLineElems = 4;
    // No reuse at all: 2 spatial streams + 1 extra temporal leader.
    double a = equationOneAccesses(3, 2, SelfReuse::None, 0, params);
    EXPECT_DOUBLE_EQ(a, 2.0 + 1.0 / 4.0);
    // Self-spatial scales by 1/line.
    double b = equationOneAccesses(3, 2, SelfReuse::Spatial, 0, params);
    EXPECT_DOUBLE_EQ(b, (2.0 + 0.25) / 4.0);
    // Self-temporal amortizes over the localized trip count.
    params.localizedTrip = 50;
    double c = equationOneAccesses(1, 1, SelfReuse::Temporal, 1, params);
    EXPECT_DOUBLE_EQ(c, 1.0 / 50.0);
}

TEST(EquationOne, GssCoarserThanGtsEnforced)
{
    LocalityParams params;
    EXPECT_THROW(equationOneAccesses(1, 2, SelfReuse::None, 0, params),
                 PanicError);
}

TEST(NestCost, StencilCostDropsWhenOuterLoopLocalized)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i, j-1) + a(i, j-2)
  end do
end do
)");
    LocalityParams params;
    Subspace inner = Subspace::coordinate(2, {1});
    Subspace both = Subspace::coordinate(2, {0, 1});
    double inner_cost = nestMemoryCost(nest, inner, params);
    double both_cost = nestMemoryCost(nest, both, params);
    EXPECT_GT(inner_cost, both_cost);
}

TEST(RankCandidates, PrefersLoopCarryingReuse)
{
    // Reuse of a(i, j-1) is carried by j (outer); b(i) is invariant
    // in j. Unrolling j (loop 0) pays off.
    LoopNest nest = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(i, j) = a(i, j-1) + b(i)
  end do
end do
)");
    LocalityParams params;
    auto ranked = rankUnrollCandidates(nest, params, 2);
    ASSERT_EQ(ranked.size(), 1u); // only one outer loop exists
    EXPECT_EQ(ranked[0], 0u);
}

TEST(RankCandidates, ThreeDeepOrdersByBenefit)
{
    // c(j,k) invariant in i (outermost); a(i,k) invariant in j.
    // Localizing j helps a; localizing i helps c.
    LoopNest nest = parseSingleNest(R"(
do i = 1, 10
  do j = 1, 10
    do k = 1, 10
      x = a(i, k) * c(j, k)
    end do
  end do
end do
)");
    LocalityParams params;
    auto ranked = rankUnrollCandidates(nest, params, 2);
    ASSERT_EQ(ranked.size(), 2u);
    // Both outer loops carry one invariant stream each; both must be
    // offered to the optimizer.
    EXPECT_NE(ranked[0], ranked[1]);
    EXPECT_LT(ranked[0], 2u);
    EXPECT_LT(ranked[1], 2u);
}

TEST(NonSeparable, PessimisticCost)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 10
  do i = 1, 10
    a(i+j) = a(i+j) + 1.0
  end do
end do
)");
    auto sets = partitionUGS(nest.accesses());
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_FALSE(sets[0].analyzable());
    LocalityParams params;
    Subspace inner = Subspace::coordinate(2, {1});
    // Pessimistic: one access per member per iteration.
    EXPECT_DOUBLE_EQ(ugsAccessesPerIteration(sets[0], inner, params), 2.0);
}

} // namespace
} // namespace ujam
