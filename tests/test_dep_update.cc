/**
 * @file
 * Tests for the incremental dependence-graph update across
 * unroll-and-jam, against the oracle of re-analyzing the transformed
 * nest from scratch.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "deps/analyzer.hh"
#include "deps/update.hh"
#include "parser/parser.hh"
#include "support/rng.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{
namespace
{

/** Canonical multiset encoding of a graph for comparison. */
std::multiset<std::string>
canonical(const DependenceGraph &graph)
{
    std::multiset<std::string> result;
    for (const Dependence &edge : graph.edges()) {
        std::ostringstream os;
        os << depKindName(edge.kind) << " " << edge.src << "->"
           << edge.dst << " (";
        for (DepDir dir : edge.dirs)
            os << depDirSymbol(dir);
        os << ")";
        if (edge.hasDistance)
            os << " d=" << edge.distance.toString();
        result.insert(os.str());
    }
    return result;
}

void
expectUpdateMatchesReanalysis(const LoopNest &nest,
                              const IntVector &unroll)
{
    DependenceGraph original = analyzeDependences(nest);
    DependenceGraph updated =
        updateGraphAfterUnrollAndJam(original, nest, unroll);

    LoopNest main_nest = unrollAndJamNest(nest, unroll).front();
    DependenceGraph reanalyzed = analyzeDependences(main_nest);

    EXPECT_EQ(canonical(updated), canonical(reanalyzed))
        << "unroll " << unroll.toString() << "\nupdated:\n"
        << updated.toString() << "\nreanalyzed:\n"
        << reanalyzed.toString();
}

TEST(DepUpdate, CopyOrderMatchesTransformLayout)
{
    // Earliest unrolled dim varies fastest (the transform's layout).
    auto copies = unrollCopyOrder(IntVector{1, 2, 0});
    ASSERT_EQ(copies.size(), 6u);
    EXPECT_EQ(copies[0], (IntVector{0, 0, 0}));
    EXPECT_EQ(copies[1], (IntVector{1, 0, 0}));
    EXPECT_EQ(copies[2], (IntVector{0, 1, 0}));
    EXPECT_EQ(copies[5], (IntVector{1, 2, 0}));
}

TEST(DepUpdate, CarriedFlowSplitsIntoBlocks)
{
    // d = (1, 0) unrolled by 2 (factor 3): copies 0,1 reach copies
    // 1,2 inside the same block (d' = 0); copy 2 reaches copy 0 of
    // the NEXT block (d' = 1).
    LoopNest nest = parseSingleNest(R"(
do j = 1, 30
  do i = 1, 30
    a(i, j) = a(i, j-1) * 0.5
  end do
end do
)");
    DependenceGraph original = analyzeDependences(nest);
    ASSERT_EQ(original.size(), 1u);
    DependenceGraph updated =
        updateGraphAfterUnrollAndJam(original, nest, IntVector{2, 0});
    EXPECT_EQ(updated.size(), 3u);
    std::size_t independent = 0;
    std::size_t carried = 0;
    for (const Dependence &edge : updated.edges()) {
        if (edge.loopCarried())
            ++carried;
        else
            ++independent;
    }
    EXPECT_EQ(independent, 2u);
    EXPECT_EQ(carried, 1u);

    expectUpdateMatchesReanalysis(nest, IntVector{2, 0});
}

TEST(DepUpdate, MatchesReanalysisOnSuiteShapes)
{
    const char *sources[] = {
        R"(
do j = 1, 30
  do i = 1, 30
    a(i, j) = a(i, j-1) + a(i, j-2) + b(i, j)
  end do
end do
)",
        R"(
do j = 1, 30
  do i = 1, 30
    a(i, j) = a(i+1, j-3) * 0.5
  end do
end do
)",
        R"(
do j = 1, 20
  do k = 1, 20
    do i = 1, 20
      c(i, j) = c(i, j) + a(i, k) * b(k, j)
    end do
  end do
end do
)",
    };
    for (const char *source : sources) {
        LoopNest nest = parseSingleNest(source);
        for (std::int64_t u : {1, 2, 3}) {
            IntVector unroll(nest.depth());
            unroll[0] = u;
            expectUpdateMatchesReanalysis(nest, unroll);
        }
        if (nest.depth() == 3)
            expectUpdateMatchesReanalysis(nest, IntVector{2, 1, 0});
    }
}

class DepUpdateOracle : public ::testing::TestWithParam<int>
{};

TEST_P(DepUpdateOracle, RandomExactGraphs)
{
    Rng rng(12100 + GetParam());
    // Stencil nests with exact distances only (no Star edges): writes
    // and reads of one array at small offsets, full-rank subscripts.
    std::ostringstream src;
    src << "do j = 1, 20\n  do i = 1, 20\n    a(i";
    std::int64_t wi = rng.range(0, 1);
    if (wi)
        src << "+" << wi;
    src << ", j) = ";
    int reads = static_cast<int>(rng.range(1, 3));
    for (int r = 0; r < reads; ++r) {
        if (r > 0)
            src << " + ";
        src << "a(i";
        if (std::int64_t di = rng.range(-2, 2); di != 0)
            src << (di > 0 ? "+" : "") << di;
        src << ", j";
        if (std::int64_t dj = rng.range(-2, 2); dj != 0)
            src << (dj > 0 ? "+" : "") << dj;
        src << ")";
    }
    src << "\n  end do\nend do\n";
    LoopNest nest = parseSingleNest(src.str());
    nest.setName(src.str());

    IntVector unroll{rng.range(0, 3), 0};
    expectUpdateMatchesReanalysis(nest, unroll);
}

INSTANTIATE_TEST_SUITE_P(Random, DepUpdateOracle,
                         ::testing::Range(0, 25));

TEST(DepUpdate, StarEdgesExpandConservatively)
{
    // The invariant b(i) self input dep has a Star on the unrolled
    // loop: the update must cover every copy pair the re-analysis
    // finds (it may be a superset; count only coverage).
    LoopNest nest = parseSingleNest(R"(
do j = 1, 20
  do i = 1, 20
    a(i, j) = b(i)
  end do
end do
)");
    DependenceGraph original = analyzeDependences(nest);
    IntVector unroll{2, 0};
    DependenceGraph updated =
        updateGraphAfterUnrollAndJam(original, nest, unroll);
    LoopNest main_nest = unrollAndJamNest(nest, unroll).front();
    DependenceGraph reanalyzed = analyzeDependences(main_nest);

    std::set<std::pair<std::size_t, std::size_t>> covered;
    for (const Dependence &edge : updated.edges())
        covered.insert({std::min(edge.src, edge.dst),
                        std::max(edge.src, edge.dst)});
    for (const Dependence &edge : reanalyzed.edges()) {
        EXPECT_TRUE(covered.count({std::min(edge.src, edge.dst),
                                   std::max(edge.src, edge.dst)}))
            << edge.toString();
    }
}

} // namespace
} // namespace ujam
