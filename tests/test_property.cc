/**
 * @file
 * Cross-cutting property tests: linear-algebra invariants on random
 * matrices, parser robustness on hostile input, and randomized
 * full-pipeline equivalence on deeper nests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/driver.hh"
#include "ir/interp.hh"
#include "ir/printer.hh"
#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"

namespace ujam
{
namespace
{

// --- linear algebra invariants -------------------------------------------

class LinalgProperty : public ::testing::TestWithParam<int>
{};

TEST_P(LinalgProperty, KernelAnnihilatesAndRankNullity)
{
    Rng rng(2200 + GetParam());
    std::size_t rows = static_cast<std::size_t>(rng.range(1, 4));
    std::size_t cols = static_cast<std::size_t>(rng.range(1, 5));
    RatMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = Rational(rng.range(-3, 3));
    }
    RatMatrix kernel = m.kernelBasis();
    // rank + nullity == cols
    EXPECT_EQ(m.rank() + kernel.rows(), cols);
    // A x == 0 for every basis vector
    for (std::size_t k = 0; k < kernel.rows(); ++k) {
        RatVector image = m.apply(kernel.row(k));
        for (const Rational &x : image)
            EXPECT_TRUE(x.isZero());
    }
    // Basis vectors are independent.
    EXPECT_EQ(kernel.rank(), kernel.rows());
}

TEST_P(LinalgProperty, SolveResidualIsZero)
{
    Rng rng(3300 + GetParam());
    std::size_t rows = static_cast<std::size_t>(rng.range(1, 4));
    std::size_t cols = static_cast<std::size_t>(rng.range(1, 4));
    RatMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = Rational(rng.range(-3, 3));
    }
    // Build a certainly-consistent RHS: b = A * x0.
    RatVector x0(cols);
    for (std::size_t c = 0; c < cols; ++c)
        x0[c] = Rational(rng.range(-4, 4), rng.range(1, 3));
    RatVector b = m.apply(x0);

    auto solution = m.solve(b);
    ASSERT_TRUE(solution.has_value());
    RatVector residual = m.apply(*solution);
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_EQ(residual[r], b[r]);
}

TEST_P(LinalgProperty, IntersectionIsContainedInBoth)
{
    Rng rng(4400 + GetParam());
    std::size_t n = static_cast<std::size_t>(rng.range(2, 4));
    auto random_space = [&]() {
        std::vector<IntVector> vecs;
        std::size_t count = static_cast<std::size_t>(rng.range(0, 2));
        for (std::size_t v = 0; v < count; ++v) {
            IntVector vec(n);
            for (std::size_t k = 0; k < n; ++k)
                vec[k] = rng.range(-2, 2);
            vecs.push_back(std::move(vec));
        }
        return Subspace::spanOf(n, vecs);
    };
    Subspace a = random_space();
    Subspace b = random_space();
    Subspace meet = a.intersect(b);
    EXPECT_TRUE(a.containsSubspace(meet));
    EXPECT_TRUE(b.containsSubspace(meet));
    // dim(meet) >= dim a + dim b - n (dimension formula bound).
    std::size_t lower =
        a.dim() + b.dim() >= n ? a.dim() + b.dim() - n : 0;
    EXPECT_GE(meet.dim(), lower);
}

INSTANTIATE_TEST_SUITE_P(Random, LinalgProperty, ::testing::Range(0, 30));

// --- parser robustness -----------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(ParserFuzz, HostileInputNeverCrashes)
{
    Rng rng(5500 + GetParam());
    // Token soup drawn from the DSL's own vocabulary: close enough to
    // real programs to reach deep parser states.
    static const char *pieces[] = {
        "do",   "end",  "real", "param", "pre",  "post", "prefetch",
        "align", "i",   "j",    "n",     "a",    "(",    ")",
        ",",    "=",    "+",    "-",     "*",    "/",    "1",
        "2.5",  "\n",   "!",    "0",     "do i = 1, 4\n",
        "a(i) = 1\n",   "end do\n"};
    std::ostringstream src;
    int count = static_cast<int>(rng.range(1, 60));
    for (int t = 0; t < count; ++t) {
        src << pieces[rng.range(0, std::size(pieces) - 1)];
        if (rng.chance(0.3))
            src << " ";
    }
    try {
        Program program = parseProgram(src.str());
        // If it parsed, it must at least re-render without crashing.
        renderProgram(program);
    } catch (const FatalError &) {
        // Expected for malformed input: a diagnostic, not a crash.
    }
}

INSTANTIATE_TEST_SUITE_P(TokenSoup, ParserFuzz, ::testing::Range(0, 60));

// --- randomized full-pipeline equivalence ----------------------------------

class PipelineProperty : public ::testing::TestWithParam<int>
{};

TEST_P(PipelineProperty, ThreeDeepRandomNests)
{
    Rng rng(6600 + GetParam());
    std::ostringstream src;
    std::int64_t n = rng.range(5, 9);
    src << "param n = " << n << "\n";
    src << "real a(n + 10, n + 10, n + 10)\n";
    src << "real b(n + 10, n + 10)\n";
    src << "real c(n + 10)\n";
    src << "do i = 1, n\n  do j = 1, n\n    do k = 1, n\n";
    src << "      a(k, j, i) = ";
    int reads = static_cast<int>(rng.range(1, 3));
    for (int r = 0; r < reads; ++r) {
        if (r > 0)
            src << " + ";
        switch (rng.range(0, 3)) {
          case 0:
            src << "a(k, j, i" << (rng.chance(0.5) ? "-1" : "-2")
                << ")";
            break;
          case 1:
            src << "b(k, j" << (rng.chance(0.5) ? "-1" : "")
                << ")";
            break;
          case 2:
            src << "c(k)";
            break;
          default:
            src << "b(k, i)";
            break;
        }
    }
    src << " * 0.5\n";
    src << "    end do\n  end do\nend do\n";

    Program program = parseProgram(src.str());
    PipelineConfig config;
    config.interchange = rng.chance(0.5);
    config.prefetch = rng.chance(0.5);
    config.optimizer.maxUnroll = 3;
    const MachineModel machine = rng.chance(0.5)
                                     ? MachineModel::decAlpha21064()
                                     : MachineModel::wideIlp();
    PipelineResult result = optimizeProgram(program, machine, config);

    Interpreter x(program);
    Interpreter y(result.program);
    x.seedArrays(77);
    y.seedArrays(77);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "")
        << src.str() << "\n---\n"
        << renderProgram(result.program);

    // The transformed program (align bounds, pre/post headers,
    // prefetches, steps) must survive a print/parse round trip with
    // identical semantics -- the printer and parser cover the whole
    // output language.
    Program reparsed = parseProgram(renderProgram(result.program));
    Interpreter z(reparsed);
    z.seedArrays(77);
    z.run();
    EXPECT_EQ(y.compareArrays(z, 0.0), "")
        << renderProgram(result.program);
}

INSTANTIATE_TEST_SUITE_P(Random, PipelineProperty,
                         ::testing::Range(0, 30));

} // namespace
} // namespace ujam
