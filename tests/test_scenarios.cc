/**
 * @file
 * The scenario-generator subsystem (src/scenarios) end to end.
 *
 * Three layers are under test: the generators themselves (naming,
 * determinism, and the declared ground truths checked against the
 * real dependence and reuse analyses), the corpus hook that gives
 * the CLIs and the service one name space over suite loops and
 * scenarios, and the sweep runner (manifest grammar, thread-count
 * invariance of the rendered document, the census arithmetic, and
 * the oracle smoke that ISSUE acceptance keys on).
 *
 * ScenarioTruth.* runs in the fuzz-fast tier: the sampled grids are
 * inputs the analysis stack was never calibrated on, so conformance
 * doubles as a property check for deps/analyzer and reuse/locality.
 */

#include <cstdint>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/validate.hh"
#include "parser/parser.hh"
#include "scenarios/corpus_hook.hh"
#include "scenarios/scenario.hh"
#include "scenarios/sweep.hh"
#include "service/protocol.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

/** A small but multi-family manifest the sweep tests share. */
const char *const kSmallManifest = R"({
  "schema": "ujam-sweep-manifest-v1",
  "families": [
    {"family": "stencil1d", "grid": {"n": [16, 24], "radius": [1, 2]}},
    {"family": "matmul", "grid": {"n": [8], "m": [8], "order": [0, 1]}},
    {"family": "strided", "grid": {"n": [16], "m": [8], "stride": [0, 2]}},
    {"family": "irregular", "grid": {"n": [16], "m": [8], "pattern": [2]}}
  ],
  "machines": ["alpha", "wide"],
  "seeds": [0, 1],
  "oracle": true
})";

SweepManifest
smallManifest()
{
    std::string error;
    std::optional<SweepManifest> manifest =
        parseSweepManifest(kSmallManifest, &error);
    EXPECT_TRUE(manifest.has_value()) << error;
    return manifest.value();
}

TEST(ScenarioSpec, DefaultsFillAndCanonicalOrder)
{
    std::string error;
    std::optional<ScenarioSpec> spec =
        parseScenarioSpec("stencil1d", &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->family, "stencil1d");
    EXPECT_EQ(spec->seed, 0u);

    const IScenarioGenerator *family = findScenarioFamily("stencil1d");
    ASSERT_NE(family, nullptr);
    for (const ScenarioParam &param : family->params())
        EXPECT_EQ(spec->at(param.name), param.def) << param.name;

    // Out-of-order parameters canonicalize to schema order, and the
    // canonical name round-trips to the identical spec.
    std::optional<ScenarioSpec> shuffled =
        parseScenarioSpec("stencil2d:radius=2,n=24:5", &error);
    ASSERT_TRUE(shuffled.has_value()) << error;
    std::string canonical = shuffled->toString();
    EXPECT_EQ(canonical.find("stencil2d:n=24,"), 0u) << canonical;
    std::optional<ScenarioSpec> again =
        parseScenarioSpec(canonical, &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(again->toString(), canonical);
    EXPECT_EQ(again->params, shuffled->params);
    EXPECT_EQ(again->seed, 5u);
}

TEST(ScenarioSpec, RejectsBadNames)
{
    std::string error;
    EXPECT_FALSE(parseScenarioSpec("nosuch:n=8:0", &error).has_value());
    EXPECT_NE(error.find("unknown scenario family"), std::string::npos)
        << error;

    EXPECT_FALSE(
        parseScenarioSpec("stencil1d:bogus=3:0", &error).has_value());
    EXPECT_FALSE(parseScenarioSpec("stencil1d:n=3:0", &error).has_value())
        << "n=3 is below the schema minimum";
    EXPECT_FALSE(
        parseScenarioSpec("stencil1d:n=8:notanumber", &error).has_value());
    EXPECT_FALSE(parseScenarioSpec("stencil1d:n=8:-1", &error).has_value());
}

TEST(ScenarioSpec, NameSyntaxSplitsTheCorpus)
{
    EXPECT_TRUE(looksLikeScenarioName("stencil1d:n=8:0"));
    EXPECT_TRUE(looksLikeScenarioName("matmul:"));
    EXPECT_FALSE(looksLikeScenarioName("dmxpy"));
    EXPECT_FALSE(looksLikeScenarioName("matmul"));
}

TEST(ScenarioDeterminism, FixedSpecIsByteIdenticalAcrossThreads)
{
    // The determinism contract: generation is a pure function of the
    // complete spec, so concurrent generation from many pool workers
    // must produce byte-identical DSL.
    for (const IScenarioGenerator *family : scenarioRegistry()) {
        std::string error;
        std::optional<ScenarioSpec> spec =
            parseScenarioSpec(std::string(family->family()) + "::7",
                              &error);
        ASSERT_TRUE(spec.has_value()) << family->family() << ": " << error;

        const std::string reference = generateScenario(*spec).source;
        std::vector<std::string> got(8);
        parallelFor(got.size(), 0, [&](std::size_t i) {
            got[i] = generateScenario(*spec).source;
        });
        for (const std::string &source : got)
            EXPECT_EQ(source, reference) << family->family();
    }
}

TEST(ScenarioDeterminism, DistinctSeedsDiffer)
{
    for (const IScenarioGenerator *family : scenarioRegistry()) {
        std::string error;
        std::optional<ScenarioSpec> a =
            parseScenarioSpec(std::string(family->family()) + "::0",
                              &error);
        std::optional<ScenarioSpec> b =
            parseScenarioSpec(std::string(family->family()) + "::1",
                              &error);
        ASSERT_TRUE(a.has_value() && b.has_value()) << family->family();
        EXPECT_NE(generateScenario(*a).source,
                  generateScenario(*b).source)
            << family->family();
    }
}

/** Every sampled spec for one family: defaults, per-parameter low
 * and bumped values, two seeds each. */
std::vector<ScenarioSpec>
sampledSpecs(const IScenarioGenerator &family)
{
    std::vector<ScenarioSpec> specs;
    std::string error;
    for (std::uint64_t seed : {0, 1, 2}) {
        std::optional<ScenarioSpec> spec = parseScenarioSpec(
            concat(family.family(), "::", seed), &error);
        EXPECT_TRUE(spec.has_value()) << error;
        if (spec)
            specs.push_back(*spec);
    }
    for (const ScenarioParam &param : family.params()) {
        for (std::int64_t value :
             {param.min, std::min(param.def + 1, param.max)}) {
            std::optional<ScenarioSpec> spec = parseScenarioSpec(
                concat(family.family(), ":", param.name, "=", value,
                       ":0"),
                &error);
            EXPECT_TRUE(spec.has_value()) << error;
            if (spec)
                specs.push_back(*spec);
        }
    }
    return specs;
}

TEST(ScenarioTruth, SampledGridsConformToTheAnalyses)
{
    std::size_t checked = 0;
    for (const IScenarioGenerator *family : scenarioRegistry()) {
        for (const ScenarioSpec &spec : sampledSpecs(*family)) {
            GeneratedScenario scenario = generateScenario(spec);
            Program program = parseProgram(
                scenario.source, "scenario:" + scenario.name);
            EXPECT_TRUE(validateProgram(program).empty())
                << scenario.name;
            std::string why;
            EXPECT_TRUE(
                verifyScenarioTruth(program, scenario.truth, &why))
                << scenario.name << ": " << why;
            ++checked;
        }
    }
    // Eight families, three seed samples plus two samples per
    // schema parameter: a real grid, not a handful of spot checks.
    EXPECT_GE(checked, 80u);
}

TEST(CorpusHook, OneNameSpaceOverBothCorpora)
{
    Program suite = loadCorpusProgram("dmxpy0");
    EXPECT_EQ(suite.nests().size(), 1u);

    Program scenario = loadCorpusProgram("matmul:n=8,m=8:0");
    EXPECT_EQ(scenario.sourceName(),
              "scenario:matmul:n=8,m=8,order=0:0");

    EXPECT_THROW(loadCorpusProgram("nosuchloop"), FatalError);
    EXPECT_THROW(loadCorpusProgram("nosuch:n=8:0"), FatalError);

    std::string list = renderCorpusList();
    EXPECT_NE(list.find("dmxpy0"), std::string::npos);
    for (const IScenarioGenerator *family : scenarioRegistry())
        EXPECT_NE(list.find(family->family()), std::string::npos)
            << family->family();

    EXPECT_EQ(corpusFileStem("stencil2d:n=24,radius=2:7"),
              "stencil2d_n_24_radius_2_7");
    EXPECT_EQ(corpusFileStem("dmxpy"), "dmxpy");
}

TEST(SweepManifest, ParsesGridsAndCountsJobs)
{
    SweepManifest manifest = smallManifest();
    ASSERT_EQ(manifest.families.size(), 4u);
    EXPECT_TRUE(manifest.oracle);
    // (2*2 + 2 + 2 + 1) grid points x 2 seeds x 2 machines x 1
    // pipeline.
    EXPECT_EQ(manifest.jobCount(), 9u * 2u * 2u);
}

TEST(SweepManifest, RejectsBadDocuments)
{
    std::string error;
    EXPECT_FALSE(parseSweepManifest("not json", &error).has_value());
    EXPECT_FALSE(parseSweepManifest("{}", &error).has_value())
        << "families is required";
    EXPECT_FALSE(parseSweepManifest(
                     R"({"families": []})", &error)
                     .has_value());
    EXPECT_FALSE(
        parseSweepManifest(
            R"({"families": [{"family": "nosuch", "grid": {}}]})",
            &error)
            .has_value());
    EXPECT_NE(error.find("nosuch"), std::string::npos) << error;
    EXPECT_FALSE(
        parseSweepManifest(
            R"({"families": [{"family": "matmul",
                              "grid": {"bogus": [1]}}]})",
            &error)
            .has_value());
    EXPECT_FALSE(
        parseSweepManifest(
            R"({"families": [{"family": "matmul",
                              "grid": {"n": [99999]}}]})",
            &error)
            .has_value())
        << "grid values must satisfy the schema range";
    EXPECT_FALSE(
        parseSweepManifest(
            R"({"families": [{"family": "matmul", "grid": {}}],
                "pipelines": [{"name": "p", "lint": "loud"}]})",
            &error)
            .has_value());
    EXPECT_FALSE(
        parseSweepManifest(
            R"({"families": [{"family": "matmul", "grid": {}}],
                "machines": ["vax"]})",
            &error)
            .has_value());
}

TEST(SweepManifest, DefaultManifestRoundTripsAndIsBroad)
{
    std::string error;
    std::optional<SweepManifest> parsed =
        parseSweepManifest(renderDefaultSweepManifest(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->jobCount(), defaultSweepManifest().jobCount());
    // ISSUE acceptance: at least four families and a hundred
    // scenarios through the oracle.
    EXPECT_GE(parsed->families.size(), 4u);
    EXPECT_GE(parsed->jobCount(), 100u);
    EXPECT_TRUE(parsed->oracle);
}

TEST(SweepDeterminism, DocumentIsThreadCountInvariant)
{
    SweepManifest manifest = smallManifest();
    SweepResult serial = runSweep(manifest, 1);
    SweepResult parallel = runSweep(manifest, 4);
    EXPECT_EQ(sweepResultJson(serial, 1), sweepResultJson(parallel, 1));
    EXPECT_EQ(sweepFeatureRows(serial), sweepFeatureRows(parallel));
}

TEST(SweepOracle, SmokeGridHasZeroRollbacks)
{
    SweepManifest manifest = smallManifest();
    ASSERT_TRUE(manifest.oracle);
    SweepResult result = runSweep(manifest);
    ASSERT_EQ(result.rows.size(), manifest.jobCount());
    for (const SweepRow &row : result.rows) {
        EXPECT_TRUE(row.validatorOk) << row.scenario;
        EXPECT_TRUE(row.truthOk) << row.scenario << ": " << row.truthWhy;
        EXPECT_EQ(row.rollbacks, 0u)
            << row.scenario << ": "
            << (row.rollbackDetail.empty() ? ""
                                           : row.rollbackDetail.front());
        EXPECT_EQ(row.lintErrors, 0u) << row.scenario;
        EXPECT_FALSE(row.tunerPick.empty()) << row.scenario;
    }
}

TEST(SweepJson, CensusMatchesTheRowsAndFeatureRowsParse)
{
    SweepManifest manifest = smallManifest();
    SweepResult result = runSweep(manifest);
    JsonParseResult doc = parseJson(sweepResultJson(result, 1));
    ASSERT_TRUE(doc.ok()) << doc.error;
    const JsonValue &root = *doc.value;

    const JsonValue *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->stringValue, "ujam-sweep-v1");

    const JsonValue *census = root.find("census");
    const JsonValue *rows = root.find("scenarios");
    ASSERT_NE(census, nullptr);
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    ASSERT_EQ(rows->elements.size(), result.rows.size());

    // Re-derive the census from the row objects; the two views of
    // the sweep must agree.
    std::int64_t truth_ok = 0;
    std::int64_t agree = 0;
    std::map<std::string, std::int64_t> per_family;
    for (const JsonValue &row : rows->elements) {
        const JsonValue *family = row.find("family");
        ASSERT_NE(family, nullptr);
        per_family[family->stringValue] += 1;
        truth_ok += row.find("truth_ok")->boolValue;
        agree += row.find("agree")->boolValue;
        const JsonValue *features = row.find("features");
        ASSERT_NE(features, nullptr);
        ASSERT_TRUE(features->isObject());
        EXPECT_EQ(features->find("schema")->stringValue,
                  "ujam-tune-features-v1");
    }
    EXPECT_EQ(census->find("truth_ok")->asInt().value(), truth_ok);
    const JsonValue *agreement = census->find("model_tuner_agreement");
    ASSERT_NE(agreement, nullptr);
    EXPECT_EQ(agreement->find("agree")->asInt().value(), agree);
    EXPECT_EQ(agreement->find("total")->asInt().value(),
              std::int64_t(result.rows.size()));

    const JsonValue *by_family = census->find("by_family");
    ASSERT_NE(by_family, nullptr);
    ASSERT_EQ(by_family->elements.size(), per_family.size());
    for (const JsonValue &cell : by_family->elements) {
        const std::string &name = cell.find("family")->stringValue;
        EXPECT_EQ(cell.find("scenarios")->asInt().value(),
                  per_family[name])
            << name;
    }

    // Every feature line is standalone NDJSON with the tune schema.
    std::string ndjson = sweepFeatureRows(result);
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < ndjson.size()) {
        std::size_t end = ndjson.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        JsonParseResult line =
            parseJson(ndjson.substr(start, end - start));
        ASSERT_TRUE(line.ok()) << line.error;
        ++lines;
        start = end + 1;
    }
    EXPECT_EQ(lines, result.rows.size());
}

TEST(ScenarioService, ScenarioFieldResolvesToSource)
{
    RequestParse parsed = parseRequest(
        R"({"op": "lint", "scenario": "stencil1d:n=32:1"})");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.request->scenarioName,
              "stencil1d:n=32,m=32,radius=1,inplace=0:1");
    EXPECT_EQ(parsed.request->source,
              generateScenario(
                  parseScenarioSpec("stencil1d:n=32:1", nullptr).value())
                  .source);

    RequestParse bad = parseRequest(
        R"({"op": "lint", "scenario": "nosuch:n=1:0"})");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.kind, RequestErrorKind::BadField);

    RequestParse both = parseRequest(
        R"({"op": "lint", "scenario": "stencil1d", "source": "x"})");
    EXPECT_FALSE(both.ok());
    EXPECT_NE(both.error.find("mutually exclusive"), std::string::npos)
        << both.error;
}

} // namespace
} // namespace ujam
