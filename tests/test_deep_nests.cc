/**
 * @file
 * Coverage for 4-deep nests (BTRIX's true shape in NASA7): the
 * tables, the optimizer, the transforms and the pipeline must all
 * handle depth 4, with the usual oracle and equivalence anchors.
 */

#include <gtest/gtest.h>

#include "baseline/brute_force.hh"
#include "core/optimizer.hh"
#include "driver/driver.hh"
#include "ir/interp.hh"
#include "parser/parser.hh"
#include "transform/interchange.hh"

namespace ujam
{
namespace
{

const char *kFourDeep = R"(
param n = 10
real s(n + 4, n + 4, n + 4, n + 4)
real r(n + 4, n + 4)
real q(n + 4, n + 4)
! nest: btrix4
do m = 1, n
  do j = 1, n
    do k = 2, n
      do i = 1, n
        s(i, k, j, m) = s(i, k, j, m) - r(i, k) * s(i, k-1, j, m) + q(k, j)
      end do
    end do
  end do
end do
)";

TEST(FourDeep, TablesMatchBruteForceOracle)
{
    LoopNest nest = parseProgram(kFourDeep).nests()[0];
    ASSERT_EQ(nest.depth(), 4u);
    UnrollSpace space(4, {0, 1}, {2, 2});
    Subspace inner = Subspace::coordinate(4, {3});
    LocalityParams params;
    NestTables tables = buildNestTables(nest, space, inner);

    for (std::size_t i = 0; i < space.size(); ++i) {
        IntVector u = space.vectorAt(i);
        BodyCounts exact = measureUnrolledBody(nest, u, inner, params);
        std::int64_t gt = 0;
        for (const UgsTables &t : tables.perUgs)
            gt += t.groupTemporal.at(u);
        EXPECT_EQ(gt, exact.groupTemporal) << u.toString();
        EXPECT_EQ(tables.rrsTotal.at(u), exact.memOps) << u.toString();
        EXPECT_EQ(tables.registersTotal.at(u), exact.registers)
            << u.toString();
    }
}

TEST(FourDeep, OptimizerPicksTwoOfThreeOuterLoops)
{
    LoopNest nest = parseProgram(kFourDeep).nests()[0];
    OptimizerConfig config;
    config.maxUnroll = 3;
    UnrollDecision decision = chooseUnrollAmounts(
        nest, MachineModel::decAlpha21064(), config);
    EXPECT_LE(decision.consideredLoops.size(), 2u);
    EXPECT_EQ(decision.unroll[3], 0); // innermost untouched
    EXPECT_TRUE(decision.transforms());
}

TEST(FourDeep, FullPipelineEquivalence)
{
    Program program = parseProgram(kFourDeep);
    PipelineConfig config;
    config.optimizer.maxUnroll = 2;
    config.prefetch = true;
    PipelineResult result = optimizeProgram(
        program, MachineModel::wideIlp(), config);

    Interpreter x(program, {{"n", 7}});
    Interpreter y(result.program, {{"n", 7}});
    x.seedArrays(44);
    y.seedArrays(44);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "");
}

TEST(FourDeep, InterchangeEnumeratesAllOrders)
{
    // 24 permutations; the identity is already memory-ordered here
    // (i contiguous and innermost), so nothing should change.
    LoopNest nest = parseProgram(kFourDeep).nests()[0];
    LocalityParams params;
    InterchangeResult order = chooseLoopOrder(nest, params);
    EXPECT_EQ(order.nest.loop(3).iv, "i");
}

} // namespace
} // namespace ujam
