/**
 * @file
 * Unit tests for the linalg module: integer vectors, rational
 * matrices, subspaces and the merge-shift solver.
 */

#include <gtest/gtest.h>

#include "linalg/int_vector.hh"
#include "linalg/merge_solver.hh"
#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"
#include "support/diagnostics.hh"

namespace ujam
{
namespace
{

TEST(IntVector, ArithmeticAndZero)
{
    IntVector a{1, -2, 3};
    IntVector b{4, 5, -6};
    EXPECT_EQ(a + b, (IntVector{5, 3, -3}));
    EXPECT_EQ(a - b, (IntVector{-3, -7, 9}));
    EXPECT_EQ(-a, (IntVector{-1, 2, -3}));
    EXPECT_TRUE((a - a).isZero());
    EXPECT_FALSE(a.isZero());
}

TEST(IntVector, LexOrder)
{
    EXPECT_TRUE((IntVector{0, 5}).lexLess(IntVector{1, -9}));
    EXPECT_TRUE((IntVector{1, 2}).lexLess(IntVector{1, 3}));
    EXPECT_FALSE((IntVector{1, 3}).lexLess(IntVector{1, 3}));
    EXPECT_EQ((IntVector{2, 0}).lexCompare(IntVector{1, 9}), 1);
    EXPECT_EQ((IntVector{1, 1}).lexCompare(IntVector{1, 1}), 0);
}

TEST(IntVector, Dominance)
{
    EXPECT_TRUE((IntVector{1, 2}).allLessEq(IntVector{1, 3}));
    EXPECT_FALSE((IntVector{2, 2}).allLessEq(IntVector{1, 3}));
    EXPECT_TRUE((IntVector{0, 0}).allNonNegative());
    EXPECT_FALSE((IntVector{0, -1}).allNonNegative());
    EXPECT_EQ(IntVector::max({1, 5}, {3, 2}), (IntVector{3, 5}));
}

TEST(IntVector, SizeMismatchPanics)
{
    EXPECT_THROW((IntVector{1}) + (IntVector{1, 2}), PanicError);
}

TEST(RatMatrix, IdentityAndApply)
{
    RatMatrix eye = RatMatrix::identity(3);
    RatVector v{Rational(1), Rational(2), Rational(3)};
    EXPECT_EQ(eye.apply(v), v);
    EXPECT_EQ(eye.rank(), 3u);
}

TEST(RatMatrix, MultiplyAndTranspose)
{
    RatMatrix a = RatMatrix::fromIntRows({{1, 2}, {3, 4}});
    RatMatrix b = RatMatrix::fromIntRows({{0, 1}, {1, 0}});
    RatMatrix ab = a.multiply(b);
    EXPECT_EQ(ab, RatMatrix::fromIntRows({{2, 1}, {4, 3}}));
    EXPECT_EQ(a.transpose(),
              RatMatrix::fromIntRows({{1, 3}, {2, 4}}));
}

TEST(RatMatrix, RrefAndRank)
{
    RatMatrix m = RatMatrix::fromIntRows({{1, 2, 3}, {2, 4, 6}, {1, 0, 1}});
    EXPECT_EQ(m.rank(), 2u);
    std::vector<std::size_t> pivots = m.reduceToRref();
    ASSERT_EQ(pivots.size(), 2u);
    EXPECT_EQ(pivots[0], 0u);
    EXPECT_EQ(pivots[1], 1u);
}

TEST(RatMatrix, KernelBasisAnnihilates)
{
    RatMatrix m = RatMatrix::fromIntRows({{1, 2, 3}, {0, 1, 1}});
    RatMatrix kernel = m.kernelBasis();
    EXPECT_EQ(kernel.rows(), 1u);
    RatVector image = m.apply(kernel.row(0));
    for (const Rational &x : image)
        EXPECT_TRUE(x.isZero());
}

TEST(RatMatrix, KernelOfFullRankIsEmpty)
{
    RatMatrix m = RatMatrix::identity(4);
    EXPECT_EQ(m.kernelBasis().rows(), 0u);
}

TEST(RatMatrix, SolveConsistent)
{
    RatMatrix m = RatMatrix::fromIntRows({{2, 0}, {0, 4}});
    auto solution = m.solve({Rational(6), Rational(8)});
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], Rational(3));
    EXPECT_EQ((*solution)[1], Rational(2));
}

TEST(RatMatrix, SolveInconsistent)
{
    RatMatrix m = RatMatrix::fromIntRows({{1, 1}, {2, 2}});
    auto solution = m.solve({Rational(1), Rational(3)});
    EXPECT_FALSE(solution.has_value());
}

TEST(RatMatrix, SolveUnderdeterminedSetsFreeVarsToZero)
{
    RatMatrix m = RatMatrix::fromIntRows({{1, 1}});
    auto solution = m.solve({Rational(5)});
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], Rational(5));
    EXPECT_EQ((*solution)[1], Rational(0));
}

TEST(Subspace, ZeroAndFull)
{
    Subspace zero = Subspace::zero(3);
    Subspace full = Subspace::full(3);
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(zero.dim(), 0u);
    EXPECT_EQ(full.dim(), 3u);
    EXPECT_TRUE(full.contains(IntVector{1, -7, 4}));
    EXPECT_FALSE(zero.contains(IntVector{0, 0, 1}));
    EXPECT_TRUE(zero.contains(IntVector{0, 0, 0}));
}

TEST(Subspace, SpanCanonicalizes)
{
    Subspace s1 = Subspace::spanOf(2, {IntVector{1, 1}, IntVector{2, 2}});
    Subspace s2 = Subspace::spanOf(2, {IntVector{3, 3}});
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1.dim(), 1u);
}

TEST(Subspace, Membership)
{
    Subspace s = Subspace::spanOf(3, {IntVector{1, 0, 1}, IntVector{0, 1, 0}});
    EXPECT_TRUE(s.contains(IntVector{2, 5, 2}));
    EXPECT_FALSE(s.contains(IntVector{1, 0, 0}));
}

TEST(Subspace, Coordinate)
{
    Subspace s = Subspace::coordinate(3, {2});
    EXPECT_EQ(s.dim(), 1u);
    EXPECT_TRUE(s.contains(IntVector{0, 0, 7}));
    EXPECT_FALSE(s.contains(IntVector{0, 1, 7}));
}

TEST(Subspace, Intersection)
{
    // span{(1,0,0), (0,1,0)} cap span{(0,1,0), (0,0,1)} = span{(0,1,0)}
    Subspace a = Subspace::coordinate(3, {0, 1});
    Subspace b = Subspace::coordinate(3, {1, 2});
    Subspace meet = a.intersect(b);
    EXPECT_EQ(meet, Subspace::coordinate(3, {1}));
}

TEST(Subspace, IntersectionNonAxisAligned)
{
    // span{(1,1)} cap span{(1,-1)} = {0}
    Subspace a = Subspace::spanOf(2, {IntVector{1, 1}});
    Subspace b = Subspace::spanOf(2, {IntVector{1, -1}});
    EXPECT_TRUE(a.intersect(b).isZero());

    // span{(1,1,0),(0,0,1)} cap span{(1,1,1)} = span{(1,1,1)}
    Subspace c = Subspace::spanOf(3, {IntVector{1, 1, 0}, IntVector{0, 0, 1}});
    Subspace d = Subspace::spanOf(3, {IntVector{1, 1, 1}});
    EXPECT_EQ(c.intersect(d), d);
}

TEST(Subspace, SumAndContainment)
{
    Subspace a = Subspace::coordinate(3, {0});
    Subspace b = Subspace::coordinate(3, {1});
    Subspace join = a.sum(b);
    EXPECT_EQ(join.dim(), 2u);
    EXPECT_TRUE(join.containsSubspace(a));
    EXPECT_TRUE(join.containsSubspace(b));
    EXPECT_FALSE(a.containsSubspace(join));
}

// --- merge-shift solver -------------------------------------------------

/** Fig. 1 of the paper: A(I,J) and A(I-2,J), localized innermost (J). */
TEST(MergeSolver, PaperFigure1)
{
    RatMatrix h = RatMatrix::identity(2); // subscripts (I, J)
    IntVector delta{2, 0};                // c(A(I,J)) - c(A(I-2,J))
    Subspace localized = Subspace::coordinate(2, {1});
    std::vector<bool> unrollable{true, false};

    auto shift = solveMergeShift(h, delta, localized, unrollable);
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, (IntVector{2, 0}));
}

TEST(MergeSolver, InnermostDifferenceAbsorbedByLocalizedSpace)
{
    // A(I,J) vs A(I-1,J+3) with J innermost/localized: merge at u=(1,0).
    RatMatrix h = RatMatrix::identity(2);
    IntVector delta{1, -3};
    Subspace localized = Subspace::coordinate(2, {1});
    std::vector<bool> unrollable{true, false};

    auto shift = solveMergeShift(h, delta, localized, unrollable);
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, (IntVector{1, 0}));
}

TEST(MergeSolver, NegativeShiftMeansNoMerge)
{
    RatMatrix h = RatMatrix::identity(2);
    IntVector delta{-2, 0};
    Subspace localized = Subspace::coordinate(2, {1});
    std::vector<bool> unrollable{true, false};

    EXPECT_FALSE(
        solveMergeShift(h, delta, localized, unrollable).has_value());
}

TEST(MergeSolver, FractionalShiftMeansNoMerge)
{
    // Subscript 2*I: copies step by 2, a difference of 3 never aligns.
    RatMatrix h = RatMatrix::fromIntRows({{2, 0}, {0, 1}});
    IntVector delta{3, 0};
    Subspace localized = Subspace::coordinate(2, {1});
    std::vector<bool> unrollable{true, false};

    EXPECT_FALSE(
        solveMergeShift(h, delta, localized, unrollable).has_value());
}

TEST(MergeSolver, ScaledCoefficient)
{
    RatMatrix h = RatMatrix::fromIntRows({{2, 0}, {0, 1}});
    IntVector delta{6, 0};
    Subspace localized = Subspace::coordinate(2, {1});
    std::vector<bool> unrollable{true, false};

    auto shift = solveMergeShift(h, delta, localized, unrollable);
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, (IntVector{3, 0}));
}

TEST(MergeSolver, InconsistentSystemMeansNoMerge)
{
    // Delta in a dimension no loop indexes: A(I,1) vs A(I,2) never merge.
    RatMatrix h = RatMatrix::fromIntRows({{1, 0}, {0, 0}});
    IntVector delta{0, 1};
    Subspace localized = Subspace::zero(2);
    std::vector<bool> unrollable{true, false};

    EXPECT_FALSE(
        solveMergeShift(h, delta, localized, unrollable).has_value());
}

TEST(MergeSolver, LoopInvariantColumnLeavesShiftFree)
{
    // B(J) in an (I, J) nest: column for I is zero, so any I shift
    // works; the minimal choice is 0.
    RatMatrix h = RatMatrix::fromIntRows({{0, 1}});
    IntVector delta{0};
    Subspace localized = Subspace::zero(2);
    std::vector<bool> unrollable{true, false};

    auto shift = solveMergeShift(h, delta, localized, unrollable);
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, (IntVector{0, 0}));
}

TEST(MergeSolver, TwoUnrolledDims)
{
    // 3-deep nest (I,J,K), K innermost localized, identity subscripts:
    // A(I,J,K) vs A(I-1,J-2,K): merge at (1,2,0).
    RatMatrix h = RatMatrix::identity(3);
    IntVector delta{1, 2, 0};
    Subspace localized = Subspace::coordinate(3, {2});
    std::vector<bool> unrollable{true, true, false};

    auto shift = solveMergeShift(h, delta, localized, unrollable);
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, (IntVector{1, 2, 0}));
}

TEST(MergeSolver, MixedSignAcrossUnrolledDims)
{
    // A(I,J,K) vs A(I-1,J+1,K): needs u = (1,-1,0), impossible.
    RatMatrix h = RatMatrix::identity(3);
    IntVector delta{1, -1, 0};
    Subspace localized = Subspace::coordinate(3, {2});
    std::vector<bool> unrollable{true, true, false};

    EXPECT_FALSE(
        solveMergeShift(h, delta, localized, unrollable).has_value());
}

} // namespace
} // namespace ujam
