/**
 * @file
 * Unit tests for the support module: rationals, RNG, strings,
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "support/diagnostics.hh"
#include "support/rational.hh"
#include "support/rng.hh"
#include "support/string_utils.hh"

namespace ujam
{
namespace
{

TEST(Rational, DefaultIsZero)
{
    Rational r;
    EXPECT_TRUE(r.isZero());
    EXPECT_TRUE(r.isInteger());
    EXPECT_EQ(r.toInteger(), 0);
}

TEST(Rational, NormalizesSignAndGcd)
{
    Rational r(6, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
    EXPECT_TRUE(r.isNegative());
    EXPECT_FALSE(r.isInteger());
}

TEST(Rational, ZeroDenominatorPanics)
{
    EXPECT_THROW(Rational(1, 0), PanicError);
}

TEST(Rational, Arithmetic)
{
    Rational half(1, 2);
    Rational third(1, 3);
    EXPECT_EQ(half + third, Rational(5, 6));
    EXPECT_EQ(half - third, Rational(1, 6));
    EXPECT_EQ(half * third, Rational(1, 6));
    EXPECT_EQ(half / third, Rational(3, 2));
    EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, CompoundAssignment)
{
    Rational r(1, 4);
    r += Rational(1, 4);
    EXPECT_EQ(r, Rational(1, 2));
    r *= Rational(4);
    EXPECT_EQ(r, Rational(2));
    r -= Rational(1, 2);
    EXPECT_EQ(r, Rational(3, 2));
    r /= Rational(3);
    EXPECT_EQ(r, Rational(1, 2));
}

TEST(Rational, Ordering)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
    EXPECT_LE(Rational(2, 4), Rational(1, 2));
    EXPECT_GT(Rational(7, 3), Rational(2));
    EXPECT_GE(Rational(7, 3), Rational(7, 3));
}

TEST(Rational, FloorCeil)
{
    EXPECT_EQ(Rational(7, 2).floor(), 3);
    EXPECT_EQ(Rational(7, 2).ceil(), 4);
    EXPECT_EQ(Rational(-7, 2).floor(), -4);
    EXPECT_EQ(Rational(-7, 2).ceil(), -3);
    EXPECT_EQ(Rational(6, 2).floor(), 3);
    EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, ToIntegerRejectsFractions)
{
    EXPECT_THROW(Rational(1, 2).toInteger(), PanicError);
    EXPECT_EQ(Rational(-8, 4).toInteger(), -2);
}

TEST(Rational, DivisionByZeroPanics)
{
    EXPECT_THROW(Rational(1) / Rational(0), PanicError);
}

TEST(Rational, ToStringForms)
{
    EXPECT_EQ(Rational(3).toString(), "3");
    EXPECT_EQ(Rational(-3, 6).toString(), "-1/2");
}

TEST(Rational, CrossCancellationAvoidsOverflow)
{
    // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
    Rational big(1LL << 40, 3);
    Rational inv(3, 1LL << 40);
    EXPECT_EQ(big * inv, Rational(1));
}

TEST(Gcd64, Basics)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(-12, 18), 6);
    EXPECT_EQ(gcd64(0, 5), 5);
    EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(CheckedArithmetic, OverflowPanics)
{
    EXPECT_THROW(checkedMul(1LL << 62, 4), PanicError);
    EXPECT_THROW(checkedAdd(INT64_MAX, 1), PanicError);
    EXPECT_EQ(checkedAdd(INT64_MAX, -1), INT64_MAX - 1);
}

TEST(Diagnostics, FatalAndPanicCarryMessages)
{
    try {
        fatal("bad thing ", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("bad thing 42"),
                  std::string::npos);
    }
    try {
        panic("impossible ", "state");
        FAIL() << "panic did not throw";
    } catch (const PanicError &err) {
        EXPECT_NE(std::string(err.what()).find("impossible state"),
                  std::string::npos);
    }
}

TEST(Diagnostics, AssertMacro)
{
    EXPECT_NO_THROW(UJAM_ASSERT(1 + 1 == 2, "arithmetic works"));
    EXPECT_THROW(UJAM_ASSERT(false, "must fire"), PanicError);
}

TEST(Rng, Deterministic)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.range(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, RangeSingleton)
{
    Rng rng(7);
    EXPECT_EQ(rng.range(4, 4), 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(99);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.weighted({0.0, 1.0, 0.0}), 1u);
}

TEST(Rng, WeightedDistribution)
{
    Rng rng(13);
    int counts[2] = {0, 0};
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.weighted({1.0, 3.0})];
    EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.03);
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, Split)
{
    auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(StringUtils, CaseAndPrefix)
{
    EXPECT_EQ(toLower("DO J = 1, N"), "do j = 1, n");
    EXPECT_TRUE(startsWith("nest: foo", "nest:"));
    EXPECT_FALSE(startsWith("ne", "nest:"));
}

TEST(StringUtils, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(StringUtils, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 3), "2.000");
}

} // namespace
} // namespace ujam
