/**
 * @file
 * The measured-autotuning subsystem (src/tune) end to end.
 *
 * Everything here runs the simulator measurement backend
 * (MeasureMode::Model) unless a test is explicitly about the host
 * compiler: Model mode is deterministic and compiler-free, so these
 * tests assert bit-identical reruns and byte-identical service cache
 * hits rather than merely "close" numbers. The one Wall-mode test
 * verifies the graceful self-skip contract with the compiler hidden.
 */

#include <cstdlib>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codegen/compile.hh"
#include "service/server.hh"
#include "support/json.hh"
#include "tune/autotuner.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

TuneConfig
modelConfig()
{
    TuneConfig config;
    config.measure = MeasureMode::Model;
    config.neighborhood = 1;
    return config;
}

/** RAII: set an environment variable, restore the old value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (old_.has_value())
            ::setenv(name_.c_str(), old_->c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::optional<std::string> old_;
};

// --- determinism ----------------------------------------------------

TEST(TuneModel, RerunsAreBitIdentical)
{
    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    MachineModel machine = MachineModel::decAlpha21064();
    TuneConfig config = modelConfig();

    TuneResult first = tuneProgram(program, machine, config);
    TuneResult second = tuneProgram(program, machine, config);

    ASSERT_FALSE(first.skipped);
    ASSERT_EQ(first.nests.size(), 1u);
    EXPECT_GE(first.nests[0].measuredCount, 2u);
    // The whole document -- candidate order, Pareto flags, every
    // rendered number -- must be byte-identical across reruns.
    EXPECT_EQ(tuneResultJson(first, config),
              tuneResultJson(second, config));
    EXPECT_EQ(tuneFeatureRowJson("mmjik", first, first.nests[0]),
              tuneFeatureRowJson("mmjik", second, second.nests[0]));
}

// --- model-vs-measured sanity over suite loops ----------------------

TEST(TuneModel, SuiteLoopVerdictsAreCoherent)
{
    MachineModel machine = MachineModel::decAlpha21064();
    TuneConfig config = modelConfig();

    for (const char *name : {"mmjik", "jacobi", "sor"}) {
        SCOPED_TRACE(name);
        Program program = loadSuiteProgram(suiteLoop(name));
        TuneResult tuned = tuneProgram(program, machine, config);
        ASSERT_FALSE(tuned.skipped);
        ASSERT_EQ(tuned.nests.size(), 1u);
        const NestTune &nest = tuned.nests[0];

        // The model pick and the zero baseline are always measured.
        EXPECT_GE(nest.measuredCount, 2u);
        EXPECT_GT(nest.bestRuntime, 0.0);
        // The best is no slower than the pick by construction.
        EXPECT_LE(nest.bestRuntime, nest.modelPickRuntime);
        EXPECT_GE(nest.modelOverBest, 1.0);
        // Model mode compares exactly: optimal iff nothing was faster.
        EXPECT_EQ(nest.modelOptimal,
                  nest.bestRuntime >= nest.modelPickRuntime);

        bool saw_pick = false;
        std::size_t pareto = 0;
        for (const TuneCandidate &candidate : nest.candidates) {
            if (candidate.source == "model") {
                saw_pick = true;
                EXPECT_EQ(candidate.unroll, nest.modelPick);
                if (candidate.valid)
                    EXPECT_DOUBLE_EQ(candidate.vsModelPick, 1.0);
            }
            if (candidate.pareto) {
                ++pareto;
                // Only measured, checksum-verified candidates may sit
                // on the frontier.
                EXPECT_TRUE(candidate.valid);
            }
        }
        EXPECT_TRUE(saw_pick);
        EXPECT_GE(pareto, 1u);
    }
}

// --- the graceful self-skip without a host compiler -----------------

TEST(TuneWall, SkipsGracefullyWithoutHostCompiler)
{
    // An unset/empty UJAM_CC falls through to the PATH probe, and an
    // empty PATH finds nothing, so hostCCompiler() reports none.
    ScopedEnv cc("UJAM_CC", "");
    ScopedEnv path("PATH", "/ujam-no-such-dir");
    ASSERT_TRUE(hostCCompiler().empty());

    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    TuneConfig config;
    config.measure = MeasureMode::Wall;
    TuneResult tuned =
        tuneProgram(program, MachineModel::decAlpha21064(), config);

    EXPECT_TRUE(tuned.skipped);
    EXPECT_FALSE(tuned.skipReason.empty());
    EXPECT_TRUE(tuned.nests.empty());

    // The rendered document still parses and carries the skip.
    JsonParseResult parsed = parseJson(tuneResultJson(tuned, config));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *skipped = parsed.value->find("skipped");
    ASSERT_NE(skipped, nullptr);
    EXPECT_TRUE(skipped->boolValue);
}

// --- the tune service op --------------------------------------------

TEST(TuneService, HitIsByteIdenticalToMiss)
{
    UjamServer server({});
    std::string line =
        R"({"op": "tune", "id": "t", "source": "param n = 64\n)"
        R"(real a(n, n)\nreal b(n, n)\ndo j = 1, n\n  do i = 1, n\n)"
        R"(    a(i, j) = a(i, j) + b(j, i)\n  end do\nend do\n"})";

    std::string first = server.processLine(line);
    std::string second = server.processLine(line);

    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(first.find("ujam-tune-v1"), std::string::npos);
    EXPECT_EQ(server.metrics().cacheMisses.get(), 1u);
    EXPECT_EQ(server.metrics().cacheMemoryHits.get(), 1u);
    EXPECT_EQ(server.metrics().opTune.get(), 2u);
    EXPECT_EQ(server.metrics().tuneRequests.get(), 1u);
    EXPECT_EQ(server.metrics().tuneCacheHits.get(), 1u);
    EXPECT_GE(server.metrics().tuneCandidatesMeasured.get(), 2u);
}

// --- the BENCH_TUNE.json artifact schema ----------------------------

TEST(TuneBench, ArtifactSchemaSmoke)
{
#ifndef UJAM_REPO_ROOT
    GTEST_SKIP() << "UJAM_REPO_ROOT not baked in";
#else
    std::string path = std::string(UJAM_REPO_ROOT) + "/BENCH_TUNE.json";
    std::ifstream in(path);
    if (!in)
        GTEST_SKIP() << "no " << path << " (bench_tune not yet run)";
    std::ostringstream text;
    text << in.rdbuf();

    JsonParseResult parsed = parseJson(text.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_TRUE(parsed.value->isObject());

    const JsonValue *measure = parsed.value->find("measure");
    ASSERT_NE(measure, nullptr);
    EXPECT_TRUE(measure->stringValue == "wall" ||
                measure->stringValue == "model");

    const JsonValue *loops = parsed.value->find("loops");
    ASSERT_NE(loops, nullptr);
    ASSERT_TRUE(loops->isArray());
    EXPECT_GE(loops->elements.size(), testSuite().size());
    for (const JsonValue &loop : loops->elements) {
        ASSERT_TRUE(loop.isObject());
        for (const char *key :
             {"loop", "model_pick", "measured_best", "model_over_best",
              "model_optimal", "candidates_measured"}) {
            EXPECT_NE(loop.find(key), nullptr) << key;
        }
    }

    const JsonValue *summary = parsed.value->find("summary");
    ASSERT_NE(summary, nullptr);
    const JsonValue *tuned = summary->find("nests_tuned");
    ASSERT_NE(tuned, nullptr);
    EXPECT_GE(tuned->numberValue, 1.0);
#endif
}

} // namespace
} // namespace ujam
