/**
 * @file
 * Tests for the analysis-report renderer.
 */

#include <gtest/gtest.h>

#include "parser/parser.hh"
#include "report/report.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

TEST(Report, ReuseSummaryListsEverySet)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 16
  do i = 1, 16
    a(j) = a(j) + b(i) * c(i + j)
  end do
end do
)");
    std::string summary = reuseSummary(nest);
    EXPECT_NE(summary.find("a "), std::string::npos);
    EXPECT_NE(summary.find("b "), std::string::npos);
    EXPECT_NE(summary.find("c "), std::string::npos);
    EXPECT_NE(summary.find("inner-invariant"), std::string::npos);
    EXPECT_NE(summary.find("[not SIV separable]"), std::string::npos);
}

TEST(Report, FullReportContainsDecisionAndTables)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 64
  do i = 1, 64
    a(j) = a(j) + b(i)
  end do
end do
)");
    OptimizerConfig config;
    config.useCacheModel = false;
    std::string report =
        analysisReport(nest, MachineModel::hpPa7100(), config);
    EXPECT_NE(report.find("analysis report"), std::string::npos);
    EXPECT_NE(report.find("bM = 0.500"), std::string::npos);
    EXPECT_NE(report.find("unroll tables"), std::string::npos);
    EXPECT_NE(report.find("safety bounds"), std::string::npos);
    EXPECT_NE(report.find("unroll=(1, 0)"), std::string::npos);
}

TEST(Report, HandlesDegenerateNest)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 8
  a(i) = 0.0
end do
)");
    std::string report =
        analysisReport(nest, MachineModel::decAlpha21064());
    EXPECT_NE(report.find("left unchanged"), std::string::npos);
}

TEST(Report, RendersForTheWholeSuite)
{
    // Smoke coverage: every suite loop must render without throwing.
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        ReportOptions options;
        options.maxUnrollShown = 2;
        std::string report = analysisReport(
            program.nests()[0], MachineModel::decAlpha21064(), {},
            options);
        EXPECT_GT(report.size(), 100u) << loop.name;
    }
}

} // namespace
} // namespace ujam
