/**
 * @file
 * Tests for the transformation safety net: fault-spec parsing, the
 * strict IR validator, the differential oracle, and the driver's
 * per-nest fault containment, including the acceptance criteria from
 * the safety-net design: a fault injected into any stage is
 * contained, the affected nest rolls back byte-identically to its
 * pre-stage IR, the remaining nests are optimized exactly as in a
 * fault-free run, and the outcome log records what happened -- at
 * every thread width.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "deps/analyzer.hh"
#include "driver/driver.hh"
#include "driver/oracle.hh"
#include "ir/interp.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "support/diagnostics.hh"
#include "support/fault_injection.hh"
#include "transform/distribution.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

// --- fault-spec grammar ---------------------------------------------

TEST(FaultSpecs, ParsesTheGrammar)
{
    std::vector<FaultSpec> specs =
        parseFaultSpecs("unroll:1:throw, fuse:*:panic,"
                        "scalar-replace:0:validator");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].stage, "unroll");
    ASSERT_TRUE(specs[0].nest.has_value());
    EXPECT_EQ(*specs[0].nest, 1u);
    EXPECT_EQ(specs[0].kind, FaultKind::Throw);
    EXPECT_FALSE(specs[1].nest.has_value()); // wildcard
    EXPECT_EQ(specs[1].kind, FaultKind::Panic);
    EXPECT_EQ(specs[2].kind, FaultKind::Validator);

    EXPECT_EQ(specs[0].toString(), "unroll:1:throw");
    EXPECT_EQ(specs[1].toString(), "fuse:*:panic");
}

TEST(FaultSpecs, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseFaultSpecs("bogus:0:throw"), FatalError);
    EXPECT_THROW(parseFaultSpecs("unroll:0:frobnicate"), FatalError);
    EXPECT_THROW(parseFaultSpecs("unroll:x:throw"), FatalError);
    EXPECT_THROW(parseFaultSpecs("unroll:0"), FatalError);
    EXPECT_THROW(parseFaultSpecs("unroll:0:throw:extra"), FatalError);
}

TEST(FaultSpecs, MatchingHonorsWildcardAndOrder)
{
    std::vector<FaultSpec> specs =
        parseFaultSpecs("unroll:*:throw,unroll:0:panic,prefetch:2:oracle");
    EXPECT_EQ(requestedFault(specs, "unroll", 0), FaultKind::Throw);
    EXPECT_EQ(requestedFault(specs, "unroll", 7), FaultKind::Throw);
    EXPECT_EQ(requestedFault(specs, "prefetch", 2), FaultKind::Oracle);
    EXPECT_EQ(requestedFault(specs, "prefetch", 1), std::nullopt);
    EXPECT_EQ(requestedFault(specs, "normalize", 0), std::nullopt);
}

// --- strict validator -----------------------------------------------

TEST(StrictValidator, AcceptsEverySuiteKernel)
{
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        std::vector<std::string> problems =
            validateProgramStrict(program);
        EXPECT_TRUE(problems.empty())
            << loop.name << ": " << problems.front();
    }
}

TEST(StrictValidator, FlagsStepsAfterNormalization)
{
    LoopNest nest = parseSingleNest(R"(
do i = 1, 8, 2
  x = 1
end do
)");
    Program program;
    program.addNest(nest);
    ValidateOptions relaxed;
    EXPECT_TRUE(validateNestStrict(program, nest, relaxed).empty());
    ValidateOptions strict;
    strict.requireStepOne = true;
    std::vector<std::string> problems =
        validateNestStrict(program, nest, strict);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("step"), std::string::npos);
}

TEST(StrictValidator, FlagsIvUsedInABound)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 8
  do i = 1, j
    x = 1
  end do
end do
)");
    Program program;
    program.addNest(nest);
    std::vector<std::string> problems =
        validateNestStrict(program, nest, {});
    ASSERT_FALSE(problems.empty());
    bool flagged = false;
    for (const std::string &problem : problems)
        flagged |= problem.find("induction variable") != std::string::npos;
    EXPECT_TRUE(flagged) << problems.front();
}

TEST(StrictValidator, FlagsScalarReadOfAnIv)
{
    // The interpreter reads scalars by name; a scalar read that names
    // an induction variable silently yields 0.0, not the counter.
    LoopNest nest = parseSingleNest(R"(
do i = 1, 8
  x = i
end do
)");
    Program program;
    program.addNest(nest);
    std::vector<std::string> problems =
        validateNestStrict(program, nest, {});
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("induction variable"),
              std::string::npos);
}

TEST(StrictValidator, FlagsReferencesBeyondExtentPlusHalo)
{
    Program program = parseProgram(R"(
param n = 16
real a(n)
do i = 1, n
  a(i + 30) = 1
end do
)");
    std::vector<std::string> problems = validateProgramStrict(program);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("halo"), std::string::npos);

    // The same subscript inside the halo is fine.
    Program near = parseProgram(R"(
param n = 16
real a(n)
do i = 1, n
  a(i + 4) = 1
end do
)");
    EXPECT_TRUE(validateProgramStrict(near).empty());
}

// --- differential oracle --------------------------------------------

TEST(Oracle, AcceptsAnIdentityTransformation)
{
    Program program = parseProgram(R"(
param n = 12
real a(n)
real b(n)
do i = 1, n
  a(i) = b(i) + 1.0
end do
)");
    OracleVerdict verdict = verifyEquivalence(
        program, program.nests(), program.nests(), /*bitExact=*/true);
    EXPECT_TRUE(verdict.ok) << verdict.mismatch;
}

TEST(Oracle, CatchesASemanticChange)
{
    Program program = parseProgram(R"(
param n = 12
real a(n)
real b(n)
do i = 1, n
  a(i) = b(i) + 1.0
end do
)");
    Program broken = parseProgram(R"(
param n = 12
real a(n)
real b(n)
do i = 1, n
  a(i) = b(i) + 2.0
end do
)");
    OracleVerdict verdict =
        verifyEquivalence(program, program.nests(), broken.nests(),
                          /*bitExact=*/false);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.mismatch.empty());
}

TEST(Oracle, ToleranceSeparatesReorderingFromWrongness)
{
    // The same reduction accumulated in transposed order: identical
    // term multiset, different association, so the sums agree only up
    // to rounding.
    Program forward = parseProgram(R"(
param n = 16
real a(1)
real b(n, n)
do j = 1, n
  do i = 1, n
    a(1) = a(1) + b(i, j)
  end do
end do
)");
    Program backward = parseProgram(R"(
param n = 16
real a(1)
real b(n, n)
do j = 1, n
  do i = 1, n
    a(1) = a(1) + b(j, i)
  end do
end do
)");
    // Bit-exact comparison must notice the reordering...
    OracleVerdict exact = verifyPrograms(forward, backward, true);
    EXPECT_FALSE(exact.ok);
    // ...while the tolerance for reordering stages accepts it.
    OracleVerdict loose = verifyPrograms(forward, backward, false);
    EXPECT_TRUE(loose.ok) << loose.mismatch;
}

TEST(Oracle, VerdictIsThreadAndCallerIndependent)
{
    Program program = parseProgram(R"(
param n = 12
real a(n)
do i = 1, n
  a(i) = a(i) * 2.0
end do
)");
    OracleConfig config;
    config.trials = 3;
    OracleVerdict a = verifyEquivalence(program, program.nests(),
                                        program.nests(), true, config, 5);
    OracleVerdict b = verifyEquivalence(program, program.nests(),
                                        program.nests(), true, config, 5);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.mismatch, b.mismatch);
}

// --- containment ----------------------------------------------------

/**
 * Three independent named nests; enough structure for every stage.
 * The bounds differ on purpose so fusion never merges them and the
 * outcome indices stay stable.
 */
Program
triProgram()
{
    return parseProgram(R"(
param n = 16
param m = 12
real a(n + 2, n + 2)
real b(n + 2, n + 2)
real c(m + 2, m + 2)
real d(n)
! nest: alpha
do j = 1, n
  do i = 1, n
    a(i, j) = b(i, j) + b(i, j + 1) + b(i + 1, j)
  end do
end do
! nest: beta
do j = 1, m
  do i = 1, m
    c(i, j) = c(i, j) * 0.5 + 1.0
  end do
end do
! nest: gamma
do k = 1, n, 2
  d(k) = d(k) + 1.0
end do
)");
}

PipelineConfig
allStagesConfig()
{
    PipelineConfig config;
    config.fuse = true;
    config.normalize = true;
    config.distribute = true;
    config.interchange = true;
    config.prefetch = true;
    config.optimizer.maxUnroll = 3;
    config.threads = 1;
    return config;
}

const char *kPerNestStages[] = {"normalize", "distribute", "interchange",
                                "unroll", "scalar-replace", "prefetch"};

TEST(Containment, EveryStageFaultedRollsBackToTheInput)
{
    Program program = triProgram();
    PipelineConfig config = allStagesConfig();
    config.safety.faults = parseFaultSpecs(
        "fuse:*:throw,normalize:*:throw,distribute:*:throw,"
        "interchange:*:throw,unroll:*:throw,scalar-replace:*:throw,"
        "prefetch:*:throw");

    PipelineResult result =
        optimizeProgram(program, MachineModel::hpPa7100(), config);

    // With every stage refused, the output is byte-identical input.
    EXPECT_EQ(renderProgram(result.program), renderProgram(program));
    ASSERT_EQ(result.programDiagnostics.size(), 1u);
    EXPECT_EQ(result.programDiagnostics[0].stage, Stage::Fuse);
    ASSERT_EQ(result.outcomes.size(), 3u);
    for (const NestOutcome &outcome : result.outcomes) {
        EXPECT_EQ(outcome.contained.size(), 6u) << outcome.name;
        for (const StageDiagnostic &diag : outcome.contained) {
            EXPECT_EQ(diag.kind, StageDiagnostic::Kind::Fatal);
            EXPECT_NE(diag.message.find("injected"), std::string::npos);
        }
    }
    EXPECT_EQ(result.containedFaults(), 19u);
}

TEST(Containment, FaultedStageEqualsStageDisabled)
{
    // A throw fires at stage entry, so a contained stage must leave
    // exactly the same program as running with that stage disabled.
    Program program = triProgram();
    const MachineModel machine = MachineModel::hpPa7100();

    struct Case
    {
        const char *stage;
        void (*disable)(PipelineConfig &);
    };
    const Case cases[] = {
        {"fuse", [](PipelineConfig &c) { c.fuse = false; }},
        {"normalize", [](PipelineConfig &c) { c.normalize = false; }},
        {"distribute", [](PipelineConfig &c) { c.distribute = false; }},
        {"interchange",
         [](PipelineConfig &c) { c.interchange = false; }},
        {"scalar-replace",
         [](PipelineConfig &c) { c.scalarReplace = false; }},
        {"prefetch", [](PipelineConfig &c) { c.prefetch = false; }},
    };
    for (const Case &c : cases) {
        PipelineConfig faulted = allStagesConfig();
        faulted.safety.faults =
            parseFaultSpecs(concat(c.stage, ":*:throw"));
        PipelineResult with_fault =
            optimizeProgram(program, machine, faulted);

        PipelineConfig disabled = allStagesConfig();
        c.disable(disabled);
        PipelineResult without_stage =
            optimizeProgram(program, machine, disabled);

        EXPECT_EQ(renderProgram(with_fault.program),
                  renderProgram(without_stage.program))
            << c.stage;
        EXPECT_GT(with_fault.containedFaults(), 0u) << c.stage;
        EXPECT_EQ(without_stage.containedFaults(), 0u) << c.stage;
    }
}

TEST(Containment, UnrollFaultRollsBackByteIdentically)
{
    // Unroll-and-jam has no disable flag; with every other stage off,
    // containing it must reproduce the input program exactly.
    Program program = triProgram();
    PipelineConfig config;
    config.normalize = false;
    config.scalarReplace = false;
    config.threads = 1;
    config.safety.faults = parseFaultSpecs("unroll:*:throw");
    PipelineResult result =
        optimizeProgram(program, MachineModel::hpPa7100(), config);
    EXPECT_EQ(renderProgram(result.program), renderProgram(program));
    for (const NestOutcome &outcome : result.outcomes) {
        ASSERT_EQ(outcome.contained.size(), 1u);
        EXPECT_EQ(outcome.contained[0].stage, Stage::Unroll);
    }
}

TEST(Containment, PanicsAreContainedAsPanic)
{
    Program program = triProgram();
    PipelineConfig config = allStagesConfig();
    config.safety.faults = parseFaultSpecs("unroll:1:panic");
    PipelineResult result =
        optimizeProgram(program, MachineModel::hpPa7100(), config);
    ASSERT_EQ(result.outcomes[1].contained.size(), 1u);
    EXPECT_EQ(result.outcomes[1].contained[0].kind,
              StageDiagnostic::Kind::Panic);
    EXPECT_TRUE(result.outcomes[0].contained.empty());
    EXPECT_TRUE(result.outcomes[2].contained.empty());
}

TEST(Containment, ValidatorCatchesInjectedCorruption)
{
    // The validator fault corrupts the stage output structurally; the
    // *real* validator must notice and the *real* rollback must run,
    // leaving the same program as a stage that never ran.
    Program program = triProgram();
    const MachineModel machine = MachineModel::hpPa7100();

    PipelineConfig faulted = allStagesConfig();
    faulted.safety.faults = parseFaultSpecs("scalar-replace:*:validator");
    PipelineResult with_fault = optimizeProgram(program, machine, faulted);

    PipelineConfig disabled = allStagesConfig();
    disabled.scalarReplace = false;
    PipelineResult without_stage =
        optimizeProgram(program, machine, disabled);

    EXPECT_EQ(renderProgram(with_fault.program),
              renderProgram(without_stage.program));
    for (const NestOutcome &outcome : with_fault.outcomes) {
        ASSERT_EQ(outcome.contained.size(), 1u) << outcome.name;
        EXPECT_EQ(outcome.contained[0].kind,
                  StageDiagnostic::Kind::Validator);
    }

    // With the validator off, the corruption escapes containment --
    // proof the detection (not the injection) does the work.
    PipelineConfig unchecked = allStagesConfig();
    unchecked.safety.faults = faulted.safety.faults;
    unchecked.safety.validate = false;
    PipelineResult escaped = optimizeProgram(program, machine, unchecked);
    EXPECT_EQ(escaped.containedFaults(), 0u);
    EXPECT_NE(renderProgram(escaped.program),
              renderProgram(without_stage.program));
}

TEST(Containment, OracleCatchesWhatTheValidatorCannot)
{
    // The oracle fault perturbs semantics but keeps the IR
    // structurally valid: only differential execution can see it.
    Program program = triProgram();
    const MachineModel machine = MachineModel::hpPa7100();

    PipelineConfig with_oracle = allStagesConfig();
    with_oracle.safety.oracle = true;
    with_oracle.safety.faults = parseFaultSpecs("unroll:0:oracle");
    PipelineResult caught = optimizeProgram(program, machine, with_oracle);
    ASSERT_EQ(caught.outcomes[0].contained.size(), 1u);
    EXPECT_EQ(caught.outcomes[0].contained[0].kind,
              StageDiagnostic::Kind::Oracle);

    // Validator alone (the default) cannot catch it: the run reports
    // nothing contained and the output really is semantically wrong.
    PipelineConfig without_oracle = allStagesConfig();
    without_oracle.safety.faults = with_oracle.safety.faults;
    PipelineResult escaped =
        optimizeProgram(program, machine, without_oracle);
    EXPECT_EQ(escaped.containedFaults(), 0u);
    PipelineResult clean = optimizeProgram(program, machine,
                                           allStagesConfig());
    OracleVerdict verdict =
        verifyPrograms(clean.program, escaped.program, false);
    EXPECT_FALSE(verdict.ok);
}

TEST(Containment, EachStageInTurnLeavesOtherNestsUntouched)
{
    // The acceptance criterion: inject a failure into each per-nest
    // stage in turn; the pipeline completes, the outcome names the
    // stage, and the remaining nests come out identical to the
    // fault-free run.
    Program program = triProgram();
    const MachineModel machine = MachineModel::hpPa7100();
    PipelineResult reference =
        optimizeProgram(program, machine, allStagesConfig());
    ASSERT_EQ(reference.containedFaults(), 0u);

    auto segment = [](const PipelineResult &result,
                      const std::string &nest_name) {
        std::string rendered;
        for (const LoopNest &nest : result.program.nests()) {
            if (nest.name().rfind(nest_name, 0) == 0)
                rendered += renderLoopNest(nest);
        }
        return rendered;
    };

    for (const char *stage : kPerNestStages) {
        PipelineConfig config = allStagesConfig();
        config.safety.faults =
            parseFaultSpecs(concat(stage, ":1:throw"));
        PipelineResult result =
            optimizeProgram(program, machine, config);

        ASSERT_EQ(result.outcomes.size(), 3u) << stage;
        ASSERT_EQ(result.outcomes[1].contained.size(), 1u) << stage;
        EXPECT_EQ(stageName(result.outcomes[1].contained[0].stage),
                  std::string(stage));
        EXPECT_TRUE(result.outcomes[0].contained.empty()) << stage;
        EXPECT_TRUE(result.outcomes[2].contained.empty()) << stage;

        // Nests 0 and 2 match the fault-free run byte for byte.
        EXPECT_EQ(segment(result, "alpha"), segment(reference, "alpha"))
            << stage;
        EXPECT_EQ(segment(result, "gamma"), segment(reference, "gamma"))
            << stage;
        // The faulted nest still computes what the original computed.
        EXPECT_TRUE(validateProgramStrict(result.program).empty())
            << stage;
        OracleVerdict verdict =
            verifyPrograms(program, result.program, false);
        EXPECT_TRUE(verdict.ok) << stage << ": " << verdict.mismatch;
        // The summary and safety report surface the containment.
        EXPECT_NE(result.summary().find("contained"), std::string::npos)
            << stage;
        EXPECT_NE(safetyReport(result).find(stage), std::string::npos)
            << stage;
    }
}

TEST(Containment, RollbackIsIdenticalAtEveryThreadWidth)
{
    Program program = triProgram();
    const MachineModel machine = MachineModel::hpPa7100();
    std::string rendered;
    std::string summary;
    for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                std::size_t(0)}) {
        PipelineConfig config = allStagesConfig();
        config.threads = threads;
        config.safety.oracle = true;
        config.safety.faults = parseFaultSpecs(
            "interchange:0:validator,unroll:1:throw,prefetch:2:oracle");
        PipelineResult result =
            optimizeProgram(program, machine, config);
        EXPECT_EQ(result.containedFaults(), 3u) << threads;
        if (rendered.empty()) {
            rendered = renderProgram(result.program);
            summary = result.summary();
        } else {
            EXPECT_EQ(renderProgram(result.program), rendered)
                << threads;
            EXPECT_EQ(result.summary(), summary) << threads;
        }
    }
}

TEST(Containment, EnvVarInjectsFaults)
{
    Program program = triProgram();
    ::setenv("UJAM_FAULT", "unroll:0:throw", 1);
    PipelineResult result = optimizeProgram(
        program, MachineModel::hpPa7100(), allStagesConfig());
    ::unsetenv("UJAM_FAULT");
    ASSERT_EQ(result.outcomes[0].contained.size(), 1u);
    EXPECT_EQ(result.outcomes[0].contained[0].stage, Stage::Unroll);

    // A malformed env value is a user configuration error: it is
    // reported as a FatalError up front, never half-applied.
    ::setenv("UJAM_FAULT", "not-a-spec", 1);
    EXPECT_THROW(optimizeProgram(program, MachineModel::hpPa7100(),
                                 allStagesConfig()),
                 FatalError);
    ::unsetenv("UJAM_FAULT");
}

TEST(Containment, FusionRollbackPreservesBothNests)
{
    // A genuinely fusable producer-consumer pair: the fault-free run
    // fuses, the faulted run must leave both nests exactly as a
    // fusion-disabled run would.
    Program program = parseProgram(R"(
param n = 16
real a(n, n)
real b(n, n)
! nest: producer
do j = 1, n
  do i = 1, n
    a(i, j) = b(i, j) + 2.0
  end do
end do
! nest: consumer
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + 1.0
  end do
end do
)");
    const MachineModel machine = MachineModel::hpPa7100();
    PipelineConfig fused;
    fused.fuse = true;
    PipelineResult clean = optimizeProgram(program, machine, fused);
    ASSERT_EQ(clean.fusions, 1u); // the pair really is fusable

    PipelineConfig faulted = fused;
    faulted.safety.faults = parseFaultSpecs("fuse:*:throw");
    PipelineResult contained = optimizeProgram(program, machine, faulted);
    EXPECT_EQ(contained.fusions, 0u);
    ASSERT_EQ(contained.programDiagnostics.size(), 1u);
    EXPECT_EQ(contained.programDiagnostics[0].stage, Stage::Fuse);

    PipelineConfig unfused;
    unfused.fuse = false;
    PipelineResult reference = optimizeProgram(program, machine, unfused);
    EXPECT_EQ(renderProgram(contained.program),
              renderProgram(reference.program));
}

TEST(Containment, SafetyReportRendersACleanBill)
{
    PipelineResult result = optimizeProgram(
        triProgram(), MachineModel::hpPa7100(), allStagesConfig());
    EXPECT_EQ(result.containedFaults(), 0u);
    EXPECT_NE(safetyReport(result).find("no faults contained"),
              std::string::npos);
}

// --- legality bugs the differential oracle caught -------------------
//
// Each test below reduces a corpus routine the oracle fuzz flagged as
// miscompiled. A dependence edge with a '*' component is oriented
// textually and stands for concrete pairs in BOTH iteration orders;
// every transformation that trusted the textual orientation was
// unsound. These pin the fixes independently of the fuzz seed.

/** Parse a one-nest program and pair it with a transformed nest. */
Program
withNest(const Program &program, LoopNest nest)
{
    Program result = program;
    result.nests().clear();
    result.addNest(std::move(nest));
    return result;
}

/** Bit-exact interpreter comparison of two programs. */
std::string
interpDiff(const Program &a, const Program &b)
{
    Interpreter ia(a);
    Interpreter ib(b);
    ia.seedArrays(42);
    ib.seedArrays(42);
    ia.run();
    ib.run();
    return ia.compareArrays(ib, 0.0);
}

TEST(OracleRegression, StarCarrierBlocksUnrollAndJam)
{
    // The coupled read subscript leaves i1 unresolved ('*' at the
    // outer level) while i2 resolves exactly; the mirrored pairs
    // turn the inner '<' into '>', so jamming i1 is illegal.
    Program program = parseProgram(R"(
real a(16, 16)
do i1 = 1, 8
  do i2 = 1, 8
    a(i2, i1) = (a(i2+2, i2-1) * 0.5)
  end do
end do
)");
    const LoopNest &nest = program.nests()[0];
    DepOptions options;
    options.includeInput = false;
    DependenceGraph graph = analyzeDependences(nest, options);
    IntVector bounds = safeUnrollBounds(nest, graph, 4);
    EXPECT_EQ(bounds[0], 0) << graph.toString();
}

TEST(OracleRegression, OuterCarrierWithBackwardJamLevelBlocksFringe)
{
    // The remainder iterations of a jammed loop are hoisted into a
    // fringe nest that runs after the main nest has finished every
    // i1 iteration; a dependence carried by i1 that points backward
    // at i2 is reversed by that split (trip count 10 does not divide
    // by any jam factor + 1 evenly enough to dodge it).
    Program program = parseProgram(R"(
real a(16, 16)
do i1 = 1, 2
  do i2 = 1, 10
    do i3 = 1, 10
      a(i3, i2) = ((a(i3+2, i2+2) + a(i3+1, i2+1)) * 0.5)
    end do
  end do
end do
)");
    const LoopNest &nest = program.nests()[0];
    DepOptions options;
    options.includeInput = false;
    DependenceGraph graph = analyzeDependences(nest, options);
    IntVector bounds = safeUnrollBounds(nest, graph, 4);
    EXPECT_EQ(bounds[1], 0) << graph.toString();

    // The hazard is real: forcing the jam miscompiles.
    IntVector unroll(3);
    unroll[1] = 3;
    Program jammed = unrollAndJam(program, 0, unroll);
    EXPECT_NE(interpDiff(program, jammed), "");
}

TEST(OracleRegression, StarEdgeKeepsStatementsInOneComponent)
{
    // Textually the first statement only reads a(3) before the
    // second writes a(i1) -- an anti edge. But the write lands on
    // a(3) at i1 = 3 and feeds the reads of LATER iterations, so
    // hoisting the reader nest ahead of the writer nest is illegal:
    // the statements must stay together.
    Program program = parseProgram(R"(
real a(16)
real x(16)
real y(16)
do i1 = 1, 8
  x(i1) = (a(3) * 0.5)
  a(i1) = (y(i1) + 1.0)
end do
)");
    DistributionResult result =
        distributeNest(program.nests()[0]);
    EXPECT_FALSE(result.changed);
    ASSERT_EQ(result.nests.size(), 1u);
    EXPECT_EQ(interpDiff(program,
                         withNest(program, result.nests[0])),
              "");
}

TEST(OracleRegression, ForeignWriteBlocksScalarChain)
{
    // The two column-1 reads form a replaceable chain in their own
    // UGS, but the write belongs to a different UGS and lands on
    // column 1 whenever i1 = 1 -- in between two forwarded touches
    // of the chain. Replacement must leave the chain alone.
    Program program = parseProgram(R"(
real a(16, 16)
do i1 = 1, 8
  do i2 = 1, 8
    a(i2, i1) = ((a(i2-1, 1) + a(i2+2, 1)) * 0.5)
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_EQ(interpDiff(program, withNest(program, result.nest)),
              "");
}

// --- heavy: oracle sweep over the Table 2 suite ---------------------
//
// Excluded from the "fast" ctest subset (see tests/CMakeLists.txt);
// runs in the default tier-1 suite.

/** Shrink every parameter so interpreter runs stay cheap. */
ParamBindings
shrunkParams(const Program &program)
{
    ParamBindings params;
    for (const auto &[name, value] : program.paramDefaults())
        params[name] = std::min<std::int64_t>(value, 12);
    return params;
}

TEST(OracleSweepHeavy, EverySuiteKernelEveryStageCombo)
{
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        for (int combo = 0; combo < 16; ++combo) {
            PipelineConfig config;
            config.fuse = combo & 1;
            config.distribute = combo & 2;
            config.interchange = combo & 4;
            config.prefetch = combo & 8;
            config.optimizer.maxUnroll = 3;
            config.safety.oracle = true;
            config.safety.oracleParams = shrunkParams(program);
            PipelineResult result = optimizeProgram(
                program, MachineModel::hpPa7100(), config);
            EXPECT_EQ(result.containedFaults(), 0u)
                << loop.name << " combo " << combo << ":\n"
                << safetyReport(result);
        }
    }
}

// --- heavy: corpus-driven oracle fuzz -------------------------------
//
// Also exposed as the "fuzz-fast" ctest label: random Table 1 corpus
// routines through the full pipeline with the oracle enabled.

TEST(SafetyFuzzHeavy, CorpusRoutinesSurviveThePipeline)
{
    CorpusConfig corpus_config;
    corpus_config.routines = 40;
    corpus_config.seed = 20260806;
    corpus_config.threads = 1;
    std::vector<CorpusRoutine> corpus = generateCorpus(corpus_config);

    std::size_t exercised = 0;
    for (const CorpusRoutine &routine : corpus) {
        for (const LoopNest &nest : routine.nests) {
            // Corpus nests carry no declarations and draw bounds up
            // to 256; shrink the bounds and synthesize conforming
            // declarations so interpretation stays cheap.
            LoopNest small = nest;
            for (std::size_t k = 0; k < small.depth(); ++k) {
                if (small.loop(k).upper.evaluate({}) > 10)
                    small.loop(k).upper = Bound::constant(10);
            }
            Program program;
            bool ranks_consistent = true;
            for (const Access &access : small.accesses()) {
                if (program.hasArray(access.ref.array())) {
                    if (program.array(access.ref.array()).extents.size()
                        != access.ref.dims()) {
                        ranks_consistent = false;
                    }
                    continue;
                }
                ArrayDecl decl;
                decl.name = access.ref.array();
                for (std::size_t d = 0; d < access.ref.dims(); ++d)
                    decl.extents.push_back(Bound::constant(16));
                program.declareArray(std::move(decl));
            }
            if (!ranks_consistent)
                continue;
            program.addNest(small);
            if (!validateProgramStrict(program).empty())
                continue;

            PipelineConfig config;
            config.distribute = true;
            config.interchange = true;
            config.optimizer.maxUnroll = 2;
            config.safety.oracle = true;
            config.safety.oracleSeed = corpus_config.seed;
            config.threads = 1;
            PipelineResult result = optimizeProgram(
                program, MachineModel::hpPa7100(), config);
            EXPECT_EQ(result.containedFaults(), 0u)
                << routine.name << "/" << nest.name() << ":\n"
                << safetyReport(result);
            ++exercised;
        }
    }
    // The corpus must actually exercise the pipeline, not skip out.
    EXPECT_GT(exercised, 40u);
}

} // namespace
} // namespace ujam
