/**
 * @file
 * Tests for the one-call optimization pipeline: stage toggles, the
 * per-nest log, and full-suite semantic equivalence with every stage
 * enabled at once.
 */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "ir/interp.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace ujam
{
namespace
{

TEST(Driver, PaperIntroThroughThePipeline)
{
    Program program = parseProgram(R"(
param n = 40
param m = 32
real a(2*n + 2)
real b(m)
! nest: intro
do j = 1, 2*n
  do i = 1, m
    a(j) = a(j) + b(i)
  end do
end do
)");
    PipelineConfig config;
    config.optimizer.useCacheModel = false;
    PipelineResult result =
        optimizeProgram(program, MachineModel::hpPa7100(), config);

    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_EQ(result.outcomes[0].decision.unroll, (IntVector{1, 0}));
    EXPECT_GT(result.outcomes[0].loadsRemoved, 0u);
    // Main + fringe nests in the output program.
    EXPECT_EQ(result.program.nests().size(), 2u);
    EXPECT_TRUE(validateProgram(result.program).empty());

    std::string summary = result.summary();
    EXPECT_NE(summary.find("intro"), std::string::npos);
    EXPECT_NE(summary.find("unroll=(1, 0)"), std::string::npos);
}

TEST(Driver, StageTogglesHonored)
{
    Program program = parseProgram(R"(
param n = 24
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i, j-1)
  end do
end do
)");
    MachineModel machine = MachineModel::wideIlp();

    PipelineConfig bare;
    bare.scalarReplace = false;
    bare.prefetch = false;
    PipelineResult plain = optimizeProgram(program, machine, bare);
    EXPECT_EQ(plain.outcomes[0].loadsRemoved, 0u);
    EXPECT_EQ(plain.outcomes[0].prefetches, 0u);

    PipelineConfig full;
    full.prefetch = true;
    PipelineResult rich = optimizeProgram(program, machine, full);
    EXPECT_GT(rich.outcomes[0].loadsRemoved, 0u);
    EXPECT_GT(rich.outcomes[0].prefetches, 0u);
}

TEST(Driver, NormalizesSteppedLoopsBeforeUnrolling)
{
    Program program = parseProgram(R"(
param m = 32
real a(80, m)
real b(m)
do j = 1, 79, 2
  do i = 1, m
    a(j, i) = a(j, i) + b(i)
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100();
    PipelineConfig config;
    config.optimizer.useCacheModel = false;
    PipelineResult result = optimizeProgram(program, machine, config);
    EXPECT_TRUE(result.outcomes[0].normalized);
    // Once normalized, the stepped loop unrolls like any other.
    EXPECT_TRUE(result.outcomes[0].decision.transforms());

    Interpreter a(program);
    Interpreter b(result.program);
    a.seedArrays(21);
    b.seedArrays(21);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, 1e-9), "");
}

TEST(Driver, InterchangeStageFindsMatmulOrder)
{
    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    PipelineConfig config;
    config.interchange = true;
    PipelineResult result = optimizeProgram(
        program, MachineModel::decAlpha21064(), config);
    EXPECT_TRUE(result.outcomes[0].interchanged);

    Interpreter x(program, {{"n", 15}});
    Interpreter y(result.program, {{"n", 15}});
    x.seedArrays(4);
    y.seedArrays(4);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "");
}

/** Everything on, whole suite: semantics must hold. */
class DriverSuite : public ::testing::TestWithParam<int>
{};

TEST_P(DriverSuite, FullPipelinePreservesSemantics)
{
    const SuiteLoop &loop =
        testSuite()[static_cast<std::size_t>(GetParam())];
    Program program = loadSuiteProgram(loop);

    PipelineConfig config;
    config.interchange = true;
    config.prefetch = true;
    config.optimizer.maxUnroll = 3;
    PipelineResult result =
        optimizeProgram(program, MachineModel::wideIlp(), config);
    EXPECT_TRUE(validateProgram(result.program).empty()) << loop.name;

    ParamBindings small{{"n", 21}, {"m", 17}};
    Interpreter a(program, small);
    Interpreter b(result.program, small);
    a.seedArrays(loop.number);
    b.seedArrays(loop.number);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, 1e-9), "") << loop.name;
}

INSTANTIATE_TEST_SUITE_P(AllLoops, DriverSuite, ::testing::Range(0, 19));

TEST(Driver, FusionStageMergesProducerConsumer)
{
    Program program = parseProgram(R"(
param n = 16
real a(n + 2, n + 2)
real b(n + 2, n + 2)
real c(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    a(i, j) = c(i, j) * 2.0
  end do
end do
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + 1.0
  end do
end do
)");
    PipelineConfig config;
    config.fuse = true;
    PipelineResult result =
        optimizeProgram(program, MachineModel::hpPa7100(), config);
    EXPECT_EQ(result.fusions, 1u);
    EXPECT_EQ(result.outcomes.size(), 1u);
    // The forwarded a(i,j) load disappears after fusion + scalar
    // replacement.
    EXPECT_GT(result.outcomes[0].loadsRemoved, 0u);

    Interpreter x(program);
    Interpreter y(result.program);
    x.seedArrays(6);
    y.seedArrays(6);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "");
}

TEST(Driver, DistributionStageSplitsShal)
{
    Program program = loadSuiteProgram(suiteLoop("shal"));
    PipelineConfig config;
    config.distribute = true;
    config.optimizer.maxUnroll = 2;
    PipelineResult result =
        optimizeProgram(program, MachineModel::decAlpha21064(), config);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_EQ(result.outcomes[0].pieces, 4u);

    ParamBindings small{{"n", 19}};
    Interpreter x(program, small);
    Interpreter y(result.program, small);
    x.seedArrays(9);
    y.seedArrays(9);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "");
}

TEST(Driver, MultiNestProgram)
{
    Program program = parseProgram(R"(
param n = 20
real a(n + 2, n + 2)
real b(n + 2, n + 2)
! nest: first
do j = 1, n
  do i = 1, n
    a(i, j) = b(i, j) + b(i, j-1)
  end do
end do
! nest: second
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * 0.5
  end do
end do
)");
    MachineModel machine = MachineModel::hpPa7100();
    PipelineResult result = optimizeProgram(program, machine, {});
    ASSERT_EQ(result.outcomes.size(), 2u);
    EXPECT_EQ(result.outcomes[0].name, "first");
    EXPECT_EQ(result.outcomes[1].name, "second");

    Interpreter x(program);
    Interpreter y(result.program);
    x.seedArrays(1);
    y.seedArrays(1);
    x.run();
    y.run();
    EXPECT_EQ(x.compareArrays(y, 1e-9), "");
}

} // namespace
} // namespace ujam
