/**
 * @file
 * Tests for unroll-and-jam and scalar replacement, anchored by
 * interpreter equivalence: every transformed program must compute the
 * same array contents as the original (up to reassociation headroom
 * for reductions).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/interp.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{
namespace
{

/** Run both programs from the same seed and compare all arrays. */
void
expectEquivalent(const Program &original, const Program &transformed,
                 double tol, const std::string &label)
{
    ASSERT_TRUE(validateProgram(transformed).empty())
        << label << ":\n"
        << renderProgram(transformed);
    Interpreter a(original);
    Interpreter b(transformed);
    a.seedArrays(20260706);
    b.seedArrays(20260706);
    a.run();
    b.run();
    EXPECT_EQ(a.compareArrays(b, tol), "")
        << label << ":\n"
        << renderProgram(transformed);
}

/** Transform nest 0 of the program by u, then scalar replace all. */
Program
transformProgram(const Program &program, const IntVector &u,
                 bool scalar_replace)
{
    Program result = unrollAndJam(program, 0, u);
    if (scalar_replace) {
        for (LoopNest &nest : result.nests())
            nest = scalarReplace(nest).nest;
    }
    return result;
}

TEST(UnrollAndJam, PaperIntroShape)
{
    Program program = parseProgram(R"(
param n = 10
param m = 7
real a(2*n + 2)
real b(m)
do j = 1, 2*n
  do i = 1, m
    a(j) = a(j) + b(i)
  end do
end do
)");
    std::vector<LoopNest> nests =
        unrollAndJamNest(program.nests()[0], IntVector{1, 0});
    ASSERT_EQ(nests.size(), 2u);
    const LoopNest &main = nests[0];
    EXPECT_EQ(main.loop(0).step, 2);
    ASSERT_EQ(main.body().size(), 2u);
    // Second copy references a(j+1).
    EXPECT_EQ(main.body()[1].lhsRef().offset(), (IntVector{1}));
    // Fringe keeps the original body and step.
    EXPECT_EQ(nests[1].loop(0).step, 1);
    EXPECT_EQ(nests[1].body().size(), 1u);
}

TEST(UnrollAndJam, RejectsInnermostAndNegative)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 8
  do i = 1, 8
    a(i, j) = 0
  end do
end do
)");
    EXPECT_THROW(unrollAndJamNest(nest, IntVector{0, 1}), PanicError);
    EXPECT_THROW(unrollAndJamNest(nest, IntVector{-1, 0}), PanicError);
    EXPECT_THROW(unrollAndJamNest(nest, IntVector{1}), PanicError);
}

TEST(UnrollAndJam, ZeroVectorIsIdentity)
{
    LoopNest nest = parseSingleNest(R"(
do j = 1, 8
  do i = 1, 8
    a(i, j) = 1.0
  end do
end do
)");
    std::vector<LoopNest> nests =
        unrollAndJamNest(nest, IntVector{0, 0});
    ASSERT_EQ(nests.size(), 1u);
    EXPECT_EQ(nests[0].body().size(), 1u);
    EXPECT_EQ(nests[0].loop(0).step, 1);
}

TEST(UnrollAndJam, EquivalenceWithRemainder)
{
    // n = 10 unrolled by 2 (factor 3): remainder iteration exists.
    Program program = parseProgram(R"(
param n = 10
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = b(i, j) * 2.0 + b(i, j-1)
  end do
end do
)");
    for (std::int64_t u : {1, 2, 3, 6}) {
        Program transformed =
            transformProgram(program, IntVector{u, 0}, false);
        expectEquivalent(program, transformed, 0.0,
                         concat("unroll j by ", u));
    }
}

TEST(UnrollAndJam, TwoLoopEquivalence)
{
    Program program = parseProgram(R"(
param n = 9
real c(n, n)
real a(n, n)
real b(n, n)
do i = 1, n
  do j = 1, n
    do k = 1, n
      c(k, j) = c(k, j) + a(k, i) * b(i, j)
    end do
  end do
end do
)");
    for (auto [ui, uj] : {std::pair{1, 1}, {2, 1}, {1, 3}, {3, 2}}) {
        Program transformed =
            transformProgram(program, IntVector{ui, uj, 0}, false);
        expectEquivalent(program, transformed, 1e-9,
                         concat("unroll (", ui, ",", uj, ")"));
    }
}

TEST(ScalarReplacement, InnermostChainRewrite)
{
    Program program = parseProgram(R"(
param n = 12
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j) + a(i-2, j)
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_EQ(result.chainsReplaced, 1u);
    EXPECT_EQ(result.loadsRemoved, 2u);
    EXPECT_EQ(result.registersUsed, 3);
    // Preheader must hold the two initializing loads; the body ends
    // with two rotation copies.
    EXPECT_EQ(result.nest.preheader().size(), 2u);
    ASSERT_GE(result.nest.body().size(), 2u);
    const Stmt &last = result.nest.body().back();
    EXPECT_FALSE(last.lhsIsArray());

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "stencil chain");
}

TEST(ScalarReplacement, StoreForwardsToLoad)
{
    Program program = parseProgram(R"(
param n = 12
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i-1, j) * 0.5 + 1.0
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_EQ(result.chainsReplaced, 1u);
    EXPECT_EQ(result.loadsRemoved, 1u);

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "store forwarding");

    // The rewritten body must not read array 'a' at all.
    std::size_t loads = 0;
    for (const Stmt &stmt : result.nest.body()) {
        stmt.forEachAccess([&](const ArrayRef &, bool is_write) {
            loads += !is_write;
        });
    }
    EXPECT_EQ(loads, 0u);
}

TEST(ScalarReplacement, InvariantHoisting)
{
    Program program = parseProgram(R"(
param n = 14
real a(n)
real b(n)
do j = 1, n
  do i = 1, n
    a(j) = a(j) + b(i)
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_GE(result.chainsReplaced, 1u);
    // The sum now lives in a register: the body has no reference to
    // 'a' left; the preheader loads it, the postheader stores it.
    std::size_t body_a_refs = 0;
    for (const Stmt &stmt : result.nest.body()) {
        stmt.forEachAccess([&](const ArrayRef &ref, bool) {
            body_a_refs += (ref.array() == "a");
        });
    }
    EXPECT_EQ(body_a_refs, 0u);
    EXPECT_FALSE(result.nest.preheader().empty());
    EXPECT_FALSE(result.nest.postheader().empty());

    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "invariant hoist");
}

TEST(ScalarReplacement, UnsafeArraysLeftAlone)
{
    // 'a' is written through two different subscript patterns: no
    // chain on 'a' may be replaced.
    Program program = parseProgram(R"(
param n = 12
real a(2*n + 2)
do j = 1, n
  do i = 1, n
    a(i) = a(i-1) + 1.0
    a(2*i) = 3.0
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_EQ(result.chainsReplaced, 0u);
    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "unsafe skip");
}

TEST(ScalarReplacement, DuplicateLoadsShareOneLoad)
{
    Program program = parseProgram(R"(
param n = 12
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) * a(i, j) + a(i, j)
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    EXPECT_EQ(result.chainsReplaced, 1u);
    EXPECT_EQ(result.loadsRemoved, 2u);
    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "duplicate loads");
}

TEST(ScalarReplacement, ReadBeforeWriteKeepsOldValue)
{
    // a(i,j) appears as read and write in the same statement via
    // different expressions: the read must see the pre-store value.
    Program program = parseProgram(R"(
param n = 10
real a(n, n)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i, j) * 0.5 + a(i-1, j)
  end do
end do
)");
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0]);
    Program transformed = program;
    transformed.nests()[0] = result.nest;
    expectEquivalent(program, transformed, 0.0, "read before write");
}

TEST(ScalarReplacement, RegisterBudgetRanksChains)
{
    // Two chains: the a-chain removes 2 loads for 3 registers
    // (ratio 0.67); the c-chain removes 1 load for 1 register
    // (ratio 1.0). With a 1-register budget only the c-chain fits.
    Program program = parseProgram(R"(
param n = 12
real a(n + 4, n + 4)
real b(n + 4, n + 4)
real c(n + 4)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j) + a(i-2, j) + c(i) * c(i)
  end do
end do
)");
    ScalarReplacementConfig tight;
    tight.maxRegisters = 1;
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0], tight);
    EXPECT_EQ(result.chainsReplaced, 1u);
    EXPECT_EQ(result.registersUsed, 1);
    EXPECT_EQ(result.loadsRemoved, 1u); // the duplicated c(i)

    ScalarReplacementConfig roomy;
    ScalarReplacementResult full =
        scalarReplace(program.nests()[0], roomy);
    EXPECT_EQ(full.chainsReplaced, 2u);
    EXPECT_EQ(full.registersUsed, 4);
    EXPECT_EQ(full.loadsRemoved, 3u);

    // Both variants stay correct.
    for (const ScalarReplacementResult *variant : {&result, &full}) {
        Program transformed = program;
        transformed.nests()[0] = variant->nest;
        expectEquivalent(program, transformed, 0.0, "budgeted SR");
    }
}

TEST(ScalarReplacement, ZeroBudgetLeavesNestAlone)
{
    Program program = parseProgram(R"(
param n = 10
real a(n + 2, n + 2)
real b(n + 2, n + 2)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j)
  end do
end do
)");
    ScalarReplacementConfig none;
    none.maxRegisters = 0;
    ScalarReplacementResult result =
        scalarReplace(program.nests()[0], none);
    EXPECT_EQ(result.chainsReplaced, 0u);
    EXPECT_EQ(result.nest.body().size(),
              program.nests()[0].body().size());
}

// --- randomized equivalence ----------------------------------------------

class TransformEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(TransformEquivalence, RandomStencilPrograms)
{
    Rng rng(40000 + GetParam());
    std::ostringstream src;
    std::int64_t n = rng.range(6, 14);
    src << "param n = " << n << "\n";
    src << "real a(n + 12, n + 12)\nreal b(n + 12, n + 12)\n";
    src << "real c(n + 12)\n";
    src << "do j = 1, n\n  do i = 1, n\n";

    // One or two statements; writes go to 'a' or 'b' with distinct
    // patterns kept in one UGS per array to stay replaceable.
    int stmts = static_cast<int>(rng.range(1, 2));
    for (int s = 0; s < stmts; ++s) {
        const char *target = (s == 0) ? "a" : "b";
        src << "    " << target << "(i, j) = ";
        int reads = static_cast<int>(rng.range(1, 3));
        for (int r = 0; r < reads; ++r) {
            if (r > 0)
                src << (rng.chance(0.5) ? " + " : " * ");
            switch (rng.range(0, 3)) {
              case 0:
                src << "a(i" << (rng.chance(0.5) ? "-1" : "-2")
                    << ", j)";
                break;
              case 1:
                src << "b(i, j" << (rng.chance(0.5) ? "-1" : "-2")
                    << ")";
                break;
              case 2:
                src << "c(i)";
                break;
              default:
                src << "2.5";
                break;
            }
        }
        src << "\n";
    }
    src << "  end do\nend do\n";

    Program program = parseProgram(src.str());
    // Writes to a(i,j) while reading a(i-1,j): distance (0,1) inner
    // positive; j-unrolling is always safe here.
    for (std::int64_t u = 0; u <= 3; ++u) {
        Program transformed =
            transformProgram(program, IntVector{u, 0}, true);
        expectEquivalent(program, transformed, 1e-9,
                         concat("seed ", GetParam(), " u=", u, "\n",
                                src.str()));
    }
}

INSTANTIATE_TEST_SUITE_P(Random, TransformEquivalence,
                         ::testing::Range(0, 25));

TEST(TransformPipeline, MatmulFullPipeline)
{
    Program program = parseProgram(R"(
param n = 13
real c(n, n)
real a(n, n)
real b(n, n)
do j = 1, n
  do k = 1, n
    do i = 1, n
      c(i, j) = c(i, j) + a(i, k) * b(k, j)
    end do
  end do
end do
)");
    for (auto [uj, uk] : {std::pair{1, 1}, {2, 0}, {0, 2}, {3, 1}}) {
        Program transformed =
            transformProgram(program, IntVector{uj, uk, 0}, true);
        // Reductions reassociate: allow roundoff headroom.
        expectEquivalent(program, transformed, 1e-9,
                         concat("matmul (", uj, ",", uk, ")"));
    }
}

TEST(TransformPipeline, ScalarReplacementReducesDynamicLoads)
{
    Program program = parseProgram(R"(
param n = 24
real a(n, n)
real b(n, n)
do j = 1, n
  do i = 1, n
    b(i, j) = a(i, j) + a(i-1, j) + a(i-2, j)
  end do
end do
)");
    Interpreter before(program);
    before.seedArrays(1);
    before.run();

    Program transformed =
        transformProgram(program, IntVector{0, 0}, true);
    Interpreter after(transformed);
    after.seedArrays(1);
    after.run();

    // Same stores, roughly one third the loads (plus preheader).
    EXPECT_EQ(before.storeCount(), after.storeCount());
    EXPECT_LT(after.loadCount(), before.loadCount() / 2);
}

} // namespace
} // namespace ujam
