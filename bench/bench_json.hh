/**
 * @file
 * Machine-readable benchmark artifacts.
 *
 * Every bench binary that reports numbers worth tracking writes a
 * BENCH_*.json file (built with the shared support/json writer) so
 * future PRs can diff performance mechanically instead of scraping
 * stdout. Files land in the repository root by default
 * (UJAM_REPO_ROOT, baked in by CMake); set UJAM_BENCH_DIR to redirect
 * them, e.g. into a CI artifact directory.
 */

#ifndef UJAM_BENCH_BENCH_JSON_HH
#define UJAM_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace ujam
{

/** @return The directory BENCH_*.json files go to. */
inline std::string
benchOutputDir()
{
    if (const char *dir = std::getenv("UJAM_BENCH_DIR"))
        return dir;
#ifdef UJAM_REPO_ROOT
    return UJAM_REPO_ROOT;
#else
    return ".";
#endif
}

/**
 * Write one benchmark artifact and say where it went.
 *
 * @param filename e.g. "BENCH_SCALING.json" (no directory).
 * @param json     The document text.
 * @return True when the file was written.
 */
inline bool
writeBenchJson(const std::string &filename, const std::string &json)
{
    std::string path = benchOutputDir() + "/" + filename;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "bench: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out << json << "\n";
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace ujam

#endif // UJAM_BENCH_BENCH_JSON_HH
