/**
 * @file
 * Experiment E8 -- sections 3.2 and 6: the balance model's prefetch
 * term. "In the future, we will look into the effects of our
 * optimization technique on architectures that support software
 * prefetching since our performance model handles this."
 *
 * Sweeps the prefetch-issue bandwidth b of the wide-ILP machine and
 * reports, over the suite, how many main-memory accesses stay
 * unserviced (the U of bL = (VM + U*gm/gc)/VF) and the simulated
 * geometric-mean normalized time of the cache-model-optimized loops.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/optimizer.hh"
#include "sim/simulator.hh"
#include "transform/prefetch_insertion.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace
{

/**
 * The explicit reading of the same study: insert prefetch
 * instructions per streaming group-spatial set and let them compete
 * for issue slots and memory ports in the simulator.
 */
void
printExplicitPrefetch()
{
    using namespace ujam;
    std::printf("\n--- explicit software-prefetch insertion (wide-ILP "
                "machine) ---\n\n");
    std::printf("%-10s %12s %12s %14s %14s\n", "loop", "time w/o pf",
                "time w/ pf", "demand misses", "pf inserted");
    MachineModel machine = MachineModel::wideIlp();
    double geo = 0.0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        SimResult plain = simulateProgram(program, machine);

        Program prefetched = program;
        PrefetchResult inserted =
            insertPrefetches(program.nests()[0], PrefetchConfig{8});
        prefetched.nests()[0] = inserted.nest;
        SimResult result = simulateProgram(prefetched, machine);

        double ratio = result.cycles / plain.cycles;
        geo += std::log(ratio);
        std::printf("%-10s %12.3g %12.3g %6llu -> %5llu %14zu\n",
                    loop.name.c_str(), plain.cycles, result.cycles,
                    static_cast<unsigned long long>(plain.demandMisses),
                    static_cast<unsigned long long>(
                        result.demandMisses),
                    inserted.prefetchesInserted);
    }
    std::printf("\ngeomean time with explicit prefetching: %.3f of the "
                "plain loop\n",
                std::exp(geo / static_cast<double>(testSuite().size())));
}

void
printPrefetchSweep()
{
    using namespace ujam;
    std::printf("\n=== E8: prefetch-bandwidth sensitivity (wide-ILP "
                "machine) ===\n\n");
    std::printf("%10s %16s %18s\n", "b (pf/cyc)", "geomean time",
                "mean predicted bL");

    for (double bandwidth : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        MachineModel machine = MachineModel::wideIlp();
        machine.prefetchPerCycle = bandwidth;
        OptimizerConfig config;
        config.maxUnroll = 4;

        double geo = 0.0;
        double balance_sum = 0.0;
        for (const SuiteLoop &loop : testSuite()) {
            Program program = loadSuiteProgram(loop);
            UnrollDecision decision =
                chooseUnrollAmounts(program.nests()[0], machine, config);
            balance_sum += decision.predictedBalance;

            SimResult original = simulateProgram(program, machine);
            Program transformed =
                unrollAndJam(program, 0, decision.unroll);
            for (LoopNest &nest : transformed.nests())
                nest = scalarReplace(nest).nest;
            SimResult after = simulateProgram(transformed, machine);
            geo += std::log(after.cycles / original.cycles);
        }
        double n = static_cast<double>(testSuite().size());
        std::printf("%10.2f %16.3f %18.3f\n", bandwidth,
                    std::exp(geo / n), balance_sum / n);
    }
    std::printf("\n(normalized against the untransformed loop on the "
                "same machine; prefetching\n lowers both the predicted "
                "balance and the measured time)\n");
}

void
BM_PrefetchDecision(benchmark::State &state)
{
    using namespace ujam;
    MachineModel machine = MachineModel::wideIlp();
    machine.prefetchPerCycle = static_cast<double>(state.range(0)) / 4.0;
    OptimizerConfig config;
    config.maxUnroll = 4;
    Program program = loadSuiteProgram(suiteLoop("dmxpy0"));
    for (auto _ : state) {
        UnrollDecision decision =
            chooseUnrollAmounts(program.nests()[0], machine, config);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_PrefetchDecision)->Arg(0)->Arg(2)->Arg(4);

} // namespace

int
main(int argc, char **argv)
{
    printPrefetchSweep();
    printExplicitPrefetch();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
