/**
 * @file
 * Experiment E7 -- section 6 future work: "we will also examine the
 * performance of unroll-and-jam on architectures with larger register
 * sets so that the transformation is not as limited."
 *
 * Sweeps the register-file size of the Alpha-like machine from 8 to
 * 128 and reports, over the suite: the average unroll volume the
 * optimizer can afford and the resulting geometric-mean normalized
 * execution time.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/optimizer.hh"
#include "sim/simulator.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace
{

void
printRegisterSweep()
{
    using namespace ujam;
    std::printf("\n=== E7: sensitivity to register-file size "
                "(Alpha-like machine) ===\n\n");
    std::printf("%8s %14s %14s %16s\n", "regs", "mean copies",
                "constrained", "geomean time");

    for (std::int64_t regs : {8, 16, 24, 32, 48, 64, 96, 128}) {
        MachineModel machine = MachineModel::decAlpha21064();
        machine.fpRegisters = regs;
        OptimizerConfig config;
        config.maxUnroll = 4;

        double copies_sum = 0.0;
        double geo = 0.0;
        std::size_t constrained = 0;
        for (const SuiteLoop &loop : testSuite()) {
            Program program = loadSuiteProgram(loop);
            UnrollDecision decision =
                chooseUnrollAmounts(program.nests()[0], machine, config);
            double copies = 1.0;
            for (std::size_t k = 0; k < decision.unroll.size(); ++k)
                copies *= static_cast<double>(decision.unroll[k] + 1);
            copies_sum += copies;

            // Would a bigger file have unrolled more?
            MachineModel roomy = machine;
            roomy.fpRegisters = 1024;
            UnrollDecision unconstrained = chooseUnrollAmounts(
                program.nests()[0], roomy, config);
            constrained += (unconstrained.unroll != decision.unroll);

            SimResult original = simulateProgram(program, machine);
            Program transformed =
                unrollAndJam(program, 0, decision.unroll);
            for (LoopNest &nest : transformed.nests())
                nest = scalarReplace(nest).nest;
            SimResult after = simulateProgram(transformed, machine);
            geo += std::log(after.cycles / original.cycles);
        }
        std::printf("%8lld %14.2f %11zu/19 %16.3f\n",
                    static_cast<long long>(regs),
                    copies_sum / static_cast<double>(testSuite().size()),
                    constrained,
                    std::exp(geo /
                             static_cast<double>(testSuite().size())));
    }
    std::printf("\n(\"constrained\" counts loops whose decision would "
                "change with unlimited registers)\n");
}

void
BM_RegisterSweepPoint(benchmark::State &state)
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    machine.fpRegisters = state.range(0);
    OptimizerConfig config;
    config.maxUnroll = 4;
    Program program = loadSuiteProgram(suiteLoop("mmjik"));
    for (auto _ : state) {
        UnrollDecision decision =
            chooseUnrollAmounts(program.nests()[0], machine, config);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_RegisterSweepPoint)->Arg(16)->Arg(32)->Arg(128);

} // namespace

int
main(int argc, char **argv)
{
    printRegisterSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
