/**
 * @file
 * Experiment E5 -- the headline storage claim (sections 1, 5.1, 6):
 * the UGS model saves the dependence-graph space that input
 * dependences occupy. For every suite loop we compare the full graph
 * the dependence-based model needs against the truncated graph plus
 * the UGS records the table method needs; the corpus aggregate
 * reproduces the "84% of all dependence space" figure.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/dep_based.hh"
#include "deps/update.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/corpus.hh"
#include "deps/analyzer.hh"
#include "support/diagnostics.hh"
#include "workloads/suite.hh"

namespace
{

void
printSpaceReport()
{
    using namespace ujam;
    std::printf("\n=== E5: Dependence-graph space, dependence-based vs "
                "UGS model ===\n\n");
    std::printf("%-10s %7s %7s %10s %10s %14s\n", "loop", "edges",
                "input", "graph B", "input B", "no-input+UGS B");
    std::size_t total_full = 0;
    std::size_t total_input = 0;
    std::size_t total_lean = 0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests()[0];
        DependenceGraph graph = analyzeDependences(nest);
        std::size_t lean = graph.storageBytesWithoutInput() +
                           ugsModelBytes(nest);
        total_full += graph.storageBytes();
        total_input +=
            graph.storageBytes() - graph.storageBytesWithoutInput();
        total_lean += lean;
        std::printf("%-10s %7zu %7zu %10zu %10zu %14zu\n",
                    loop.name.c_str(), graph.size(), graph.inputCount(),
                    graph.storageBytes(),
                    graph.storageBytes() -
                        graph.storageBytesWithoutInput(),
                    lean);
    }
    std::printf("%-10s %7s %7s %10zu %10zu %14zu  (suite total)\n",
                "ALL", "", "", total_full, total_input, total_lean);
    std::printf("\nsuite: input dependences occupy %.1f%% of graph "
                "space; the UGS records that replace them cost %.1f%% "
                "of it.\n(Small kernels carry few input deps; the "
                "corpus below shows the whole-program picture.)\n",
                100.0 * static_cast<double>(total_input) /
                    static_cast<double>(total_full),
                100.0 * (static_cast<double>(total_lean) -
                         static_cast<double>(total_full -
                                             total_input)) /
                    static_cast<double>(total_full));

    CorpusStats stats = analyzeCorpus(generateCorpus());
    std::printf("\ncorpus (1187 routines): %zu -> %zu bytes "
                "(%.1f%% of graph space is input dependences; "
                "paper: 84%%)\n",
                stats.graphBytes, stats.graphBytesNoInput,
                100.0 * (1.0 - static_cast<double>(
                                   stats.graphBytesNoInput) /
                                   static_cast<double>(
                                       stats.graphBytes)));
}

void
BM_GraphConstructionFull(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    for (auto _ : state) {
        DependenceGraph graph =
            analyzeDependences(program.nests()[0], DepOptions{true});
        benchmark::DoNotOptimize(graph);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_GraphConstructionFull)->Arg(0)->Arg(14)->Arg(18);

void
BM_GraphConstructionNoInput(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    for (auto _ : state) {
        DependenceGraph graph =
            analyzeDependences(program.nests()[0], DepOptions{false});
        benchmark::DoNotOptimize(graph);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_GraphConstructionNoInput)->Arg(0)->Arg(14)->Arg(18);

/**
 * Section 5.1's second claim: "the processing time of dependence
 * graphs is reduced for transformations that update the dependence
 * graph." Re-deriving the graph of an unroll-and-jammed body is the
 * update a transforming compiler pays repeatedly.
 */
void
BM_ReanalyzeUnrolledBody(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    IntVector unroll(program.nests()[0].depth());
    unroll[0] = 4;
    std::vector<LoopNest> expanded =
        unrollAndJamNest(program.nests()[0], unroll);
    bool with_input = state.range(1) != 0;
    for (auto _ : state) {
        DependenceGraph graph = analyzeDependences(
            expanded.front(), DepOptions{with_input});
        benchmark::DoNotOptimize(graph);
    }
    state.SetLabel(ujam::concat(
        testSuite()[static_cast<std::size_t>(state.range(0))].name,
        with_input ? " (with input deps)" : " (no input deps)"));
}
BENCHMARK(BM_ReanalyzeUnrolledBody)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({18, 1})
    ->Args({18, 0});

/**
 * The closed-form alternative: update the original graph across the
 * transformation instead of re-deriving it (deps/update.hh). Its cost
 * is proportional to the edge count alone -- one more place the
 * input-dependence share is paid or saved.
 */
void
BM_UpdateGraphAcrossUnroll(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    const LoopNest &nest = program.nests()[0];
    IntVector unroll(nest.depth());
    unroll[0] = 4;
    bool with_input = state.range(1) != 0;
    DependenceGraph original =
        analyzeDependences(nest, DepOptions{with_input});
    for (auto _ : state) {
        DependenceGraph updated =
            updateGraphAfterUnrollAndJam(original, nest, unroll);
        benchmark::DoNotOptimize(updated);
    }
    state.SetLabel(ujam::concat(
        testSuite()[static_cast<std::size_t>(state.range(0))].name,
        with_input ? " (with input deps)" : " (no input deps)"));
}
BENCHMARK(BM_UpdateGraphAcrossUnroll)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({18, 1})
    ->Args({18, 0});

} // namespace

int
main(int argc, char **argv)
{
    printSpaceReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
