/**
 * @file
 * Experiment E11 -- enabling transformations around unroll-and-jam.
 *
 * FLO52's DFLUX computes flux differences (our dflux.16) and
 * immediately consumes them (dflux.17): fusing the pair lets scalar
 * replacement forward fs(i,j) in a register, and unroll-and-jam then
 * works on the combined body. Conversely the shallow-water kernel
 * carries four independent statements whose distribution gives each
 * its own decision. This ablation measures the pipeline with fusion
 * and distribution on and off.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/driver.hh"
#include "parser/parser.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace
{

/** dflux.16 and dflux.17 as one program over shared arrays. */
const char *kDfluxPair = R"(
param n = 144
param m = 144
real fs(m + 2, n)
real w(m + 2, n)
real dw(m + 2, n)
real rad(m + 2, n)
! nest: dflux.16
do j = 1, n
  do i = 2, m
    fs(i, j) = w(i+1, j) - w(i, j)
  end do
end do
! nest: dflux.17
do j = 1, n
  do i = 2, m
    dw(i, j) = dw(i, j) + rad(i, j) * (fs(i, j) - fs(i-1, j))
  end do
end do
)";

double
runPipeline(const ujam::Program &program,
            const ujam::MachineModel &machine, bool fuse,
            bool distribute)
{
    using namespace ujam;
    PipelineConfig config;
    config.fuse = fuse;
    config.distribute = distribute;
    config.optimizer.maxUnroll = 4;
    PipelineResult result = optimizeProgram(program, machine, config);
    return simulateProgram(result.program, machine).cycles;
}

void
printEnablingAblation()
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    std::printf("\n=== E11: enabling transformations (Alpha-like) "
                "===\n\n");

    {
        Program program = parseProgram(kDfluxPair);
        double original = simulateProgram(program, machine).cycles;
        double plain =
            runPipeline(program, machine, false, false) / original;
        double fused =
            runPipeline(program, machine, true, false) / original;
        std::printf("dflux.16+17 producer-consumer pair:\n");
        std::printf("  unroll-and-jam alone:        %.2f\n", plain);
        std::printf("  fusion, then unroll-and-jam: %.2f   (fs "
                    "forwarded in a register)\n",
                    fused);
    }

    {
        Program program = loadSuiteProgram(suiteLoop("shal"));
        double original = simulateProgram(program, machine).cycles;
        double plain =
            runPipeline(program, machine, false, false) / original;
        double split =
            runPipeline(program, machine, false, true) / original;
        std::printf("\nshal four-statement kernel:\n");
        std::printf("  unroll-and-jam alone:            %.2f\n", plain);
        std::printf("  distribution, then per-piece uj: %.2f\n", split);
    }
}

void
BM_FusedPipeline(benchmark::State &state)
{
    using namespace ujam;
    Program program = parseProgram(kDfluxPair);
    MachineModel machine = MachineModel::decAlpha21064();
    for (auto _ : state) {
        PipelineConfig config;
        config.fuse = state.range(0) != 0;
        config.optimizer.maxUnroll = 4;
        PipelineResult result =
            optimizeProgram(program, machine, config);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(state.range(0) ? "with fusion" : "without fusion");
}
BENCHMARK(BM_FusedPipeline)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    printEnablingAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
