/**
 * @file
 * Experiment E6 -- table method vs brute force (section 2 vs Wolf,
 * Maydan & Chen [2]) and vs the dependence-based model ([1]).
 *
 * Verifies all three pick the same unroll vectors on the suite, then
 * times them: the tables do closed-form merge-point work once; brute
 * force re-unrolls and re-measures a body per candidate point.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/brute_force.hh"
#include "baseline/dep_based.hh"
#include "workloads/suite.hh"

namespace
{

ujam::OptimizerConfig
benchConfig()
{
    ujam::OptimizerConfig config;
    config.maxUnroll = 4;
    return config;
}

void
printAgreement()
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    std::printf("\n=== E6: decisions and analysis work, tables vs brute "
                "force ===\n\n");
    std::printf("%-10s %-12s %-12s %-12s %10s %10s\n", "loop",
                "u(tables)", "u(brute)", "u(dep-based)", "refs seen",
                "peak refs");
    std::size_t agreements = 0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        const LoopNest &nest = program.nests()[0];
        UnrollDecision table =
            chooseUnrollAmounts(nest, machine, benchConfig());
        BruteForceResult brute =
            bruteForceChooseUnroll(nest, machine, benchConfig());
        DepBasedResult deps =
            depBasedChooseUnroll(nest, machine, benchConfig());
        agreements += (table.unroll == brute.unroll &&
                       table.unroll == deps.decision.unroll);
        std::printf("%-10s %-12s %-12s %-12s %10zu %10zu\n",
                    loop.name.c_str(), table.unroll.toString().c_str(),
                    brute.unroll.toString().c_str(),
                    deps.decision.unroll.toString().c_str(),
                    brute.totalBodyRefs, brute.peakBodyRefs);
    }
    std::printf("\nagreement: %zu / %zu loops\n", agreements,
                testSuite().size());
}

void
BM_TableMethod(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    MachineModel machine = MachineModel::decAlpha21064();
    for (auto _ : state) {
        UnrollDecision decision = chooseUnrollAmounts(
            program.nests()[0], machine, benchConfig());
        benchmark::DoNotOptimize(decision);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_TableMethod)->Arg(0)->Arg(10)->Arg(14)->Arg(15);

void
BM_BruteForce(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    MachineModel machine = MachineModel::decAlpha21064();
    for (auto _ : state) {
        BruteForceResult result = bruteForceChooseUnroll(
            program.nests()[0], machine, benchConfig());
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_BruteForce)->Arg(0)->Arg(10)->Arg(14)->Arg(15);

void
BM_DepBased(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    MachineModel machine = MachineModel::decAlpha21064();
    for (auto _ : state) {
        DepBasedResult result = depBasedChooseUnroll(
            program.nests()[0], machine, benchConfig());
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_DepBased)->Arg(0)->Arg(10)->Arg(14)->Arg(15);

} // namespace

int
main(int argc, char **argv)
{
    printAgreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
