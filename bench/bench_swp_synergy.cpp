/**
 * @file
 * Experiment E14 -- section 6: "examine the performance of
 * unroll-and-jam and software pipelining on machines that have large
 * register files and high degrees of ILP."
 *
 * For every suite loop, modulo-schedule the innermost body before and
 * after unroll-and-jam + scalar replacement, on the 1997 machine and
 * on the wide-ILP machine, and report the initiation interval per
 * ORIGINAL iteration. Recurrence-bound loops (reductions, first-order
 * recurrences) are exactly where unroll-and-jam multiplies the
 * independent chains software pipelining can overlap.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/optimizer.hh"
#include "sim/modulo_schedule.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace
{

struct SwpRow
{
    double before = 0.0; //!< II per original iteration, untransformed
    double after = 0.0;  //!< same, after uj + scalar replacement
    bool recurrence = false;
};

SwpRow
measure(const ujam::Program &program, const ujam::MachineModel &machine)
{
    using namespace ujam;
    SwpRow row;

    LoopNest plain = scalarReplace(program.nests()[0]).nest;
    OpGraph before = OpGraph::fromBody(plain, machine);
    ModuloScheduleResult sched_before =
        moduloSchedule(before, machine);
    row.before = sched_before.achievedII;
    row.recurrence =
        sched_before.recurrenceMii > sched_before.resourceMii;

    OptimizerConfig config;
    config.maxUnroll = 4;
    UnrollDecision decision =
        chooseUnrollAmounts(program.nests()[0], machine, config);
    double copies = 1.0;
    for (std::size_t k = 0; k < decision.unroll.size(); ++k)
        copies *= static_cast<double>(decision.unroll[k] + 1);

    LoopNest unrolled =
        unrollAndJamNest(program.nests()[0], decision.unroll).front();
    LoopNest replaced = scalarReplace(unrolled).nest;
    OpGraph after = OpGraph::fromBody(replaced, machine);
    row.after = static_cast<double>(
                    moduloSchedule(after, machine).achievedII) /
                copies;
    return row;
}

void
printSwpSynergy()
{
    using namespace ujam;
    std::printf("\n=== E14: software pipelining x unroll-and-jam "
                "(II per original iteration) ===\n\n");
    std::printf("%-10s | %-22s | %-22s\n", "",
                "DEC Alpha 21064", "wide ILP (128 regs)");
    std::printf("%-10s | %8s %8s %4s | %8s %8s %4s\n", "loop", "plain",
                "uj+swp", "rec?", "plain", "uj+swp", "rec?");

    double geo_alpha = 0.0;
    double geo_wide = 0.0;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        SwpRow alpha = measure(program, MachineModel::decAlpha21064());
        SwpRow wide = measure(program, MachineModel::wideIlp());
        std::printf("%-10s | %8.1f %8.2f %4s | %8.1f %8.2f %4s\n",
                    loop.name.c_str(), alpha.before, alpha.after,
                    alpha.recurrence ? "yes" : "", wide.before,
                    wide.after, wide.recurrence ? "yes" : "");
        geo_alpha += std::log(alpha.after / alpha.before);
        geo_wide += std::log(wide.after / wide.before);
    }
    double n = static_cast<double>(testSuite().size());
    std::printf("\ngeomean II change: Alpha %.2fx, wide ILP %.2fx\n",
                std::exp(geo_alpha / n), std::exp(geo_wide / n));
    std::printf("(rec? marks bodies whose plain II is recurrence "
                "bound: the wide machine cannot\n help them until "
                "unroll-and-jam supplies independent chains)\n");
}

void
BM_ModuloSchedule(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(suiteLoop("mmjki"));
    MachineModel machine = MachineModel::wideIlp();
    LoopNest unrolled =
        unrollAndJamNest(program.nests()[0], IntVector{2, 2, 0})
            .front();
    LoopNest replaced = scalarReplace(unrolled).nest;
    OpGraph graph = OpGraph::fromBody(replaced, machine);
    for (auto _ : state) {
        ModuloScheduleResult result = moduloSchedule(graph, machine);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ModuloSchedule);

} // namespace

int
main(int argc, char **argv)
{
    printSwpSynergy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
