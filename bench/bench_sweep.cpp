/**
 * @file
 * The scenario sweep over the built-in default manifest, written to
 * BENCH_SWEEP.json.
 *
 * Every registered scenario family is generated over a small grid
 * (two seeds, two machine presets) and run through the full pipeline
 * with the differential oracle on, then autotuned on the simulator
 * backend; the artifact records per scenario the validator and
 * ground-truth verdicts, lint counts, rollbacks, and the model pick
 * next to the tuner pick, with a census up front (including the
 * model-vs-tuner agreement rate overall and per family) -- the
 * repo's standing answer to "how does the Eq.-1 model behave on
 * inputs it was never calibrated on?".
 *
 * Deterministic by construction (MeasureMode::Model throughout, no
 * timing fields in the document), so future PRs can diff the
 * artifact byte-wise.
 */

#include <cstdio>

#include "bench_json.hh"
#include "scenarios/sweep.hh"

using namespace ujam;

int
main()
{
    SweepManifest manifest = defaultSweepManifest();
    SweepResult result = runSweep(manifest);

    std::size_t validator_ok = 0;
    std::size_t truth_ok = 0;
    std::size_t rollbacks = 0;
    std::size_t agree = 0;
    for (const SweepRow &row : result.rows) {
        validator_ok += row.validatorOk;
        truth_ok += row.truthOk;
        rollbacks += row.rollbacks;
        agree += row.agree;
        if (!row.truthOk)
            std::fprintf(stderr, "bench_sweep: %s: %s\n",
                         row.scenario.c_str(), row.truthWhy.c_str());
    }

    writeBenchJson("BENCH_SWEEP.json", sweepResultJson(result, 1));

    std::printf("bench_sweep: %zu scenarios, %zu validator ok, "
                "%zu ground truth ok, %zu rollbacks, "
                "model==tuner on %zu/%zu\n",
                result.rows.size(), validator_ok, truth_ok, rollbacks,
                agree, result.rows.size());

    bool healthy = validator_ok == result.rows.size() &&
                   truth_ok == result.rows.size() && rollbacks == 0;
    return healthy ? 0 : 1;
}
