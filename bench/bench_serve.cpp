/**
 * @file
 * ujam-serve batch throughput: cold vs. warm result cache.
 *
 * Runs the full 19-loop evaluation suite through UjamServer::runBatch
 * three ways and writes BENCH_SERVE.json:
 *
 *   - cold:      a fresh server and an empty cache directory -- every
 *                request runs the whole pipeline;
 *   - warm:      the same server again -- every request is answered
 *                from the in-memory tier;
 *   - disk_warm: a restarted server on the same cache directory --
 *                every request is answered from the persistent tier.
 *
 * The warm and disk-warm responses are asserted byte-identical to the
 * cold ones (the service's core contract), and the report includes
 * the resulting speedups. Exit status 1 if any response differs or
 * the warm path fails to reach a 5x speedup.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <unistd.h>

#include "bench_json.hh"
#include "service/server.hh"
#include "support/json.hh"
#include "workloads/suite.hh"

namespace
{

using namespace ujam;

std::string
suiteBatchInput()
{
    std::string input;
    for (const SuiteLoop &loop : testSuite()) {
        JsonWriter json;
        json.beginObject();
        json.field("op", "optimize");
        json.field("id", loop.name);
        json.field("source", loop.source);
        json.key("options").beginObject();
        json.field("lint", "warn");
        json.endObject();
        json.endObject();
        input += json.str() + "\n";
    }
    return input;
}

/** @return (seconds, output) for one batch run. */
std::pair<double, std::string>
timedBatch(UjamServer &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    auto start = std::chrono::steady_clock::now();
    server.runBatch(in, out);
    auto stop = std::chrono::steady_clock::now();
    return {std::chrono::duration<double>(stop - start).count(),
            out.str()};
}

} // namespace

int
main()
{
    std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/ujam-bench-serve-" + std::to_string(getpid());
    std::string input = suiteBatchInput();
    std::size_t requests = testSuite().size();

    ServerConfig config;
    config.cacheDir = cache_dir;
    UjamServer server(std::move(config));

    auto [cold_s, cold_out] = timedBatch(server, input);
    auto [warm_s, warm_out] = timedBatch(server, input);

    ServerConfig restart_config;
    restart_config.cacheDir = cache_dir;
    UjamServer restarted(std::move(restart_config));
    auto [disk_s, disk_out] = timedBatch(restarted, input);

    bool identical = warm_out == cold_out && disk_out == cold_out;
    double warm_speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
    double disk_speedup = disk_s > 0 ? cold_s / disk_s : 0.0;

    JsonWriter json(2);
    json.beginObject();
    json.field("requests", std::uint64_t(requests));
    json.key("cold_seconds").valueFixed(cold_s, 6);
    json.key("warm_seconds").valueFixed(warm_s, 6);
    json.key("disk_warm_seconds").valueFixed(disk_s, 6);
    json.key("warm_speedup").valueFixed(warm_speedup, 2);
    json.key("disk_warm_speedup").valueFixed(disk_speedup, 2);
    json.field("responses_identical", identical);
    json.field("memory_hits",
               server.metrics().cacheMemoryHits.get());
    json.field("disk_hits",
               restarted.metrics().cacheDiskHits.get());
    json.endObject();

    std::printf("%s\n", json.str().c_str());
    writeBenchJson("BENCH_SERVE.json", json.str());

    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: warm responses differ from cold\n");
        return 1;
    }
    if (warm_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: warm speedup %.2f below 5x target\n",
                     warm_speedup);
        return 1;
    }
    return 0;
}
