/**
 * @file
 * ujam-serve batch throughput: cold vs. warm result cache.
 *
 * Runs the full 19-loop evaluation suite through UjamServer::runBatch
 * three ways and writes BENCH_SERVE.json:
 *
 *   - cold:      a fresh server and an empty cache directory -- every
 *                request runs the whole pipeline;
 *   - warm:      the same server again -- every request is answered
 *                from the in-memory tier;
 *   - disk_warm: a restarted server on the same cache directory --
 *                every request is answered from the persistent tier.
 *
 * The warm and disk-warm responses are asserted byte-identical to the
 * cold ones (the service's core contract), and the report includes
 * the resulting speedups. Exit status 1 if any response differs or
 * the warm path fails to reach a 5x speedup.
 *
 * A second section sweeps the supervised socket service over worker
 * counts 1/2/4 against the disk cache the batch runs left behind:
 * for each count a supervisor is forked, four concurrent clients
 * each replay the whole suite over the socket, and the report
 * records throughput and mean/max per-request latency. This is the
 * number the `--workers N` flag is buying (or not buying) on a
 * cache-served workload.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "service/supervisor.hh"
#include "support/json.hh"
#include "workloads/suite.hh"

namespace
{

using namespace ujam;

std::string
suiteBatchInput()
{
    std::string input;
    for (const SuiteLoop &loop : testSuite()) {
        JsonWriter json;
        json.beginObject();
        json.field("op", "optimize");
        json.field("id", loop.name);
        json.field("source", loop.source);
        json.key("options").beginObject();
        json.field("lint", "warn");
        json.endObject();
        json.endObject();
        input += json.str() + "\n";
    }
    return input;
}

/** @return (seconds, output) for one batch run. */
std::pair<double, std::string>
timedBatch(UjamServer &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    auto start = std::chrono::steady_clock::now();
    server.runBatch(in, out);
    auto stop = std::chrono::steady_clock::now();
    return {std::chrono::duration<double>(stop - start).count(),
            out.str()};
}

/** One worker-count sweep point over the socket service. */
struct SweepPoint
{
    std::size_t workers = 0;
    std::size_t clients = 0;
    std::size_t requests = 0; //!< answered ok across all clients
    std::size_t failures = 0; //!< empty or non-ok responses
    double seconds = 0.0;
    double meanLatencyMs = 0.0;
    double maxLatencyMs = 0.0;
};

/**
 * Fork a supervised service with @p workers workers on the warm
 * @p cache_dir, replay the suite from @p clients concurrent socket
 * clients, and drain the service with a `shutdown` frame.
 */
SweepPoint
sweepWorkers(std::size_t workers, std::size_t clients,
             const std::string &cache_dir)
{
    std::string socket_path =
        std::filesystem::temp_directory_path().string() +
        "/ujam-bench-sweep-" + std::to_string(getpid()) + "-" +
        std::to_string(workers) + ".sock";

    SupervisorConfig config;
    config.server.socketPath = socket_path;
    config.server.cacheDir = cache_dir;
    config.workers = workers;
    pid_t pid = ::fork();
    if (pid == 0) {
        Supervisor supervisor(std::move(config));
        ::_exit(supervisor.run());
    }

    std::vector<std::string> lines;
    {
        std::istringstream in(suiteBatchInput());
        for (std::string line; std::getline(in, line);)
            lines.push_back(line);
    }

    SweepPoint point;
    point.workers = workers;
    point.clients = clients;
    std::vector<std::thread> threads;
    std::vector<SweepPoint> partial(clients);
    auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            if (!client.connect(socket_path, 5000))
                return;
            for (const std::string &line : lines) {
                auto sent = std::chrono::steady_clock::now();
                std::string response =
                    client.requestWithRetry(line, 3, 10000);
                double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - sent)
                        .count();
                if (response.find("\"status\": \"ok\"") ==
                    std::string::npos) {
                    ++partial[c].failures;
                    continue;
                }
                ++partial[c].requests;
                partial[c].meanLatencyMs += ms;
                partial[c].maxLatencyMs =
                    std::max(partial[c].maxLatencyMs, ms);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    point.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    double latency_sum = 0.0;
    for (const SweepPoint &part : partial) {
        point.requests += part.requests;
        point.failures += part.failures;
        latency_sum += part.meanLatencyMs; // still a sum here
        point.maxLatencyMs =
            std::max(point.maxLatencyMs, part.maxLatencyMs);
    }
    if (point.requests > 0)
        point.meanLatencyMs =
            latency_sum / static_cast<double>(point.requests);

    ServeClient closer;
    if (closer.connect(socket_path, 2000))
        closer.request("{\"op\": \"shutdown\"}", 5000);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return point;
}

} // namespace

int
main()
{
    std::string cache_dir =
        std::filesystem::temp_directory_path().string() +
        "/ujam-bench-serve-" + std::to_string(getpid());
    std::string input = suiteBatchInput();
    std::size_t requests = testSuite().size();

    ServerConfig config;
    config.cacheDir = cache_dir;
    UjamServer server(std::move(config));

    auto [cold_s, cold_out] = timedBatch(server, input);
    auto [warm_s, warm_out] = timedBatch(server, input);

    ServerConfig restart_config;
    restart_config.cacheDir = cache_dir;
    UjamServer restarted(std::move(restart_config));
    auto [disk_s, disk_out] = timedBatch(restarted, input);

    // Cached per-op latency: one priming pass fills the cache, then
    // the measured passes time each request individually and keep the
    // median (p50). For lint this is the number a lint-on-save editor
    // integration would feel; for tune (model-measured, so
    // deterministic and compiler-free) it is what a re-tune of an
    // unchanged nest costs once memoized.
    auto cached_p50_us = [&](const std::string &op) {
        std::vector<std::string> lines;
        for (const SuiteLoop &loop : testSuite()) {
            JsonWriter json;
            json.beginObject();
            json.field("op", op);
            json.field("id", op + "-" + loop.name);
            json.field("source", loop.source);
            json.key("options").beginObject();
            json.field("lint", "warn");
            json.endObject();
            json.endObject();
            lines.push_back(json.str());
        }
        for (const std::string &line : lines)
            server.processLine(line);
        std::vector<double> micros;
        for (int round = 0; round < 5; ++round) {
            for (const std::string &line : lines) {
                auto sent = std::chrono::steady_clock::now();
                server.processLine(line);
                micros.push_back(
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - sent)
                        .count());
            }
        }
        std::sort(micros.begin(), micros.end());
        return micros.empty() ? 0.0 : micros[micros.size() / 2];
    };
    double lint_cached_p50_us = cached_p50_us("lint");
    double tune_cached_p50_us = cached_p50_us("tune");

    bool identical = warm_out == cold_out && disk_out == cold_out;
    double warm_speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
    double disk_speedup = disk_s > 0 ? cold_s / disk_s : 0.0;

    // The socket sweep reuses the disk cache the batch runs left in
    // cache_dir, so it measures service overhead (accept, framing,
    // cache probe) rather than pipeline compute.
    std::vector<SweepPoint> sweep;
    for (std::size_t workers : {1u, 2u, 4u})
        sweep.push_back(sweepWorkers(workers, 4, cache_dir));

    JsonWriter json(2);
    json.beginObject();
    json.field("requests", std::uint64_t(requests));
    json.key("cold_seconds").valueFixed(cold_s, 6);
    json.key("warm_seconds").valueFixed(warm_s, 6);
    json.key("disk_warm_seconds").valueFixed(disk_s, 6);
    json.key("warm_speedup").valueFixed(warm_speedup, 2);
    json.key("disk_warm_speedup").valueFixed(disk_speedup, 2);
    json.field("responses_identical", identical);
    json.field("memory_hits",
               server.metrics().cacheMemoryHits.get());
    json.field("disk_hits",
               restarted.metrics().cacheDiskHits.get());
    json.key("lint_cached_p50_us").valueFixed(lint_cached_p50_us, 1);
    json.key("tune_cached_p50_us").valueFixed(tune_cached_p50_us, 1);
    json.key("worker_sweep").beginArray();
    for (const SweepPoint &point : sweep) {
        json.beginObject();
        json.field("workers", std::uint64_t(point.workers));
        json.field("clients", std::uint64_t(point.clients));
        json.field("requests_ok", std::uint64_t(point.requests));
        json.field("requests_failed",
                   std::uint64_t(point.failures));
        json.key("seconds").valueFixed(point.seconds, 6);
        json.key("requests_per_second")
            .valueFixed(point.seconds > 0
                            ? static_cast<double>(point.requests) /
                                  point.seconds
                            : 0.0,
                        1);
        json.key("mean_latency_ms")
            .valueFixed(point.meanLatencyMs, 3);
        json.key("max_latency_ms").valueFixed(point.maxLatencyMs, 3);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::printf("%s\n", json.str().c_str());
    writeBenchJson("BENCH_SERVE.json", json.str());

    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: warm responses differ from cold\n");
        return 1;
    }
    if (warm_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: warm speedup %.2f below 5x target\n",
                     warm_speedup);
        return 1;
    }
    for (const SweepPoint &point : sweep) {
        if (point.failures > 0 || point.requests == 0) {
            std::fprintf(stderr,
                         "FAIL: worker sweep (workers=%zu) had %zu "
                         "failed requests\n",
                         point.workers, point.failures);
            return 1;
        }
    }
    return 0;
}
