/**
 * @file
 * Experiment E4 -- paper Figure 9: performance of the test loops on
 * an HP PA-RISC-like machine (see Figure 8 for the variant
 * definitions).
 */

#include <benchmark/benchmark.h>

#include "fig_common.hh"

namespace
{

void
BM_Figure9(benchmark::State &state)
{
    using namespace ujam;
    for (auto _ : state) {
        auto rows = runFigure(MachineModel::hpPa7100());
        benchmark::DoNotOptimize(rows);
    }
}
BENCHMARK(BM_Figure9)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;
    MachineModel machine = MachineModel::hpPa7100();
    auto rows = runFigure(machine);
    printFigure(
        "=== Figure 9: Performance of Test Loops on HP PA-RISC ===",
        machine, rows);
    writeBenchJson("BENCH_FIG9_PARISC.json",
                   figureJson(machine, rows));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
