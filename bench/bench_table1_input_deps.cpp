/**
 * @file
 * Experiment E1 -- paper Table 1 and section 5.1.
 *
 * Runs the 1187-routine corpus through the dependence analyzer and
 * reports: the share of dependences that are input dependences
 * (paper: 84% of 305,885), the per-routine mean and deviation
 * (paper: 55.7% +/- 33.6), the Table 1 histogram, and the
 * dependence-graph storage saved by dropping input dependences. The
 * google-benchmark section times graph construction with and without
 * input dependences (the analysis-time component of the saving).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "deps/analyzer.hh"
#include "support/thread_pool.hh"
#include "workloads/corpus.hh"

namespace
{

const std::vector<ujam::CorpusRoutine> &
corpus()
{
    static const std::vector<ujam::CorpusRoutine> instance =
        ujam::generateCorpus();
    return instance;
}

void
printTable1()
{
    using namespace ujam;
    // The census fans out one routine per core; the statistics are
    // bit-identical to a serial run (see DESIGN.md, threading model).
    CorpusStats stats = analyzeCorpus(corpus(), 0);

    std::printf("\n=== Table 1: Percentage of Input Dependences ===\n\n");
    std::printf("(census analyzed with %zu threads)\n",
                ThreadPool::defaultThreads());
    std::printf("%-12s %s\n", "Range", "Number of Routines");
    for (std::size_t b = 0; b < stats.histogram.size(); ++b) {
        std::printf("%-12s %zu\n", corpusBucketLabels()[b].c_str(),
                    stats.histogram[b]);
    }

    std::printf("\n--- section 5.1 aggregates ---\n");
    std::printf("routines analyzed:            %zu\n",
                stats.routinesTotal);
    std::printf("routines with dependences:    %zu\n",
                stats.routinesWithDeps);
    std::printf("total dependences:            %zu\n", stats.totalDeps);
    std::printf("total input dependences:      %zu  (%.1f%%; paper: "
                "84%%)\n",
                stats.totalInputDeps, stats.totalInputPercent());
    std::printf("mean input share per routine: %.1f%%  (paper: "
                "55.7%%)\n",
                stats.meanInputPercent);
    std::printf("std deviation of that share:  %.1f   (paper: 33.6)\n",
                stats.stddevInputPercent);
    std::printf("mean input deps per routine:  %.0f   (paper: 398)\n",
                stats.meanInputCount);
    std::printf("graph storage, full:          %zu bytes\n",
                stats.graphBytes);
    std::printf("graph storage, no input deps: %zu bytes  (%.1f%% "
                "saved)\n",
                stats.graphBytesNoInput,
                100.0 * (1.0 - static_cast<double>(
                                   stats.graphBytesNoInput) /
                                   static_cast<double>(
                                       stats.graphBytes)));
}

void
BM_AnalyzeWithInputDeps(benchmark::State &state)
{
    using namespace ujam;
    const auto &routines = corpus();
    for (auto _ : state) {
        std::size_t edges = 0;
        for (std::size_t r = 0; r < 64; ++r) {
            for (const LoopNest &nest : routines[r].nests)
                edges += analyzeDependences(nest, DepOptions{true}).size();
        }
        benchmark::DoNotOptimize(edges);
    }
}
BENCHMARK(BM_AnalyzeWithInputDeps);

void
BM_AnalyzeWithoutInputDeps(benchmark::State &state)
{
    using namespace ujam;
    const auto &routines = corpus();
    for (auto _ : state) {
        std::size_t edges = 0;
        for (std::size_t r = 0; r < 64; ++r) {
            for (const LoopNest &nest : routines[r].nests)
                edges +=
                    analyzeDependences(nest, DepOptions{false}).size();
        }
        benchmark::DoNotOptimize(edges);
    }
}
BENCHMARK(BM_AnalyzeWithoutInputDeps);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
