/**
 * @file
 * Model-pick vs. measured-best over the evaluation suite, written to
 * BENCH_TUNE.json.
 *
 * Every suite loop is autotuned (neighborhood radius 1 around the
 * Eq.-1 pick) and the report records, per nest, the model's vector,
 * the measured-best vector, their runtime ratio and whether the model
 * pick was optimal within the noise margin -- the repo's standing
 * answer to "how far is the paper's balance model from reality on
 * this host?".
 *
 * With a host C compiler present the candidates are compiled and
 * timed (MeasureMode::Wall, median of 3 with one warmup). Without
 * one the bench falls back to the deterministic simulator backend
 * (MeasureMode::Model) so the artifact always exists and its schema
 * can be smoke-tested; the "measure" field records which backend
 * produced the numbers.
 */

#include <cstdio>
#include <string>

#include "bench_json.hh"
#include "codegen/compile.hh"
#include "support/json.hh"
#include "tune/autotuner.hh"
#include "workloads/suite.hh"

using namespace ujam;

int
main()
{
    MachineModel machine = MachineModel::decAlpha21064();

    TuneConfig config;
    config.measure = hostCCompiler().empty() ? MeasureMode::Model
                                             : MeasureMode::Wall;
    config.budgetMs = 4000; // per nest; keeps the full suite bounded
    config.neighborhood = 1;
    config.repeats = 3;
    config.warmup = 1;

    if (config.measure == MeasureMode::Model)
        std::printf("bench_tune: no host C compiler on PATH; "
                    "falling back to the simulator backend\n");

    std::size_t nests_tuned = 0;
    std::size_t model_beaten = 0;  //!< a faster vector was measured
    std::size_t model_optimal = 0; //!< pick optimal within margin
    double ratio_sum = 0;

    JsonWriter json(2);
    json.beginObject();
    json.field("machine", machine.name);
    json.field("measure", measureModeName(config.measure));
    if (config.measure == MeasureMode::Wall) {
        json.field("compiler", hostCompilerVersion());
        json.field("cflags", config.cflags.empty()
                                 ? kMeasureCFlags
                                 : config.cflags.c_str());
    }
    json.field("budget_ms", std::int64_t(config.budgetMs));
    json.field("neighborhood", std::int64_t(config.neighborhood));
    json.field("repeats", std::int64_t(config.repeats));
    json.field("seed", std::uint64_t(config.seed));
    json.key("loops").beginArray();

    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        TuneResult tuned = tuneProgram(program, machine, config);
        for (const NestTune &nest : tuned.nests) {
            ++nests_tuned;
            ratio_sum += nest.modelOverBest;
            if (nest.modelOptimal)
                ++model_optimal;
            else
                ++model_beaten;

            json.beginObject();
            json.field("loop", loop.name);
            json.field("nest", nest.name);
            json.key("model_pick").beginArray();
            for (std::int64_t amount : nest.modelPick)
                json.value(std::int64_t(amount));
            json.endArray();
            json.key("measured_best").beginArray();
            for (std::int64_t amount : nest.measuredBest)
                json.value(std::int64_t(amount));
            json.endArray();
            json.key("model_over_best")
                .valueFixed(nest.modelOverBest, 4);
            json.field("model_optimal", nest.modelOptimal);
            json.field("candidates_enumerated",
                       std::uint64_t(nest.enumerated));
            json.field("candidates_measured",
                       std::uint64_t(nest.measuredCount));
            json.field("budget_exhausted", nest.budgetExhausted);
            json.endObject();
        }
    }

    json.endArray();
    json.key("summary").beginObject();
    json.field("nests_tuned", std::uint64_t(nests_tuned));
    json.field("model_optimal", std::uint64_t(model_optimal));
    json.field("model_beaten", std::uint64_t(model_beaten));
    json.key("mean_model_over_best")
        .valueFixed(nests_tuned > 0
                        ? ratio_sum / static_cast<double>(nests_tuned)
                        : 0.0,
                    4);
    json.endObject();
    json.endObject();

    std::printf("%s\n", json.str().c_str());
    writeBenchJson("BENCH_TUNE.json", json.str());

    std::printf("bench_tune: %zu nests; model optimal on %zu, "
                "beaten on %zu\n",
                nests_tuned, model_optimal, model_beaten);
    return nests_tuned > 0 ? 0 : 1;
}
