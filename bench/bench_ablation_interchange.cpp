/**
 * @file
 * Experiment E9 -- section 5.3: Wolf, Maydan & Chen [2] combine
 * unroll-and-jam with loop permutation; the paper considers
 * unroll-and-jam alone. This ablation reproduces the substance of
 * that comparison on our suite: unroll-and-jam only, interchange
 * only, and interchange followed by unroll-and-jam, all simulated on
 * the Alpha-like machine.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/optimizer.hh"
#include "sim/simulator.hh"
#include "transform/interchange.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace
{

double
simulateVariant(const ujam::Program &program,
                const ujam::MachineModel &machine, bool interchange,
                bool unroll)
{
    using namespace ujam;
    Program staged = program;
    if (interchange) {
        LocalityParams params;
        params.cacheLineElems = machine.lineElems();
        staged.nests()[0] =
            chooseLoopOrder(staged.nests()[0], params).nest;
    }
    if (unroll) {
        OptimizerConfig config;
        config.maxUnroll = 4;
        UnrollDecision decision =
            chooseUnrollAmounts(staged.nests()[0], machine, config);
        staged = unrollAndJam(staged, 0, decision.unroll);
    }
    for (LoopNest &nest : staged.nests())
        nest = scalarReplace(nest).nest;
    return simulateProgram(staged, machine).cycles;
}

void
printInterchangeAblation()
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    std::printf("\n=== E9: unroll-and-jam vs interchange vs the "
                "combination (Alpha-like) ===\n");
    std::printf("normalized execution time (1.00 = original)\n\n");
    std::printf("%-10s %10s %12s %12s\n", "loop", "ujam", "interchange",
                "combined");
    double geo[3] = {0, 0, 0};
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        double original = simulateProgram(program, machine).cycles;
        double ujam_only =
            simulateVariant(program, machine, false, true) / original;
        double interchange_only =
            simulateVariant(program, machine, true, false) / original;
        double combined =
            simulateVariant(program, machine, true, true) / original;
        std::printf("%-10s %10.2f %12.2f %12.2f\n", loop.name.c_str(),
                    ujam_only, interchange_only, combined);
        geo[0] += std::log(ujam_only);
        geo[1] += std::log(interchange_only);
        geo[2] += std::log(combined);
    }
    double n = static_cast<double>(testSuite().size());
    std::printf("%-10s %10.2f %12.2f %12.2f   (geometric mean)\n",
                "ALL", std::exp(geo[0] / n), std::exp(geo[1] / n),
                std::exp(geo[2] / n));
    std::printf("\n(the combination mirrors Wolf/Maydan/Chen; the "
                "paper's method supplies the\n unroll amounts inside "
                "it, replacing their brute-force search)\n");
}

void
BM_CombinedTransformation(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(
        testSuite()[static_cast<std::size_t>(state.range(0))]);
    MachineModel machine = MachineModel::decAlpha21064();
    for (auto _ : state) {
        double cycles = simulateVariant(program, machine, true, true);
        benchmark::DoNotOptimize(cycles);
    }
    state.SetLabel(testSuite()[static_cast<std::size_t>(state.range(0))]
                       .name);
}
BENCHMARK(BM_CombinedTransformation)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printInterchangeAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
