/**
 * @file
 * Experiment E2 -- paper Table 2.
 *
 * Prints the evaluation suite and, for each loop, the static analysis
 * the optimizer sees: balance before/after, the chosen unroll vector
 * per machine, and register use. The google-benchmark section times
 * the full table construction per loop.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/optimizer.hh"
#include "workloads/suite.hh"

namespace
{

void
printTable2()
{
    using namespace ujam;
    std::printf("\n=== Table 2: Description of Test Loops ===\n\n");
    std::printf("%-4s %-10s %s\n", "Num", "Loop", "Description");
    for (const SuiteLoop &loop : testSuite())
        std::printf("%-4d %-10s %s\n", loop.number, loop.name.c_str(),
                    loop.description.c_str());

    std::printf("\n--- per-loop unroll decisions ---\n\n");
    std::printf("%-10s | %-22s | %-22s\n", "", "DEC Alpha 21064",
                "HP PA-RISC 7100");
    std::printf("%-10s | %-10s %5s %5s | %-10s %5s %5s\n", "loop", "u",
                "bL", "regs", "u", "bL", "regs");
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        OptimizerConfig config;
        config.maxUnroll = 4;
        UnrollDecision alpha = chooseUnrollAmounts(
            program.nests()[0], MachineModel::decAlpha21064(), config);
        UnrollDecision parisc = chooseUnrollAmounts(
            program.nests()[0], MachineModel::hpPa7100(), config);
        std::printf("%-10s | %-10s %5.2f %5lld | %-10s %5.2f %5lld\n",
                    loop.name.c_str(), alpha.unroll.toString().c_str(),
                    alpha.predictedBalance,
                    static_cast<long long>(alpha.registers),
                    parisc.unroll.toString().c_str(),
                    parisc.predictedBalance,
                    static_cast<long long>(parisc.registers));
    }
}

void
BM_ChooseUnrollAmounts(benchmark::State &state)
{
    using namespace ujam;
    const SuiteLoop &loop =
        testSuite()[static_cast<std::size_t>(state.range(0))];
    Program program = loadSuiteProgram(loop);
    MachineModel machine = MachineModel::decAlpha21064();
    OptimizerConfig config;
    config.maxUnroll = 4;
    for (auto _ : state) {
        UnrollDecision decision =
            chooseUnrollAmounts(program.nests()[0], machine, config);
        benchmark::DoNotOptimize(decision);
    }
    state.SetLabel(loop.name);
}
BENCHMARK(BM_ChooseUnrollAmounts)->DenseRange(0, 18);

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
