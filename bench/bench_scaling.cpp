/**
 * @file
 * Scaling benchmark for the parallel pipeline and the
 * allocation-free table kernels.
 *
 * Three sections, all emitted as one JSON object on stdout so future
 * PRs can track the trajectory mechanically:
 *
 *   - corpus_census:   per-routine dependence analysis of the
 *                      1187-routine Table-1 corpus, serial vs. 2/4/N
 *                      threads (identical statistics at every width).
 *   - suite_pipeline:  optimizeProgram over the 19 Table-2 loops,
 *                      serial vs. parallel per-nest fan-out.
 *   - table_build:     buildNestTables wall time vs. unroll-space
 *                      size on the deepest suite nest (the kernels
 *                      this PR rewrote from per-point decode scans to
 *                      stride walks).
 *
 * Every section reports the median of repeated runs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/tables.hh"
#include "driver/driver.hh"
#include "support/thread_pool.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace
{

using namespace ujam;

double
medianSeconds(int reps, const std::function<void()> &work)
{
    std::vector<double> times;
    times.reserve(reps);
    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        work();
        auto stop = std::chrono::steady_clock::now();
        times.push_back(
            std::chrono::duration<double>(stop - start).count());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

Program
wholeSuiteProgram()
{
    Program all;
    for (const SuiteLoop &loop : testSuite()) {
        Program one = loadSuiteProgram(loop);
        for (const ArrayDecl &decl : one.arrays())
            all.declareArray(decl);
        for (const LoopNest &nest : one.nests())
            all.addNest(nest);
    }
    return all;
}

} // namespace

int
main()
{
    const std::size_t hw = ThreadPool::defaultThreads();
    std::vector<std::size_t> widths = {1, 2, 4, hw};
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()),
                 widths.end());
    const int reps = 5;

    std::printf("{\n");
    std::printf("  \"hardware_threads\": %zu,\n", hw);

    // --- corpus census ---------------------------------------------------
    {
        CorpusConfig config; // full 1187 routines
        config.threads = 1;
        auto corpus = generateCorpus(config);
        std::printf("  \"corpus_census\": {\n");
        std::printf("    \"routines\": %zu,\n", corpus.size());
        double serial = 0.0;
        for (std::size_t w = 0; w < widths.size(); ++w) {
            std::size_t threads = widths[w];
            double t = medianSeconds(reps, [&] {
                CorpusStats stats = analyzeCorpus(corpus, threads);
                if (stats.totalDeps == 0)
                    std::fprintf(stderr, "unexpected empty census\n");
            });
            if (threads == 1)
                serial = t;
            std::printf("    \"threads_%zu_seconds\": %.6f,\n", threads,
                        t);
        }
        std::printf("    \"serial_seconds\": %.6f,\n", serial);
        double t4 = medianSeconds(
            reps, [&] { (void)analyzeCorpus(corpus, 4); });
        std::printf("    \"speedup_at_4_threads\": %.2f\n",
                    serial / t4);
        std::printf("  },\n");
    }

    // --- suite pipeline --------------------------------------------------
    {
        Program program = wholeSuiteProgram();
        MachineModel machine = MachineModel::decAlpha21064();
        std::printf("  \"suite_pipeline\": {\n");
        std::printf("    \"nests\": %zu,\n", program.nests().size());
        double serial = 0.0, best = 0.0;
        for (std::size_t w = 0; w < widths.size(); ++w) {
            std::size_t threads = widths[w];
            PipelineConfig config;
            config.threads = threads;
            double t = medianSeconds(reps, [&] {
                PipelineResult result =
                    optimizeProgram(program, machine, config);
                if (result.outcomes.empty())
                    std::fprintf(stderr, "unexpected empty result\n");
            });
            if (threads == 1)
                serial = t;
            best = (best == 0.0) ? t : std::min(best, t);
            std::printf("    \"threads_%zu_seconds\": %.6f,\n", threads,
                        t);
        }
        std::printf("    \"serial_seconds\": %.6f,\n", serial);
        std::printf("    \"best_speedup\": %.2f\n", serial / best);
        std::printf("  },\n");
    }

    // --- table construction vs. unroll-space size ------------------------
    {
        // The deepest suite nest exercises the multi-dim odometer
        // paths; sweep the per-dim limit so the space grows
        // quadratically, the regime where the pre-rewrite per-point
        // rescans were quadratic-plus.
        const LoopNest *deepest = nullptr;
        Program program = wholeSuiteProgram();
        for (const LoopNest &nest : program.nests()) {
            if (!deepest || nest.depth() > deepest->depth())
                deepest = &nest;
        }
        Subspace localized =
            Subspace::coordinate(deepest->depth(), {deepest->depth() - 1});
        std::vector<std::size_t> dims;
        for (std::size_t k = 0; k + 1 < deepest->depth() && k < 2; ++k)
            dims.push_back(k);

        std::printf("  \"table_build\": {\n");
        std::printf("    \"nest_depth\": %zu,\n", deepest->depth());
        std::printf("    \"sweep\": [\n");
        const std::vector<std::int64_t> limits = {4, 8, 16, 32, 64};
        for (std::size_t s = 0; s < limits.size(); ++s) {
            UnrollSpace space(deepest->depth(), dims, limits[s]);
            double t = medianSeconds(3, [&] {
                NestTables tables =
                    buildNestTables(*deepest, space, localized);
                if (tables.perUgs.empty())
                    std::fprintf(stderr, "unexpected empty tables\n");
            });
            std::printf("      {\"limit\": %lld, \"points\": %zu, "
                        "\"seconds\": %.6f}%s\n",
                        static_cast<long long>(limits[s]), space.size(),
                        t, s + 1 < limits.size() ? "," : "");
        }
        std::printf("    ]\n");
        std::printf("  }\n");
    }

    std::printf("}\n");
    return 0;
}
