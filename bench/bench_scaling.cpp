/**
 * @file
 * Scaling benchmark for the parallel pipeline and the
 * allocation-free table kernels.
 *
 * Three sections, emitted as one JSON document -- on stdout and as
 * BENCH_SCALING.json in the repository root -- so future PRs can
 * track the trajectory mechanically:
 *
 *   - corpus_census:   per-routine dependence analysis of the
 *                      1187-routine Table-1 corpus, serial vs. 2/4/N
 *                      threads (identical statistics at every width).
 *   - suite_pipeline:  optimizeProgram over the 19 Table-2 loops,
 *                      serial vs. parallel per-nest fan-out.
 *   - table_build:     buildNestTables wall time vs. unroll-space
 *                      size on the deepest suite nest (the kernels
 *                      rewritten from per-point decode scans to
 *                      stride walks).
 *
 * Every section reports the median of repeated runs.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_json.hh"
#include "core/tables.hh"
#include "driver/driver.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"
#include "support/timing.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

namespace
{

using namespace ujam;

double
medianSeconds(int reps, const std::function<void()> &work)
{
    return measureSeconds(work, reps).medianSeconds;
}

Program
wholeSuiteProgram()
{
    Program all;
    for (const SuiteLoop &loop : testSuite()) {
        Program one = loadSuiteProgram(loop);
        for (const ArrayDecl &decl : one.arrays())
            all.declareArray(decl);
        for (const LoopNest &nest : one.nests())
            all.addNest(nest);
    }
    return all;
}

} // namespace

int
main()
{
    const std::size_t hw = ThreadPool::defaultThreads();
    std::vector<std::size_t> widths = {1, 2, 4, hw};
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()),
                 widths.end());
    const int reps = 5;

    JsonWriter json(2);
    json.beginObject();
    json.field("hardware_threads", std::uint64_t(hw));

    // --- corpus census ---------------------------------------------------
    {
        CorpusConfig config; // full 1187 routines
        config.threads = 1;
        auto corpus = generateCorpus(config);
        json.key("corpus_census").beginObject();
        json.field("routines", std::uint64_t(corpus.size()));
        double serial = 0.0;
        for (std::size_t threads : widths) {
            double t = medianSeconds(reps, [&] {
                CorpusStats stats = analyzeCorpus(corpus, threads);
                if (stats.totalDeps == 0)
                    std::fprintf(stderr, "unexpected empty census\n");
            });
            if (threads == 1)
                serial = t;
            json.key("threads_" + std::to_string(threads) +
                     "_seconds");
            json.valueFixed(t, 6);
        }
        json.key("serial_seconds").valueFixed(serial, 6);
        double t4 = medianSeconds(
            reps, [&] { (void)analyzeCorpus(corpus, 4); });
        json.key("speedup_at_4_threads").valueFixed(serial / t4, 2);
        json.endObject();
    }

    // --- suite pipeline --------------------------------------------------
    {
        Program program = wholeSuiteProgram();
        MachineModel machine = MachineModel::decAlpha21064();
        json.key("suite_pipeline").beginObject();
        json.field("nests", std::uint64_t(program.nests().size()));
        double serial = 0.0, best = 0.0;
        for (std::size_t threads : widths) {
            PipelineConfig config;
            config.threads = threads;
            double t = medianSeconds(reps, [&] {
                PipelineResult result =
                    optimizeProgram(program, machine, config);
                if (result.outcomes.empty())
                    std::fprintf(stderr, "unexpected empty result\n");
            });
            if (threads == 1)
                serial = t;
            best = (best == 0.0) ? t : std::min(best, t);
            json.key("threads_" + std::to_string(threads) +
                     "_seconds");
            json.valueFixed(t, 6);
        }
        json.key("serial_seconds").valueFixed(serial, 6);
        json.key("best_speedup").valueFixed(serial / best, 2);
        json.endObject();
    }

    // --- table construction vs. unroll-space size ------------------------
    {
        // The deepest suite nest exercises the multi-dim odometer
        // paths; sweep the per-dim limit so the space grows
        // quadratically, the regime where the pre-rewrite per-point
        // rescans were quadratic-plus.
        const LoopNest *deepest = nullptr;
        Program program = wholeSuiteProgram();
        for (const LoopNest &nest : program.nests()) {
            if (!deepest || nest.depth() > deepest->depth())
                deepest = &nest;
        }
        Subspace localized =
            Subspace::coordinate(deepest->depth(),
                                 {deepest->depth() - 1});
        std::vector<std::size_t> dims;
        for (std::size_t k = 0; k + 1 < deepest->depth() && k < 2; ++k)
            dims.push_back(k);

        json.key("table_build").beginObject();
        json.field("nest_depth", std::uint64_t(deepest->depth()));
        json.key("sweep").beginArray();
        const std::vector<std::int64_t> limits = {4, 8, 16, 32, 64};
        for (std::int64_t limit : limits) {
            UnrollSpace space(deepest->depth(), dims, limit);
            double t = medianSeconds(3, [&] {
                NestTables tables =
                    buildNestTables(*deepest, space, localized);
                if (tables.perUgs.empty())
                    std::fprintf(stderr, "unexpected empty tables\n");
            });
            json.beginObject();
            json.field("limit", limit);
            json.field("points", std::uint64_t(space.size()));
            json.key("seconds").valueFixed(t, 6);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.endObject();
    std::printf("%s\n", json.str().c_str());
    writeBenchJson("BENCH_SCALING.json", json.str());
    return 0;
}
