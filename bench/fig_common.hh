/**
 * @file
 * Shared harness for the Figure 8/9 experiments.
 *
 * For every Table-2 loop, measure normalized execution time of three
 * variants on a machine model, exactly as the paper's figures do:
 *   - Original: the loop as written;
 *   - No Cache: unroll amounts chosen assuming every access hits
 *     (the model of Carr & Kennedy [3]);
 *   - Cache:    unroll amounts chosen with the UGS cache model
 *     (this paper).
 * Both transformed variants are unroll-and-jammed and scalar
 * replaced, then run through the cache + pipeline simulator.
 */

#ifndef UJAM_BENCH_FIG_COMMON_HH
#define UJAM_BENCH_FIG_COMMON_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "core/optimizer.hh"
#include "sim/simulator.hh"
#include "support/json.hh"
#include "support/string_utils.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace ujam
{

struct FigureRow
{
    std::string loop;
    IntVector unrollNoCache;
    IntVector unrollCache;
    double normalizedNoCache = 1.0;
    double normalizedCache = 1.0;
};

inline std::pair<IntVector, double>
runVariant(const Program &program, const MachineModel &machine,
           bool use_cache_model, double original_cycles)
{
    OptimizerConfig config;
    config.maxUnroll = 4;
    config.useCacheModel = use_cache_model;
    UnrollDecision decision =
        chooseUnrollAmounts(program.nests()[0], machine, config);

    Program transformed = unrollAndJam(program, 0, decision.unroll);
    for (LoopNest &nest : transformed.nests())
        nest = scalarReplace(nest).nest;
    SimResult result = simulateProgram(transformed, machine);
    return {decision.unroll, result.cycles / original_cycles};
}

inline std::vector<FigureRow>
runFigure(const MachineModel &machine)
{
    std::vector<FigureRow> rows;
    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        SimResult original = simulateProgram(program, machine);

        FigureRow row;
        row.loop = loop.name;
        std::tie(row.unrollNoCache, row.normalizedNoCache) =
            runVariant(program, machine, false, original.cycles);
        std::tie(row.unrollCache, row.normalizedCache) =
            runVariant(program, machine, true, original.cycles);
        rows.push_back(std::move(row));
    }
    return rows;
}

inline void
printFigure(const char *title, const MachineModel &machine,
            const std::vector<FigureRow> &rows)
{
    std::printf("\n%s\n", title);
    std::printf("machine: %s (bM = %.2f, %lld fp registers, %lldKB "
                "%lld-way cache)\n",
                machine.name.c_str(), machine.machineBalance(),
                static_cast<long long>(machine.fpRegisters),
                static_cast<long long>(machine.cacheBytes / 1024),
                static_cast<long long>(machine.associativity));
    std::printf("normalized execution time (1.00 = original; lower is "
                "better)\n\n");
    std::printf("%-12s %-12s %8s   %-12s %8s\n", "loop", "u(no-cache)",
                "no-cache", "u(cache)", "cache");
    double geo_nc = 0.0;
    double geo_c = 0.0;
    for (const FigureRow &row : rows) {
        std::printf("%-12s %-12s %8.2f   %-12s %8.2f\n",
                    row.loop.c_str(),
                    row.unrollNoCache.toString().c_str(),
                    row.normalizedNoCache,
                    row.unrollCache.toString().c_str(),
                    row.normalizedCache);
        geo_nc += std::log(row.normalizedNoCache);
        geo_c += std::log(row.normalizedCache);
    }
    double n = static_cast<double>(rows.size());
    std::printf("%-12s %-12s %8.2f   %-12s %8.2f   (geometric mean)\n",
                "ALL", "", std::exp(geo_nc / n), "",
                std::exp(geo_c / n));
}

/** The figure as a machine-readable document (BENCH_FIG*.json). */
inline std::string
figureJson(const MachineModel &machine,
           const std::vector<FigureRow> &rows)
{
    JsonWriter json(2);
    json.beginObject();
    json.field("machine", machine.name);
    json.field("machine_balance", machine.machineBalance());
    json.key("rows").beginArray();
    double geo_nc = 0.0;
    double geo_c = 0.0;
    for (const FigureRow &row : rows) {
        json.beginObject();
        json.field("loop", row.loop);
        json.field("unroll_no_cache", row.unrollNoCache.toString());
        json.field("unroll_cache", row.unrollCache.toString());
        json.field("normalized_no_cache", row.normalizedNoCache);
        json.field("normalized_cache", row.normalizedCache);
        json.endObject();
        geo_nc += std::log(row.normalizedNoCache);
        geo_c += std::log(row.normalizedCache);
    }
    json.endArray();
    double n = static_cast<double>(rows.size());
    json.field("geomean_no_cache", std::exp(geo_nc / n));
    json.field("geomean_cache", std::exp(geo_c / n));
    json.endObject();
    return json.str();
}

} // namespace ujam

#endif // UJAM_BENCH_FIG_COMMON_HH
