/**
 * @file
 * The codegen backend end to end: emit, compile and run wall times
 * per evaluation-suite nest, written to BENCH_CODEGEN.json.
 *
 * For every suite loop, both variants (original and the default
 * pipeline's transformed program) are lowered to C, compiled at the
 * differential flags (-O0, FP contraction off) and executed; the
 * report records per-variant emit/compile/run seconds and whether the
 * two binaries and the interpreter oracle agreed bit-exactly. Exit
 * status 1 on any disagreement or toolchain failure; exits 0 with a
 * note (and no artifact) when the container has no host C compiler,
 * mirroring the self-skipping CodegenRoundtrip test.
 */

#include <cstdio>
#include <string>

#include "bench_json.hh"
#include "codegen/c_emitter.hh"
#include "codegen/checksum.hh"
#include "codegen/compile.hh"
#include "driver/driver.hh"
#include "ir/interp.hh"
#include "support/json.hh"
#include "support/timing.hh"
#include "workloads/suite.hh"

using namespace ujam;

int
main()
{
    std::string compiler = hostCCompiler();
    if (compiler.empty()) {
        std::printf("bench_codegen: no host C compiler on PATH; "
                    "skipping\n");
        return 0;
    }

    MachineModel machine = MachineModel::decAlpha21064();
    PipelineConfig config;
    constexpr std::uint64_t kSeed = 9717;

    bool all_agree = true;
    double total_emit = 0, total_compile = 0, total_run = 0;

    JsonWriter json(2);
    json.beginObject();
    json.field("compiler", compiler);
    json.field("cflags", kDefaultCFlags);
    json.field("seed", kSeed);
    json.key("loops").beginArray();

    for (const SuiteLoop &loop : testSuite()) {
        Program original = loadSuiteProgram(loop);
        PipelineResult result =
            optimizeProgram(original, machine, config);

        double emit_start = monotonicSeconds();
        CodegenOptions options;
        options.seed = kSeed;
        CodegenUnit original_unit = emitCProgram(original, options);
        options.variantLabel = "transformed";
        CodegenUnit transformed_unit =
            emitCProgram(result.program, options);
        double emit_s = monotonicSeconds() - emit_start;

        Interpreter interp(original);
        interp.seedArrays(kSeed);
        interp.run();
        std::uint64_t oracle = interpreterChecksum(interp, original);

        VariantRun original_run = compileAndRun(
            original_unit.source, loop.name + "-orig", "", kSeed);
        VariantRun transformed_run = compileAndRun(
            transformed_unit.source, loop.name + "-ujam", "", kSeed);

        bool agree = original_run.ok && transformed_run.ok &&
                     original_run.checksum == oracle &&
                     transformed_run.checksum == oracle;
        if (!agree) {
            all_agree = false;
            std::fprintf(stderr, "FAIL: %s: %s%s\n",
                         loop.name.c_str(),
                         original_run.ok ? ""
                                         : original_run.error.c_str(),
                         transformed_run.ok
                             ? ""
                             : transformed_run.error.c_str());
        }

        total_emit += emit_s;
        total_compile += original_run.compileSeconds +
                         transformed_run.compileSeconds;
        total_run +=
            original_run.runSeconds + transformed_run.runSeconds;

        json.beginObject();
        json.field("name", loop.name);
        json.key("emit_seconds").valueFixed(emit_s, 6);
        json.key("original").beginObject();
        json.key("compile_seconds")
            .valueFixed(original_run.compileSeconds, 6);
        json.key("run_seconds")
            .valueFixed(original_run.runSeconds, 6);
        json.endObject();
        json.key("transformed").beginObject();
        json.key("compile_seconds")
            .valueFixed(transformed_run.compileSeconds, 6);
        json.key("run_seconds")
            .valueFixed(transformed_run.runSeconds, 6);
        json.endObject();
        json.field("checksum", checksumHex(oracle));
        json.field("agree", agree);
        json.endObject();
    }

    json.endArray();
    json.key("totals").beginObject();
    json.key("emit_seconds").valueFixed(total_emit, 6);
    json.key("compile_seconds").valueFixed(total_compile, 6);
    json.key("run_seconds").valueFixed(total_run, 6);
    json.endObject();
    json.field("all_agree", all_agree);
    json.endObject();

    std::printf("%s\n", json.str().c_str());
    writeBenchJson("BENCH_CODEGEN.json", json.str());

    if (!all_agree) {
        std::fprintf(stderr, "FAIL: compiled variants disagree with "
                             "the interpreter oracle\n");
        return 1;
    }
    return 0;
}
