/**
 * @file
 * Experiment E3 -- paper Figure 8: performance of the test loops on a
 * DEC Alpha-like machine, normalized to the untransformed loop, for
 * the no-cache model ([3]) and the cache-aware UGS model (this
 * paper). The google-benchmark entry times one full figure run.
 */

#include <benchmark/benchmark.h>

#include "fig_common.hh"

namespace
{

void
BM_Figure8(benchmark::State &state)
{
    using namespace ujam;
    for (auto _ : state) {
        auto rows = runFigure(MachineModel::decAlpha21064());
        benchmark::DoNotOptimize(rows);
    }
}
BENCHMARK(BM_Figure8)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    auto rows = runFigure(machine);
    printFigure("=== Figure 8: Performance of Test Loops on DEC Alpha ===",
                machine, rows);
    writeBenchJson("BENCH_FIG8_ALPHA.json", figureJson(machine, rows));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
