/**
 * @file
 * Experiment E12 -- how good is the model itself?
 *
 * The paper's whole premise is deciding from *predicted* quantities.
 * This experiment confronts the predictions with the simulator, per
 * suite loop at the chosen unroll vector:
 *   - Eq. 1 main-memory accesses per iteration vs measured demand
 *     misses per iteration,
 *   - predicted balance bL vs measured cycles per flop, and
 *   - the reuse-distance profile's LRU hit fraction at the L1
 *     capacity vs the cache simulator's hit ratio (the model-free
 *     cross-check).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/optimizer.hh"
#include "sim/reuse_distance.hh"
#include "sim/simulator.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

namespace
{

void
printModelFidelity()
{
    using namespace ujam;
    MachineModel machine = MachineModel::decAlpha21064();
    std::printf("\n=== E12: model fidelity on the chosen unroll vectors "
                "(Alpha-like) ===\n\n");
    std::printf("%-10s %-10s | %9s %9s | %8s %8s | %8s %8s\n", "loop",
                "u", "pred m/i", "meas m/i", "pred bL", "meas bL",
                "rd-hit", "sim-hit");

    double miss_log_err = 0.0;
    double bl_log_err = 0.0;
    std::size_t counted = 0;

    for (const SuiteLoop &loop : testSuite()) {
        Program program = loadSuiteProgram(loop);
        OptimizerConfig config;
        config.maxUnroll = 4;
        UnrollDecision decision =
            chooseUnrollAmounts(program.nests()[0], machine, config);

        Program transformed = unrollAndJam(program, 0, decision.unroll);
        for (LoopNest &nest : transformed.nests())
            nest = scalarReplace(nest).nest;
        SimResult sim = simulateProgram(transformed, machine);

        // Model quantities are per unrolled body; normalize both sides
        // to per original iteration.
        double copies = 1.0;
        for (std::size_t k = 0; k < decision.unroll.size(); ++k)
            copies *= static_cast<double>(decision.unroll[k] + 1);
        double orig_iters =
            static_cast<double>(sim.iterations) * copies;
        double pred_misses = decision.misses / copies;
        double meas_misses =
            static_cast<double>(sim.demandMisses) /
            (orig_iters / copies) / copies;

        double flops = static_cast<double>(
            program.nests()[0].bodyFlops());
        double meas_bl =
            sim.cycles / (orig_iters * flops) *
            machine.flopsPerCycle; // cycles/flop vs 1/flop rate

        ReuseDistanceProfiler profile =
            profileReuseDistances(transformed, machine.lineElems());
        std::int64_t l1_lines =
            machine.cacheBytes / machine.lineBytes;
        double rd_hit = profile.hitFractionBelow(l1_lines);
        double sim_hit = 1.0 - sim.missRatio;

        std::printf("%-10s %-10s | %9.3f %9.3f | %8.2f %8.2f | %7.1f%% "
                    "%7.1f%%\n",
                    loop.name.c_str(),
                    decision.unroll.toString().c_str(), pred_misses,
                    meas_misses, decision.predictedBalance, meas_bl,
                    100.0 * rd_hit, 100.0 * sim_hit);

        if (pred_misses > 1e-6 && meas_misses > 1e-6) {
            miss_log_err += std::fabs(std::log(pred_misses) -
                                      std::log(meas_misses));
            ++counted;
        }
        bl_log_err += std::fabs(std::log(decision.predictedBalance) -
                                std::log(std::max(meas_bl, 1e-9)));
    }
    std::printf("\nmean |log2 error|: misses %.2f bits (over %zu "
                "loops), balance %.2f bits\n",
                miss_log_err / std::log(2.0) /
                    static_cast<double>(counted),
                counted,
                bl_log_err / std::log(2.0) /
                    static_cast<double>(testSuite().size()));
    std::printf("(rd-hit is the fully-associative LRU hit fraction at "
                "L1 capacity from the reuse-\n distance profile; "
                "sim-hit is the 2-way cache simulator, cold misses "
                "included)\n");
}

void
BM_ReuseDistanceProfile(benchmark::State &state)
{
    using namespace ujam;
    Program program = loadSuiteProgram(suiteLoop("jacobi"));
    for (auto _ : state) {
        ReuseDistanceProfiler profile =
            profileReuseDistances(program, 4, {{"n", 64}});
        benchmark::DoNotOptimize(profile);
    }
}
BENCHMARK(BM_ReuseDistanceProfile)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printModelFidelity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
