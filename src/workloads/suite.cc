#include "workloads/suite.hh"

#include "ir/validate.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

std::vector<SuiteLoop>
buildSuite()
{
    std::vector<SuiteLoop> suite;

    suite.push_back({1, "jacobi", "Compute Jacobian of a Matrix", R"(
param n = 144
real a(n + 2, n + 2)
real b(n + 2, n + 2)
! nest: jacobi
do j = 2, n
  do i = 2, n
    b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  end do
end do
)"});

    suite.push_back({2, "afold", "Adjoint Convolution", R"(
param n = 144
param m = 144
real a(n)
real b(n + m)
real c(m)
! nest: afold
do j = 1, m
  do i = 1, n
    a(i) = a(i) + b(i + j) * c(j)
  end do
end do
)"});

    suite.push_back({3, "btrix.1", "SPEC/NASA7/BTRIX", R"(
param n = 64
param m = 64
real s(m, n + 1, n)
real r(m, n + 1)
! nest: btrix.1
do j = 1, n
  do k = 2, n
    do i = 1, m
      s(i, k, j) = s(i, k, j) - r(i, k) * s(i, k-1, j)
    end do
  end do
end do
)"});

    suite.push_back({4, "btrix.2", "SPEC/NASA7/BTRIX", R"(
param n = 64
param m = 64
real x(m, n)
real c(m, n)
real y(n, n)
! nest: btrix.2
do k = 1, n
  do j = 1, n
    do i = 1, m
      x(i, j) = x(i, j) + c(i, k) * y(k, j)
    end do
  end do
end do
)"});

    suite.push_back({5, "btrix.7", "SPEC/NASA7/BTRIX", R"(
param n = 64
param m = 64
real v(m, n + 1)
real u(m, n + 1)
real w(n + 1, n)
! nest: btrix.7
do j = 1, n
  do k = 2, n
    do i = 1, m
      v(i, k) = v(i, k) - u(i, k-1) * w(k, j)
    end do
  end do
end do
)"});

    suite.push_back({6, "collc.2", "Perfect/FLO52/COLLC", R"(
param n = 144
param m = 144
real fs(m + 1, n + 1)
real dw(m + 1, n + 1)
! nest: collc.2
do j = 2, n
  do i = 2, m
    fs(i, j) = 0.5 * (dw(i, j) + dw(i-1, j)) + 0.25 * (dw(i, j-1) + dw(i-1, j-1))
  end do
end do
)"});

    suite.push_back({7, "cond.7", "local/SIMPLE/CONDUCT", R"(
param n = 144
param m = 144
real sigv(m + 1, n + 1)
real sigh(m + 1, n + 1)
real e(m + 1, n + 1)
real t(m + 1, n + 1)
! nest: cond.7
do j = 2, n
  do i = 2, m
    e(i, j) = sigv(i, j) * (t(i, j-1) - t(i, j)) + sigh(i, j) * (t(i-1, j) - t(i, j))
  end do
end do
)"});

    suite.push_back({8, "cond.9", "local/SIMPLE/CONDUCT", R"(
param n = 144
param m = 144
real t(m + 2, n + 2)
real d(m + 2, n + 2)
real e(m + 2, n + 2)
! nest: cond.9
do j = 2, n
  do i = 2, m
    t(i, j) = t(i, j) + d(i, j) * (e(i+1, j) - e(i, j) + e(i, j+1) - e(i, j))
  end do
end do
)"});

    suite.push_back({9, "dflux.16", "Perfect/FLO52/DFLUX", R"(
param n = 144
param m = 144
real fs(m + 2, n)
real w(m + 2, n)
! nest: dflux.16
do j = 1, n
  do i = 2, m
    fs(i, j) = w(i+1, j) - w(i, j)
  end do
end do
)"});

    suite.push_back({10, "dflux.17", "Perfect/FLO52/DFLUX", R"(
param n = 144
param m = 144
real dw(m + 2, n)
real fs(m + 2, n)
real rad(m + 2, n)
! nest: dflux.17
do j = 1, n
  do i = 2, m
    dw(i, j) = dw(i, j) + rad(i, j) * (fs(i, j) - fs(i-1, j))
  end do
end do
)"});

    suite.push_back({11, "dflux.20", "Perfect/FLO52/DFLUX", R"(
param n = 144
param m = 144
real dw(m, n + 2)
real gs(m, n + 2)
real rad(m, n + 2)
! nest: dflux.20
do j = 2, n
  do i = 1, m
    dw(i, j) = dw(i, j) + rad(i, j) * (gs(i, j+1) - gs(i, j)) - rad(i, j-1) * (gs(i, j) - gs(i, j-1))
  end do
end do
)"});

    suite.push_back({12, "dmxpy0", "Vector-Matrix Multiply", R"(
param n = 144
param m = 144
real y(m)
real x(n)
real mat(m, n)
! nest: dmxpy0
do j = 1, n
  do i = 1, m
    y(i) = y(i) + x(j) * mat(i, j)
  end do
end do
)"});

    suite.push_back({13, "dmxpy1", "Vector-Matrix Multiply", R"(
param n = 144
param m = 144
real y(m)
real x(n)
real mat(n, m)
! nest: dmxpy1
do i = 1, m
  do j = 1, n
    y(i) = y(i) + x(j) * mat(j, i)
  end do
end do
)"});

    suite.push_back({14, "gmtry.3", "SPEC/NASA7/GMTRY", R"(
param n = 128
real rmatrx(n, n)
real xmat(n)
! nest: gmtry.3
do k = 1, n
  do i = 1, n
    rmatrx(i, k) = rmatrx(i, k) - xmat(i) * rmatrx(i, k-1)
  end do
end do
)"});

    suite.push_back({15, "mmjik", "Matrix-Matrix Multiply", R"(
param n = 72
real c(n, n)
real a(n, n)
real b(n, n)
! nest: mmjik
do j = 1, n
  do i = 1, n
    do k = 1, n
      c(i, j) = c(i, j) + a(i, k) * b(k, j)
    end do
  end do
end do
)"});

    suite.push_back({16, "mmjki", "Matrix-Matrix Multiply", R"(
param n = 72
real c(n, n)
real a(n, n)
real b(n, n)
! nest: mmjki
do j = 1, n
  do k = 1, n
    do i = 1, n
      c(i, j) = c(i, j) + a(i, k) * b(k, j)
    end do
  end do
end do
)"});

    suite.push_back({17, "vpenta.7", "SPEC/NASA7/VPENTA", R"(
param n = 144
param m = 144
real f(m, n + 2)
real x(m, n + 2)
real y(m, n + 2)
! nest: vpenta.7
do j = 3, n
  do i = 1, m
    f(i, j) = f(i, j) - x(i, j) * f(i, j-1) - y(i, j) * f(i, j-2)
  end do
end do
)"});

    suite.push_back({18, "sor", "Successive Over Relaxation", R"(
param n = 144
real a(n + 2, n + 2)
! nest: sor
do j = 2, n
  do i = 2, n
    a(i, j) = 0.2 * a(i, j) + 0.2 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  end do
end do
)"});

    suite.push_back({19, "shal", "Shallow Water Kernel", R"(
param n = 128
real cu(n + 1, n + 1)
real cv(n + 1, n + 1)
real z(n + 1, n + 1)
real h(n + 1, n + 1)
real p(n + 1, n + 1)
real u(n + 1, n + 1)
real v(n + 1, n + 1)
! nest: shal
do j = 2, n
  do i = 2, n
    cu(i, j) = 0.5 * (p(i, j) + p(i-1, j)) * u(i, j)
    cv(i, j) = 0.5 * (p(i, j) + p(i, j-1)) * v(i, j)
    z(i, j) = (v(i, j) - v(i-1, j) + u(i, j) - u(i, j-1)) / (p(i-1, j-1) + p(i, j))
    h(i, j) = p(i, j) + 0.25 * (u(i, j) * u(i, j) + v(i, j) * v(i, j))
  end do
end do
)"});

    return suite;
}

} // namespace

const std::vector<SuiteLoop> &
testSuite()
{
    static const std::vector<SuiteLoop> suite = buildSuite();
    return suite;
}

const SuiteLoop &
suiteLoop(const std::string &name)
{
    for (const SuiteLoop &loop : testSuite()) {
        if (loop.name == name)
            return loop;
    }
    fatal("unknown suite loop '", name, "'");
}

Program
loadSuiteProgram(const SuiteLoop &loop)
{
    Program program = parseProgram(loop.source);
    std::vector<std::string> problems = validateProgram(program);
    if (!problems.empty())
        panic("suite loop ", loop.name, " is invalid: ", problems[0]);
    UJAM_ASSERT(program.nests().size() == 1,
                "suite loop must contain exactly one nest");
    return program;
}

} // namespace ujam
