#include "workloads/corpus.hh"

#include <cmath>

#include "deps/analyzer.hh"
#include "ir/builder.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace ujam
{

namespace
{

/** Per-routine generation style, drawn once per routine. */
struct Style
{
    double readDensity;   //!< expected reads per statement
    double shareProb;     //!< chance a read hits an already-used array
    double stencilProb;   //!< chance a read is a shifted self-stencil
    double invariantProb; //!< chance a subscript drops its loop
    double sourceStencilProb; //!< chance reads cluster on one source
    bool pureStencil;     //!< gather/interpolation routine: read-only
                          //!< sources, fresh targets (mostly input deps)
    bool writeHeavy;      //!< recurrence/update routine: single reads
                          //!< of written arrays (no input deps at all)
    bool independent;     //!< every array referenced once: no deps
    int maxDepth;         //!< nest depth cap
    int nests;            //!< nests in the routine
};

Style
drawStyle(Rng &rng)
{
    Style style;
    // Nearly half of the paper's routines (538 of 1187) had no
    // dependences at all: straight initialization and copy code where
    // no array is touched twice.
    style.independent = rng.chance(0.45);
    // Wide spreads on purpose: the paper reports a 33.6-point standard
    // deviation across routines. Scientific Fortran is read-dominated:
    // stencil and interpolation kernels read the same arrays many
    // times per statement, which is where the quadratic population of
    // input dependences comes from.
    style.readDensity = 1.0 + rng.uniform() * 6.0;
    style.shareProb = 0.3 + rng.uniform() * 0.65;
    style.stencilProb = rng.uniform() * 0.6;
    style.invariantProb = rng.uniform() * 0.5;
    style.sourceStencilProb = rng.uniform() * 0.9;
    // About a third of scientific routines are pure gather/stencil
    // sweeps (smoothers, flux evaluation, interpolation): they write
    // fresh result arrays from heavily re-read inputs, so nearly all
    // of their dependences are input dependences (the paper's
    // 90%-100% bucket holds a quarter of all routines).
    style.pureStencil = !style.independent && rng.chance(0.42);
    // And roughly a tenth are first-order recurrences or in-place
    // updates (LU sweeps, scans): one read per write, so their graphs
    // hold no input dependence whatsoever (the paper's 0% bucket).
    style.writeHeavy =
        !style.independent && !style.pureStencil && rng.chance(0.25);
    if (style.writeHeavy) {
        style.readDensity = 0.0;
        style.stencilProb = 1.0;
        style.sourceStencilProb = 0.0;
        style.shareProb = 0.0;
        style.invariantProb = 0.0;
    }
    style.maxDepth = static_cast<int>(rng.range(1, 3));
    style.nests = static_cast<int>(rng.range(1, 5));
    if (style.pureStencil) {
        style.sourceStencilProb = 0.9 + rng.uniform() * 0.1;
        style.stencilProb = rng.uniform() * 0.1;
        style.readDensity = 4.5 + rng.uniform() * 6.0;
        style.shareProb = 0.7 + rng.uniform() * 0.3;
        // Gather routines tend to be the larger ones (whole smoothing
        // passes), which is how input dependences dominate the global
        // count more strongly than the per-routine mean.
        style.nests = static_cast<int>(rng.range(3, 8));
    }
    return style;
}

const char *kIvNames[3] = {"i1", "i2", "i3"};

/** A random affine subscript over the nest's loops. */
Subscript
drawSubscript(Rng &rng, const Style &style, int depth, int dim,
              bool allow_offset)
{
    // Prefer the conventional dim<->loop pairing (column-major arrays
    // indexed innermost-first), occasionally permuted.
    int loop = depth - 1 - dim;
    if (loop < 0 || rng.chance(0.12))
        loop = static_cast<int>(rng.range(0, depth - 1));
    if (rng.chance(style.invariantProb) && dim > 0)
        return Subscript::constant(rng.range(1, 4));
    std::int64_t offset =
        allow_offset ? rng.range(-2, 2) : 0;
    return idx(kIvNames[loop], offset);
}

LoopNest
drawNest(Rng &rng, const Style &style, int routine_arrays, int nest_id)
{
    int depth = static_cast<int>(rng.range(1, style.maxDepth));
    NestBuilder builder;
    for (int k = 0; k < depth; ++k) {
        builder.loop(kIvNames[k], 1,
                     rng.range(16, 256)); // bounds are irrelevant to deps
    }

    int stmts = static_cast<int>(rng.range(1, 3));
    // Arrays keep one rank for the whole nest, like real declarations.
    std::vector<std::pair<std::string, int>> used_arrays;
    auto pick_array = [&](bool prefer_shared) {
        if (prefer_shared && !used_arrays.empty() &&
            rng.chance(style.shareProb)) {
            return used_arrays[static_cast<std::size_t>(rng.range(
                0,
                static_cast<std::int64_t>(used_arrays.size()) - 1))];
        }
        std::string name =
            concat("arr", nest_id, "_", rng.range(0, routine_arrays - 1));
        for (const auto &known : used_arrays) {
            if (known.first == name)
                return known;
        }
        std::pair<std::string, int> entry{
            name, static_cast<int>(rng.range(1, std::max(1, depth)))};
        used_arrays.push_back(entry);
        return entry;
    };

    if (style.independent) {
        // Initialization/copy code: every array appears exactly once
        // and uses every loop (no invariant self reuse).
        for (int s = 0; s < stmts; ++s) {
            int rank = depth;
            std::vector<Subscript> lhs_subs;
            for (int d = 0; d < rank; ++d)
                lhs_subs.push_back(idx(kIvNames[depth - 1 - d]));
            ExprPtr rhs = rng.chance(0.5)
                              ? lit(0.0)
                              : builder.read(
                                    concat("src", nest_id, "_", s),
                                    lhs_subs);
            builder.assign(concat("dst", nest_id, "_", s), lhs_subs,
                           rhs);
        }
        return builder.name(concat("nest", nest_id)).build();
    }

    for (int s = 0; s < stmts; ++s) {
        auto [target, rank] = pick_array(false);
        if (style.writeHeavy) {
            // Distinct update targets: the graph stays free of
            // read-read pairs (flow/anti/output only).
            target = concat("upd", nest_id, "_", s);
        }
        if (style.pureStencil) {
            // Gather routines write fresh result arrays that nothing
            // reads back: the write contributes no dependence at all.
            target = concat("out", nest_id, "_", s);
        }
        std::vector<Subscript> lhs_subs;
        for (int d = 0; d < rank; ++d)
            lhs_subs.push_back(
                drawSubscript(rng, style, depth, d, false));

        int reads = 1 + static_cast<int>(rng.uniform() *
                                         style.readDensity);
        // Stencil kernels cluster their reads on one read-only source
        // array (jacobi, flux differences, interpolation): every pair
        // of those reads is an input dependence.
        bool clustered = rng.chance(style.sourceStencilProb);
        auto [source, source_rank] = pick_array(true);
        std::vector<Subscript> source_subs;
        for (int d = 0; d < source_rank; ++d)
            source_subs.push_back(
                drawSubscript(rng, style, depth, d, false));

        ExprPtr rhs;
        for (int r = 0; r < reads; ++r) {
            ExprPtr read;
            if (clustered && source != target &&
                rng.chance(style.pureStencil ? 0.95 : 0.8)) {
                std::vector<Subscript> subs = source_subs;
                std::size_t d = static_cast<std::size_t>(
                    rng.range(0, source_rank - 1));
                subs[d].offset += rng.range(-2, 2);
                read = builder.read(source, subs);
            } else if (rng.chance(style.stencilProb)) {
                // Shifted reference to the written array: flow/anti
                // dependences (and input deps among themselves).
                std::vector<Subscript> subs = lhs_subs;
                std::size_t d = static_cast<std::size_t>(
                    rng.range(0, rank - 1));
                subs[d].offset += rng.range(-2, 2);
                read = builder.read(target, subs);
            } else {
                auto [other, other_rank] = pick_array(true);
                std::vector<Subscript> subs;
                for (int d = 0; d < other_rank; ++d)
                    subs.push_back(
                        drawSubscript(rng, style, depth, d, true));
                read = builder.read(other, subs);
            }
            rhs = rhs ? add(rhs, read) : read;
        }
        if (rng.chance(0.3))
            rhs = mul(rhs, lit(0.5));
        builder.assign(target, lhs_subs, rhs);
    }
    return builder.name(concat("nest", nest_id)).build();
}

} // namespace

double
CorpusStats::totalInputPercent() const
{
    if (totalDeps == 0)
        return 0.0;
    return 100.0 * static_cast<double>(totalInputDeps) /
           static_cast<double>(totalDeps);
}

const std::vector<std::string> &
corpusBucketLabels()
{
    static const std::vector<std::string> labels = {
        "0%",      "1%-32%",  "33%-39%", "40%-49%", "50%-59%",
        "60%-69%", "70%-79%", "80%-89%", "90%-100%"};
    return labels;
}

std::vector<CorpusRoutine>
generateCorpus(const CorpusConfig &config)
{
    // Each routine draws from its own RNG stream keyed on (seed,
    // routine index): routine r's content never depends on how much
    // entropy routines 0..r-1 consumed, so the fan-out below yields
    // the byte-identical corpus at any thread count (and any future
    // style change to one routine archetype leaves the others' draws
    // untouched).
    std::vector<CorpusRoutine> corpus(config.routines);
    parallelFor(config.routines, config.threads, [&](std::size_t r) {
        Rng rng(Rng::deriveStream(config.seed, r));
        Style style = drawStyle(rng);
        CorpusRoutine &routine = corpus[r];
        routine.name = concat("routine", r);
        int arrays = static_cast<int>(rng.range(2, 6));
        for (int n = 0; n < style.nests; ++n)
            routine.nests.push_back(drawNest(rng, style, arrays, n));
    });
    return corpus;
}

CorpusStats
analyzeCorpus(const std::vector<CorpusRoutine> &corpus,
              std::size_t threads)
{
    CorpusStats stats;
    stats.routinesTotal = corpus.size();
    stats.histogram.assign(corpusBucketLabels().size(), 0);

    // Analyze routines into index-addressed slots, then aggregate in
    // routine order: the reduction (including the floating-point mean
    // and deviation sums) visits routines exactly as the serial loop
    // did, so the statistics are bit-identical for any thread count.
    struct RoutineDeps
    {
        std::size_t deps = 0;
        std::size_t input = 0;
        std::size_t graphBytes = 0;
        std::size_t graphBytesNoInput = 0;
    };
    std::vector<RoutineDeps> slots(corpus.size());
    parallelFor(corpus.size(), threads, [&](std::size_t r) {
        RoutineDeps &slot = slots[r];
        for (const LoopNest &nest : corpus[r].nests) {
            DependenceGraph graph = analyzeDependences(nest);
            slot.deps += graph.size();
            slot.input += graph.inputCount();
            slot.graphBytes += graph.storageBytes();
            slot.graphBytesNoInput += graph.storageBytesWithoutInput();
        }
    });

    std::vector<double> percents;
    std::vector<double> input_counts;

    for (const RoutineDeps &slot : slots) {
        std::size_t deps = slot.deps;
        std::size_t input = slot.input;
        stats.graphBytes += slot.graphBytes;
        stats.graphBytesNoInput += slot.graphBytesNoInput;
        if (deps == 0)
            continue; // the paper bases its statistics on 649 of 1187
        ++stats.routinesWithDeps;
        stats.totalDeps += deps;
        stats.totalInputDeps += input;
        double percent = 100.0 * static_cast<double>(input) /
                         static_cast<double>(deps);
        percents.push_back(percent);
        input_counts.push_back(static_cast<double>(input));

        std::size_t bucket = 0;
        if (percent == 0.0)
            bucket = 0;
        else if (percent < 33.0)
            bucket = 1;
        else if (percent < 40.0)
            bucket = 2;
        else if (percent < 50.0)
            bucket = 3;
        else if (percent < 60.0)
            bucket = 4;
        else if (percent < 70.0)
            bucket = 5;
        else if (percent < 80.0)
            bucket = 6;
        else if (percent < 90.0)
            bucket = 7;
        else
            bucket = 8;
        ++stats.histogram[bucket];
    }

    if (!percents.empty()) {
        double sum = 0.0;
        for (double p : percents)
            sum += p;
        stats.meanInputPercent = sum / static_cast<double>(percents.size());
        double var = 0.0;
        for (double p : percents) {
            double d = p - stats.meanInputPercent;
            var += d * d;
        }
        stats.stddevInputPercent =
            std::sqrt(var / static_cast<double>(percents.size()));
        double count_sum = 0.0;
        for (double c : input_counts)
            count_sum += c;
        stats.meanInputCount =
            count_sum / static_cast<double>(input_counts.size());
    }
    return stats;
}

} // namespace ujam
