/**
 * @file
 * The evaluation suite (paper Table 2).
 *
 * Nineteen loops drawn from SPEC92 (NASA7: BTRIX, GMTRY, VPENTA),
 * Perfect (FLO52: COLLC, DFLUX), NAS, and local kernels (SIMPLE
 * conduct, jacobi, adjoint convolution, DMXPY, matrix multiply, SOR,
 * shallow water). The loop bodies are re-expressed in the ujam DSL
 * from their published descriptions (see the substitution notes in
 * DESIGN.md); the array reference patterns -- which are all the
 * analyses consume -- match the originals.
 */

#ifndef UJAM_WORKLOADS_SUITE_HH
#define UJAM_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** One suite entry. */
struct SuiteLoop
{
    int number = 0;           //!< Table 2 loop number
    std::string name;         //!< e.g. "dflux.16"
    std::string description;  //!< suite/benchmark/subroutine
    std::string source;       //!< DSL text (params, arrays, one nest)
};

/** @return All nineteen loops in Table 2 order. */
const std::vector<SuiteLoop> &testSuite();

/** @return The suite entry by name; fatal if unknown. */
const SuiteLoop &suiteLoop(const std::string &name);

/** @return The entry parsed into a Program (validated). */
Program loadSuiteProgram(const SuiteLoop &loop);

} // namespace ujam

#endif // UJAM_WORKLOADS_SUITE_HH
