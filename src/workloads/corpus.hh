/**
 * @file
 * Synthetic routine corpus for the Table 1 experiment.
 *
 * The paper ran 1187 routines from SPEC92/Perfect/NAS/local suites
 * through Memoria and measured what fraction of each routine's
 * dependences were input (read-read) dependences. We regenerate a
 * corpus of the same size whose loop and reference statistics are
 * modeled on scientific Fortran: per-routine style parameters (read
 * density, array sharing, write density, nest depth) are drawn from
 * wide ranges so the per-routine input fraction spreads the way the
 * paper's Table 1 does. The input fraction itself is emergent -- it
 * is never set directly.
 */

#ifndef UJAM_WORKLOADS_CORPUS_HH
#define UJAM_WORKLOADS_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** One synthetic routine: a handful of loop nests. */
struct CorpusRoutine
{
    std::string name;
    std::vector<LoopNest> nests;
};

/** Corpus generation parameters. */
struct CorpusConfig
{
    std::size_t routines = 1187; //!< paper section 5.1
    std::uint64_t seed = 9717;   //!< MICRO-30 vintage
    /**
     * Worker threads for generation and analysis fan-outs: 0 = one
     * per core, 1 = serial. Each routine draws from its own RNG
     * stream (derived from seed and routine index) and lands in an
     * index-addressed slot, so every thread count produces the
     * byte-identical corpus and statistics.
     */
    std::size_t threads = 0;
};

/** Aggregate dependence statistics over a corpus (paper 5.1). */
struct CorpusStats
{
    std::size_t routinesTotal = 0;
    std::size_t routinesWithDeps = 0;

    std::size_t totalDeps = 0;
    std::size_t totalInputDeps = 0;

    double meanInputPercent = 0.0;   //!< mean over routines with deps
    double stddevInputPercent = 0.0;
    double meanInputCount = 0.0;     //!< mean input deps per routine

    /**
     * Routine counts per Table 1 bucket: 0%, 1-32%, 33-39%, 40-49%,
     * 50-59%, 60-69%, 70-79%, 80-89%, 90-100%.
     */
    std::vector<std::size_t> histogram;

    std::size_t graphBytes = 0;        //!< full graphs
    std::size_t graphBytesNoInput = 0; //!< graphs without input deps

    /** @return Input deps as a share of all deps, in percent. */
    double totalInputPercent() const;
};

/** Bucket labels matching CorpusStats::histogram. */
const std::vector<std::string> &corpusBucketLabels();

/** Generate the corpus deterministically. */
std::vector<CorpusRoutine> generateCorpus(const CorpusConfig &config = {});

/**
 * Run dependence analysis over every routine and aggregate.
 *
 * @param corpus  The routines.
 * @param threads Fan-out width: 0 = one per core, 1 = serial.
 *                Per-routine results are reduced in routine order, so
 *                the statistics are identical for every width.
 */
CorpusStats analyzeCorpus(const std::vector<CorpusRoutine> &corpus,
                          std::size_t threads = 0);

} // namespace ujam

#endif // UJAM_WORKLOADS_CORPUS_HH
