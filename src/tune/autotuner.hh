/**
 * @file
 * Measured autotuning: close the loop between the paper's balance
 * model (Eq. 1, section 4.5) and reality.
 *
 * The model picks one unroll vector per nest analytically. The
 * autotuner treats that pick as a *seed*: it enumerates a
 * neighborhood of adjacent unroll vectors (a Chebyshev ball of
 * configurable radius over the nest's unrollable loops, clamped to
 * the dependence safety bounds), pushes each candidate through the
 * full optimization pipeline via OptimizerConfig::forceUnroll -- so
 * every candidate gets normalization, scalar replacement, fringe
 * loops and the safety net exactly as a model-chosen vector would --
 * and ranks candidates by *measured* runtime.
 *
 * Two measurement backends share one code path:
 *
 *  - MeasureMode::Wall compiles each candidate's generated C with the
 *    host compiler (kMeasureCFlags: optimized, FP contraction off)
 *    and times the binary warmup+median-of-K through the same
 *    compileAndRun() harness ujam-codegen --run uses. Checksums are
 *    verified against the interpreter oracle, so a miscompiled or
 *    illegally transformed candidate is marked invalid rather than
 *    ranked. Requires a host C compiler; the whole run self-skips
 *    (TuneResult::skipped) without one.
 *
 *  - MeasureMode::Model charges each candidate the cycle estimate of
 *    the execution-time simulator (sim/simulator.hh). Fully
 *    deterministic -- identical inputs give bit-identical results --
 *    and compiler-free, so tests and the caching service can rely on
 *    reproducible bytes.
 *
 * Per nest the tuner reports every candidate with its model-predicted
 * numbers next to its measured runtime (the model-vs-measured deltas
 * the ROADMAP asks for), the measured-best vector, whether the model
 * pick was optimal within a noise margin, and the Pareto frontier
 * over (measured runtime, register pressure) -- the two axes a user
 * trades when the register file is tight.
 *
 * The wall-clock budget (TuneConfig::budgetMs) bounds measurement per
 * nest: the model pick and the untransformed baseline are always
 * measured; neighborhood candidates are measured closest-first until
 * the budget runs out. In Model mode the budget is ignored --
 * simulation is cheap and wall-clock cutoffs would break determinism.
 */

#ifndef UJAM_TUNE_AUTOTUNER_HH
#define UJAM_TUNE_AUTOTUNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.hh"

namespace ujam
{

/** How candidate runtimes are obtained. */
enum class MeasureMode
{
    Wall, //!< compile + run on the host (median of K repeats)
    Model //!< deterministic simulator cycle estimate
};

/** @return "wall" or "model". */
const char *measureModeName(MeasureMode mode);

/** Autotuner knobs. */
struct TuneConfig
{
    /** Pipeline the candidates run through (optimizer.forceUnroll is
     * overwritten per candidate; everything else is honored). */
    PipelineConfig pipeline;
    MeasureMode measure = MeasureMode::Wall;
    /**
     * Per-nest wall-clock measurement budget in milliseconds; <= 0
     * means unlimited. The model pick and the zero baseline are
     * always measured even when the budget is already spent. Ignored
     * in Model mode (see the file comment).
     */
    std::int64_t budgetMs = 10000;
    /** Chebyshev radius of the neighborhood around the model pick. */
    std::int64_t neighborhood = 1;
    int repeats = 3;             //!< timed binary runs per candidate
    int warmup = 1;              //!< discarded runs before the timed ones
    std::uint64_t seed = 9717;   //!< array-seeding / run seed
    /** Wall-mode compiler flags; kMeasureCFlags when empty. */
    std::string cflags;
    /**
     * Relative noise margin for the model-optimal verdict in Wall
     * mode: the model pick counts as optimal when the measured best
     * is less than this fraction faster. Model mode compares exactly.
     */
    double noiseMargin = 0.03;
};

/** One candidate unroll vector: model numbers next to measurement. */
struct TuneCandidate
{
    IntVector unroll;            //!< applied vector (post projection)
    /** "model" (the Eq.-1 pick), "baseline" (all-zero), "neighbor". */
    std::string source;
    double predictedBalance = 0; //!< bL at this vector
    /** The model's objective |bL - bM| (smaller = model likes it). */
    double predictedScore = 0;
    std::int64_t registers = 0;  //!< RL at this vector
    bool measured = false;       //!< false: budget ran out / rejected
    bool valid = false;          //!< measured and checksum-verified
    /** Median measured runtime: seconds (Wall) or cycles (Model). */
    double runtime = 0;
    double runtimeMin = 0;       //!< fastest repeat (Wall mode)
    /** runtime / the model pick's runtime; 1.0 for the pick itself,
     * < 1.0 beats the model. Only meaningful when valid. */
    double vsModelPick = 0;
    bool pareto = false;         //!< on the (runtime, registers) frontier
    std::string note;            //!< skip/invalid/outlier diagnostic
};

/** The per-nest feature row --log-features emits for model training. */
struct TuneFeatures
{
    std::size_t depth = 0;         //!< nest depth
    double bodyFlops = 0;          //!< FP ops per body execution
    std::size_t accessCount = 0;   //!< array references in the body
    std::size_t arrayCount = 0;    //!< distinct arrays referenced
    double machineBalance = 0;     //!< bM
    double originalBalance = 0;    //!< bL at the zero vector
    double pickBalance = 0;        //!< bL at the model pick
    std::int64_t pickRegisters = 0; //!< RL at the model pick
    IntVector safetyBounds;        //!< per-loop legal maximum
};

/** Everything the tuner learned about one nest. */
struct NestTune
{
    std::string name;            //!< nest name (may be empty)
    IntVector modelPick;         //!< the Eq.-1 decision's vector
    IntVector measuredBest;      //!< fastest valid candidate's vector
    double modelPickRuntime = 0; //!< measured runtime of the pick
    double bestRuntime = 0;      //!< measured runtime of the best
    /** modelPickRuntime / bestRuntime; > 1 means measurement found a
     * faster vector than the model chose. */
    double modelOverBest = 1.0;
    bool modelOptimal = true;    //!< pick within noiseMargin of best
    std::size_t enumerated = 0;  //!< candidate vectors generated
    std::size_t measuredCount = 0; //!< candidates actually measured
    bool budgetExhausted = false;  //!< neighborhood truncated by budget
    std::vector<TuneCandidate> candidates; //!< deterministic order
    TuneFeatures features;       //!< the training row for this nest
};

/** One autotuning run over a whole program. */
struct TuneResult
{
    std::string machineName;     //!< the target machine
    MeasureMode mode = MeasureMode::Wall;
    std::string compiler;        //!< host identity (Wall mode)
    bool skipped = false;        //!< true: nothing was measured
    std::string skipReason;      //!< why (e.g. no host compiler)
    std::vector<NestTune> nests; //!< one per program nest
};

/**
 * Autotune every nest of a program.
 *
 * Each nest is measured in isolation: the tuner builds a single-nest
 * program (all array declarations and parameter defaults, that nest
 * alone) so one nest's runtime never pollutes another's ranking.
 *
 * @param program The program to tune (left untouched).
 * @param machine The optimization target (model pick, register cap,
 *                and the simulator's machine in Model mode).
 * @param config  Tuner knobs.
 * @return Per-nest candidates, Pareto sets and verdicts; skipped is
 *         true (with nests empty) when Wall mode finds no compiler.
 */
TuneResult tuneProgram(const Program &program,
                       const MachineModel &machine,
                       const TuneConfig &config = {});

/**
 * Render a tune run as one compact JSON object ("ujam-tune-v1").
 * Deterministic for a given result; in Model mode the result itself
 * is deterministic, so the service can cache the document
 * content-addressed.
 *
 * @param result A finished tune run.
 * @param config The configuration it ran under (echoed for
 *               provenance: budget, neighborhood, repeats, seed).
 * @return One-line JSON object text.
 */
std::string tuneResultJson(const TuneResult &result,
                           const TuneConfig &config);

/**
 * Render one nest's training row as a one-line JSON object
 * ("ujam-tune-features-v1"): the nest features plus the measured-best
 * unroll vector as the label. --log-features appends one such line
 * per tuned nest (NDJSON).
 */
std::string tuneFeatureRowJson(const std::string &programName,
                               const TuneResult &result,
                               const NestTune &nest);

} // namespace ujam

#endif // UJAM_TUNE_AUTOTUNER_HH
