#include "tune/autotuner.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "codegen/c_emitter.hh"
#include "codegen/checksum.hh"
#include "codegen/compile.hh"
#include "ir/interp.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/timing.hh"

namespace ujam
{

namespace
{

/** @return A program with all decls/params but only the one nest. */
Program
isolateNest(const Program &program, const LoopNest &nest)
{
    Program solo;
    solo.setSourceName(program.sourceName());
    for (const ArrayDecl &decl : program.arrays())
        solo.declareArray(decl);
    for (const auto &[name, value] : program.paramDefaults())
        solo.setParamDefault(name, value);
    solo.addNest(nest);
    return solo;
}

/** @return Chebyshev distance between two equal-length vectors. */
std::int64_t
chebyshev(const IntVector &a, const IntVector &b)
{
    std::int64_t radius = 0;
    for (std::size_t k = 0; k < a.size(); ++k)
        radius = std::max<std::int64_t>(radius,
                                        std::llabs(a[k] - b[k]));
    return radius;
}

/**
 * Enumerate the Chebyshev ball of the given radius around the model
 * pick over the decision's considered dims, clamped to the safety
 * bounds. The pick and the zero vector are excluded (they are added
 * as explicit "model"/"baseline" candidates); the remainder comes
 * back sorted by (radius, lexicographic) so closest-first measurement
 * under a budget is deterministic.
 */
std::vector<IntVector>
neighborhoodOf(const UnrollDecision &decision, std::int64_t radius)
{
    const IntVector &pick = decision.unroll;
    const std::size_t depth = pick.size();
    const std::vector<std::size_t> &dims = decision.consideredLoops;
    std::vector<IntVector> out;
    if (dims.empty() || radius <= 0)
        return out;

    std::vector<std::int64_t> lo(dims.size()), hi(dims.size());
    for (std::size_t i = 0; i < dims.size(); ++i) {
        std::size_t k = dims[i];
        std::int64_t bound = k < decision.safetyBounds.size()
                                 ? decision.safetyBounds[k]
                                 : 0;
        lo[i] = std::max<std::int64_t>(0, pick[k] - radius);
        hi[i] = std::min(bound, pick[k] + radius);
    }

    std::vector<std::int64_t> counter = lo;
    while (true) {
        IntVector u(depth);
        for (std::size_t i = 0; i < dims.size(); ++i)
            u[dims[i]] = counter[i];
        if (u != pick && !u.isZero())
            out.push_back(u);
        std::size_t i = 0;
        for (; i < counter.size(); ++i) {
            if (++counter[i] <= hi[i])
                break;
            counter[i] = lo[i];
        }
        if (i == counter.size())
            break;
    }

    std::sort(out.begin(), out.end(),
              [&](const IntVector &a, const IntVector &b) {
                  std::int64_t ra = chebyshev(a, pick);
                  std::int64_t rb = chebyshev(b, pick);
                  if (ra != rb)
                      return ra < rb;
                  return a.lexLess(b);
              });
    return out;
}

TuneFeatures
featuresOf(const LoopNest &nest, const MachineModel &machine,
           const UnrollDecision &decision)
{
    TuneFeatures f;
    f.depth = nest.depth();
    f.bodyFlops = static_cast<double>(nest.bodyFlops());
    std::vector<Access> accesses = nest.accesses();
    f.accessCount = accesses.size();
    std::set<std::string> arrays;
    for (const Access &access : accesses)
        arrays.insert(access.ref.array());
    f.arrayCount = arrays.size();
    f.machineBalance = machine.machineBalance();
    f.originalBalance = decision.originalBalance;
    f.pickBalance = decision.predictedBalance;
    f.pickRegisters = decision.registers;
    f.safetyBounds = decision.safetyBounds;
    return f;
}

/** Measure one already-transformed program. Fills runtime/valid. */
void
measureCandidate(TuneCandidate &cand, const Program &transformed,
                 const MachineModel &machine, const TuneConfig &config,
                 std::uint64_t oracle_checksum)
{
    cand.measured = true;
    if (config.measure == MeasureMode::Model) {
        SimResult sim =
            simulateProgram(transformed, machine, {}, config.seed);
        cand.runtime = sim.cycles;
        cand.runtimeMin = sim.cycles;
        cand.valid = true;
        return;
    }

    CodegenOptions opts;
    opts.seed = config.seed;
    opts.variantLabel = concat("tune ", cand.unroll.toString());
    CodegenUnit unit = emitCProgram(transformed, opts);
    std::string flags =
        config.cflags.empty() ? kMeasureCFlags : config.cflags;
    VariantRun run =
        compileAndRun(unit.source, "tune", flags, config.seed,
                      config.repeats, config.warmup);
    if (!run.ok) {
        cand.note = run.error;
        return;
    }
    if (run.checksum != oracle_checksum) {
        cand.note = concat("checksum mismatch: binary ",
                           checksumHex(run.checksum),
                           " vs interpreter oracle ",
                           checksumHex(oracle_checksum));
        return;
    }
    cand.runtime = run.runSeconds;
    cand.runtimeMin = run.runSecondsMin;
    cand.note = run.timingNote;
    cand.valid = true;
}

/** Mark the (runtime, registers) Pareto frontier among valid rows. */
void
markPareto(std::vector<TuneCandidate> &candidates)
{
    for (TuneCandidate &a : candidates) {
        if (!a.valid)
            continue;
        bool dominated = false;
        for (const TuneCandidate &b : candidates) {
            if (&a == &b || !b.valid)
                continue;
            bool no_worse = b.runtime <= a.runtime &&
                            b.registers <= a.registers;
            bool better = b.runtime < a.runtime ||
                          b.registers < a.registers;
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        a.pareto = !dominated;
    }
}

NestTune
tuneNest(const Program &program, const LoopNest &nest,
         const MachineModel &machine, const TuneConfig &config)
{
    NestTune out;
    out.name = nest.name();
    Program solo = isolateNest(program, nest);

    // The model's own decision seeds the search.
    PipelineConfig base = config.pipeline;
    base.optimizer.forceUnroll.reset();
    PipelineResult model_run = optimizeProgram(solo, machine, base);
    if (model_run.outcomes.empty())
        return out;
    UnrollDecision decision = model_run.outcomes.front().decision;
    // A contained unroll-stage fault (e.g. coupled subscripts the
    // tables cannot rank) leaves the decision's vectors empty;
    // normalize to all-zero at nest depth so every IntVector
    // downstream (neighborhood sort, applied-vector dedup) compares
    // at one size.
    if (decision.unroll.size() != nest.depth())
        decision.unroll = IntVector(nest.depth());
    if (decision.safetyBounds.size() != nest.depth())
        decision.safetyBounds = IntVector(nest.depth());
    out.modelPick = decision.unroll;
    out.features = featuresOf(nest, machine, decision);

    // The interpreter oracle all wall-mode binaries must reproduce.
    std::uint64_t oracle_checksum = 0;
    if (config.measure == MeasureMode::Wall) {
        Interpreter interp(solo, {});
        interp.seedArrays(config.seed);
        interp.run();
        oracle_checksum = interpreterChecksum(interp, solo);
    }

    // Candidate order (deterministic): the model pick, the zero
    // baseline, then neighbors closest-first.
    struct Seed
    {
        IntVector u;
        const char *source;
    };
    std::vector<Seed> seeds;
    seeds.push_back({decision.unroll, "model"});
    if (!decision.unroll.isZero())
        seeds.push_back({IntVector(nest.depth()), "baseline"});
    for (IntVector &u :
         neighborhoodOf(decision, config.neighborhood))
        seeds.push_back({std::move(u), "neighbor"});
    out.enumerated = seeds.size();

    double start = monotonicSeconds();
    std::set<IntVector, IntVectorLexLess> applied_seen;
    for (const Seed &seed : seeds) {
        TuneCandidate cand;
        cand.unroll = seed.u;
        cand.source = seed.source;

        PipelineConfig forced = config.pipeline;
        forced.optimizer.forceUnroll = seed.u;
        PipelineResult run;
        try {
            run = optimizeProgram(solo, machine, forced);
        } catch (const FatalError &err) {
            cand.note = err.what();
            out.candidates.push_back(std::move(cand));
            continue;
        }
        if (run.outcomes.empty())
            continue;
        const UnrollDecision &d = run.outcomes.front().decision;
        // Projection/clamping can collapse distinct requests onto one
        // applied vector; measure each applied vector once. A
        // contained fault leaves d.unroll empty -- that run applied
        // nothing, so it dedups as the zero vector.
        IntVector applied = d.unroll.size() == nest.depth()
                                ? d.unroll
                                : IntVector(nest.depth());
        if (!applied_seen.insert(applied).second)
            continue;
        cand.unroll = applied;
        cand.predictedBalance = d.predictedBalance;
        cand.predictedScore =
            std::fabs(d.predictedBalance - machine.machineBalance());
        cand.registers = d.registers;

        if (config.pipeline.optimizer.limitRegisters &&
            !d.unroll.isZero() &&
            d.registers > machine.fpRegisters) {
            cand.note = concat("register pressure ", d.registers,
                               " exceeds the machine's ",
                               machine.fpRegisters);
            out.candidates.push_back(std::move(cand));
            continue;
        }

        bool always = cand.source != std::string("neighbor");
        if (config.measure == MeasureMode::Wall &&
            config.budgetMs > 0 && !always &&
            (monotonicSeconds() - start) * 1000.0 >=
                static_cast<double>(config.budgetMs)) {
            out.budgetExhausted = true;
            cand.note = "not measured: budget exhausted";
            out.candidates.push_back(std::move(cand));
            continue;
        }

        try {
            measureCandidate(cand, run.program, machine, config,
                             oracle_checksum);
        } catch (const FatalError &err) {
            cand.measured = true;
            cand.note = err.what();
        }
        if (cand.measured)
            ++out.measuredCount;
        out.candidates.push_back(std::move(cand));
    }

    // Verdicts: the measured best, the model-vs-measured ratio, and
    // whether the model pick survives within the noise margin.
    const TuneCandidate *pick = nullptr;
    const TuneCandidate *best = nullptr;
    for (const TuneCandidate &cand : out.candidates) {
        if (!cand.valid)
            continue;
        if (cand.source == "model")
            pick = &cand;
        if (!best || cand.runtime < best->runtime)
            best = &cand;
    }
    if (best) {
        out.measuredBest = best->unroll;
        out.bestRuntime = best->runtime;
    }
    if (pick) {
        out.modelPickRuntime = pick->runtime;
        if (best && best->runtime > 0)
            out.modelOverBest = pick->runtime / best->runtime;
        double margin = config.measure == MeasureMode::Model
                            ? 0.0
                            : config.noiseMargin;
        out.modelOptimal =
            best == nullptr ||
            best->runtime >= pick->runtime * (1.0 - margin);
        for (TuneCandidate &cand : out.candidates) {
            if (cand.valid && pick->runtime > 0)
                cand.vsModelPick = cand.runtime / pick->runtime;
        }
    } else {
        out.modelOptimal = false;
    }
    markPareto(out.candidates);
    return out;
}

void
vectorJson(JsonWriter &w, const IntVector &v)
{
    w.beginArray();
    for (std::int64_t x : v)
        w.value(x);
    w.endArray();
}

void
featuresJson(JsonWriter &w, const TuneFeatures &f)
{
    w.beginObject();
    w.field("depth", static_cast<std::uint64_t>(f.depth));
    w.field("body_flops", f.bodyFlops);
    w.field("accesses", static_cast<std::uint64_t>(f.accessCount));
    w.field("arrays", static_cast<std::uint64_t>(f.arrayCount));
    w.field("machine_balance", f.machineBalance);
    w.field("original_balance", f.originalBalance);
    w.field("pick_balance", f.pickBalance);
    w.field("pick_registers", f.pickRegisters);
    w.key("safety_bounds");
    vectorJson(w, f.safetyBounds);
    w.endObject();
}

void
nestTuneJson(JsonWriter &w, const NestTune &nest)
{
    w.beginObject();
    w.field("nest", nest.name);
    w.key("model_pick");
    vectorJson(w, nest.modelPick);
    w.key("measured_best");
    vectorJson(w, nest.measuredBest);
    w.field("model_pick_runtime", nest.modelPickRuntime);
    w.field("best_runtime", nest.bestRuntime);
    w.field("model_over_best", nest.modelOverBest);
    w.field("model_optimal", nest.modelOptimal);
    w.field("enumerated", static_cast<std::uint64_t>(nest.enumerated));
    w.field("measured",
            static_cast<std::uint64_t>(nest.measuredCount));
    w.field("budget_exhausted", nest.budgetExhausted);
    w.key("candidates");
    w.beginArray();
    for (const TuneCandidate &cand : nest.candidates) {
        w.beginObject();
        w.key("unroll");
        vectorJson(w, cand.unroll);
        w.field("source", cand.source);
        w.field("predicted_balance", cand.predictedBalance);
        w.field("predicted_score", cand.predictedScore);
        w.field("registers", cand.registers);
        w.field("measured", cand.measured);
        w.field("valid", cand.valid);
        w.field("runtime", cand.runtime);
        w.field("runtime_min", cand.runtimeMin);
        w.field("vs_model_pick", cand.vsModelPick);
        w.field("pareto", cand.pareto);
        if (!cand.note.empty())
            w.field("note", cand.note);
        w.endObject();
    }
    w.endArray();
    w.key("pareto");
    w.beginArray();
    for (const TuneCandidate &cand : nest.candidates) {
        if (!cand.pareto)
            continue;
        w.beginObject();
        w.key("unroll");
        vectorJson(w, cand.unroll);
        w.field("runtime", cand.runtime);
        w.field("registers", cand.registers);
        w.endObject();
    }
    w.endArray();
    w.key("features");
    featuresJson(w, nest.features);
    w.endObject();
}

} // namespace

const char *
measureModeName(MeasureMode mode)
{
    return mode == MeasureMode::Wall ? "wall" : "model";
}

TuneResult
tuneProgram(const Program &program, const MachineModel &machine,
            const TuneConfig &config)
{
    TuneResult result;
    result.machineName = machine.name;
    result.mode = config.measure;
    if (config.measure == MeasureMode::Wall) {
        if (hostCCompiler().empty()) {
            result.skipped = true;
            result.skipReason =
                "no host C compiler found (set UJAM_CC or put "
                "cc/gcc/clang on PATH); use measure=model for a "
                "compiler-free run";
            return result;
        }
        result.compiler = hostCompilerVersion();
    }
    for (const LoopNest &nest : program.nests())
        result.nests.push_back(
            tuneNest(program, nest, machine, config));
    return result;
}

std::string
tuneResultJson(const TuneResult &result, const TuneConfig &config)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "ujam-tune-v1");
    w.field("machine", result.machineName);
    w.field("mode", measureModeName(result.mode));
    if (!result.compiler.empty())
        w.field("compiler", result.compiler);
    w.field("budget_ms", config.budgetMs);
    w.field("neighborhood", config.neighborhood);
    w.field("repeats", config.repeats);
    w.field("warmup", config.warmup);
    w.field("seed", static_cast<std::uint64_t>(config.seed));
    w.field("noise_margin", config.noiseMargin);
    w.field("skipped", result.skipped);
    if (result.skipped)
        w.field("skip_reason", result.skipReason);
    w.key("nests");
    w.beginArray();
    for (const NestTune &nest : result.nests)
        nestTuneJson(w, nest);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
tuneFeatureRowJson(const std::string &programName,
                   const TuneResult &result, const NestTune &nest)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "ujam-tune-features-v1");
    w.field("program", programName);
    w.field("machine", result.machineName);
    w.field("mode", measureModeName(result.mode));
    if (!result.compiler.empty())
        w.field("compiler", result.compiler);
    w.field("nest", nest.name);
    w.key("features");
    featuresJson(w, nest.features);
    w.key("model_pick");
    vectorJson(w, nest.modelPick);
    w.key("best_unroll");
    vectorJson(w, nest.measuredBest);
    w.field("model_over_best", nest.modelOverBest);
    w.endObject();
    return w.str();
}

} // namespace ujam
