#include "ir/bound.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

Bound
Bound::constant(std::int64_t c)
{
    Bound b;
    b.constant_ = c;
    return b;
}

Bound
Bound::param(const std::string &name, std::int64_t coeff,
             std::int64_t offset)
{
    Bound b;
    b.constant_ = offset;
    if (coeff != 0)
        b.terms_[name] = coeff;
    return b;
}

Bound
Bound::alignedUpper(const Bound &lower, const Bound &upper,
                    std::int64_t factor)
{
    UJAM_ASSERT(factor >= 1, "alignment factor must be positive");
    Bound b;
    auto part = std::make_shared<BoundAlignedPart>();
    part->lower = lower;
    part->upper = upper;
    part->factor = factor;
    b.aligned_ = std::move(part);
    return b;
}

Bound
Bound::plus(std::int64_t delta) const
{
    Bound b = *this;
    b.constant_ += delta;
    return b;
}

Bound
Bound::sum(const Bound &lhs, const Bound &rhs)
{
    UJAM_ASSERT(!(lhs.aligned_ && rhs.aligned_),
                "cannot sum two aligned bounds");
    Bound result = lhs;
    result.constant_ += rhs.constant_;
    for (const auto &[name, coeff] : rhs.terms_) {
        result.terms_[name] += coeff;
        if (result.terms_[name] == 0)
            result.terms_.erase(name);
    }
    if (rhs.aligned_)
        result.aligned_ = rhs.aligned_;
    return result;
}

bool
Bound::isConstant() const
{
    return terms_.empty() && !aligned_;
}

std::int64_t
Bound::evaluate(const ParamBindings &params) const
{
    std::int64_t value = constant_;
    for (const auto &[name, coeff] : terms_) {
        auto it = params.find(name);
        if (it == params.end())
            fatal("unbound loop-bound parameter '", name, "'");
        value += coeff * it->second;
    }
    if (aligned_) {
        std::int64_t lo = aligned_->lower.evaluate(params);
        std::int64_t hi = aligned_->upper.evaluate(params);
        std::int64_t trip = hi - lo + 1;
        if (trip < 0)
            trip = 0;
        value += lo + (trip / aligned_->factor) * aligned_->factor - 1;
    }
    return value;
}

void
Bound::collectParamNames(std::vector<std::string> &names) const
{
    for (const auto &[name, coeff] : terms_) {
        if (coeff != 0)
            names.push_back(name);
    }
    if (aligned_) {
        aligned_->lower.collectParamNames(names);
        aligned_->upper.collectParamNames(names);
    }
}

std::string
Bound::toString() const
{
    std::ostringstream os;
    bool printed = false;
    for (const auto &[name, coeff] : terms_) {
        if (coeff == 0)
            continue;
        if (printed && coeff > 0)
            os << " + ";
        if (coeff == 1) {
            os << name;
        } else if (coeff == -1) {
            os << "-" << name;
        } else if (coeff < 0 && printed) {
            os << " - " << -coeff << "*" << name;
        } else {
            os << coeff << "*" << name;
        }
        printed = true;
    }
    if (aligned_) {
        if (printed)
            os << " + ";
        os << "align(" << aligned_->lower.toString() << ", "
           << aligned_->upper.toString() << ", " << aligned_->factor << ")";
        printed = true;
    }
    if (constant_ != 0 || !printed) {
        if (printed && constant_ > 0)
            os << " + " << constant_;
        else if (printed && constant_ < 0)
            os << " - " << -constant_;
        else
            os << constant_;
    }
    return os.str();
}

bool
Bound::operator==(const Bound &other) const
{
    if (constant_ != other.constant_ || terms_ != other.terms_)
        return false;
    if (!aligned_ && !other.aligned_)
        return true;
    if (!aligned_ || !other.aligned_)
        return false;
    return *aligned_ == *other.aligned_;
}

} // namespace ujam
