/**
 * @file
 * Assignment statements.
 *
 * A statement assigns an expression either to an array element (the
 * common case in the input language) or to a compiler-generated
 * scalar temporary (produced by scalar replacement).
 */

#ifndef UJAM_IR_STMT_HH
#define UJAM_IR_STMT_HH

#include <functional>
#include <string>

#include "ir/expr.hh"
#include "ir/source_loc.hh"

namespace ujam
{

/**
 * A single statement: an assignment, or a software prefetch.
 */
class Stmt
{
  public:
    Stmt() = default;

    /** @return A statement assigning rhs to an array element. */
    static Stmt assignArray(ArrayRef lhs, ExprPtr rhs);

    /** @return A statement assigning rhs to a scalar variable. */
    static Stmt assignScalar(std::string lhs, ExprPtr rhs);

    /**
     * @return A software-prefetch statement: touch the line holding
     * ref without reading a value or stalling (section 3.2's
     * prefetch-issue model made concrete).
     */
    static Stmt prefetch(ArrayRef ref);

    /** @return True iff this is a prefetch statement. */
    bool isPrefetch() const { return is_prefetch_; }

    /** @pre isPrefetch() */
    const ArrayRef &prefetchRef() const;

    /** @return True iff the destination is an array element. */
    bool lhsIsArray() const { return lhs_is_array_; }

    /** @pre lhsIsArray() */
    const ArrayRef &lhsRef() const;

    /** @pre !lhsIsArray() */
    const std::string &lhsScalar() const;

    /** @return The right-hand side. */
    const ExprPtr &rhs() const { return rhs_; }

    /** Replace the right-hand side. */
    void setRhs(ExprPtr rhs) { rhs_ = std::move(rhs); }

    /** @return The number of floating-point operations on the RHS. */
    std::size_t countFlops() const { return rhs_ ? rhs_->countFlops() : 0; }

    /**
     * Invoke fn on every array access: first the RHS reads in source
     * order, then the LHS write (if any) with is_write == true.
     */
    void forEachAccess(
        const std::function<void(const ArrayRef &, bool is_write)> &fn) const;

    /**
     * @return True iff the statement is a recognized reduction: the
     * LHS array element also appears on the RHS with identical
     * subscripts under a top-level +, e.g. a(j) = a(j) + ...
     * Reduction dependences may be reordered by unroll-and-jam.
     */
    bool isReduction() const;

    /** @return Source rendering with placeholder induction names. */
    std::string toString() const;

    /** @return The statement's source position (unknown if built). */
    const SourceLoc &loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = loc; }

  private:
    SourceLoc loc_;
    bool lhs_is_array_ = false;
    bool is_prefetch_ = false;
    ArrayRef lhs_ref_;   //!< assignment target, or prefetch address
    std::string lhs_scalar_;
    ExprPtr rhs_;
};

} // namespace ujam

#endif // UJAM_IR_STMT_HH
