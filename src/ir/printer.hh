/**
 * @file
 * Source-level rendering of IR.
 *
 * Emits the same Fortran-like surface syntax the parser accepts, so a
 * printed program can be parsed back (round-trip tested).
 */

#ifndef UJAM_IR_PRINTER_HH
#define UJAM_IR_PRINTER_HH

#include <string>

#include "ir/loop_nest.hh"

namespace ujam
{

/** @return expr rendered with the given induction-variable names. */
std::string renderExpr(const ExprPtr &expr,
                       const std::vector<std::string> &ivs);

/** @return stmt rendered with the given induction-variable names. */
std::string renderStmt(const Stmt &stmt,
                       const std::vector<std::string> &ivs);

/** @return The nest as indented source text. */
std::string renderLoopNest(const LoopNest &nest);

/** @return The whole program: declarations, parameters, nests. */
std::string renderProgram(const Program &program);

} // namespace ujam

#endif // UJAM_IR_PRINTER_HH
