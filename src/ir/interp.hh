/**
 * @file
 * Reference interpreter for IR programs.
 *
 * Executes a Program over concrete parameter bindings with Fortran
 * column-major arrays. Used three ways:
 *  - as the semantic oracle for transformation tests (original and
 *    transformed programs must compute the same array contents),
 *  - as the address generator feeding the cache simulator, via the
 *    access callback, and
 *  - to count dynamic loads/stores/iterations.
 *
 * Arrays are allocated with a guard halo so transformed code that
 * touches a small margin outside the declared extents (as real
 * unroll-and-jammed Fortran does) stays well defined; accesses beyond
 * the halo raise a fatal error.
 */

#ifndef UJAM_IR_INTERP_HH
#define UJAM_IR_INTERP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** Kind of a dynamic memory access reported to the callback. */
enum class MemAccessKind
{
    Read,
    Write,
    Prefetch //!< touches the line; never stalls, returns no value
};

/**
 * Interprets a Program.
 */
class Interpreter
{
  public:
    /** Width of the out-of-bounds guard halo, in elements per side. */
    static constexpr std::int64_t haloElems = 8;

    /**
     * Notification for every dynamic array access.
     * @param address Element address in the global element space.
     * @param kind    Read, Write or Prefetch.
     */
    using AccessCallback =
        std::function<void(std::int64_t address, MemAccessKind kind)>;

    /**
     * Construct and allocate arrays.
     *
     * @param program   The program; array extents are evaluated now.
     * @param overrides Parameter values overriding program defaults.
     */
    explicit Interpreter(const Program &program,
                         const ParamBindings &overrides = {});

    /** Fill every array with deterministic values in [1, 2). */
    void seedArrays(std::uint64_t seed);

    /** Install an access callback (pass nullptr to remove). */
    void setAccessCallback(AccessCallback callback);

    /** Execute every nest of the program, in order. */
    void run();

    /** Execute a single nest (shares array/scalar state). */
    void runNest(const LoopNest &nest);

    /** @return The contents of the named array (including halo). */
    const std::vector<double> &arrayData(const std::string &name) const;

    /** @return Element (1-based subscripts) of the named array. */
    double element(const std::string &name,
                   const std::vector<std::int64_t> &subscripts) const;

    /** @return Current value of a scalar variable (0.0 if unset). */
    double scalar(const std::string &name) const;

    /** @return The resolved parameter bindings. */
    const ParamBindings &params() const { return params_; }

    /** @return Global element address of a 1-based subscript tuple. */
    std::int64_t elementAddress(
        const std::string &name,
        const std::vector<std::int64_t> &subscripts) const;

    /** Dynamic statistics. */
    std::uint64_t loadCount() const { return loads_; }
    std::uint64_t storeCount() const { return stores_; }
    std::uint64_t prefetchCount() const { return prefetches_; }
    std::uint64_t iterationCount() const { return iterations_; }
    /** Pre/postheader statements executed (once per outer iteration). */
    std::uint64_t headerStmtCount() const { return header_stmts_; }

    /** Observed min/max of one subscript dimension of one array. */
    struct SubscriptRange
    {
        std::int64_t min = 0;
        std::int64_t max = 0;
    };

    /**
     * Record, for every executed access, the min/max subscript per
     * array dimension (1-based, pre-halo values). Off by default --
     * the bookkeeping costs one map probe per access.
     */
    void trackSubscriptRanges(bool enabled);

    /**
     * @return Observed ranges per array, one entry per dimension, for
     * arrays that were actually accessed while tracking was enabled.
     */
    const std::map<std::string, std::vector<SubscriptRange>> &
    observedSubscriptRanges() const
    {
        return observed_;
    }

    /**
     * Compare array contents with another interpreter over the same
     * program shape.
     *
     * @param other   The other interpreter.
     * @param rel_tol Relative tolerance (reassociation headroom).
     * @return Empty string on match, else a description of the first
     *         mismatch.
     */
    std::string compareArrays(const Interpreter &other,
                              double rel_tol) const;

  private:
    struct ArrayStorage
    {
        std::string name;
        std::vector<std::int64_t> extents;  //!< declared extents
        std::vector<std::int64_t> strides;  //!< element strides w/ halo
        std::int64_t base = 0;              //!< global element base
        std::vector<double> data;           //!< includes halo margins
    };

    const ArrayStorage &storage(const std::string &name) const;
    ArrayStorage &storage(const std::string &name);

    /** Flat in-array index of a subscript vector; fatal past halo. */
    std::int64_t flatIndex(const ArrayStorage &array,
                           const ArrayRef &ref) const;

    double evalExpr(const Expr &expr);
    double readRef(const ArrayRef &ref);
    void writeRef(const ArrayRef &ref, double value);
    void execStmt(const Stmt &stmt);
    void execLoops(const LoopNest &nest, std::size_t level);

    const Program &program_;
    ParamBindings params_;
    std::map<std::string, std::size_t> array_index_;
    std::vector<ArrayStorage> arrays_;
    std::map<std::string, double> scalars_;
    std::vector<std::int64_t> iv_values_;
    AccessCallback callback_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t prefetches_ = 0;
    std::uint64_t iterations_ = 0;
    std::uint64_t header_stmts_ = 0;
    bool trackRanges_ = false;
    // Mutable: flatIndex is const and shared by read and write paths;
    // observation does not change program semantics.
    mutable std::map<std::string, std::vector<SubscriptRange>> observed_;
};

} // namespace ujam

#endif // UJAM_IR_INTERP_HH
