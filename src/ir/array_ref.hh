/**
 * @file
 * Array references in the linear-algebra form of Wolf & Lam.
 *
 * A reference to a d-dimensional array inside a depth-n loop nest is
 * f(i) = H i + c with H a d x n integer matrix and c a d-element
 * integer offset. Two references are *uniformly generated* when they
 * name the same array and share H; the reuse analysis partitions
 * references on exactly that basis, so the IR stores references in
 * this form natively instead of as expression trees.
 */

#ifndef UJAM_IR_ARRAY_REF_HH
#define UJAM_IR_ARRAY_REF_HH

#include <string>
#include <vector>

#include "ir/source_loc.hh"
#include "linalg/int_vector.hh"
#include "linalg/rat_matrix.hh"

namespace ujam
{

/**
 * An affine array reference: array name plus (H, c).
 */
class ArrayRef
{
  public:
    /** Construct an empty (invalid) reference. */
    ArrayRef() = default;

    /**
     * Construct a reference.
     *
     * @param array   Array name.
     * @param rows    Subscript matrix H, one IntVector per array
     *                dimension, each of length nest depth.
     * @param offset  Constant vector c, one entry per array dimension.
     */
    ArrayRef(std::string array, std::vector<IntVector> rows,
             IntVector offset);

    /** @return The array name. */
    const std::string &array() const { return array_; }

    /** @return Number of array dimensions (rows of H). */
    std::size_t dims() const { return rows_.size(); }

    /** @return Loop-nest depth (columns of H). */
    std::size_t depth() const;

    /** @return Row d of H. */
    const IntVector &row(std::size_t d) const { return rows_[d]; }

    /** @return All rows of H. */
    const std::vector<IntVector> &rows() const { return rows_; }

    /** @return The constant offset vector c. */
    const IntVector &offset() const { return offset_; }

    /** @return H as a rational matrix (dims() x depth()). */
    RatMatrix subscriptMatrix() const;

    /**
     * @return H with its first row zeroed -- the spatial subscript
     * matrix Hs. Column-major storage makes the first subscript the
     * contiguous one, so references differing only in it can share a
     * cache line.
     */
    RatMatrix spatialSubscriptMatrix() const;

    /** @return c with its first entry zeroed (spatial offset). */
    IntVector spatialOffset() const;

    /**
     * @return True iff every row and every column of H has at most one
     * nonzero entry (the SIV separable condition of paper section 3.5).
     */
    bool isSivSeparable() const;

    /**
     * @return True iff the reference has the same H as other (same
     * array, same subscript matrix) -- i.e. they are uniformly
     * generated.
     */
    bool uniformlyGeneratedWith(const ArrayRef &other) const;

    /** @return A copy with offset c + H * shift (an unroll copy). */
    ArrayRef shifted(const IntVector &shift) const;

    /**
     * @return The loop (column) indexing array dimension d, or -1 if
     * the row is all zero. @pre isSivSeparable().
     */
    int loopForDim(std::size_t d) const;

    /**
     * @return The coefficient of loop k across all rows, and the row
     * it appears in, as (row, coeff); (-1, 0) if the column is zero.
     * @pre isSivSeparable().
     */
    std::pair<int, std::int64_t> termForLoop(std::size_t k) const;

    /**
     * Structural equality: array, H and c. The source location is
     * deliberately ignored -- two textually distinct references to
     * the same element are the same reference to every analysis.
     */
    bool
    operator==(const ArrayRef &other) const
    {
        return array_ == other.array_ && rows_ == other.rows_ &&
               offset_ == other.offset_;
    }

    /** @return The reference's source position (unknown if built). */
    const SourceLoc &loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = loc; }

    /** @return "a(i+1, j)"-style rendering given loop variable names. */
    std::string toString(const std::vector<std::string> &ivs) const;

    /** @return Rendering with placeholder names i1..in. */
    std::string toString() const;

  private:
    std::string array_;
    std::vector<IntVector> rows_;
    IntVector offset_;
    SourceLoc loc_;
};

} // namespace ujam

#endif // UJAM_IR_ARRAY_REF_HH
