/**
 * @file
 * Canonical IR serialization for content addressing.
 *
 * canonicalProgram() renders a Program into a deterministic byte
 * string that captures exactly the inputs the optimization pipeline
 * consumes -- parameters, array shapes, and per-nest loops and
 * statements -- and nothing it does not: source locations,
 * whitespace, comments and statement formatting in the original DSL
 * text all vanish. Two programs that parse to structurally identical
 * IR therefore serialize identically, which is what makes the
 * rendering a safe cache key for analysis and transformation results
 * (the pipeline is a pure function of this IR, the machine model and
 * the pipeline configuration).
 */

#ifndef UJAM_IR_FINGERPRINT_HH
#define UJAM_IR_FINGERPRINT_HH

#include <string>

#include "ir/loop_nest.hh"

namespace ujam
{

/** @return The nest's canonical rendering (loops, pre/body/post). */
std::string canonicalNest(const LoopNest &nest);

/**
 * @return The program's canonical rendering: parameter defaults in
 * name order, array declarations in declaration order, then every
 * nest via canonicalNest() in program order.
 */
std::string canonicalProgram(const Program &program);

} // namespace ujam

#endif // UJAM_IR_FINGERPRINT_HH
