#include "ir/validate.hh"

#include <set>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

// --- basic well-formedness ------------------------------------------

void
checkStmts(const Program &program, const LoopNest &nest,
           const std::vector<Stmt> &stmts, const char *where,
           std::vector<std::string> &problems)
{
    const std::string nest_name =
        nest.name().empty() ? "<unnamed>" : nest.name();
    auto check_ref = [&](const ArrayRef &ref) {
            if (!program.hasArray(ref.array())) {
                problems.push_back(concat("nest ", nest_name, " ", where,
                                          ": undeclared array '",
                                          ref.array(), "'"));
                return;
            }
            const ArrayDecl &decl = program.array(ref.array());
            if (decl.extents.size() != ref.dims()) {
                problems.push_back(concat(
                    "nest ", nest_name, " ", where, ": array '",
                    ref.array(), "' has rank ", decl.extents.size(),
                    " but is referenced with ", ref.dims(),
                    " subscripts"));
            }
            if (ref.depth() != nest.depth()) {
                problems.push_back(concat(
                    "nest ", nest_name, " ", where, ": reference to '",
                    ref.array(), "' has subscript depth ", ref.depth(),
                    " in a depth-", nest.depth(), " nest"));
            }
    };
    for (const Stmt &stmt : stmts) {
        if (stmt.isPrefetch())
            check_ref(stmt.prefetchRef());
        else
            stmt.forEachAccess(
                [&](const ArrayRef &ref, bool) { check_ref(ref); });
    }
}

// --- strict transformed-nest invariants -----------------------------

/** Per-nest context shared by the statement-level checks. */
struct StrictChecker
{
    const Program &program;
    const LoopNest &nest;
    const ValidateOptions &options;
    std::vector<std::string> &problems;

    std::string nestName;
    std::set<std::string> ivs;
    // Evaluated [lo, hi] per loop; empty when any bound failed to
    // evaluate (the base validator already reported that).
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    bool rangesKnown = false;

    void
    note(const std::string &what)
    {
        problems.push_back(concat("nest ", nestName, ": ", what));
    }

    void
    checkLoops()
    {
        for (const Loop &loop : nest.loops()) {
            if (options.requireStepOne && loop.step != 1) {
                note(concat("loop '", loop.iv, "' has step ", loop.step,
                            " after normalization"));
            }
            std::vector<std::string> names;
            loop.lower.collectParamNames(names);
            loop.upper.collectParamNames(names);
            for (const std::string &name : names) {
                if (ivs.count(name)) {
                    note(concat("bound of loop '", loop.iv,
                                "' references induction variable '",
                                name, "'"));
                }
            }
        }
    }

    void
    evaluateRanges()
    {
        rangesKnown = true;
        for (const Loop &loop : nest.loops()) {
            try {
                std::int64_t lo =
                    loop.lower.evaluate(program.paramDefaults());
                std::int64_t hi =
                    loop.upper.evaluate(program.paramDefaults());
                ranges.emplace_back(lo, hi);
                if (hi < lo)
                    rangesKnown = false; // zero-trip: nothing accessed
            } catch (const FatalError &) {
                rangesKnown = false;
                return;
            }
        }
    }

    void
    checkRefReach(const ArrayRef &ref, const char *where)
    {
        if (!rangesKnown || !program.hasArray(ref.array()))
            return;
        const ArrayDecl &decl = program.array(ref.array());
        if (decl.extents.size() != ref.dims() ||
            ref.depth() != nest.depth()) {
            return; // rank/depth problems already reported
        }
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            std::int64_t extent;
            try {
                extent =
                    decl.extents[d].evaluate(program.paramDefaults());
            } catch (const FatalError &) {
                return;
            }
            std::int64_t min = ref.offset()[d];
            std::int64_t max = ref.offset()[d];
            for (std::size_t k = 0; k < nest.depth(); ++k) {
                std::int64_t coeff = ref.row(d)[k];
                min += coeff * (coeff >= 0 ? ranges[k].first
                                           : ranges[k].second);
                max += coeff * (coeff >= 0 ? ranges[k].second
                                           : ranges[k].first);
            }
            if (min < 1 - options.haloElems ||
                max > extent + options.haloElems) {
                note(concat(where, ": reference to '", ref.array(),
                            "' dimension ", d + 1, " spans [", min, ", ",
                            max, "] outside extent ", extent, " + halo ",
                            options.haloElems));
                return;
            }
        }
    }

    void
    checkStmts(const std::vector<Stmt> &stmts, const char *where)
    {
        for (const Stmt &stmt : stmts) {
            if (stmt.isPrefetch()) {
                checkRefReach(stmt.prefetchRef(), where);
                continue;
            }
            if (!stmt.lhsIsArray() && ivs.count(stmt.lhsScalar())) {
                note(concat(where, ": assignment to scalar '",
                            stmt.lhsScalar(),
                            "' shadows an induction variable"));
            }
            forEachScalarRead(stmt.rhs(), [&](const std::string &name) {
                if (ivs.count(name)) {
                    note(concat(where, ": scalar read of '", name,
                                "' names an induction variable (reads "
                                "0.0, not the loop counter)"));
                }
            });
            stmt.forEachAccess([&](const ArrayRef &ref, bool) {
                checkRefReach(ref, where);
            });
        }
    }
};

/** Shared by both program-level validators. */
void
checkArrayExtents(const Program &program,
                  std::vector<std::string> &problems)
{
    for (const ArrayDecl &decl : program.arrays()) {
        for (const Bound &extent : decl.extents) {
            try {
                extent.evaluate(program.paramDefaults());
            } catch (const FatalError &err) {
                problems.push_back(concat("array '", decl.name, "': ",
                                          err.what()));
            }
        }
    }
}

} // namespace

std::vector<std::string>
validateNest(const Program &program, const LoopNest &nest)
{
    std::vector<std::string> problems;
    const std::string nest_name =
        nest.name().empty() ? "<unnamed>" : nest.name();

    std::set<std::string> ivs;
    for (const Loop &loop : nest.loops()) {
        if (!ivs.insert(loop.iv).second) {
            problems.push_back(concat("nest ", nest_name,
                                      ": duplicate induction variable '",
                                      loop.iv, "'"));
        }
        if (loop.step < 1) {
            problems.push_back(concat("nest ", nest_name, ": loop '",
                                      loop.iv, "' has non-positive step ",
                                      loop.step));
        }
        try {
            loop.lower.evaluate(program.paramDefaults());
            loop.upper.evaluate(program.paramDefaults());
        } catch (const FatalError &err) {
            problems.push_back(concat("nest ", nest_name, ": loop '",
                                      loop.iv, "': ", err.what()));
        }
    }
    if (nest.body().empty())
        problems.push_back(concat("nest ", nest_name, ": empty body"));

    checkStmts(program, nest, nest.body(), "body", problems);
    checkStmts(program, nest, nest.preheader(), "preheader", problems);
    checkStmts(program, nest, nest.postheader(), "postheader", problems);
    return problems;
}

std::vector<std::string>
validateProgram(const Program &program)
{
    std::vector<std::string> problems;
    checkArrayExtents(program, problems);
    for (const LoopNest &nest : program.nests()) {
        std::vector<std::string> nest_problems =
            validateNest(program, nest);
        problems.insert(problems.end(), nest_problems.begin(),
                        nest_problems.end());
    }
    return problems;
}

std::vector<std::string>
validateNestStrict(const Program &program, const LoopNest &nest,
                   const ValidateOptions &options)
{
    std::vector<std::string> problems = validateNest(program, nest);

    StrictChecker checker{program, nest, options, problems, {}, {}, {},
                          false};
    checker.nestName = nest.name().empty() ? "<unnamed>" : nest.name();
    for (const Loop &loop : nest.loops())
        checker.ivs.insert(loop.iv);

    checker.checkLoops();
    if (options.checkReach)
        checker.evaluateRanges();
    else
        checker.rangesKnown = false;

    checker.checkStmts(nest.body(), "body");
    checker.checkStmts(nest.preheader(), "preheader");
    checker.checkStmts(nest.postheader(), "postheader");
    return problems;
}

std::vector<std::string>
validateProgramStrict(const Program &program,
                      const ValidateOptions &options)
{
    std::vector<std::string> problems;
    checkArrayExtents(program, problems);
    for (const LoopNest &nest : program.nests()) {
        std::vector<std::string> nest_problems =
            validateNestStrict(program, nest, options);
        problems.insert(problems.end(), nest_problems.begin(),
                        nest_problems.end());
    }
    return problems;
}

} // namespace ujam
