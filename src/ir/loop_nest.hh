/**
 * @file
 * Perfect loop nests.
 *
 * The analyses of this library operate on perfect nests of DO loops
 * around a block of assignment statements -- the shape unroll-and-jam
 * applies to. Loops are numbered outermost (0) to innermost
 * (depth-1), matching the paper's index-vector convention.
 *
 * A nest optionally carries a preheader and a postheader: statements
 * executed once per iteration of the outer loops, immediately before
 * (after) the innermost loop, with the innermost induction variable
 * bound to its first (last executed) value; neither runs when the
 * innermost loop has no iterations. Scalar replacement emits its
 * initializing loads in the preheader and hoisted stores in the
 * postheader.
 */

#ifndef UJAM_IR_LOOP_NEST_HH
#define UJAM_IR_LOOP_NEST_HH

#include <string>
#include <vector>

#include "ir/bound.hh"
#include "ir/source_loc.hh"
#include "ir/stmt.hh"

namespace ujam
{

/**
 * One DO loop: induction variable, bounds and step.
 */
struct Loop
{
    std::string iv;        //!< induction variable name
    Bound lower;           //!< first value
    Bound upper;           //!< last value (inclusive)
    std::int64_t step = 1; //!< increment; always positive
    SourceLoc loc;         //!< the 'do' keyword's source position

    /** @return Trip count for concrete parameter bindings (>= 0). */
    std::int64_t tripCount(const ParamBindings &params) const;
};

/**
 * One array access inside a nest body, with its position.
 */
struct Access
{
    ArrayRef ref;          //!< the reference
    bool isWrite = false;  //!< true for the LHS of an assignment
    std::size_t stmt = 0;  //!< index of the owning statement
    std::size_t ordinal = 0; //!< position within all accesses of the body

    bool operator==(const Access &other) const = default;
};

/**
 * A perfect loop nest.
 */
class LoopNest
{
  public:
    LoopNest() = default;

    /** Construct with loops and body statements. */
    LoopNest(std::vector<Loop> loops, std::vector<Stmt> body);

    /** @return Nest depth (number of loops). */
    std::size_t depth() const { return loops_.size(); }

    /** @return Loop k (0 == outermost). */
    const Loop &loop(std::size_t k) const { return loops_[k]; }
    Loop &loop(std::size_t k) { return loops_[k]; }

    const std::vector<Loop> &loops() const { return loops_; }

    const std::vector<Stmt> &body() const { return body_; }
    std::vector<Stmt> &body() { return body_; }

    const std::vector<Stmt> &preheader() const { return preheader_; }
    std::vector<Stmt> &preheader() { return preheader_; }

    const std::vector<Stmt> &postheader() const { return postheader_; }
    std::vector<Stmt> &postheader() { return postheader_; }

    /** @return Induction-variable names, outermost first. */
    std::vector<std::string> ivNames() const;

    /** @return All body array accesses in execution order. */
    std::vector<Access> accesses() const;

    /** @return Floating-point operations in one body execution. */
    std::size_t bodyFlops() const;

    /**
     * @return True iff every access is SIV separable and has subscript
     * depth equal to the nest depth.
     */
    bool allRefsAnalyzable() const;

    /** Human-readable name used in reports. */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

  private:
    std::string name_;
    std::vector<Loop> loops_;
    std::vector<Stmt> preheader_;
    std::vector<Stmt> postheader_;
    std::vector<Stmt> body_;
};

/**
 * A declared array: name and per-dimension extents.
 *
 * Arrays are Fortran-like: column-major, subscripts run from 1 to the
 * extent (transforms may read a small halo outside; the interpreter
 * allocates guard margins).
 */
struct ArrayDecl
{
    std::string name;
    std::vector<Bound> extents;
};

/**
 * A compilation unit: parameters, arrays and an ordered list of
 * nests. Transformations that split a nest (fringe loops) append
 * nests that execute after the main one.
 */
class Program
{
  public:
    /** Declare an array; replaces any previous declaration. */
    void declareArray(ArrayDecl decl);

    /** @return The declaration for name; fatal if undeclared. */
    const ArrayDecl &array(const std::string &name) const;

    /** @return True iff name is declared. */
    bool hasArray(const std::string &name) const;

    /** @return All declarations in declaration order. */
    const std::vector<ArrayDecl> &arrays() const { return arrays_; }

    /** Set a default value for a symbolic parameter. */
    void setParamDefault(const std::string &name, std::int64_t value);

    /** @return Declared parameter defaults. */
    const ParamBindings &paramDefaults() const { return param_defaults_; }

    /** Append a nest. */
    void addNest(LoopNest nest);

    const std::vector<LoopNest> &nests() const { return nests_; }
    std::vector<LoopNest> &nests() { return nests_; }

    /**
     * Name of the source this program was parsed from (a file path or
     * "<input>"); purely informational, used by diagnostics.
     */
    const std::string &sourceName() const { return source_name_; }
    void setSourceName(std::string name) { source_name_ = std::move(name); }

  private:
    std::vector<ArrayDecl> arrays_;
    ParamBindings param_defaults_;
    std::vector<LoopNest> nests_;
    std::string source_name_ = "<input>";
};

} // namespace ujam

#endif // UJAM_IR_LOOP_NEST_HH
