#include "ir/stmt.hh"

#include "support/diagnostics.hh"

namespace ujam
{

Stmt
Stmt::assignArray(ArrayRef lhs, ExprPtr rhs)
{
    UJAM_ASSERT(rhs, "statement with null RHS");
    Stmt stmt;
    stmt.lhs_is_array_ = true;
    stmt.lhs_ref_ = std::move(lhs);
    stmt.rhs_ = std::move(rhs);
    return stmt;
}

Stmt
Stmt::assignScalar(std::string lhs, ExprPtr rhs)
{
    UJAM_ASSERT(rhs, "statement with null RHS");
    Stmt stmt;
    stmt.lhs_is_array_ = false;
    stmt.lhs_scalar_ = std::move(lhs);
    stmt.rhs_ = std::move(rhs);
    return stmt;
}

Stmt
Stmt::prefetch(ArrayRef ref)
{
    Stmt stmt;
    stmt.is_prefetch_ = true;
    stmt.lhs_ref_ = std::move(ref);
    return stmt;
}

const ArrayRef &
Stmt::prefetchRef() const
{
    UJAM_ASSERT(is_prefetch_, "not a prefetch statement");
    return lhs_ref_;
}

const ArrayRef &
Stmt::lhsRef() const
{
    UJAM_ASSERT(lhs_is_array_, "LHS is not an array reference");
    return lhs_ref_;
}

const std::string &
Stmt::lhsScalar() const
{
    UJAM_ASSERT(!lhs_is_array_, "LHS is not a scalar");
    return lhs_scalar_;
}

void
Stmt::forEachAccess(
    const std::function<void(const ArrayRef &, bool)> &fn) const
{
    // Prefetches are hints, not data accesses: the reuse and
    // dependence analyses must not see them.
    if (is_prefetch_)
        return;
    if (rhs_)
        rhs_->forEachArrayRead([&](const ArrayRef &ref) { fn(ref, false); });
    if (lhs_is_array_)
        fn(lhs_ref_, true);
}

bool
Stmt::isReduction() const
{
    if (!lhs_is_array_ || !rhs_)
        return false;
    // Walk top-level chains of + looking for a read of the LHS element.
    const Expr *node = rhs_.get();
    std::vector<const Expr *> work{node};
    while (!work.empty()) {
        const Expr *e = work.back();
        work.pop_back();
        if (e->kind() == Expr::Kind::ArrayRead) {
            if (e->ref() == lhs_ref_)
                return true;
        } else if (e->kind() == Expr::Kind::Binary &&
                   e->op() == BinOp::Add) {
            work.push_back(e->lhs().get());
            work.push_back(e->rhs().get());
        }
    }
    return false;
}

std::string
Stmt::toString() const
{
    if (is_prefetch_)
        return concat("prefetch ", lhs_ref_.toString());
    std::string lhs =
        lhs_is_array_ ? lhs_ref_.toString() : lhs_scalar_;
    return concat(lhs, " = ", rhs_ ? rhs_->toString() : "<null>");
}

} // namespace ujam
