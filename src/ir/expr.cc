#include "ir/expr.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

const char *
binOpSpelling(BinOp op)
{
    switch (op) {
      case BinOp::Add:
        return "+";
      case BinOp::Sub:
        return "-";
      case BinOp::Mul:
        return "*";
      case BinOp::Div:
        return "/";
    }
    panic("unknown binary operator");
}

ExprPtr
Expr::constant(double value)
{
    auto node = std::shared_ptr<Expr>(new Expr(Kind::Constant));
    node->constant_ = value;
    return node;
}

ExprPtr
Expr::scalar(std::string name)
{
    auto node = std::shared_ptr<Expr>(new Expr(Kind::Scalar));
    node->scalar_ = std::move(name);
    return node;
}

ExprPtr
Expr::arrayRead(ArrayRef ref)
{
    auto node = std::shared_ptr<Expr>(new Expr(Kind::ArrayRead));
    node->ref_ = std::move(ref);
    return node;
}

ExprPtr
Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs)
{
    UJAM_ASSERT(lhs && rhs, "binary expression with null operand");
    auto node = std::shared_ptr<Expr>(new Expr(Kind::Binary));
    node->op_ = op;
    node->lhs_ = std::move(lhs);
    node->rhs_ = std::move(rhs);
    return node;
}

double
Expr::constantValue() const
{
    UJAM_ASSERT(kind_ == Kind::Constant, "not a constant");
    return constant_;
}

const std::string &
Expr::scalarName() const
{
    UJAM_ASSERT(kind_ == Kind::Scalar, "not a scalar");
    return scalar_;
}

const ArrayRef &
Expr::ref() const
{
    UJAM_ASSERT(kind_ == Kind::ArrayRead, "not an array read");
    return ref_;
}

BinOp
Expr::op() const
{
    UJAM_ASSERT(kind_ == Kind::Binary, "not a binary expression");
    return op_;
}

const ExprPtr &
Expr::lhs() const
{
    UJAM_ASSERT(kind_ == Kind::Binary, "not a binary expression");
    return lhs_;
}

const ExprPtr &
Expr::rhs() const
{
    UJAM_ASSERT(kind_ == Kind::Binary, "not a binary expression");
    return rhs_;
}

std::size_t
Expr::countFlops() const
{
    if (kind_ != Kind::Binary)
        return 0;
    return 1 + lhs_->countFlops() + rhs_->countFlops();
}

void
Expr::forEachArrayRead(
    const std::function<void(const ArrayRef &)> &fn) const
{
    switch (kind_) {
      case Kind::Constant:
      case Kind::Scalar:
        return;
      case Kind::ArrayRead:
        fn(ref_);
        return;
      case Kind::Binary:
        lhs_->forEachArrayRead(fn);
        rhs_->forEachArrayRead(fn);
        return;
    }
}

void
Expr::forEachScalarRead(
    const std::function<void(const std::string &)> &fn) const
{
    switch (kind_) {
      case Kind::Constant:
      case Kind::ArrayRead:
        return;
      case Kind::Scalar:
        fn(scalar_);
        return;
      case Kind::Binary:
        lhs_->forEachScalarRead(fn);
        rhs_->forEachScalarRead(fn);
        return;
    }
}

ExprPtr
Expr::rewriteArrayReads(
    const std::function<ExprPtr(const ArrayRef &)> &fn) const
{
    switch (kind_) {
      case Kind::Constant:
        return constant(constant_);
      case Kind::Scalar:
        return scalar(scalar_);
      case Kind::ArrayRead: {
        ExprPtr replacement = fn(ref_);
        return replacement ? replacement : arrayRead(ref_);
      }
      case Kind::Binary: {
        // Sequence explicitly: callers count reads in source order and
        // argument evaluation order is unspecified.
        ExprPtr new_lhs = lhs_->rewriteArrayReads(fn);
        ExprPtr new_rhs = rhs_->rewriteArrayReads(fn);
        return binary(op_, std::move(new_lhs), std::move(new_rhs));
      }
    }
    panic("unknown expression kind");
}

std::string
Expr::toString() const
{
    switch (kind_) {
      case Kind::Constant: {
        std::ostringstream os;
        os << constant_;
        return os.str();
      }
      case Kind::Scalar:
        return scalar_;
      case Kind::ArrayRead:
        return ref_.toString();
      case Kind::Binary:
        return concat("(", lhs_->toString(), " ", binOpSpelling(op_), " ",
                      rhs_->toString(), ")");
    }
    panic("unknown expression kind");
}

} // namespace ujam
