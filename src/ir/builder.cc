#include "ir/builder.hh"

#include "support/diagnostics.hh"

namespace ujam
{

NestBuilder &
NestBuilder::loop(const std::string &iv, Bound lower, Bound upper,
                  std::int64_t step)
{
    for (const Loop &existing : loops_) {
        if (existing.iv == iv)
            fatal("duplicate induction variable '", iv, "'");
    }
    loops_.push_back(Loop{iv, std::move(lower), std::move(upper), step});
    return *this;
}

NestBuilder &
NestBuilder::loop(const std::string &iv, std::int64_t lower,
                  std::int64_t upper, std::int64_t step)
{
    return loop(iv, Bound::constant(lower), Bound::constant(upper), step);
}

std::size_t
NestBuilder::ivPosition(const std::string &iv) const
{
    for (std::size_t k = 0; k < loops_.size(); ++k) {
        if (loops_[k].iv == iv)
            return k;
    }
    fatal("unknown induction variable '", iv, "' in subscript");
}

ArrayRef
NestBuilder::ref(const std::string &array,
                 const std::vector<Subscript> &subs) const
{
    std::vector<IntVector> rows;
    IntVector offset(subs.size());
    for (std::size_t d = 0; d < subs.size(); ++d) {
        IntVector row(loops_.size());
        if (!subs[d].iv.empty() && subs[d].coeff != 0)
            row[ivPosition(subs[d].iv)] = subs[d].coeff;
        rows.push_back(std::move(row));
        offset[d] = subs[d].offset;
    }
    return ArrayRef(array, std::move(rows), std::move(offset));
}

ExprPtr
NestBuilder::read(const std::string &array,
                  const std::vector<Subscript> &subs) const
{
    return Expr::arrayRead(ref(array, subs));
}

NestBuilder &
NestBuilder::assign(const std::string &array,
                    const std::vector<Subscript> &subs, ExprPtr rhs)
{
    body_.push_back(Stmt::assignArray(ref(array, subs), std::move(rhs)));
    return *this;
}

NestBuilder &
NestBuilder::name(std::string nest_name)
{
    name_ = std::move(nest_name);
    return *this;
}

LoopNest
NestBuilder::build() const
{
    UJAM_ASSERT(!loops_.empty(), "nest with no loops");
    UJAM_ASSERT(!body_.empty(), "nest with no statements");
    LoopNest nest(loops_, body_);
    nest.setName(name_);
    return nest;
}

ExprPtr
add(ExprPtr lhs, ExprPtr rhs)
{
    return Expr::binary(BinOp::Add, std::move(lhs), std::move(rhs));
}

ExprPtr
subtract(ExprPtr lhs, ExprPtr rhs)
{
    return Expr::binary(BinOp::Sub, std::move(lhs), std::move(rhs));
}

ExprPtr
mul(ExprPtr lhs, ExprPtr rhs)
{
    return Expr::binary(BinOp::Mul, std::move(lhs), std::move(rhs));
}

ExprPtr
divide(ExprPtr lhs, ExprPtr rhs)
{
    return Expr::binary(BinOp::Div, std::move(lhs), std::move(rhs));
}

ExprPtr
lit(double value)
{
    return Expr::constant(value);
}

} // namespace ujam
