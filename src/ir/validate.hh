/**
 * @file
 * IR validation: the basic well-formedness checks every freshly
 * parsed program must pass, plus the strict invariants every
 * *transformed* nest must also keep (the transformation safety net's
 * per-stage gate).
 *
 * Basic checks (validateProgram/validateNest): unique induction
 * variables per nest, positive steps, declared arrays with matching
 * ranks, subscript depths equal to the nest depth, and evaluable
 * bounds/extents under the program's parameter defaults.
 *
 * Strict checks (validateProgramStrict/validateNestStrict) layer on:
 *
 *  - internal consistency of every reference: all rows of H and the
 *    offset c agree on the array's rank, every row has one column per
 *    loop (acyclic nest structure: subscripts depend on the nest's
 *    own loops only, positionally);
 *  - loop-variable scoping: no statement assigns a scalar that
 *    shadows an induction variable, and no loop bound references a
 *    name bound as an induction variable of the same nest;
 *  - subscript reach: under the program's parameter defaults, every
 *    reference stays within the declared extents plus the
 *    interpreter's guard halo over the whole iteration box (the
 *    margin real unroll-and-jam legitimately touches);
 *  - optionally, step-1 loops (required right after normalization).
 */

#ifndef UJAM_IR_VALIDATE_HH
#define UJAM_IR_VALIDATE_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Check a program for basic structural problems (see file comment).
 *
 * @return A list of human-readable problems; empty when valid.
 */
std::vector<std::string> validateProgram(const Program &program);

/** Like validateProgram but for one nest against a program's arrays. */
std::vector<std::string> validateNest(const Program &program,
                                      const LoopNest &nest);

/** Switches for the strict checks. */
struct ValidateOptions
{
    bool requireStepOne = false; //!< enforce post-normalization steps
    bool checkReach = true;      //!< subscript-reach vs extents + halo
    /** Elements past a declared extent the reach check tolerates. */
    std::int64_t haloElems = 8;
};

/**
 * Strictly validate one nest against a program's declarations.
 *
 * @return Human-readable problems; empty when the nest is valid.
 */
std::vector<std::string> validateNestStrict(
    const Program &program, const LoopNest &nest,
    const ValidateOptions &options = {});

/** Strictly validate every nest of a program. */
std::vector<std::string> validateProgramStrict(
    const Program &program, const ValidateOptions &options = {});

} // namespace ujam

#endif // UJAM_IR_VALIDATE_HH
