#include "ir/fingerprint.hh"

#include <sstream>

#include "ir/printer.hh"

namespace ujam
{

namespace
{

void
renderStmtList(std::ostringstream &os, const char *label,
               const std::vector<Stmt> &stmts,
               const std::vector<std::string> &ivs)
{
    for (const Stmt &stmt : stmts)
        os << "  " << label << " " << renderStmt(stmt, ivs) << "\n";
}

} // namespace

std::string
canonicalNest(const LoopNest &nest)
{
    std::ostringstream os;
    os << "nest \"" << nest.name() << "\" depth=" << nest.depth()
       << "\n";
    std::vector<std::string> ivs = nest.ivNames();
    for (std::size_t k = 0; k < nest.depth(); ++k) {
        const Loop &loop = nest.loop(k);
        os << "  loop " << loop.iv << " = " << loop.lower.toString()
           << " .. " << loop.upper.toString() << " step " << loop.step
           << "\n";
    }
    renderStmtList(os, "pre ", nest.preheader(), ivs);
    renderStmtList(os, "body", nest.body(), ivs);
    renderStmtList(os, "post", nest.postheader(), ivs);
    return os.str();
}

std::string
canonicalProgram(const Program &program)
{
    std::ostringstream os;
    os << "ujam-ir-v1\n";
    // ParamBindings is an ordered map, so iteration order is the
    // canonical name order already.
    for (const auto &[name, value] : program.paramDefaults())
        os << "param " << name << " = " << value << "\n";
    for (const ArrayDecl &decl : program.arrays()) {
        os << "array " << decl.name << "(";
        for (std::size_t d = 0; d < decl.extents.size(); ++d)
            os << (d ? ", " : "") << decl.extents[d].toString();
        os << ")\n";
    }
    for (const LoopNest &nest : program.nests())
        os << canonicalNest(nest);
    return os.str();
}

} // namespace ujam
