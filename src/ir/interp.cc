#include "ir/interp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** SplitMix64-style hash for deterministic array seeding. */
std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

Interpreter::Interpreter(const Program &program,
                         const ParamBindings &overrides)
    : program_(program), params_(program.paramDefaults())
{
    for (const auto &[name, value] : overrides)
        params_[name] = value;

    std::int64_t next_base = 0;
    for (const ArrayDecl &decl : program.arrays()) {
        ArrayStorage array;
        array.name = decl.name;
        std::int64_t total = 1;
        for (const Bound &extent : decl.extents) {
            std::int64_t ext = extent.evaluate(params_);
            if (ext < 1)
                fatal("array '", decl.name, "' has non-positive extent ",
                      ext);
            array.extents.push_back(ext);
            array.strides.push_back(total); // column-major, halo-padded
            total = checkedMul(total, ext + 2 * haloElems);
        }
        // Bit-exact differential runs need real storage; refuse sizes
        // that would thrash or OOM the host instead of hanging.
        constexpr std::int64_t max_elems = std::int64_t(1) << 26;
        if (total > max_elems) {
            fatal("array '", decl.name, "' needs ", total,
                  " elements (halo included); the interpreter caps "
                  "arrays at ", max_elems, " elements");
        }
        array.base = next_base;
        array.data.assign(static_cast<std::size_t>(total), 0.0);
        next_base += total;

        array_index_[array.name] = arrays_.size();
        arrays_.push_back(std::move(array));
    }
}

void
Interpreter::seedArrays(std::uint64_t seed)
{
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        ArrayStorage &array = arrays_[a];
        for (std::size_t i = 0; i < array.data.size(); ++i) {
            std::uint64_t h = mixHash(seed ^ mixHash(a * 0x10001ULL + i));
            // Values in [1, 2): safe divisors, no cancellation blowup.
            array.data[i] = 1.0 + static_cast<double>(h % 1000003) / 1000003.0;
        }
    }
}

void
Interpreter::setAccessCallback(AccessCallback callback)
{
    callback_ = std::move(callback);
}

void
Interpreter::trackSubscriptRanges(bool enabled)
{
    trackRanges_ = enabled;
}

const Interpreter::ArrayStorage &
Interpreter::storage(const std::string &name) const
{
    auto it = array_index_.find(name);
    if (it == array_index_.end())
        fatal("reference to undeclared array '", name, "'");
    return arrays_[it->second];
}

Interpreter::ArrayStorage &
Interpreter::storage(const std::string &name)
{
    auto it = array_index_.find(name);
    if (it == array_index_.end())
        fatal("reference to undeclared array '", name, "'");
    return arrays_[it->second];
}

std::int64_t
Interpreter::flatIndex(const ArrayStorage &array, const ArrayRef &ref) const
{
    UJAM_ASSERT(ref.dims() == array.extents.size(),
                "rank mismatch accessing '", array.name, "'");
    std::int64_t index = 0;
    for (std::size_t d = 0; d < ref.dims(); ++d) {
        std::int64_t sub = ref.offset()[d];
        const IntVector &row = ref.row(d);
        for (std::size_t k = 0; k < row.size(); ++k) {
            if (row[k] != 0)
                sub += row[k] * iv_values_[k];
        }
        // 1-based subscript with a halo margin on each side.
        std::int64_t shifted = sub - 1 + haloElems;
        if (shifted < 0 ||
            shifted >= array.extents[d] + 2 * haloElems) {
            fatal("subscript ", sub, " of dimension ", d + 1,
                  " of array '", array.name, "' is outside extent ",
                  array.extents[d], " plus halo");
        }
        if (trackRanges_) {
            auto [it, fresh] = observed_.try_emplace(array.name);
            if (fresh) {
                // Inverted sentinels; every dimension is visited by
                // this very loop, so they never leak out.
                it->second.assign(
                    array.extents.size(),
                    SubscriptRange{
                        std::numeric_limits<std::int64_t>::max(),
                        std::numeric_limits<std::int64_t>::min()});
            }
            SubscriptRange &range = it->second[d];
            range.min = std::min(range.min, sub);
            range.max = std::max(range.max, sub);
        }
        index += shifted * array.strides[d];
    }
    return index;
}

double
Interpreter::readRef(const ArrayRef &ref)
{
    const ArrayStorage &array = storage(ref.array());
    std::int64_t index = flatIndex(array, ref);
    ++loads_;
    if (callback_)
        callback_(array.base + index, MemAccessKind::Read);
    return array.data[static_cast<std::size_t>(index)];
}

void
Interpreter::writeRef(const ArrayRef &ref, double value)
{
    ArrayStorage &array = storage(ref.array());
    std::int64_t index = flatIndex(array, ref);
    ++stores_;
    if (callback_)
        callback_(array.base + index, MemAccessKind::Write);
    array.data[static_cast<std::size_t>(index)] = value;
}

double
Interpreter::evalExpr(const Expr &expr)
{
    switch (expr.kind()) {
      case Expr::Kind::Constant:
        return expr.constantValue();
      case Expr::Kind::Scalar: {
        auto it = scalars_.find(expr.scalarName());
        return it == scalars_.end() ? 0.0 : it->second;
      }
      case Expr::Kind::ArrayRead:
        return readRef(expr.ref());
      case Expr::Kind::Binary: {
        double lhs = evalExpr(*expr.lhs());
        double rhs = evalExpr(*expr.rhs());
        switch (expr.op()) {
          case BinOp::Add:
            return lhs + rhs;
          case BinOp::Sub:
            return lhs - rhs;
          case BinOp::Mul:
            return lhs * rhs;
          case BinOp::Div:
            return lhs / rhs;
        }
        panic("unknown binary operator");
      }
    }
    panic("unknown expression kind");
}

void
Interpreter::execStmt(const Stmt &stmt)
{
    if (stmt.isPrefetch()) {
        // A prefetch of an out-of-range address is dropped silently,
        // like real non-faulting prefetch instructions.
        const ArrayStorage &array = storage(stmt.prefetchRef().array());
        const ArrayRef &ref = stmt.prefetchRef();
        std::int64_t index = 0;
        bool in_range = true;
        for (std::size_t d = 0; d < ref.dims() && in_range; ++d) {
            std::int64_t sub = ref.offset()[d];
            for (std::size_t k = 0; k < ref.row(d).size(); ++k) {
                if (ref.row(d)[k] != 0)
                    sub += ref.row(d)[k] * iv_values_[k];
            }
            std::int64_t shifted = sub - 1 + haloElems;
            if (shifted < 0 ||
                shifted >= array.extents[d] + 2 * haloElems) {
                in_range = false;
            } else {
                index += shifted * array.strides[d];
            }
        }
        ++prefetches_;
        if (in_range && callback_)
            callback_(array.base + index, MemAccessKind::Prefetch);
        return;
    }
    double value = evalExpr(*stmt.rhs());
    if (stmt.lhsIsArray())
        writeRef(stmt.lhsRef(), value);
    else
        scalars_[stmt.lhsScalar()] = value;
}

void
Interpreter::execLoops(const LoopNest &nest, std::size_t level)
{
    if (level == nest.depth()) {
        ++iterations_;
        for (const Stmt &stmt : nest.body())
            execStmt(stmt);
        return;
    }
    const Loop &loop = nest.loop(level);
    if (loop.step < 1) {
        fatal("loop '", loop.iv, "' has step ", loop.step,
              "; interpretation would not terminate");
    }
    std::int64_t lo = loop.lower.evaluate(params_);
    std::int64_t hi = loop.upper.evaluate(params_);
    bool innermost = (level + 1 == nest.depth());
    // On entering the innermost loop, run the preheader once (per
    // surrounding outer iteration) with the innermost induction
    // variable at its lower bound.
    if (innermost && !nest.preheader().empty() && lo <= hi) {
        iv_values_[level] = lo;
        for (const Stmt &stmt : nest.preheader()) {
            execStmt(stmt);
            ++header_stmts_;
        }
    }
    std::int64_t last = lo;
    for (std::int64_t v = lo; v <= hi; v += loop.step) {
        iv_values_[level] = v;
        last = v;
        execLoops(nest, level + 1);
    }
    // The postheader runs after the innermost loop completed at least
    // one iteration, with its induction variable at the last value.
    if (innermost && !nest.postheader().empty() && lo <= hi) {
        iv_values_[level] = last;
        for (const Stmt &stmt : nest.postheader()) {
            execStmt(stmt);
            ++header_stmts_;
        }
    }
}

void
Interpreter::runNest(const LoopNest &nest)
{
    iv_values_.assign(nest.depth(), 0);
    if (nest.depth() == 0) {
        for (const Stmt &stmt : nest.preheader())
            execStmt(stmt);
        for (const Stmt &stmt : nest.body())
            execStmt(stmt);
        for (const Stmt &stmt : nest.postheader())
            execStmt(stmt);
        return;
    }
    execLoops(nest, 0);
}

void
Interpreter::run()
{
    for (const LoopNest &nest : program_.nests())
        runNest(nest);
}

const std::vector<double> &
Interpreter::arrayData(const std::string &name) const
{
    return storage(name).data;
}

double
Interpreter::element(const std::string &name,
                     const std::vector<std::int64_t> &subscripts) const
{
    const ArrayStorage &array = storage(name);
    UJAM_ASSERT(subscripts.size() == array.extents.size(),
                "rank mismatch reading '", name, "'");
    std::int64_t index = 0;
    for (std::size_t d = 0; d < subscripts.size(); ++d)
        index += (subscripts[d] - 1 + haloElems) * array.strides[d];
    return array.data[static_cast<std::size_t>(index)];
}

double
Interpreter::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

std::int64_t
Interpreter::elementAddress(
    const std::string &name,
    const std::vector<std::int64_t> &subscripts) const
{
    const ArrayStorage &array = storage(name);
    std::int64_t index = 0;
    for (std::size_t d = 0; d < subscripts.size(); ++d)
        index += (subscripts[d] - 1 + haloElems) * array.strides[d];
    return array.base + index;
}

std::string
Interpreter::compareArrays(const Interpreter &other, double rel_tol) const
{
    if (arrays_.size() != other.arrays_.size())
        return "array count mismatch";
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        const ArrayStorage &mine = arrays_[a];
        const ArrayStorage &theirs = other.arrays_[a];
        if (mine.name != theirs.name ||
            mine.data.size() != theirs.data.size()) {
            return concat("array shape mismatch at '", mine.name, "'");
        }
        for (std::size_t i = 0; i < mine.data.size(); ++i) {
            double x = mine.data[i];
            double y = theirs.data[i];
            double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
            if (std::fabs(x - y) > rel_tol * scale) {
                return concat("array '", mine.name, "' differs at flat ",
                              "index ", i, ": ", x, " vs ", y);
            }
        }
    }
    return "";
}

} // namespace ujam
