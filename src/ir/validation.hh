/**
 * @file
 * IR well-formedness checks.
 */

#ifndef UJAM_IR_VALIDATION_HH
#define UJAM_IR_VALIDATION_HH

#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Check a program for structural problems.
 *
 * Verifies: unique induction variables per nest, positive steps,
 * declared arrays with matching ranks, subscript depths equal to the
 * nest depth, and evaluable bounds/extents under the program's
 * parameter defaults.
 *
 * @return A list of human-readable problems; empty when valid.
 */
std::vector<std::string> validateProgram(const Program &program);

/** Like validateProgram but for one nest against a program's arrays. */
std::vector<std::string> validateNest(const Program &program,
                                      const LoopNest &nest);

} // namespace ujam

#endif // UJAM_IR_VALIDATION_HH
