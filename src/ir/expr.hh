/**
 * @file
 * Expression trees for statement right-hand sides.
 *
 * Expressions are immutable and shared; transformations build new
 * trees that reference existing subtrees. Only the shapes needed by
 * the evaluation loops appear: floating-point constants, scalar
 * variables, array reads, and the four binary operators.
 */

#ifndef UJAM_IR_EXPR_HH
#define UJAM_IR_EXPR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/array_ref.hh"

namespace ujam
{

class Expr;

/** Shared immutable expression handle. */
using ExprPtr = std::shared_ptr<const Expr>;

/** Binary operator kinds; all count as one floating-point operation. */
enum class BinOp { Add, Sub, Mul, Div };

/** @return The operator's source spelling. */
const char *binOpSpelling(BinOp op);

/**
 * An immutable expression tree node.
 */
class Expr
{
  public:
    /** Node kinds. */
    enum class Kind { Constant, Scalar, ArrayRead, Binary };

    /** @return A floating-point literal. */
    static ExprPtr constant(double value);

    /** @return A scalar variable read. */
    static ExprPtr scalar(std::string name);

    /** @return An array element read. */
    static ExprPtr arrayRead(ArrayRef ref);

    /** @return A binary operation node. */
    static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);

    Kind kind() const { return kind_; }

    /** @pre kind() == Kind::Constant */
    double constantValue() const;

    /** @pre kind() == Kind::Scalar */
    const std::string &scalarName() const;

    /** @pre kind() == Kind::ArrayRead */
    const ArrayRef &ref() const;

    /** @pre kind() == Kind::Binary */
    BinOp op() const;
    /** @pre kind() == Kind::Binary */
    const ExprPtr &lhs() const;
    /** @pre kind() == Kind::Binary */
    const ExprPtr &rhs() const;

    /** @return The number of floating-point operations in the tree. */
    std::size_t countFlops() const;

    /** Invoke fn on every array read in the tree, in source order. */
    void forEachArrayRead(
        const std::function<void(const ArrayRef &)> &fn) const;

    /** Invoke fn on every scalar read in the tree, in source order. */
    void forEachScalarRead(
        const std::function<void(const std::string &)> &fn) const;

    /**
     * Rebuild the tree, replacing each array read by fn's result.
     * Reads for which fn returns nullptr are kept unchanged.
     */
    ExprPtr rewriteArrayReads(
        const std::function<ExprPtr(const ArrayRef &)> &fn) const;

    /** @return Source rendering, fully parenthesized at binaries. */
    std::string toString() const;

  private:
    explicit Expr(Kind kind) : kind_(kind) {}

    Kind kind_;
    double constant_ = 0.0;
    std::string scalar_;
    ArrayRef ref_;
    BinOp op_ = BinOp::Add;
    ExprPtr lhs_;
    ExprPtr rhs_;
};

/** Null-safe forEachScalarRead over an ExprPtr. */
inline void
forEachScalarRead(const ExprPtr &expr,
                  const std::function<void(const std::string &)> &fn)
{
    if (expr)
        expr->forEachScalarRead(fn);
}

} // namespace ujam

#endif // UJAM_IR_EXPR_HH
