#include "ir/printer.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

void
renderExprTo(std::ostringstream &os, const Expr &expr,
             const std::vector<std::string> &ivs)
{
    switch (expr.kind()) {
      case Expr::Kind::Constant: {
        double v = expr.constantValue();
        if (v == static_cast<std::int64_t>(v)) {
            os << static_cast<std::int64_t>(v) << ".0";
        } else {
            os << v;
        }
        return;
      }
      case Expr::Kind::Scalar:
        os << expr.scalarName();
        return;
      case Expr::Kind::ArrayRead:
        os << expr.ref().toString(ivs);
        return;
      case Expr::Kind::Binary:
        os << "(";
        renderExprTo(os, *expr.lhs(), ivs);
        os << " " << binOpSpelling(expr.op()) << " ";
        renderExprTo(os, *expr.rhs(), ivs);
        os << ")";
        return;
    }
    panic("unknown expression kind");
}

} // namespace

std::string
renderExpr(const ExprPtr &expr, const std::vector<std::string> &ivs)
{
    UJAM_ASSERT(expr, "rendering null expression");
    std::ostringstream os;
    renderExprTo(os, *expr, ivs);
    return os.str();
}

std::string
renderStmt(const Stmt &stmt, const std::vector<std::string> &ivs)
{
    if (stmt.isPrefetch())
        return concat("prefetch ", stmt.prefetchRef().toString(ivs));
    std::string lhs = stmt.lhsIsArray() ? stmt.lhsRef().toString(ivs)
                                        : stmt.lhsScalar();
    return concat(lhs, " = ", renderExpr(stmt.rhs(), ivs));
}

std::string
renderLoopNest(const LoopNest &nest)
{
    std::ostringstream os;
    const std::vector<std::string> ivs = nest.ivNames();
    std::string indent;
    // Pre/postheaders run once per outer iteration, immediately
    // around the innermost loop -- i.e. at depth() - 1 levels of
    // indentation.
    if (nest.depth() <= 1) {
        for (const Stmt &stmt : nest.preheader())
            os << "pre " << renderStmt(stmt, ivs) << "\n";
    }
    for (std::size_t k = 0; k < nest.depth(); ++k) {
        const Loop &loop = nest.loop(k);
        os << indent << "do " << loop.iv << " = " << loop.lower.toString()
           << ", " << loop.upper.toString();
        if (loop.step != 1)
            os << ", " << loop.step;
        os << "\n";
        indent += "  ";
        if (k + 2 == nest.depth()) {
            for (const Stmt &stmt : nest.preheader())
                os << indent << "pre " << renderStmt(stmt, ivs) << "\n";
        }
    }
    for (const Stmt &stmt : nest.body())
        os << indent << renderStmt(stmt, ivs) << "\n";
    for (std::size_t k = nest.depth(); k > 0; --k) {
        indent = std::string(2 * (k - 1), ' ');
        if (k == nest.depth()) {
            os << indent << "end do\n";
            for (const Stmt &stmt : nest.postheader()) {
                os << indent << "post " << renderStmt(stmt, ivs)
                   << "\n";
            }
        } else {
            os << indent << "end do\n";
        }
    }
    return os.str();
}

std::string
renderProgram(const Program &program)
{
    std::ostringstream os;
    for (const auto &[name, value] : program.paramDefaults())
        os << "param " << name << " = " << value << "\n";
    for (const ArrayDecl &decl : program.arrays()) {
        os << "real " << decl.name << "(";
        for (std::size_t d = 0; d < decl.extents.size(); ++d) {
            if (d > 0)
                os << ", ";
            os << decl.extents[d].toString();
        }
        os << ")\n";
    }
    for (const LoopNest &nest : program.nests()) {
        os << "\n";
        if (!nest.name().empty())
            os << "! nest: " << nest.name() << "\n";
        os << renderLoopNest(nest);
    }
    return os.str();
}

} // namespace ujam
