/**
 * @file
 * Programmatic construction helpers for IR.
 *
 * Tests and workload definitions build nests either from DSL text
 * (see parser/) or with this builder. The builder resolves induction
 * variable names to loop positions so subscripts can be written
 * symbolically.
 */

#ifndef UJAM_IR_BUILDER_HH
#define UJAM_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** One subscript position: coeff * iv + offset (iv may be empty). */
struct Subscript
{
    std::string iv;          //!< induction variable name; "" for constant
    std::int64_t coeff = 1;  //!< coefficient of the induction variable
    std::int64_t offset = 0; //!< additive constant

    /** @return A pure-constant subscript. */
    static Subscript
    constant(std::int64_t value)
    {
        return Subscript{"", 0, value};
    }
};

/** Shorthand for subscript "iv + offset". */
inline Subscript
idx(std::string iv, std::int64_t offset = 0)
{
    return Subscript{std::move(iv), 1, offset};
}

/** Shorthand for subscript "coeff*iv + offset". */
inline Subscript
scaled(std::string iv, std::int64_t coeff, std::int64_t offset = 0)
{
    return Subscript{std::move(iv), coeff, offset};
}

/**
 * Builds one perfect nest.
 */
class NestBuilder
{
  public:
    /** Append a loop (outermost first). */
    NestBuilder &loop(const std::string &iv, Bound lower, Bound upper,
                      std::int64_t step = 1);

    /** Append a loop with constant bounds. */
    NestBuilder &loop(const std::string &iv, std::int64_t lower,
                      std::int64_t upper, std::int64_t step = 1);

    /** @return A reference with symbolic subscripts. */
    ArrayRef ref(const std::string &array,
                 const std::vector<Subscript> &subs) const;

    /** @return An array-read expression. */
    ExprPtr read(const std::string &array,
                 const std::vector<Subscript> &subs) const;

    /** Append an array assignment statement. */
    NestBuilder &assign(const std::string &array,
                        const std::vector<Subscript> &subs, ExprPtr rhs);

    /** Set the nest's report name. */
    NestBuilder &name(std::string nest_name);

    /** @return The completed nest. */
    LoopNest build() const;

  private:
    std::size_t ivPosition(const std::string &iv) const;

    std::string name_;
    std::vector<Loop> loops_;
    std::vector<Stmt> body_;
};

/** @return lhs + rhs. */
ExprPtr add(ExprPtr lhs, ExprPtr rhs);
/** @return lhs - rhs. */
ExprPtr subtract(ExprPtr lhs, ExprPtr rhs);
/** @return lhs * rhs. */
ExprPtr mul(ExprPtr lhs, ExprPtr rhs);
/** @return lhs / rhs. */
ExprPtr divide(ExprPtr lhs, ExprPtr rhs);
/** @return A literal constant. */
ExprPtr lit(double value);

} // namespace ujam

#endif // UJAM_IR_BUILDER_HH
