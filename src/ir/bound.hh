/**
 * @file
 * Loop bounds as affine forms over symbolic parameters.
 *
 * Bounds are constant + sum(coeff * parameter), optionally plus an
 * alignment term produced by unroll-and-jam: the largest value not
 * exceeding an upper bound such that the trip count from a lower
 * bound is a multiple of the unroll factor. Bounds evaluate to
 * concrete integers once parameters are bound.
 */

#ifndef UJAM_IR_BOUND_HH
#define UJAM_IR_BOUND_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ujam
{

/** Parameter bindings used to evaluate symbolic bounds. */
using ParamBindings = std::map<std::string, std::int64_t>;

struct BoundAlignedPart;

/**
 * An affine loop bound, optionally with one alignment term.
 */
class Bound
{
  public:
    /** Construct the constant 0. */
    Bound() = default;

    /** @return The constant bound c. */
    static Bound constant(std::int64_t c);

    /** @return The bound coeff * name + offset. */
    static Bound param(const std::string &name, std::int64_t coeff = 1,
                       std::int64_t offset = 0);

    /**
     * @return The aligned upper bound
     *   lower + floor((upper - lower + 1) / factor) * factor - 1,
     * i.e. the last iteration covered when stepping by factor from
     * lower without passing upper.
     */
    static Bound alignedUpper(const Bound &lower, const Bound &upper,
                              std::int64_t factor);

    /** @return This bound plus a constant. */
    Bound plus(std::int64_t delta) const;

    /**
     * @return The sum of two bounds.
     * @pre At most one operand carries an alignment term.
     */
    static Bound sum(const Bound &lhs, const Bound &rhs);

    /** @return True iff the bound is a plain integer constant. */
    bool isConstant() const;

    /** @return True iff the bound contains an alignment term. */
    bool isAligned() const { return aligned_ != nullptr; }

    /**
     * Evaluate with the given parameter bindings.
     * @throws FatalError if a parameter is unbound.
     */
    std::int64_t evaluate(const ParamBindings &params) const;

    /** Append every referenced parameter name (including inside an
     * alignment term) to names; duplicates are not filtered. */
    void collectParamNames(std::vector<std::string> &names) const;

    /** @return Source rendering, e.g. "2*n - 1" or "align(1, n, 4)". */
    std::string toString() const;

    bool operator==(const Bound &other) const;

    // Structural accessors -- the emission-oriented "visitor" face
    // used by serializers and the C backend, so they can walk a bound
    // instead of re-parsing toString().

    /** @return The affine constant term. */
    std::int64_t constantTerm() const { return constant_; }

    /** @return The (parameter name, coefficient) terms, name-ordered. */
    const std::map<std::string, std::int64_t> &
    paramTerms() const
    {
        return terms_;
    }

    /** @return The alignment term, or nullptr when none. */
    const BoundAlignedPart *alignedPart() const { return aligned_.get(); }

  private:
    std::int64_t constant_ = 0;
    std::map<std::string, std::int64_t> terms_;
    std::shared_ptr<const BoundAlignedPart> aligned_;
};

/**
 * The alignment term of a Bound (see Bound::alignedUpper): the last
 * iteration covered when stepping by factor from lower without
 * passing upper. Public so emitters can render the term structurally.
 */
struct BoundAlignedPart
{
    Bound lower;
    Bound upper;
    std::int64_t factor = 1;

    bool
    operator==(const BoundAlignedPart &other) const
    {
        return lower == other.lower && upper == other.upper &&
               factor == other.factor;
    }
};

} // namespace ujam

#endif // UJAM_IR_BOUND_HH
