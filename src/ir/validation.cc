#include "ir/validation.hh"

#include <set>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

void
checkStmts(const Program &program, const LoopNest &nest,
           const std::vector<Stmt> &stmts, const char *where,
           std::vector<std::string> &problems)
{
    const std::string nest_name =
        nest.name().empty() ? "<unnamed>" : nest.name();
    auto check_ref = [&](const ArrayRef &ref) {
            if (!program.hasArray(ref.array())) {
                problems.push_back(concat("nest ", nest_name, " ", where,
                                          ": undeclared array '",
                                          ref.array(), "'"));
                return;
            }
            const ArrayDecl &decl = program.array(ref.array());
            if (decl.extents.size() != ref.dims()) {
                problems.push_back(concat(
                    "nest ", nest_name, " ", where, ": array '",
                    ref.array(), "' has rank ", decl.extents.size(),
                    " but is referenced with ", ref.dims(),
                    " subscripts"));
            }
            if (ref.depth() != nest.depth()) {
                problems.push_back(concat(
                    "nest ", nest_name, " ", where, ": reference to '",
                    ref.array(), "' has subscript depth ", ref.depth(),
                    " in a depth-", nest.depth(), " nest"));
            }
    };
    for (const Stmt &stmt : stmts) {
        if (stmt.isPrefetch())
            check_ref(stmt.prefetchRef());
        else
            stmt.forEachAccess(
                [&](const ArrayRef &ref, bool) { check_ref(ref); });
    }
}

} // namespace

std::vector<std::string>
validateNest(const Program &program, const LoopNest &nest)
{
    std::vector<std::string> problems;
    const std::string nest_name =
        nest.name().empty() ? "<unnamed>" : nest.name();

    std::set<std::string> ivs;
    for (const Loop &loop : nest.loops()) {
        if (!ivs.insert(loop.iv).second) {
            problems.push_back(concat("nest ", nest_name,
                                      ": duplicate induction variable '",
                                      loop.iv, "'"));
        }
        if (loop.step < 1) {
            problems.push_back(concat("nest ", nest_name, ": loop '",
                                      loop.iv, "' has non-positive step ",
                                      loop.step));
        }
        try {
            loop.lower.evaluate(program.paramDefaults());
            loop.upper.evaluate(program.paramDefaults());
        } catch (const FatalError &err) {
            problems.push_back(concat("nest ", nest_name, ": loop '",
                                      loop.iv, "': ", err.what()));
        }
    }
    if (nest.body().empty())
        problems.push_back(concat("nest ", nest_name, ": empty body"));

    checkStmts(program, nest, nest.body(), "body", problems);
    checkStmts(program, nest, nest.preheader(), "preheader", problems);
    checkStmts(program, nest, nest.postheader(), "postheader", problems);
    return problems;
}

std::vector<std::string>
validateProgram(const Program &program)
{
    std::vector<std::string> problems;
    for (const ArrayDecl &decl : program.arrays()) {
        for (const Bound &extent : decl.extents) {
            try {
                extent.evaluate(program.paramDefaults());
            } catch (const FatalError &err) {
                problems.push_back(concat("array '", decl.name, "': ",
                                          err.what()));
            }
        }
    }
    for (const LoopNest &nest : program.nests()) {
        std::vector<std::string> nest_problems =
            validateNest(program, nest);
        problems.insert(problems.end(), nest_problems.begin(),
                        nest_problems.end());
    }
    return problems;
}

} // namespace ujam
