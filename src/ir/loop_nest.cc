#include "ir/loop_nest.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace ujam
{

std::int64_t
Loop::tripCount(const ParamBindings &params) const
{
    UJAM_ASSERT(step >= 1, "loop step must be positive");
    std::int64_t lo = lower.evaluate(params);
    std::int64_t hi = upper.evaluate(params);
    if (hi < lo)
        return 0;
    return (hi - lo) / step + 1;
}

LoopNest::LoopNest(std::vector<Loop> loops, std::vector<Stmt> body)
    : loops_(std::move(loops)), body_(std::move(body))
{}

std::vector<std::string>
LoopNest::ivNames() const
{
    std::vector<std::string> names;
    names.reserve(loops_.size());
    for (const Loop &loop : loops_)
        names.push_back(loop.iv);
    return names;
}

std::vector<Access>
LoopNest::accesses() const
{
    std::vector<Access> result;
    for (std::size_t s = 0; s < body_.size(); ++s) {
        body_[s].forEachAccess([&](const ArrayRef &ref, bool is_write) {
            Access access;
            access.ref = ref;
            access.isWrite = is_write;
            access.stmt = s;
            access.ordinal = result.size();
            result.push_back(std::move(access));
        });
    }
    return result;
}

std::size_t
LoopNest::bodyFlops() const
{
    std::size_t flops = 0;
    for (const Stmt &stmt : body_)
        flops += stmt.countFlops();
    return flops;
}

bool
LoopNest::allRefsAnalyzable() const
{
    bool ok = true;
    for (const Stmt &stmt : body_) {
        stmt.forEachAccess([&](const ArrayRef &ref, bool) {
            if (ref.depth() != depth() || !ref.isSivSeparable())
                ok = false;
        });
    }
    return ok;
}

void
Program::declareArray(ArrayDecl decl)
{
    for (ArrayDecl &existing : arrays_) {
        if (existing.name == decl.name) {
            existing = std::move(decl);
            return;
        }
    }
    arrays_.push_back(std::move(decl));
}

const ArrayDecl &
Program::array(const std::string &name) const
{
    for (const ArrayDecl &decl : arrays_) {
        if (decl.name == name)
            return decl;
    }
    fatal("array '", name, "' is not declared");
}

bool
Program::hasArray(const std::string &name) const
{
    return std::any_of(arrays_.begin(), arrays_.end(),
                       [&](const ArrayDecl &d) { return d.name == name; });
}

void
Program::setParamDefault(const std::string &name, std::int64_t value)
{
    param_defaults_[name] = value;
}

void
Program::addNest(LoopNest nest)
{
    nests_.push_back(std::move(nest));
}

} // namespace ujam
