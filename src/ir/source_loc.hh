/**
 * @file
 * Source positions for IR nodes.
 *
 * The parser stamps every loop, statement and array reference with
 * the line and column it came from so that diagnostics -- parse
 * errors and ujam-lint findings alike -- can point at real source
 * text. Programs built programmatically (the synthetic corpus, the
 * transform outputs) carry the default unknown location; consumers
 * must treat line 0 as "no source position available".
 */

#ifndef UJAM_IR_SOURCE_LOC_HH
#define UJAM_IR_SOURCE_LOC_HH

#include <string>

namespace ujam
{

/**
 * A position in DSL source: 1-based line and byte column.
 */
struct SourceLoc
{
    int line = 0; //!< 1-based source line; 0 = unknown/synthesized
    int col = 0;  //!< 1-based byte column within the line

    /** @return True iff the location points at real source. */
    bool known() const { return line > 0; }

    /** @return "3:5", or "?" when unknown. */
    std::string
    toString() const
    {
        if (!known())
            return "?";
        return std::to_string(line) + ":" + std::to_string(col);
    }

    bool operator==(const SourceLoc &other) const = default;
};

} // namespace ujam

#endif // UJAM_IR_SOURCE_LOC_HH
