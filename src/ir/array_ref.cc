#include "ir/array_ref.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

ArrayRef::ArrayRef(std::string array, std::vector<IntVector> rows,
                   IntVector offset)
    : array_(std::move(array)), rows_(std::move(rows)),
      offset_(std::move(offset))
{
    UJAM_ASSERT(rows_.size() == offset_.size(),
                "subscript row/offset count mismatch in reference to ",
                array_);
    for (const IntVector &row : rows_) {
        UJAM_ASSERT(row.size() == rows_.front().size(),
                    "ragged subscript matrix in reference to ", array_);
    }
}

std::size_t
ArrayRef::depth() const
{
    return rows_.empty() ? 0 : rows_.front().size();
}

RatMatrix
ArrayRef::subscriptMatrix() const
{
    RatMatrix result(dims(), depth());
    for (std::size_t d = 0; d < dims(); ++d) {
        for (std::size_t k = 0; k < depth(); ++k)
            result.at(d, k) = Rational(rows_[d][k]);
    }
    return result;
}

RatMatrix
ArrayRef::spatialSubscriptMatrix() const
{
    RatMatrix result = subscriptMatrix();
    for (std::size_t k = 0; k < depth(); ++k)
        result.at(0, k) = Rational(0);
    return result;
}

IntVector
ArrayRef::spatialOffset() const
{
    IntVector result = offset_;
    if (result.size() > 0)
        result[0] = 0;
    return result;
}

bool
ArrayRef::isSivSeparable() const
{
    std::vector<bool> column_used(depth(), false);
    for (const IntVector &row : rows_) {
        int nonzero = 0;
        for (std::size_t k = 0; k < row.size(); ++k) {
            if (row[k] == 0)
                continue;
            ++nonzero;
            if (nonzero > 1)
                return false; // multiple induction variables in one row
            if (column_used[k])
                return false; // induction variable used in two rows
            column_used[k] = true;
        }
    }
    return true;
}

bool
ArrayRef::uniformlyGeneratedWith(const ArrayRef &other) const
{
    return array_ == other.array_ && rows_ == other.rows_;
}

ArrayRef
ArrayRef::shifted(const IntVector &shift) const
{
    UJAM_ASSERT(shift.size() == depth(), "shift depth mismatch");
    IntVector new_offset = offset_;
    for (std::size_t d = 0; d < dims(); ++d) {
        std::int64_t dot = 0;
        for (std::size_t k = 0; k < depth(); ++k)
            dot = checkedAdd(dot, checkedMul(rows_[d][k], shift[k]));
        new_offset[d] = checkedAdd(new_offset[d], dot);
    }
    ArrayRef result(array_, rows_, new_offset);
    result.loc_ = loc_; // an unroll copy still points at its source
    return result;
}

int
ArrayRef::loopForDim(std::size_t d) const
{
    UJAM_ASSERT(d < dims(), "dimension out of range");
    for (std::size_t k = 0; k < depth(); ++k) {
        if (rows_[d][k] != 0)
            return static_cast<int>(k);
    }
    return -1;
}

std::pair<int, std::int64_t>
ArrayRef::termForLoop(std::size_t k) const
{
    UJAM_ASSERT(k < depth(), "loop index out of range");
    for (std::size_t d = 0; d < dims(); ++d) {
        if (rows_[d][k] != 0)
            return {static_cast<int>(d), rows_[d][k]};
    }
    return {-1, 0};
}

std::string
ArrayRef::toString(const std::vector<std::string> &ivs) const
{
    std::ostringstream os;
    os << array_ << "(";
    for (std::size_t d = 0; d < dims(); ++d) {
        if (d > 0)
            os << ", ";
        bool printed = false;
        for (std::size_t k = 0; k < depth(); ++k) {
            std::int64_t coeff = rows_[d][k];
            if (coeff == 0)
                continue;
            std::string name = k < ivs.size() ? ivs[k]
                                              : concat("i", k + 1);
            if (!printed) {
                if (coeff == 1) {
                    os << name;
                } else if (coeff == -1) {
                    os << "-" << name;
                } else {
                    os << coeff << "*" << name;
                }
            } else {
                if (coeff == 1) {
                    os << "+" << name;
                } else if (coeff == -1) {
                    os << "-" << name;
                } else if (coeff > 0) {
                    os << "+" << coeff << "*" << name;
                } else {
                    os << coeff << "*" << name;
                }
            }
            printed = true;
        }
        std::int64_t c = offset_[d];
        if (!printed) {
            os << c;
        } else if (c > 0) {
            os << "+" << c;
        } else if (c < 0) {
            os << c;
        }
    }
    os << ")";
    return os.str();
}

std::string
ArrayRef::toString() const
{
    return toString({});
}

} // namespace ujam
