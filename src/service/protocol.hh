/**
 * @file
 * The ujam-serve wire protocol.
 *
 * Newline-delimited JSON, one request object per line, one response
 * object per line, in order. The same frames flow over the Unix
 * domain socket and through `--batch` stdin/stdout, so tests and CI
 * exercise the identical parser and renderer without a socket.
 *
 * Request:
 *
 *   {"op": "optimize" | "lint" | "codegen" | "tune" | "metrics" |
 *          "ping" | "shutdown",
 *    "id": "any string, echoed back",          (optional)
 *    "source": "<DSL text>",              (optimize/lint/codegen)
 *    "scenario": "family:k=v,...:seed",   (alternative to "source":
 *                 the named generated scenario becomes the source;
 *                 sending both is an error)
 *    "machine": "alpha|parisc|wide|wide-prefetch",  (default alpha)
 *    "options": { ... pipeline knobs ... },    (optional)
 *    "deadline_ms": N,   // budget from receipt; 0 = already expired
 *    "no_cache": true}                         (optional)
 *
 * Options: max_unroll, max_loops, use_cache_model, limit_registers,
 * localized_trip, fuse, normalize, distribute, interchange,
 * scalar_replace, prefetch, prefetch_distance, validate, oracle,
 * lint ("off"/"warn"/"strict"), min_severity ("note"/"warn"/"error"),
 * threads. The "codegen" op additionally honours seed (the default
 * run seed baked into the generated main()), emit_main (emit a
 * main(); default true) and params (an object of parameter-name to
 * integer overrides bound at emission). The "tune" op honours seed
 * plus tune_measure ("model", the default -- deterministic simulator
 * cycles -- or "wall", host compile-and-run), tune_budget_ms,
 * tune_neighborhood, tune_repeats and tune_warmup; tune responses in
 * "model" mode are pure functions of the request and cache like any
 * other, while a "wall" run that self-skips (no host compiler) is
 * answered but never cached. Unknown option names are an error (they
 * would otherwise silently change the cache key semantics a client
 * expects).
 *
 * Response:
 *
 *   {"id": ..., "op": ..., "status": "ok" | "error" | "timeout" |
 *    "overloaded" | "degraded", "error": "...", (status != ok)
 *    "result": { ... }}                         (status == ok)
 *
 * "degraded" is the cache-only rejection: the supervisor's circuit
 * breaker tripped, the request missed the result cache, and nothing
 * was computed. Cached answers still return "ok" byte-identically.
 *
 * Responses deliberately carry no timing or cache-tier fields: a
 * response is a pure function of the request, so a cache hit is
 * byte-identical to the miss that populated it. Timings and hit
 * rates live in the metrics document instead.
 */

#ifndef UJAM_SERVICE_PROTOCOL_HH
#define UJAM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "codegen/c_emitter.hh"
#include "driver/driver.hh"
#include "tune/autotuner.hh"

namespace ujam
{

/** Request operations. */
enum class ServiceOp
{
    Optimize,
    Lint,
    Codegen,
    Tune,
    Metrics,
    Ping,
    Shutdown
};

/** @return The op's wire spelling. */
const char *serviceOpName(ServiceOp op);

/** A decoded, validated request. */
struct ServiceRequest
{
    ServiceOp op = ServiceOp::Ping;
    std::string id;               //!< echoed verbatim ("" = absent)
    std::string source;           //!< DSL text (optimize/lint)
    /** Canonical scenario name when the source came from the
     * "scenario" field ("" when "source" was sent directly). Kept so
     * responses and logs can name the generated program. */
    std::string scenarioName;
    std::string machineName = "alpha";
    MachineModel machine;         //!< resolved preset
    PipelineConfig config;        //!< resolved pipeline knobs
    CodegenOptions codegen;       //!< emission knobs ("codegen" op)
    /** Autotuner knobs ("tune" op). The wire default is measure =
     * "model" -- deterministic and compiler-free -- so a service
     * answers tune requests reproducibly out of the box; its
     * pipeline member is overwritten with the resolved config. */
    TuneConfig tune;
    /** Deadline budget in ms from receipt; unset = no deadline. */
    std::optional<std::int64_t> deadlineMs;
    bool noCache = false;         //!< skip the result cache
};

/**
 * How a rejected frame failed, for the split error counters: a
 * malformed frame (not JSON, not an object, oversized, no op), an
 * unknown op on an otherwise well-formed frame, or a bad field or
 * option value on a known op.
 */
enum class RequestErrorKind
{
    None,
    Malformed,
    BadOp,
    BadField
};

/** parseRequest outcome: a request or an error message. */
struct RequestParse
{
    std::optional<ServiceRequest> request;
    std::string error; //!< non-empty iff request is empty
    RequestErrorKind kind = RequestErrorKind::None;

    bool ok() const { return request.has_value(); }
};

/**
 * Decode one request line.
 *
 * Never throws; malformed JSON, wrong types, unknown ops, unknown
 * option names and out-of-range values all come back as errors.
 *
 * @param line One NDJSON frame without the trailing newline.
 */
RequestParse parseRequest(const std::string &line);

/**
 * @return The machine preset for a wire name
 * (alpha/parisc/wide/wide-prefetch), or nothing.
 */
std::optional<MachineModel> machinePreset(const std::string &name);

/** @return A one-line error response frame. */
std::string errorResponse(const std::string &id, const std::string &op,
                          const std::string &status,
                          const std::string &message);

/**
 * @return A one-line success response frame wrapping a pre-rendered
 * result object.
 */
std::string okResponse(const std::string &id, const std::string &op,
                       const std::string &result_json);

} // namespace ujam

#endif // UJAM_SERVICE_PROTOCOL_HH
