/**
 * @file
 * The ujam-serve supervision tree: crash containment for the
 * multi-worker service.
 *
 * The supervisor binds the listening socket once, forks N worker
 * processes that each run a full UjamServer on the shared fd (the
 * AF_UNIX analogue of SO_REUSEPORT: every worker accepts, the kernel
 * load-balances), and then does nothing but watch children. A worker
 * that dies -- SIGKILL, SIGSEGV, nonzero exit -- loses only its own
 * in-flight connections: the listening socket survives in the
 * supervisor, sibling workers keep serving, and the dead slot is
 * re-forked after an exponential backoff with deterministic jitter.
 *
 * Dispatch mode (SupervisorConfig::dispatch) is the explicit
 * alternative: the supervisor accepts connections itself and passes
 * each connected fd to a live worker round-robin over an SCM_RIGHTS
 * socketpair (service/fdpass.hh). This trades the kernel's implicit
 * balancing for supervisor-controlled placement and keeps working
 * even while a crashed worker is between restarts.
 *
 * A circuit breaker bounds restart storms: more than breakerCrashes
 * crashes inside a sliding breakerWindowMs window stops the forking,
 * SIGTERMs the survivors and falls back to an in-process *degraded*
 * server -- cache-only, every miss answered with status "degraded" --
 * so cached answers stay available even when the pipeline is
 * reproducibly crashing. The transition is one-way; the process exit
 * code reports it.
 *
 * Shutdown (SIGTERM/SIGINT to the supervisor, or a `shutdown` frame
 * answered by any worker, which makes that worker exit cleanly)
 * drains every worker within drainMs: workers finish in-flight
 * frames and exit 0; stragglers past the deadline are SIGKILLed and
 * the exit code says so.
 *
 * Exit codes: 0 clean drain; kExitDegraded the breaker tripped;
 * kExitForcedKill at least one worker had to be SIGKILLed during
 * shutdown (forced kills win when both apply).
 *
 * All counters live in one MAP_SHARED anonymous mapping created
 * before the first fork (ServiceMetrics is flat relaxed atomics, so
 * processes share it safely); the `metrics` op on any worker
 * therefore reports service-wide totals plus the per-worker
 * restart/crash history kept in the same block.
 *
 * The supervisor itself stays single-threaded until it stops forking
 * (signals are consumed by sigtimedwait, never by handlers), so fork
 * never duplicates a lock-holding thread; the degraded server's
 * thread pool starts only after the last fork.
 */

#ifndef UJAM_SERVICE_SUPERVISOR_HH
#define UJAM_SERVICE_SUPERVISOR_HH

#include <cstdint>
#include <deque>
#include <string>

#include "service/server.hh"

namespace ujam
{

/** Upper bound on worker processes (sizes the shared slot table). */
constexpr std::size_t kMaxWorkers = 32;

/** Supervisor exit code: the circuit breaker tripped. */
constexpr int kExitDegraded = 3;
/** Supervisor exit code: shutdown had to SIGKILL stragglers. */
constexpr int kExitForcedKill = 4;

/** Supervision knobs. */
struct SupervisorConfig
{
    /** Per-worker server template. socketPath names the socket the
     * supervisor binds; listenFd/dispatchFd/sharedMetrics are filled
     * in per worker and must be left unset. */
    ServerConfig server;
    std::size_t workers = 2; //!< clamped to [1, kMaxWorkers]
    bool dispatch = false;   //!< fd-passing instead of shared accept

    /** Circuit breaker: > breakerCrashes crashes within
     * breakerWindowMs degrade the service to cache-only. */
    std::uint64_t breakerCrashes = 5;
    std::int64_t breakerWindowMs = 30000;

    /** Restart backoff: base * 2^(consecutive crashes - 1) plus
     * deterministic jitter, capped at backoffMaxMs. */
    std::int64_t backoffBaseMs = 50;
    std::int64_t backoffMaxMs = 5000;

    /** Shutdown drain deadline before stragglers are SIGKILLed. */
    std::int64_t drainMs = 5000;

    bool dumpMetrics = false; //!< print the final document on exit
};

/**
 * Sliding-window crash counter behind the circuit breaker.
 *
 * Pure bookkeeping (the caller supplies timestamps) so the trip
 * condition is unit-testable without forking anything.
 */
class CrashWindow
{
  public:
    /**
     * @param limit    Crashes tolerated inside the window; one more
     *                 trips the breaker.
     * @param windowMs Sliding window width.
     */
    CrashWindow(std::uint64_t limit, std::int64_t window_ms)
        : limit_(limit), windowMs_(window_ms)
    {
    }

    /**
     * Record a crash at now_ms (monotonic, caller-defined origin).
     * @return True when this crash trips the breaker.
     */
    bool recordCrash(std::int64_t now_ms);

    /** @return Crashes currently inside the window ending at now_ms. */
    std::size_t inWindow(std::int64_t now_ms) const;

  private:
    std::uint64_t limit_;
    std::int64_t windowMs_;
    std::deque<std::int64_t> crashes_;
};

/**
 * @return The restart delay for a worker's Nth consecutive crash:
 * exponential in consecutive_crashes with a deterministic jitter
 * derived from (worker, consecutive_crashes), so crashed siblings
 * never thundering-herd their restarts yet every run of the same
 * history restarts at the same instants.
 *
 * @param base_ms             First-crash delay (<=0 treated as 1).
 * @param max_ms              Cap on the result.
 * @param consecutive_crashes 1 for the first crash since the last
 *                            healthy spell; resets on a clean run.
 * @param worker              Worker index (jitter stream).
 */
std::int64_t restartBackoffMs(std::int64_t base_ms, std::int64_t max_ms,
                              std::uint64_t consecutive_crashes,
                              std::size_t worker);

/** See the file comment. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorConfig config);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Bind, fork the workers and supervise until shutdown.
     * Call once; blocks for the life of the service.
     *
     * @return The process exit code (see the file comment).
     * @throws FatalError when the socket or the shared block cannot
     *         be created.
     */
    int run();

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace ujam

#endif // UJAM_SERVICE_SUPERVISOR_HH
