#include "service/metrics.hh"

#include <algorithm>

#include "support/json.hh"

namespace ujam
{

std::uint64_t
LatencyHistogram::bucketBound(std::size_t i)
{
    // 1, 4, 16, ... 4^12 (~67s); the last bucket is the overflow.
    std::uint64_t bound = 1;
    for (std::size_t k = 0; k < i; ++k)
        bound *= 4;
    return bound;
}

void
LatencyHistogram::record(std::uint64_t micros)
{
    std::size_t bucket = 0;
    std::uint64_t bound = 1;
    while (bucket + 1 < kBuckets && micros > bound) {
        bound *= 4;
        ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumMicros_.fetch_add(micros, std::memory_order_relaxed);
}

namespace
{

void
histogramJson(JsonWriter &json, const char *name,
              const LatencyHistogram &hist)
{
    json.key(name).beginObject();
    json.field("count", hist.count());
    json.field("sum_us", hist.sumMicros());
    json.key("buckets").beginArray();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        cumulative += hist.bucketCount(i);
        json.beginObject();
        if (i + 1 < LatencyHistogram::kBuckets) {
            json.field("le_us", LatencyHistogram::bucketBound(i));
        } else {
            json.field("le_us", "inf");
        }
        json.field("count", cumulative);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace

std::string
metricsJson(const ServiceMetrics &metrics, const CacheStats &cache,
            const SupervisorStats *supervisor)
{
    JsonWriter json;
    json.beginObject();

    json.key("requests").beginObject();
    json.field("total", metrics.requestsTotal.get());
    json.field("ok", metrics.requestsOk.get());
    json.field("errors", metrics.requestsError.get());
    json.field("malformed", metrics.requestsMalformed.get());
    json.field("bad_op", metrics.requestsBadOp.get());
    json.field("bad_field", metrics.requestsBadField.get());
    json.field("overloaded", metrics.requestsOverloaded.get());
    json.field("timeouts", metrics.requestsTimeout.get());
    json.field("degraded", metrics.requestsDegraded.get());
    json.key("by_op").beginObject();
    json.field("optimize", metrics.opOptimize.get());
    json.field("lint", metrics.opLint.get());
    json.field("codegen", metrics.opCodegen.get());
    json.field("tune", metrics.opTune.get());
    json.field("metrics", metrics.opMetrics.get());
    json.field("ping", metrics.opPing.get());
    json.field("shutdown", metrics.opShutdown.get());
    json.endObject();
    json.endObject();

    const CacheCounters &disk = metrics.cacheCounters;
    std::size_t shards =
        std::min<std::size_t>(std::max<std::size_t>(cache.shards, 1),
                              kMaxCacheShards);
    json.key("cache").beginObject();
    json.field("memory_hits", metrics.cacheMemoryHits.get());
    json.field("disk_hits", metrics.cacheDiskHits.get());
    json.field("misses", metrics.cacheMisses.get());
    json.field("stores", metrics.cacheStores.get());
    json.field("bypassed", metrics.cacheBypassed.get());
    json.field("memory_entries", cache.memoryEntries);
    json.field("memory_capacity", cache.memoryCapacity);
    json.field("disk_evictions",
               disk.total(&CacheShardCounters::diskEvictions));
    json.field("disk_quarantined",
               disk.total(&CacheShardCounters::diskQuarantined));
    json.field("shard_count", std::uint64_t(shards));
    json.key("shards").beginArray();
    for (std::size_t s = 0; s < shards; ++s) {
        const CacheShardCounters &counters = disk.shard[s];
        json.beginObject();
        json.field("disk_hits", counters.diskHits.get());
        json.field("disk_stores", counters.diskStores.get());
        json.field("disk_evictions", counters.diskEvictions.get());
        json.field("disk_quarantined",
                   counters.diskQuarantined.get());
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.key("pipeline").beginObject();
    json.field("nests_optimized", metrics.nestsOptimized.get());
    json.field("lint_rejections", metrics.lintRejections.get());
    json.field("contained_faults", metrics.containedFaults.get());
    json.endObject();

    json.key("tune").beginObject();
    json.field("tune_requests", metrics.tuneRequests.get());
    json.field("tune_candidates_measured",
               metrics.tuneCandidatesMeasured.get());
    json.field("tune_cache_hits", metrics.tuneCacheHits.get());
    json.endObject();

    json.key("connections").beginObject();
    json.field("idle_closed", metrics.connectionsIdleClosed.get());
    json.endObject();

    if (supervisor) {
        json.key("supervisor").beginObject();
        json.field("workers_configured",
                   supervisor->workersConfigured);
        json.field("workers_alive", supervisor->workersAlive);
        json.field("restarts_total", supervisor->restartsTotal);
        json.field("crashes_total", supervisor->crashesTotal);
        json.field("degraded", supervisor->degraded);
        json.field("degraded_transitions",
                   supervisor->degradedTransitions);
        json.field("forced_kills", supervisor->forcedKills);
        json.key("workers").beginArray();
        for (const WorkerStats &worker : supervisor->workers) {
            json.beginObject();
            json.field("restarts", worker.restarts);
            json.field("crashes", worker.crashes);
            json.field("alive", worker.alive);
            json.field("last_exit_code", worker.lastExitCode);
            json.field("last_signal", worker.lastSignal);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.key("latency_us").beginObject();
    histogramJson(json, "parse", metrics.parseLatency);
    histogramJson(json, "optimize", metrics.optimizeLatency);
    histogramJson(json, "render", metrics.renderLatency);
    histogramJson(json, "cache_probe", metrics.cacheProbeLatency);
    histogramJson(json, "total", metrics.totalLatency);
    json.endObject();

    json.endObject();
    return json.str();
}

} // namespace ujam
