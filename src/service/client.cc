#include "service/client.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ujam
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
ServeClient::connect(const std::string &socket_path, int retry_ms)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(retry_ms);
    while (true) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            socketPath_ = socket_path;
            return true;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

std::string
ServeClient::request(const std::string &line, int timeout_ms)
{
    if (fd_ < 0)
        return "";

    std::string frame = line + "\n";
    std::size_t sent = 0;
    while (sent < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            return "";
        }
        sent += static_cast<std::size_t>(n);
    }

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char chunk[64 * 1024];
    while (true) {
        std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string response = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            return response;
        }
        if (timeout_ms > 0) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            deadline -
                            std::chrono::steady_clock::now())
                            .count();
            if (left <= 0) {
                // The frame may still be answered later; the
                // connection's framing is now ambiguous, so drop it
                // rather than misattribute a late response.
                close();
                return "";
            }
            pollfd poller{fd_, POLLIN, 0};
            int ready =
                ::poll(&poller, 1, static_cast<int>(
                                       std::min<long long>(left, 100)));
            if (ready < 0 && errno != EINTR) {
                close();
                return "";
            }
            if (ready <= 0)
                continue;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            return "";
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
ServeClient::requestWithRetry(const std::string &line, int attempts,
                              int timeout_ms)
{
    std::string path = socketPath_;
    for (int attempt = 0; attempt < std::max(attempts, 1); ++attempt) {
        if (!connected()) {
            if (path.empty() || !connect(path))
                continue;
        }
        std::string response = request(line, timeout_ms);
        if (!response.empty())
            return response;
        // The connection died under us (worker crash, overload
        // close). Back off briefly so a restarting worker can come
        // up, then reconnect and resend.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return "";
}

} // namespace ujam
