#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace ujam
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
ServeClient::connect(const std::string &socket_path, int retry_ms)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(retry_ms);
    while (true) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return true;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

std::string
ServeClient::request(const std::string &line)
{
    if (fd_ < 0)
        return "";

    std::string frame = line + "\n";
    std::size_t sent = 0;
    while (sent < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            close();
            return "";
        }
        sent += static_cast<std::size_t>(n);
    }

    char chunk[64 * 1024];
    while (true) {
        std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string response = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            return response;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            close();
            return "";
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace ujam
