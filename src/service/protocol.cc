#include "service/protocol.hh"

#include <limits>

#include "scenarios/scenario.hh"
#include "support/json.hh"

namespace ujam
{

const char *
serviceOpName(ServiceOp op)
{
    switch (op) {
      case ServiceOp::Optimize:
        return "optimize";
      case ServiceOp::Lint:
        return "lint";
      case ServiceOp::Codegen:
        return "codegen";
      case ServiceOp::Tune:
        return "tune";
      case ServiceOp::Metrics:
        return "metrics";
      case ServiceOp::Ping:
        return "ping";
      case ServiceOp::Shutdown:
        return "shutdown";
    }
    return "?";
}

std::optional<MachineModel>
machinePreset(const std::string &name)
{
    if (name == "alpha")
        return MachineModel::decAlpha21064();
    if (name == "parisc")
        return MachineModel::hpPa7100();
    if (name == "wide")
        return MachineModel::wideIlp();
    if (name == "wide-prefetch")
        return MachineModel::wideIlpPrefetch();
    return std::nullopt;
}

namespace
{

/** Accumulates the first field error while options are applied. */
struct FieldErrors
{
    std::string message;

    void
    fail(const std::string &what)
    {
        if (message.empty())
            message = what;
    }

    bool ok() const { return message.empty(); }
};

bool
readBool(const JsonValue &value, const std::string &name, bool &out,
         FieldErrors &errors)
{
    if (!value.isBool()) {
        errors.fail("option '" + name + "' must be a boolean");
        return false;
    }
    out = value.boolValue;
    return true;
}

bool
readInt(const JsonValue &value, const std::string &name,
        std::int64_t lo, std::int64_t hi, std::int64_t &out,
        FieldErrors &errors)
{
    std::optional<std::int64_t> parsed = value.asInt();
    if (!parsed || *parsed < lo || *parsed > hi) {
        errors.fail("option '" + name + "' must be an integer in [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "]");
        return false;
    }
    out = *parsed;
    return true;
}

void
applyOption(const std::string &name, const JsonValue &value,
            ServiceRequest &request, FieldErrors &errors)
{
    PipelineConfig &config = request.config;
    std::int64_t integer = 0;
    bool flag = false;

    if (name == "max_unroll") {
        if (readInt(value, name, 1, 64, integer, errors)) {
            config.optimizer.maxUnroll = integer;
            config.lintOptions.maxUnroll = integer;
        }
    } else if (name == "max_loops") {
        if (readInt(value, name, 1, 8, integer, errors))
            config.optimizer.maxLoops =
                static_cast<std::size_t>(integer);
    } else if (name == "use_cache_model") {
        if (readBool(value, name, flag, errors))
            config.optimizer.useCacheModel = flag;
    } else if (name == "limit_registers") {
        if (readBool(value, name, flag, errors))
            config.optimizer.limitRegisters = flag;
    } else if (name == "localized_trip") {
        if (!value.isNumber() || value.numberValue <= 0) {
            errors.fail("option 'localized_trip' must be a positive "
                        "number");
        } else {
            config.optimizer.locality.localizedTrip =
                value.numberValue;
        }
    } else if (name == "fuse") {
        if (readBool(value, name, flag, errors))
            config.fuse = flag;
    } else if (name == "normalize") {
        if (readBool(value, name, flag, errors))
            config.normalize = flag;
    } else if (name == "distribute") {
        if (readBool(value, name, flag, errors))
            config.distribute = flag;
    } else if (name == "interchange") {
        if (readBool(value, name, flag, errors))
            config.interchange = flag;
    } else if (name == "scalar_replace") {
        if (readBool(value, name, flag, errors))
            config.scalarReplace = flag;
    } else if (name == "prefetch") {
        if (readBool(value, name, flag, errors))
            config.prefetch = flag;
    } else if (name == "prefetch_distance") {
        if (readInt(value, name, 1, 1024, integer, errors))
            config.prefetchConfig.distanceIters = integer;
    } else if (name == "validate") {
        if (readBool(value, name, flag, errors))
            config.safety.validate = flag;
    } else if (name == "oracle") {
        if (readBool(value, name, flag, errors))
            config.safety.oracle = flag;
    } else if (name == "lint") {
        if (!value.isString()) {
            errors.fail("option 'lint' must be \"off\", \"warn\" or "
                        "\"strict\"");
        } else if (value.stringValue == "off") {
            config.lint = LintMode::Off;
        } else if (value.stringValue == "warn") {
            config.lint = LintMode::Warn;
        } else if (value.stringValue == "strict") {
            config.lint = LintMode::Strict;
        } else {
            errors.fail("option 'lint' must be \"off\", \"warn\" or "
                        "\"strict\"");
        }
    } else if (name == "min_severity") {
        if (!value.isString()) {
            errors.fail("option 'min_severity' must be \"note\", "
                        "\"warn\" or \"error\"");
        } else if (value.stringValue == "note") {
            config.lintOptions.minSeverity = LintSeverity::Note;
        } else if (value.stringValue == "warn") {
            config.lintOptions.minSeverity = LintSeverity::Warn;
        } else if (value.stringValue == "error") {
            config.lintOptions.minSeverity = LintSeverity::Error;
        } else {
            errors.fail("option 'min_severity' must be \"note\", "
                        "\"warn\" or \"error\"");
        }
    } else if (name == "threads") {
        // Worker width inside one request; never part of the cache
        // key (results are bit-identical at every width).
        if (readInt(value, name, 0, 1024, integer, errors))
            config.threads = static_cast<std::size_t>(integer);
    } else if (name == "seed") {
        if (readInt(value, name, 0, std::int64_t(1) << 62, integer,
                    errors)) {
            request.codegen.seed =
                static_cast<std::uint64_t>(integer);
            request.tune.seed = static_cast<std::uint64_t>(integer);
        }
    } else if (name == "tune_measure") {
        if (!value.isString()) {
            errors.fail("option 'tune_measure' must be \"model\" or "
                        "\"wall\"");
        } else if (value.stringValue == "model") {
            request.tune.measure = MeasureMode::Model;
        } else if (value.stringValue == "wall") {
            request.tune.measure = MeasureMode::Wall;
        } else {
            errors.fail("option 'tune_measure' must be \"model\" or "
                        "\"wall\"");
        }
    } else if (name == "tune_budget_ms") {
        if (readInt(value, name, 0, std::int64_t(1) << 40, integer,
                    errors))
            request.tune.budgetMs = integer;
    } else if (name == "tune_neighborhood") {
        if (readInt(value, name, 0, 8, integer, errors))
            request.tune.neighborhood = integer;
    } else if (name == "tune_repeats") {
        if (readInt(value, name, 1, 64, integer, errors))
            request.tune.repeats = static_cast<int>(integer);
    } else if (name == "tune_warmup") {
        if (readInt(value, name, 0, 64, integer, errors))
            request.tune.warmup = static_cast<int>(integer);
    } else if (name == "emit_main") {
        if (readBool(value, name, flag, errors))
            request.codegen.emitMain = flag;
    } else if (name == "params") {
        if (!value.isObject()) {
            errors.fail("option 'params' must be an object of "
                        "integer parameter overrides");
        } else {
            for (const auto &[param_name, param_value] :
                 value.members) {
                std::int64_t bound = 0;
                if (readInt(param_value, "params." + param_name,
                            std::numeric_limits<std::int64_t>::min(),
                            std::numeric_limits<std::int64_t>::max(),
                            bound, errors))
                    request.codegen.paramOverrides[param_name] = bound;
            }
        }
    } else {
        errors.fail("unknown option '" + name + "'");
    }
}

} // namespace

RequestParse
parseRequest(const std::string &line)
{
    constexpr std::size_t kMaxLine = 8u << 20;
    if (line.size() > kMaxLine) {
        return {std::nullopt, "request larger than 8 MiB",
                RequestErrorKind::Malformed};
    }

    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok()) {
        return {std::nullopt, parsed.error,
                RequestErrorKind::Malformed};
    }
    const JsonValue &root = *parsed.value;
    if (!root.isObject()) {
        return {std::nullopt, "request must be a JSON object",
                RequestErrorKind::Malformed};
    }

    ServiceRequest request;
    // Requests come from independent clients: run each one's nest
    // fan-out serially by default and let the server parallelize
    // across requests instead.
    request.config.threads = 1;
    // Service default: deterministic, compiler-free measurement.
    request.tune.measure = MeasureMode::Model;

    const JsonValue *op = root.find("op");
    if (!op || !op->isString()) {
        return {std::nullopt, "missing string field 'op'",
                RequestErrorKind::Malformed};
    }
    if (op->stringValue == "optimize") {
        request.op = ServiceOp::Optimize;
    } else if (op->stringValue == "lint") {
        request.op = ServiceOp::Lint;
    } else if (op->stringValue == "codegen") {
        request.op = ServiceOp::Codegen;
    } else if (op->stringValue == "tune") {
        request.op = ServiceOp::Tune;
    } else if (op->stringValue == "metrics") {
        request.op = ServiceOp::Metrics;
    } else if (op->stringValue == "ping") {
        request.op = ServiceOp::Ping;
    } else if (op->stringValue == "shutdown") {
        request.op = ServiceOp::Shutdown;
    } else {
        return {std::nullopt, "unknown op '" + op->stringValue + "'",
                RequestErrorKind::BadOp};
    }

    FieldErrors errors;
    std::string scenario_name;
    for (const auto &[name, value] : root.members) {
        if (name == "op")
            continue;
        if (name == "id") {
            if (!value.isString()) {
                errors.fail("field 'id' must be a string");
                continue;
            }
            request.id = value.stringValue;
        } else if (name == "source") {
            if (!value.isString()) {
                errors.fail("field 'source' must be a string");
                continue;
            }
            request.source = value.stringValue;
        } else if (name == "scenario") {
            if (!value.isString()) {
                errors.fail("field 'scenario' must be a string");
                continue;
            }
            scenario_name = value.stringValue;
        } else if (name == "machine") {
            if (!value.isString()) {
                errors.fail("field 'machine' must be a string");
                continue;
            }
            request.machineName = value.stringValue;
        } else if (name == "options") {
            if (!value.isObject()) {
                errors.fail("field 'options' must be an object");
                continue;
            }
            for (const auto &[opt_name, opt_value] : value.members)
                applyOption(opt_name, opt_value, request, errors);
        } else if (name == "deadline_ms") {
            std::int64_t ms = 0;
            if (readInt(value, "deadline_ms", 0,
                        std::int64_t(1) << 40, ms, errors))
                request.deadlineMs = ms;
        } else if (name == "no_cache") {
            bool flag = false;
            if (readBool(value, "no_cache", flag, errors))
                request.noCache = flag;
        } else {
            errors.fail("unknown field '" + name + "'");
        }
    }
    if (!errors.ok()) {
        return {std::nullopt, errors.message,
                RequestErrorKind::BadField};
    }

    std::optional<MachineModel> machine =
        machinePreset(request.machineName);
    if (!machine) {
        return {std::nullopt,
                "unknown machine '" + request.machineName + "'",
                RequestErrorKind::BadField};
    }
    request.machine = *machine;

    if (!scenario_name.empty()) {
        if (!request.source.empty()) {
            return {std::nullopt,
                    "fields 'source' and 'scenario' are mutually "
                    "exclusive",
                    RequestErrorKind::BadField};
        }
        std::string spec_error;
        std::optional<ScenarioSpec> spec =
            parseScenarioSpec(scenario_name, &spec_error);
        if (!spec) {
            return {std::nullopt, "bad scenario: " + spec_error,
                    RequestErrorKind::BadField};
        }
        request.scenarioName = spec->toString();
        request.source = generateScenario(*spec).source;
    }

    bool needs_source = request.op == ServiceOp::Optimize ||
                        request.op == ServiceOp::Lint ||
                        request.op == ServiceOp::Codegen ||
                        request.op == ServiceOp::Tune;
    if (needs_source && request.source.empty()) {
        return {std::nullopt,
                "missing field 'source' (or 'scenario')",
                RequestErrorKind::BadField};
    }

    return {std::move(request), "", RequestErrorKind::None};
}

namespace
{

void
envelopeHead(JsonWriter &json, const std::string &id,
             const std::string &op)
{
    json.beginObject();
    if (!id.empty())
        json.field("id", id);
    json.field("op", op);
}

} // namespace

std::string
errorResponse(const std::string &id, const std::string &op,
              const std::string &status, const std::string &message)
{
    JsonWriter json;
    envelopeHead(json, id, op);
    json.field("status", status);
    json.field("error", message);
    json.endObject();
    return json.str();
}

std::string
okResponse(const std::string &id, const std::string &op,
           const std::string &result_json)
{
    JsonWriter json;
    envelopeHead(json, id, op);
    json.field("status", "ok");
    json.key("result").rawValue(result_json);
    json.endObject();
    return json.str();
}

} // namespace ujam
