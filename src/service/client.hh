/**
 * @file
 * A thin blocking client for the ujam-serve socket.
 *
 * One connection, one request frame out, one response frame back --
 * exactly the shape the CLI's client mode and the server smoke tests
 * need. connect() retries briefly so a test can start a server and a
 * client concurrently without an external readiness handshake.
 *
 * requestWithRetry() reconnects and resends when the connection dies
 * mid-request. That is safe to do blindly because every response is
 * a pure function of its request (see protocol.hh) and the service's
 * result cache is content-addressed: a request the dying worker had
 * already computed is answered byte-identically on the retry, so a
 * worker crash costs a client latency, never a different answer.
 */

#ifndef UJAM_SERVICE_CLIENT_HH
#define UJAM_SERVICE_CLIENT_HH

#include <string>

namespace ujam
{

/** See the file comment. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to a listening ujam-serve socket.
     *
     * @param socket_path The server's Unix-domain-socket path.
     * @param retry_ms    Keep retrying for this long before failing
     *                    (covers a server still binding).
     * @return True once connected.
     */
    bool connect(const std::string &socket_path, int retry_ms = 2000);

    /** @return True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request frame and read one response frame.
     *
     * @param line       A request without the trailing newline.
     * @param timeout_ms Give up (and close the connection, so a
     *                   retry starts clean) when no response arrives
     *                   within this many ms; <= 0 blocks forever.
     * @return The response without its newline, or "" on a dead
     *         connection (e.g. closed after an overloaded reply) or
     *         an expired timeout.
     */
    std::string request(const std::string &line, int timeout_ms = 0);

    /**
     * request(), but reconnect and resend when the connection dies
     * or a response deadline expires (idempotent retry; see the file
     * comment for why that is safe). The per-attempt timeout is what
     * makes the retry loop live: without it, one request swallowed
     * by a dying worker would block the caller forever instead of
     * being resent to the worker's replacement.
     *
     * @param line       A request without the trailing newline.
     * @param attempts   Total tries, including the first (>= 1).
     * @param timeout_ms Per-attempt response deadline; <= 0 blocks.
     * @return The response, or "" once every attempt failed.
     */
    std::string requestWithRetry(const std::string &line,
                                 int attempts = 3,
                                 int timeout_ms = 10000);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string buffer_;     //!< bytes read past the last frame
    std::string socketPath_; //!< remembered for reconnects
};

} // namespace ujam

#endif // UJAM_SERVICE_CLIENT_HH
