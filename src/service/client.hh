/**
 * @file
 * A thin blocking client for the ujam-serve socket.
 *
 * One connection, one request frame out, one response frame back --
 * exactly the shape the CLI's client mode and the server smoke tests
 * need. connect() retries briefly so a test can start a server and a
 * client concurrently without an external readiness handshake.
 */

#ifndef UJAM_SERVICE_CLIENT_HH
#define UJAM_SERVICE_CLIENT_HH

#include <string>

namespace ujam
{

/** See the file comment. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to a listening ujam-serve socket.
     *
     * @param socket_path The server's Unix-domain-socket path.
     * @param retry_ms    Keep retrying for this long before failing
     *                    (covers a server still binding).
     * @return True once connected.
     */
    bool connect(const std::string &socket_path, int retry_ms = 2000);

    /** @return True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request frame and read one response frame.
     *
     * @param line A request without the trailing newline.
     * @return The response without its newline, or "" on a dead
     *         connection (e.g. closed after an overloaded reply).
     */
    std::string request(const std::string &line);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string buffer_; //!< bytes read past the last frame
};

} // namespace ujam

#endif // UJAM_SERVICE_CLIENT_HH
