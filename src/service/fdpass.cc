#include "service/fdpass.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace ujam
{

bool
sendFd(int channel_fd, int fd)
{
    // One data byte so the receiver can tell EOF (read of 0) from a
    // delivered message; the descriptor travels in the ancillary
    // SCM_RIGHTS payload.
    char byte = 'F';
    iovec iov{};
    iov.iov_base = &byte;
    iov.iov_len = 1;

    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    cmsghdr *cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));

    while (true) {
        ssize_t n = ::sendmsg(channel_fd, &msg, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        return n == 1;
    }
}

RecvFdResult
recvFd(int channel_fd)
{
    RecvFdResult result;
    char byte = 0;
    iovec iov{};
    iov.iov_base = &byte;
    iov.iov_len = 1;

    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    ssize_t n;
    do {
        n = ::recvmsg(channel_fd, &msg, MSG_CMSG_CLOEXEC);
    } while (n < 0 && errno == EINTR);

    if (n == 0) {
        result.closed = true;
        return result;
    }
    if (n < 0)
        return result;

    for (cmsghdr *cmsg = CMSG_FIRSTHDR(&msg); cmsg;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
        if (cmsg->cmsg_level == SOL_SOCKET &&
            cmsg->cmsg_type == SCM_RIGHTS &&
            cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
            std::memcpy(&result.fd, CMSG_DATA(cmsg), sizeof(int));
            break;
        }
    }
    return result;
}

} // namespace ujam
