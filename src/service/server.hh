/**
 * @file
 * The ujam-serve server: batch optimization over NDJSON frames.
 *
 * One UjamServer owns the result cache, the metrics and the request
 * execution path (processLine). Two front ends feed it the identical
 * frames:
 *
 *  - runBatch(): read request lines from a stream, answer on another
 *    (stdin/stdout in the CLI). Lines are processed by a private
 *    worker group into index-addressed slots and emitted in input
 *    order, so batch output is bit-identical at every thread count.
 *  - start()/stop(): a Unix-domain-socket accept loop with a bounded
 *    admission queue. When the queue is full a connection is answered
 *    with an explicit "overloaded" frame and closed instead of
 *    queuing without bound. Workers poll with a short timeout so a
 *    graceful stop never hangs on an idle client.
 *
 * Per-request deadlines ("deadline_ms", measured from receipt) are
 * checked at stage boundaries -- admission, post-parse, post-optimize
 * -- and an expired request answers "timeout". A "shutdown" request
 * begins a graceful stop: no new connections, queued work drains,
 * workers exit after their current frame.
 *
 * Requests run the existing pipeline (driver/optimizeProgram, the
 * analyzer for "lint") with per-nest parallelism disabled: the server
 * parallelizes across requests, which keeps every response a pure --
 * and therefore cacheable -- function of its request.
 */

#ifndef UJAM_SERVICE_SERVER_HH
#define UJAM_SERVICE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hh"
#include "service/metrics.hh"
#include "service/protocol.hh"

namespace ujam
{

/** Server construction knobs. */
struct ServerConfig
{
    std::string socketPath;      //!< socket mode listen path
    std::size_t threads = 0;     //!< workers; 0 = one per core
    std::size_t queueLimit = 64; //!< pending-connection bound
    /** Deadline applied to requests that do not carry one. */
    std::optional<std::int64_t> defaultDeadlineMs;
    std::size_t cacheMemEntries = 256; //!< in-memory LRU capacity
    std::string cacheDir;        //!< persistent tier; "" = memory only
    /** Disk-tier byte budget; 0 = unbounded. See ResultCache. */
    std::uint64_t cacheMaxBytes = 0;
};

/** See the file comment. */
class UjamServer
{
  public:
    explicit UjamServer(ServerConfig config);
    ~UjamServer();

    UjamServer(const UjamServer &) = delete;
    UjamServer &operator=(const UjamServer &) = delete;

    /**
     * Answer one request frame.
     *
     * Thread-safe; never throws. The response has no trailing
     * newline.
     *
     * @param line    The frame.
     * @param arrival When the frame was received (deadline anchor).
     */
    std::string processLine(
        const std::string &line,
        std::chrono::steady_clock::time_point arrival);

    /** processLine anchored at the call instant. */
    std::string processLine(const std::string &line);

    /**
     * Batch mode: one response line per input line, in input order.
     *
     * @return The number of requests processed.
     */
    std::size_t runBatch(std::istream &in, std::ostream &out);

    /**
     * Socket mode: bind, listen and serve until stop().
     * @throws FatalError when the socket cannot be created or bound.
     */
    void start();

    /**
     * Graceful stop: stop accepting, drain the admission queue, join
     * every thread, unlink the socket. Idempotent; also runs from the
     * destructor.
     */
    void stop();

    /** Block until a shutdown request (or stop()) arrives. */
    void waitForShutdown();

    /** @return True once a stop was requested. */
    bool stopping() const;

    const ServiceMetrics &metrics() const { return metrics_; }
    ResultCache &cache() { return cache_; }

    /** @return The metrics document including cache gauges. */
    std::string metricsSnapshot() const;

  private:
    std::string process(const ServiceRequest &request,
                        std::chrono::steady_clock::time_point arrival);
    std::string runOptimize(
        const ServiceRequest &request,
        std::chrono::steady_clock::time_point arrival,
        std::chrono::steady_clock::time_point deadline,
        bool has_deadline);
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    void requestStop();

    ServerConfig config_;
    ServiceMetrics metrics_;
    ResultCache cache_;

    int listenFd_ = -1;
    std::vector<std::thread> threads_; //!< accept + workers

    mutable std::mutex mutex_;
    std::condition_variable wake_;    //!< workers: queue or stop
    std::condition_variable stopped_; //!< waitForShutdown
    std::deque<int> pending_;         //!< accepted, unserved sockets
    bool stopRequested_ = false;
    bool started_ = false;
};

} // namespace ujam

#endif // UJAM_SERVICE_SERVER_HH
