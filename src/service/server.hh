/**
 * @file
 * The ujam-serve server: batch optimization over NDJSON frames.
 *
 * One UjamServer owns the result cache, the metrics and the request
 * execution path (processLine). Two front ends feed it the identical
 * frames:
 *
 *  - runBatch(): read request lines from a stream, answer on another
 *    (stdin/stdout in the CLI). Lines are processed by a private
 *    worker group into index-addressed slots and emitted in input
 *    order, so batch output is bit-identical at every thread count.
 *  - start()/stop(): a Unix-domain-socket accept loop with a bounded
 *    admission queue. When the queue is full a connection is answered
 *    with an explicit "overloaded" frame and closed instead of
 *    queuing without bound. Workers poll with a short timeout so a
 *    graceful stop never hangs on an idle client.
 *
 * Per-request deadlines ("deadline_ms", measured from receipt) are
 * checked at stage boundaries -- admission, post-parse, post-optimize
 * -- and an expired request answers "timeout". A "shutdown" request
 * begins a graceful stop: no new connections, queued work drains,
 * workers exit after their current frame.
 *
 * Requests run the existing pipeline (driver/optimizeProgram, the
 * analyzer for "lint") with per-nest parallelism disabled: the server
 * parallelizes across requests, which keeps every response a pure --
 * and therefore cacheable -- function of its request.
 *
 * Multi-process operation (see service/supervisor.hh): a worker
 * server adopts the supervisor's pre-bound listening socket
 * (ServerConfig::listenFd) -- the AF_UNIX analogue of SO_REUSEPORT:
 * every worker accepts on the shared fd and the kernel load-balances
 * -- or, in dispatch mode, receives already-accepted connection fds
 * over an SCM_RIGHTS channel (ServerConfig::dispatchFd). Workers
 * record into a shared-memory ServiceMetrics block
 * (ServerConfig::sharedMetrics) so the `metrics` op aggregates
 * service-wide totals from any worker. A server in degraded mode
 * (ServerConfig::degraded, entered by the supervisor's circuit
 * breaker) answers pipeline ops from the cache only and rejects
 * misses with status "degraded" instead of computing.
 */

#ifndef UJAM_SERVICE_SERVER_HH
#define UJAM_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hh"
#include "service/metrics.hh"
#include "service/protocol.hh"
#include "support/fault_injection.hh"

namespace ujam
{

/** Server construction knobs. */
struct ServerConfig
{
    std::string socketPath;      //!< socket mode listen path
    std::size_t threads = 0;     //!< workers; 0 = one per core
    std::size_t queueLimit = 64; //!< pending-connection bound
    /** Deadline applied to requests that do not carry one. */
    std::optional<std::int64_t> defaultDeadlineMs;
    std::size_t cacheMemEntries = 256; //!< in-memory LRU capacity
    std::string cacheDir;        //!< persistent tier; "" = memory only
    /** Disk-tier byte budget; 0 = unbounded. See ResultCache. */
    std::uint64_t cacheMaxBytes = 0;
    /** Disk-cache shards (key-prefix routing; see ResultCache). */
    std::size_t cacheShards = 1;

    /** Close a connection idle for this long; 0 = never. A stalled
     * client must not pin a worker slot forever. */
    std::int64_t idleTimeoutMs = 0;

    // --- multi-process plumbing (set by the supervisor) ---
    /** Adopt this already-bound listening socket instead of binding
     * socketPath; -1 = bind our own. An adopting server neither
     * closes the fd's last reference semantics nor unlinks the path
     * on stop -- the supervisor owns both. */
    int listenFd = -1;
    /** Receive already-accepted connection fds over this SCM_RIGHTS
     * channel instead of accepting; -1 = accept ourselves. */
    int dispatchFd = -1;
    /** Cache-only mode: pipeline ops answer from the cache or are
     * rejected with status "degraded"; nothing is computed. */
    bool degraded = false;
    /** Record into this (shared-memory) metrics block instead of a
     * private one, so counters aggregate across workers. */
    ServiceMetrics *sharedMetrics = nullptr;
    /** Renders the supervision section of the metrics document;
     * unset in single-process mode. */
    std::function<SupervisorStats()> supervisorStats;
    /** This worker's index under a supervisor; -1 = single process
     * (treated as worker 0 for fault-spec filtering). */
    int workerIndex = -1;
    /** Process-level fault specs for this worker. Unset (nullopt) =
     * resolve from UJAM_FAULT; an empty list disables injection. */
    std::optional<std::vector<ProcessFaultSpec>> workerFaults;
    /** Counts pipeline requests for fault ordinals. The supervisor
     * points this at shared memory so the count survives restarts
     * (a worker_crash:N fault then fires exactly once per service
     * lifetime, not once per incarnation); null = a private count. */
    std::atomic<std::uint64_t> *faultSerial = nullptr;
};

/** See the file comment. */
class UjamServer
{
  public:
    explicit UjamServer(ServerConfig config);
    ~UjamServer();

    UjamServer(const UjamServer &) = delete;
    UjamServer &operator=(const UjamServer &) = delete;

    /**
     * Answer one request frame.
     *
     * Thread-safe; never throws. The response has no trailing
     * newline.
     *
     * @param line    The frame.
     * @param arrival When the frame was received (deadline anchor).
     */
    std::string processLine(
        const std::string &line,
        std::chrono::steady_clock::time_point arrival);

    /** processLine anchored at the call instant. */
    std::string processLine(const std::string &line);

    /**
     * Batch mode: one response line per input line, in input order.
     *
     * @return The number of requests processed.
     */
    std::size_t runBatch(std::istream &in, std::ostream &out);

    /**
     * Socket mode: bind, listen and serve until stop().
     * @throws FatalError when the socket cannot be created or bound.
     */
    void start();

    /**
     * Graceful stop: stop accepting, drain the admission queue, join
     * every thread, unlink the socket. Idempotent; also runs from the
     * destructor.
     */
    void stop();

    /** Block until a shutdown request (or stop()) arrives. */
    void waitForShutdown();

    /** @return True once a stop was requested. */
    bool stopping() const;

    /**
     * Begin a graceful stop without joining (async-signal-unsafe but
     * thread-safe): accepting ends, queued work drains, workers exit
     * after their current frame. Call stop() to join.
     */
    void requestStop();

    const ServiceMetrics &metrics() const { return metrics_; }
    ResultCache &cache() { return cache_; }

    /** @return The metrics document including cache gauges. */
    std::string metricsSnapshot() const;

  private:
    std::string process(const ServiceRequest &request,
                        std::chrono::steady_clock::time_point arrival);
    std::string runOptimize(
        const ServiceRequest &request,
        std::chrono::steady_clock::time_point arrival,
        std::chrono::steady_clock::time_point deadline,
        bool has_deadline);
    /** Fire any worker-level faults matching this request serial. */
    void applyWorkerFaults(std::uint64_t serial);
    void acceptLoop();
    void dispatchLoop();
    void workerLoop();
    void handleConnection(int fd);

    ServerConfig config_;
    ServiceMetrics ownedMetrics_; //!< backing when none is shared
    ServiceMetrics &metrics_;     //!< shared block or ownedMetrics_
    ResultCache cache_;
    std::vector<ProcessFaultSpec> workerFaults_;
    std::atomic<std::uint64_t> requestSerial_{0};

    int listenFd_ = -1;
    bool ownsListenSocket_ = false; //!< we bound it; unlink on stop
    std::vector<std::thread> threads_; //!< accept + workers

    mutable std::mutex mutex_;
    std::condition_variable wake_;    //!< workers: queue or stop
    std::condition_variable stopped_; //!< waitForShutdown
    std::deque<int> pending_;         //!< accepted, unserved sockets
    bool stopRequested_ = false;
    bool started_ = false;
};

} // namespace ujam

#endif // UJAM_SERVICE_SERVER_HH
