#include "service/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <vector>

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "service/fdpass.hh"
#include "service/metrics.hh"
#include "service/protocol.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"

namespace ujam
{

namespace
{

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One worker's history in the shared block (atomics only). */
struct WorkerSlotShared
{
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<std::uint64_t> crashes{0};
    std::atomic<std::uint64_t> alive{0};
    std::atomic<std::int64_t> lastExitCode{0};
    std::atomic<std::int64_t> lastSignal{0};
    /** Pipeline requests across every incarnation of this slot, so
     * fault ordinals count service lifetime, not process lifetime
     * (a worker_crash fault must not re-fire after the restart). */
    std::atomic<std::uint64_t> faultSerial{0};
};

/**
 * Everything the workers and the supervisor count, in one anonymous
 * MAP_SHARED mapping created before the first fork. Flat relaxed
 * atomics only -- no pointers, no locks -- so concurrent updates from
 * any number of processes are safe and the `metrics` op on any worker
 * sees service-wide totals.
 */
struct SharedBlock
{
    ServiceMetrics metrics;
    std::array<WorkerSlotShared, kMaxWorkers> workers;
    std::atomic<std::uint64_t> workersConfigured{0};
    std::atomic<std::uint64_t> restartsTotal{0};
    std::atomic<std::uint64_t> crashesTotal{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> degradedTransitions{0};
    std::atomic<std::uint64_t> forcedKills{0};
};

SupervisorStats
statsFromShared(const SharedBlock &shared)
{
    SupervisorStats stats;
    std::size_t configured = static_cast<std::size_t>(
        shared.workersConfigured.load(std::memory_order_relaxed));
    configured = std::min(configured, kMaxWorkers);
    stats.workersConfigured = configured;
    stats.restartsTotal =
        shared.restartsTotal.load(std::memory_order_relaxed);
    stats.crashesTotal =
        shared.crashesTotal.load(std::memory_order_relaxed);
    stats.degraded =
        shared.degraded.load(std::memory_order_relaxed) != 0;
    stats.degradedTransitions =
        shared.degradedTransitions.load(std::memory_order_relaxed);
    stats.forcedKills =
        shared.forcedKills.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < configured; ++i) {
        const WorkerSlotShared &slot = shared.workers[i];
        WorkerStats worker;
        worker.restarts = slot.restarts.load(std::memory_order_relaxed);
        worker.crashes = slot.crashes.load(std::memory_order_relaxed);
        worker.alive = slot.alive.load(std::memory_order_relaxed) != 0;
        worker.lastExitCode =
            slot.lastExitCode.load(std::memory_order_relaxed);
        worker.lastSignal =
            slot.lastSignal.load(std::memory_order_relaxed);
        if (worker.alive)
            ++stats.workersAlive;
        stats.workers.push_back(worker);
    }
    return stats;
}

/** Bind and listen on an AF_UNIX socket; fatal on any failure. */
int
bindListenSocket(const std::string &path)
{
    if (path.empty())
        fatal("ujam-serve: no socket path configured");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("ujam-serve: socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("ujam-serve: socket(): ", std::strerror(errno));

    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("ujam-serve: bind(", path, "): ", reason);
    }
    if (::listen(fd, 128) != 0) {
        std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("ujam-serve: listen(): ", reason);
    }
    return fd;
}

/** write() the whole buffer, retrying EINTR; best effort. */
void
sendAll(int fd, const std::string &text)
{
    std::size_t sent = 0;
    while (sent < text.size()) {
        ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

bool
CrashWindow::recordCrash(std::int64_t now_ms)
{
    crashes_.push_back(now_ms);
    while (!crashes_.empty() &&
           crashes_.front() < now_ms - windowMs_)
        crashes_.pop_front();
    return crashes_.size() > limit_;
}

std::size_t
CrashWindow::inWindow(std::int64_t now_ms) const
{
    std::size_t count = 0;
    for (std::int64_t at : crashes_)
        if (at >= now_ms - windowMs_)
            ++count;
    return count;
}

std::int64_t
restartBackoffMs(std::int64_t base_ms, std::int64_t max_ms,
                 std::uint64_t consecutive_crashes, std::size_t worker)
{
    if (base_ms <= 0)
        base_ms = 1;
    if (max_ms < base_ms)
        max_ms = base_ms;
    if (consecutive_crashes == 0)
        consecutive_crashes = 1;

    std::int64_t delay = base_ms;
    std::uint64_t doublings = std::min<std::uint64_t>(
        consecutive_crashes - 1, 62);
    for (std::uint64_t i = 0; i < doublings && delay < max_ms; ++i)
        delay = std::min<std::int64_t>(delay * 2, max_ms);

    // Jitter spreads sibling restarts without sacrificing
    // reproducibility: the stream depends only on (worker, crash
    // count), never on wall-clock state.
    Rng rng(Rng::deriveStream(0x756A616D5355504Bull + worker,
                              consecutive_crashes));
    std::int64_t jitter =
        delay > 1 ? rng.range(0, delay / 2) : 0;
    return std::min<std::int64_t>(delay + jitter, max_ms);
}

// --- the supervisor proper -------------------------------------------------

struct Supervisor::Impl
{
    explicit Impl(SupervisorConfig config_in)
        : config(std::move(config_in)),
          window(config.breakerCrashes, config.breakerWindowMs)
    {
    }

    ~Impl()
    {
        for (Slot &slot : slots)
            if (slot.channel >= 0)
                ::close(slot.channel);
        if (listenFd >= 0)
            ::close(listenFd);
        if (shared) {
            shared->~SharedBlock();
            ::munmap(shared, sizeof(SharedBlock));
        }
    }

    struct Slot
    {
        pid_t pid = -1;
        int channel = -1; //!< dispatch-mode SCM_RIGHTS channel
        std::uint64_t consecutiveCrashes = 0;
        std::int64_t restartDueMs = -1; //!< -1 = no restart pending
        std::int64_t spawnedAtMs = 0;
    };

    SupervisorConfig config;
    CrashWindow window;
    SharedBlock *shared = nullptr;
    int listenFd = -1;
    std::vector<Slot> slots;
    sigset_t mask{};
    bool terminating = false;
    bool degradeRequested = false;
    bool degraded = false;
    std::int64_t drainDeadlineMs = -1;
    std::size_t rrNext = 0;
    std::unique_ptr<UjamServer> degradedServer;

    int run();
    void mapShared();
    void spawn(std::size_t index);
    int runWorker(std::size_t index, int dispatch_fd);
    void reap(std::int64_t now);
    void maybeRestart(std::int64_t now);
    void beginShutdown(std::int64_t now);
    void forceKillStragglers();
    bool consumePendingSignals();
    void pollAccept(int timeout_ms);
    void enterDegradedMode();
    int runDegraded();

    std::size_t
    liveWorkers() const
    {
        std::size_t live = 0;
        for (const Slot &slot : slots)
            if (slot.pid >= 0)
                ++live;
        return live;
    }

    int
    finalExitCode() const
    {
        if (shared->forcedKills.load(std::memory_order_relaxed) > 0)
            return kExitForcedKill;
        if (degraded)
            return kExitDegraded;
        return 0;
    }
};

void
Supervisor::Impl::mapShared()
{
    void *mem =
        ::mmap(nullptr, sizeof(SharedBlock), PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        fatal("ujam-serve: mmap(shared metrics): ",
              std::strerror(errno));
    shared = new (mem) SharedBlock();
}

void
Supervisor::Impl::spawn(std::size_t index)
{
    Slot &slot = slots[index];
    int channel[2] = {-1, -1};
    if (config.dispatch &&
        ::socketpair(AF_UNIX, SOCK_STREAM, 0, channel) != 0) {
        // Treat like an immediate crash: retry after backoff.
        slot.restartDueMs =
            nowMs() + restartBackoffMs(config.backoffBaseMs,
                                       config.backoffMaxMs,
                                       ++slot.consecutiveCrashes,
                                       index);
        return;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        if (channel[0] >= 0) {
            ::close(channel[0]);
            ::close(channel[1]);
        }
        slot.restartDueMs =
            nowMs() + restartBackoffMs(config.backoffBaseMs,
                                       config.backoffMaxMs,
                                       ++slot.consecutiveCrashes,
                                       index);
        return;
    }

    if (pid == 0) {
        // Child: drop every descriptor that belongs to a sibling or
        // to the supervisor's side of our own channel.
        if (channel[0] >= 0)
            ::close(channel[0]);
        for (Slot &other : slots)
            if (other.channel >= 0)
                ::close(other.channel);
        int dispatch_fd = config.dispatch ? channel[1] : -1;
        if (config.dispatch && listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        ::_exit(runWorker(index, dispatch_fd));
    }

    if (config.dispatch) {
        ::close(channel[1]);
        slot.channel = channel[0];
    }
    slot.pid = pid;
    slot.restartDueMs = -1;
    slot.spawnedAtMs = nowMs();
    shared->workers[index].alive.store(1, std::memory_order_relaxed);
}

int
Supervisor::Impl::runWorker(std::size_t index, int dispatch_fd)
{
#ifdef __linux__
    // Die with the supervisor instead of orphaning: a killed
    // supervisor must not leave workers squatting on the socket.
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif

    ServerConfig server = config.server;
    server.listenFd = dispatch_fd >= 0 ? -1 : listenFd;
    server.dispatchFd = dispatch_fd;
    server.sharedMetrics = &shared->metrics;
    server.workerIndex = static_cast<int>(index);
    server.faultSerial = &shared->workers[index].faultSerial;
    SharedBlock *block = shared;
    server.supervisorStats = [block] { return statsFromShared(*block); };

    try {
        UjamServer worker(std::move(server));
        worker.start();
        // SIGTERM/SIGINT are blocked (inherited mask), so we take
        // them synchronously here -- no handlers, no races.
        sigset_t wanted;
        sigemptyset(&wanted);
        sigaddset(&wanted, SIGTERM);
        sigaddset(&wanted, SIGINT);
        timespec tick{0, 100 * 1000 * 1000};
        while (!worker.stopping()) {
            int sig = ::sigtimedwait(&wanted, nullptr, &tick);
            if (sig == SIGTERM || sig == SIGINT)
                break;
        }
        worker.stop();
    } catch (const std::exception &err) {
        std::cerr << "ujam-serve[worker " << index
                  << "]: " << err.what() << "\n";
        return 1;
    }
    return 0;
}

void
Supervisor::Impl::reap(std::int64_t now)
{
    int status = 0;
    pid_t pid;
    while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
        auto it = std::find_if(
            slots.begin(), slots.end(),
            [pid](const Slot &slot) { return slot.pid == pid; });
        if (it == slots.end())
            continue;
        std::size_t index =
            static_cast<std::size_t>(it - slots.begin());
        Slot &slot = *it;
        slot.pid = -1;
        if (slot.channel >= 0) {
            ::close(slot.channel);
            slot.channel = -1;
        }
        WorkerSlotShared &record = shared->workers[index];
        record.alive.store(0, std::memory_order_relaxed);
        record.lastExitCode.store(
            WIFEXITED(status) ? WEXITSTATUS(status) : 0,
            std::memory_order_relaxed);
        record.lastSignal.store(
            WIFSIGNALED(status) ? WTERMSIG(status) : 0,
            std::memory_order_relaxed);

        bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (terminating || degraded)
            continue; // expected exits; nothing to restart. In
                      // degraded mode this also covers the drain:
                      // a SIGTERMed worker's clean exit must not
                      // read as a shutdown request, and a final
                      // crash must not schedule a restart.
        if (clean) {
            // A worker that exits 0 unprompted answered a `shutdown`
            // frame: drain the whole service.
            beginShutdown(now);
            continue;
        }

        // Crash. A worker that ran healthily for a full breaker
        // window starts its backoff sequence over.
        if (slot.consecutiveCrashes > 0 &&
            now - slot.spawnedAtMs > config.breakerWindowMs)
            slot.consecutiveCrashes = 0;
        ++slot.consecutiveCrashes;
        record.crashes.fetch_add(1, std::memory_order_relaxed);
        shared->crashesTotal.fetch_add(1, std::memory_order_relaxed);
        if (window.recordCrash(now)) {
            degradeRequested = true;
            continue;
        }
        slot.restartDueMs =
            now + restartBackoffMs(config.backoffBaseMs,
                                   config.backoffMaxMs,
                                   slot.consecutiveCrashes, index);
    }
}

void
Supervisor::Impl::maybeRestart(std::int64_t now)
{
    for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot &slot = slots[i];
        if (slot.pid >= 0 || slot.restartDueMs < 0 ||
            now < slot.restartDueMs)
            continue;
        spawn(i);
        if (slot.pid >= 0) {
            shared->workers[i].restarts.fetch_add(
                1, std::memory_order_relaxed);
            shared->restartsTotal.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
}

void
Supervisor::Impl::beginShutdown(std::int64_t now)
{
    if (terminating)
        return;
    terminating = true;
    drainDeadlineMs = now + std::max<std::int64_t>(config.drainMs, 0);
    for (Slot &slot : slots) {
        if (slot.pid >= 0)
            ::kill(slot.pid, SIGTERM);
        // Dispatch workers also see channel EOF, which doubles as a
        // stop signal if the SIGTERM races their startup.
        if (slot.channel >= 0) {
            ::close(slot.channel);
            slot.channel = -1;
        }
        slot.restartDueMs = -1;
    }
}

void
Supervisor::Impl::forceKillStragglers()
{
    for (Slot &slot : slots) {
        if (slot.pid < 0)
            continue;
        ::kill(slot.pid, SIGKILL);
        shared->forcedKills.fetch_add(1, std::memory_order_relaxed);
    }
}

/** @return True when a termination signal arrived. */
bool
Supervisor::Impl::consumePendingSignals()
{
    bool terminate = false;
    while (true) {
        timespec zero{0, 0};
        int sig = ::sigtimedwait(&mask, nullptr, &zero);
        if (sig < 0)
            break;
        if (sig == SIGTERM || sig == SIGINT)
            terminate = true;
        // SIGCHLD only wakes us; reap() runs every iteration anyway.
    }
    return terminate;
}

void
Supervisor::Impl::pollAccept(int timeout_ms)
{
    pollfd poller{listenFd, POLLIN, 0};
    int ready = ::poll(&poller, 1, timeout_ms);
    if (ready <= 0)
        return;
    int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0)
        return;

    // Round-robin over live workers; a send failure means the worker
    // died under us, so retire its channel and try the next.
    for (std::size_t tried = 0; tried < slots.size(); ++tried) {
        Slot &slot = slots[rrNext++ % slots.size()];
        if (slot.pid < 0 || slot.channel < 0)
            continue;
        if (sendFd(slot.channel, fd)) {
            ::close(fd);
            return;
        }
        ::close(slot.channel);
        slot.channel = -1;
    }

    // Every worker is between restarts: refuse explicitly rather
    // than letting the client time out.
    shared->metrics.requestsTotal.add();
    shared->metrics.requestsOverloaded.add();
    sendAll(fd, errorResponse("", "", "overloaded",
                              "no live workers") +
                    "\n");
    ::close(fd);
}

void
Supervisor::Impl::enterDegradedMode()
{
    degraded = true;
    shared->degraded.store(1, std::memory_order_relaxed);
    shared->degradedTransitions.fetch_add(1,
                                          std::memory_order_relaxed);

    // Stop the survivors (bounded), then serve from the cache alone.
    std::int64_t deadline = nowMs() + config.drainMs;
    for (Slot &slot : slots) {
        if (slot.pid >= 0)
            ::kill(slot.pid, SIGTERM);
        if (slot.channel >= 0) {
            ::close(slot.channel);
            slot.channel = -1;
        }
        slot.restartDueMs = -1;
    }
    while (liveWorkers() > 0) {
        if (nowMs() >= deadline) {
            forceKillStragglers();
            deadline = nowMs() + 1000; // bounded wait for the KILLs
        }
        ::poll(nullptr, 0, 20);
        reap(nowMs());
    }

    // Only now -- when no further fork can happen -- may the
    // supervisor grow threads.
    ServerConfig server = config.server;
    server.listenFd = listenFd;
    server.degraded = true;
    server.sharedMetrics = &shared->metrics;
    server.workerFaults = std::vector<ProcessFaultSpec>{};
    // Survival mode must not be starvable: handleConnection keeps
    // served connections alive, so one idle client could pin a lone
    // worker thread forever while fresh connections starve in the
    // admission queue. Cache-only answers are cheap -- give the
    // degraded server at least two threads and always reap idle
    // connections, whatever the template said.
    if (server.threads != 0 && server.threads < 2)
        server.threads = 2;
    if (server.idleTimeoutMs <= 0)
        server.idleTimeoutMs = 1000;
    SharedBlock *block = shared;
    server.supervisorStats = [block] { return statsFromShared(*block); };
    degradedServer = std::make_unique<UjamServer>(std::move(server));
    degradedServer->start();
}

int
Supervisor::Impl::runDegraded()
{
    while (!degradedServer->stopping()) {
        ::poll(nullptr, 0, 100);
        if (consumePendingSignals())
            degradedServer->requestStop();
        reap(nowMs()); // stray SIGKILLed stragglers
    }
    degradedServer->stop();
    degradedServer.reset();
    if (!config.server.socketPath.empty())
        ::unlink(config.server.socketPath.c_str());
    return finalExitCode();
}

int
Supervisor::Impl::run()
{
    ::signal(SIGPIPE, SIG_IGN);

    // Take SIGCHLD/SIGTERM/SIGINT synchronously via sigtimedwait:
    // no handlers means nothing async-signal-unsafe can ever run,
    // and the forked children inherit a mask under which their own
    // sigtimedwait works unchanged.
    sigemptyset(&mask);
    sigaddset(&mask, SIGCHLD);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    ::sigprocmask(SIG_BLOCK, &mask, nullptr);

    mapShared();
    listenFd = bindListenSocket(config.server.socketPath);

    std::size_t workers = std::max<std::size_t>(config.workers, 1);
    workers = std::min(workers, kMaxWorkers);
    shared->workersConfigured.store(workers,
                                    std::memory_order_relaxed);
    slots.resize(workers);
    for (std::size_t i = 0; i < workers; ++i)
        spawn(i);

    while (true) {
        if (config.dispatch && !terminating)
            pollAccept(100);
        else
            ::poll(nullptr, 0, 100);

        std::int64_t now = nowMs();
        if (consumePendingSignals())
            beginShutdown(now);
        reap(now);

        if (degradeRequested && !terminating && !degraded) {
            degradeRequested = false;
            enterDegradedMode();
            return runDegraded();
        }

        if (terminating) {
            if (liveWorkers() == 0)
                break;
            if (drainDeadlineMs >= 0 && now >= drainDeadlineMs) {
                forceKillStragglers();
                drainDeadlineMs = now + 1000;
            }
        } else {
            maybeRestart(now);
        }
    }

    ::close(listenFd);
    listenFd = -1;
    if (!config.server.socketPath.empty())
        ::unlink(config.server.socketPath.c_str());

    if (config.dumpMetrics) {
        CacheStats cache;
        cache.memoryCapacity = config.server.cacheMemEntries;
        cache.shards = std::max<std::size_t>(config.server.cacheShards,
                                             1);
        SupervisorStats stats = statsFromShared(*shared);
        std::cerr << metricsJson(shared->metrics, cache, &stats)
                  << "\n";
    }
    return finalExitCode();
}

Supervisor::Supervisor(SupervisorConfig config)
    : impl_(new Impl(std::move(config)))
{
}

Supervisor::~Supervisor()
{
    delete impl_;
}

int
Supervisor::run()
{
    return impl_->run();
}

} // namespace ujam
