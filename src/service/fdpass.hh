/**
 * @file
 * File-descriptor passing over AF_UNIX sockets (SCM_RIGHTS).
 *
 * The supervisor's dispatch mode accepts client connections itself
 * and hands each connected fd to a worker process over a per-worker
 * socketpair channel. One control byte rides along with every fd so
 * a zero-length read is unambiguous channel EOF (the peer is gone),
 * never a lost descriptor.
 */

#ifndef UJAM_SERVICE_FDPASS_HH
#define UJAM_SERVICE_FDPASS_HH

namespace ujam
{

/**
 * Send one file descriptor over a Unix-domain socket.
 *
 * Retries EINTR; the descriptor itself stays owned by the caller
 * (the receiver gets an independent duplicate).
 *
 * @param channel_fd The AF_UNIX socket to send over.
 * @param fd         The descriptor to pass.
 * @return True on success.
 */
bool sendFd(int channel_fd, int fd);

/** recvFd outcome. */
struct RecvFdResult
{
    int fd = -1;         //!< the received descriptor, or -1
    bool closed = false; //!< the channel saw EOF (peer gone)
};

/**
 * Receive one file descriptor sent with sendFd.
 *
 * Retries EINTR. A message without an attached descriptor (e.g. a
 * truncated control buffer) yields fd = -1 with closed = false;
 * callers should treat it as a transient error.
 *
 * @param channel_fd The AF_UNIX socket to receive on.
 */
RecvFdResult recvFd(int channel_fd);

} // namespace ujam

#endif // UJAM_SERVICE_FDPASS_HH
