#include "service/cache.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/dataflow.hh"
#include "ir/fingerprint.hh"
#include "support/sha256.hh"

namespace ujam
{

namespace
{

/** Shortest round-trip decimal rendering (locale-independent). */
std::string
num(double v)
{
    char buf[40];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "?";
    return std::string(buf, end);
}

void
renderMachine(std::ostringstream &os, const MachineModel &machine)
{
    os << "machine.name = " << machine.name << "\n"
       << "machine.memOpsPerCycle = " << num(machine.memOpsPerCycle)
       << "\n"
       << "machine.flopsPerCycle = " << num(machine.flopsPerCycle)
       << "\n"
       << "machine.fpRegisters = " << machine.fpRegisters << "\n"
       << "machine.cacheBytes = " << machine.cacheBytes << "\n"
       << "machine.lineBytes = " << machine.lineBytes << "\n"
       << "machine.associativity = " << machine.associativity << "\n"
       << "machine.elementBytes = " << machine.elementBytes << "\n"
       << "machine.cacheHitCycles = " << num(machine.cacheHitCycles)
       << "\n"
       << "machine.missPenaltyCycles = "
       << num(machine.missPenaltyCycles) << "\n"
       << "machine.l2Bytes = " << machine.l2Bytes << "\n"
       << "machine.l2LineBytes = " << machine.l2LineBytes << "\n"
       << "machine.l2Associativity = " << machine.l2Associativity
       << "\n"
       << "machine.l2HitCycles = " << num(machine.l2HitCycles) << "\n"
       << "machine.prefetchPerCycle = " << num(machine.prefetchPerCycle)
       << "\n"
       << "machine.issueWidth = " << machine.issueWidth << "\n"
       << "machine.memPorts = " << machine.memPorts << "\n"
       << "machine.fpUnits = " << machine.fpUnits << "\n"
       << "machine.loadLatency = " << machine.loadLatency << "\n"
       << "machine.fpLatency = " << machine.fpLatency << "\n";
}

void
renderConfig(std::ostringstream &os, const PipelineConfig &config)
{
    // Every semantic field by name. PipelineConfig::threads and
    // OptimizerConfig::threads are deliberately absent: the fan-outs
    // are bit-identical at every width, so thread counts must map to
    // the same key (verified by ServiceCache.ThreadCountExcluded).
    const OptimizerConfig &opt = config.optimizer;
    os << "optimizer.maxUnroll = " << opt.maxUnroll << "\n"
       << "optimizer.maxLoops = " << opt.maxLoops << "\n"
       << "optimizer.useCacheModel = " << opt.useCacheModel << "\n"
       << "optimizer.limitRegisters = " << opt.limitRegisters << "\n"
       << "optimizer.locality.cacheLineElems = "
       << opt.locality.cacheLineElems << "\n"
       << "optimizer.locality.localizedTrip = "
       << num(opt.locality.localizedTrip) << "\n";

    os << "pipeline.fuse = " << config.fuse << "\n"
       << "pipeline.normalize = " << config.normalize << "\n"
       << "pipeline.distribute = " << config.distribute << "\n"
       << "pipeline.interchange = " << config.interchange << "\n"
       << "pipeline.scalarReplace = " << config.scalarReplace << "\n"
       << "pipeline.prefetch = " << config.prefetch << "\n"
       << "pipeline.prefetchConfig.distanceIters = "
       << config.prefetchConfig.distanceIters << "\n";

    const SafetyConfig &safety = config.safety;
    os << "safety.validate = " << safety.validate << "\n"
       << "safety.oracle = " << safety.oracle << "\n"
       << "safety.oracleTrials = " << safety.oracleTrials << "\n"
       << "safety.tolerance = " << num(safety.tolerance) << "\n"
       << "safety.oracleSeed = " << safety.oracleSeed << "\n";
    os << "safety.oracleParams =";
    for (const auto &[name, value] : safety.oracleParams)
        os << " " << name << ":" << value;
    os << "\n";
    os << "safety.faults =";
    for (const FaultSpec &spec : safety.faults)
        os << " " << spec.toString();
    os << "\n";

    os << "lint.mode = " << lintModeName(config.lint) << "\n"
       << "lint.maxUnroll = " << config.lintOptions.maxUnroll << "\n"
       << "lint.haloElems = " << config.lintOptions.haloElems << "\n"
       << "lint.minSeverity = "
       << lintSeverityName(config.lintOptions.minSeverity) << "\n";

    // The dataflow engine's version: lint findings and the pruned
    // dependence graph are functions of the abstract domains, so a
    // sharper analysis release must miss on every stale entry rather
    // than serve findings the current engine would not produce.
    os << "analysis.version = " << kAnalysisVersion << "\n"
       << "optimizer.depRangePrune = " << opt.depRangePrune << "\n";

    // v4: a forced unroll vector replaces the Eq.-1 search entirely,
    // so it is as semantic as any other optimizer knob.
    os << "optimizer.forceUnroll =";
    if (opt.forceUnroll) {
        for (std::int64_t amount : *opt.forceUnroll)
            os << " " << amount;
    }
    os << "\n";
}

} // namespace

std::string
canonicalRequestText(const std::string &op, const Program &program,
                     const MachineModel &machine,
                     const PipelineConfig &config,
                     const CodegenOptions &codegen,
                     const TuneConfig &tune)
{
    std::ostringstream os;
    // v4: the autotuner's search/budget fields and the optimizer's
    // forced unroll vector joined the text (v3 added the
    // symbolic-analysis fields). The header is part of the hashed
    // bytes, so a version bump invalidates every persisted v1-v3
    // entry wholesale.
    os << "ujam-serve-cache-v4\n";
    os << "op = " << op << "\n";
    renderMachine(os, machine);
    renderConfig(os, config);
    // variantLabel is presentation, not semantics; it stays out.
    os << "codegen.seed = " << codegen.seed << "\n"
       << "codegen.emitMain = " << codegen.emitMain << "\n";
    os << "codegen.paramOverrides =";
    for (const auto &[name, value] : codegen.paramOverrides)
        os << " " << name << ":" << value;
    os << "\n";
    // The tuner's search and budget knobs change what a tune response
    // contains (candidate set, measurement depth), so they are part
    // of the key; its pipeline member is the PipelineConfig already
    // rendered above and stays out.
    os << "tune.measure = " << measureModeName(tune.measure) << "\n"
       << "tune.budgetMs = " << tune.budgetMs << "\n"
       << "tune.neighborhood = " << tune.neighborhood << "\n"
       << "tune.repeats = " << tune.repeats << "\n"
       << "tune.warmup = " << tune.warmup << "\n"
       << "tune.seed = " << tune.seed << "\n"
       << "tune.cflags = " << tune.cflags << "\n"
       << "tune.noiseMargin = " << num(tune.noiseMargin) << "\n";
    os << "program:\n" << canonicalProgram(program);
    return os.str();
}

std::string
computeCacheKey(const std::string &op, const Program &program,
                const MachineModel &machine,
                const PipelineConfig &config,
                const CodegenOptions &codegen, const TuneConfig &tune)
{
    return sha256Hex(canonicalRequestText(op, program, machine, config,
                                          codegen, tune));
}

// --- ResultCache -----------------------------------------------------------

namespace
{

/** Entry-file magic; bumped if the on-disk entry layout changes. */
constexpr const char *kEntryMagic = "ujam-entry-v1";

/**
 * @return The header stored ahead of a payload: magic, the payload's
 * SHA-256, and its byte length, newline-terminated. Everything the
 * read path needs to prove the payload is exactly what was written.
 */
std::string
entryHeader(const std::string &payload)
{
    return std::string(kEntryMagic) + " " + sha256Hex(payload) + " " +
           std::to_string(payload.size()) + "\n";
}

/**
 * Parse + verify a raw entry file.
 *
 * @return The payload, or nothing when the file is truncated,
 * bit-flipped, headerless (e.g. a pre-shard legacy entry) or
 * otherwise not provably intact.
 */
std::optional<std::string>
verifyEntry(const std::string &raw)
{
    std::size_t newline = raw.find('\n');
    if (newline == std::string::npos)
        return std::nullopt;
    std::istringstream header(raw.substr(0, newline));
    std::string magic, digest;
    std::uint64_t size = 0;
    if (!(header >> magic >> digest >> size) || magic != kEntryMagic)
        return std::nullopt;
    std::string payload = raw.substr(newline + 1);
    if (payload.size() != size)
        return std::nullopt;
    if (sha256Hex(payload) != digest)
        return std::nullopt;
    return payload;
}

/** @return The shard a hex key's first byte routes to. */
std::size_t
shardOfKey(const std::string &key, std::size_t shards)
{
    unsigned byte = 0;
    for (std::size_t i = 0; i < 2 && i < key.size(); ++i) {
        char c = key[i];
        unsigned nibble = (c >= '0' && c <= '9')   ? unsigned(c - '0')
                          : (c >= 'a' && c <= 'f') ? unsigned(c - 'a' + 10)
                          : (c >= 'A' && c <= 'F') ? unsigned(c - 'A' + 10)
                                                   : 0u;
        byte = byte * 16 + nibble;
    }
    return byte % shards;
}

std::string
twoDigit(std::size_t n)
{
    std::string text = std::to_string(n);
    return text.size() < 2 ? "0" + text : text;
}

} // namespace

ResultCache::ResultCache(ResultCacheConfig config)
    : capacity_(config.memoryCapacity == 0 ? 1
                                           : config.memoryCapacity),
      diskDir_(std::move(config.diskDir)),
      maxDiskBytes_(config.maxDiskBytes),
      shards_(std::min(std::max<std::size_t>(config.shards, 1),
                       kMaxCacheShards)),
      counters_(config.counters)
{
    if (!counters_) {
        ownedCounters_ = std::make_unique<CacheCounters>();
        counters_ = ownedCounters_.get();
    }
    for (const ProcessFaultSpec &spec : config.faults) {
        if (spec.kind == ProcessFaultKind::CacheCorrupt)
            corruptFaults_.push_back(spec);
    }
}

ResultCache::ResultCache(std::size_t memory_capacity,
                         std::string disk_dir,
                         std::uint64_t max_disk_bytes)
    : ResultCache([&] {
          ResultCacheConfig config;
          config.memoryCapacity = memory_capacity;
          config.diskDir = std::move(disk_dir);
          config.maxDiskBytes = max_disk_bytes;
          return config;
      }())
{}

std::size_t
ResultCache::shardOf(const std::string &key) const
{
    return shardOfKey(key, shards_);
}

std::uint64_t
ResultCache::diskEntryBytes(std::uint64_t payload_bytes)
{
    // Mirrors entryHeader(): magic, space, 64 hex digest chars,
    // space, decimal length, newline, then the payload itself.
    return std::string(kEntryMagic).size() + 1 + 64 + 1 +
           std::to_string(payload_bytes).size() + 1 + payload_bytes;
}

std::string
ResultCache::shardDir(std::size_t shard) const
{
    return diskDir_ + "/shard-" + twoDigit(shard);
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    // Content-addressed layout:
    // <dir>/shard-NN/<first two hex chars>/<key>. The shard is the
    // resource/eviction domain; the two-hex fan-out below it keeps
    // directories small under sustained traffic.
    return shardDir(shardOf(key)) + "/" + key.substr(0, 2) + "/" +
           key;
}

void
ResultCache::insertLocked(const std::string &key, std::string value)
{
    auto found = index_.find(key);
    if (found != index_.end()) {
        lru_.splice(lru_.begin(), lru_, found->second);
        found->second->second = std::move(value);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

void
ResultCache::quarantine(const std::string &key, std::size_t shard)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path held = fs::path(shardDir(shard)) / "quarantine" / key;
    fs::create_directories(held.parent_path(), ec);
    fs::rename(diskPath(key), held, ec);
    if (ec) {
        // Another worker won the rename race, or the filesystem is
        // refusing; removal is an acceptable fallback -- the one
        // invariant is that a damaged entry never stays servable.
        fs::remove(diskPath(key), ec);
    }
    counters_->shard[shard].diskQuarantined.add();
}

std::optional<std::string>
ResultCache::get(const std::string &key, CacheTier *tier)
{
    if (tier)
        *tier = CacheTier::Miss;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto found = index_.find(key);
        if (found != index_.end()) {
            lru_.splice(lru_.begin(), lru_, found->second);
            if (tier)
                *tier = CacheTier::Memory;
            return found->second->second;
        }
    }
    if (diskDir_.empty())
        return std::nullopt;

    std::size_t shard = shardOf(key);
    std::ifstream in(diskPath(key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    if (!in.good() && !in.eof())
        return std::nullopt;

    // Never trust stored bytes: a torn write, a truncated file or a
    // flipped bit must come back as a miss, not as garbage served to
    // a client or a crash inside the JSON splice.
    std::optional<std::string> payload = verifyEntry(text.str());
    if (!payload) {
        quarantine(key, shard);
        return std::nullopt;
    }
    std::string value = std::move(*payload);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(key, value);
    }
    if (maxDiskBytes_ > 0) {
        // A disk hit refreshes the entry's write time, so the byte
        // budget evicts least-recently-*used* entries, not merely
        // oldest-written ones.
        std::error_code ec;
        std::filesystem::last_write_time(
            diskPath(key),
            std::filesystem::file_time_type::clock::now(), ec);
    }
    counters_->shard[shard].diskHits.add();
    if (tier)
        *tier = CacheTier::Disk;
    return value;
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(key, value);
    }
    if (diskDir_.empty())
        return;

    namespace fs = std::filesystem;
    std::error_code ec;
    std::size_t shard = shardOf(key);
    std::string path = diskPath(key);
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return; // persistence is best-effort; memory tier still serves

    // Atomic publish: write a unique temp file, then rename into
    // place. Readers either see the old content or the new, never a
    // torn write; concurrent writers of the same key write identical
    // bytes (content addressing), so last-rename-wins is benign.
    static std::atomic<std::uint64_t> temp_serial{0};
    std::string temp = diskDir_ + "/.tmp-" +
                       std::to_string(::getpid()) + "-" +
                       std::to_string(temp_serial.fetch_add(1));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return;
        }
        std::string header = entryHeader(value);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        out.write(value.data(),
                  static_cast<std::streamsize>(value.size()));
        if (!out.good()) {
            out.close();
            fs::remove(temp, ec);
            return;
        }
    }
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        return;
    }
    counters_->shard[shard].diskStores.add();

    std::uint64_t serial =
        storeSerial_.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const ProcessFaultSpec &spec : corruptFaults_) {
        if (!spec.matches(serial))
            continue;
        // Deterministic bit rot: damage one payload byte in place so
        // the *read* path -- the code under test -- must detect it.
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        if (file) {
            file.seekp(static_cast<std::streamoff>(
                entryHeader(value).size() + value.size() / 2));
            char byte = static_cast<char>(value[value.size() / 2] ^
                                          0xFF);
            file.write(&byte, 1);
        }
        break;
    }
    enforceDiskBudget(shard);
}

void
ResultCache::enforceDiskBudget(std::size_t shard)
{
    if (maxDiskBytes_ == 0 || diskDir_.empty())
        return;
    // Each shard owns an equal slice of the budget and sweeps
    // independently, so workers hammering different shards never
    // serialize on one store-wide scan.
    std::uint64_t budget =
        std::max<std::uint64_t>(maxDiskBytes_ / shards_, 1);
    namespace fs = std::filesystem;
    // One sweep per shard at a time; concurrent inserts wait rather
    // than race to delete the same files.
    std::lock_guard<std::mutex> sweep(evictMutex_[shard]);

    struct DiskEntry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<DiskEntry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (auto dir = fs::directory_iterator(shardDir(shard), ec);
         !ec && dir != fs::directory_iterator(); dir.increment(ec)) {
        // Keys live in two-hex fan-out subdirectories; quarantined
        // entries and in-flight .tmp-* writes are never touched.
        if (!dir->is_directory(ec))
            continue;
        if (dir->path().filename() == "quarantine")
            continue;
        std::error_code sub_ec;
        for (auto file = fs::directory_iterator(dir->path(), sub_ec);
             !sub_ec && file != fs::directory_iterator();
             file.increment(sub_ec)) {
            std::error_code stat_ec;
            if (!file->is_regular_file(stat_ec))
                continue;
            std::uint64_t size = file->file_size(stat_ec);
            if (stat_ec)
                continue;
            fs::file_time_type mtime =
                file->last_write_time(stat_ec);
            if (stat_ec)
                continue;
            entries.push_back({file->path(), size, mtime});
            total += size;
        }
    }
    if (total <= budget)
        return;

    std::sort(entries.begin(), entries.end(),
              [](const DiskEntry &a, const DiskEntry &b) {
                  return a.mtime < b.mtime;
              });
    for (const DiskEntry &entry : entries) {
        if (total <= budget)
            break;
        std::error_code remove_ec;
        if (fs::remove(entry.path, remove_ec) && !remove_ec) {
            total -= entry.size;
            counters_->shard[shard].diskEvictions.add();
        }
    }
}

std::size_t
ResultCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

} // namespace ujam
