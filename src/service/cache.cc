#include "service/cache.hh"

#include <unistd.h>

#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/fingerprint.hh"
#include "support/sha256.hh"

namespace ujam
{

namespace
{

/** Shortest round-trip decimal rendering (locale-independent). */
std::string
num(double v)
{
    char buf[40];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "?";
    return std::string(buf, end);
}

void
renderMachine(std::ostringstream &os, const MachineModel &machine)
{
    os << "machine.name = " << machine.name << "\n"
       << "machine.memOpsPerCycle = " << num(machine.memOpsPerCycle)
       << "\n"
       << "machine.flopsPerCycle = " << num(machine.flopsPerCycle)
       << "\n"
       << "machine.fpRegisters = " << machine.fpRegisters << "\n"
       << "machine.cacheBytes = " << machine.cacheBytes << "\n"
       << "machine.lineBytes = " << machine.lineBytes << "\n"
       << "machine.associativity = " << machine.associativity << "\n"
       << "machine.elementBytes = " << machine.elementBytes << "\n"
       << "machine.cacheHitCycles = " << num(machine.cacheHitCycles)
       << "\n"
       << "machine.missPenaltyCycles = "
       << num(machine.missPenaltyCycles) << "\n"
       << "machine.l2Bytes = " << machine.l2Bytes << "\n"
       << "machine.l2LineBytes = " << machine.l2LineBytes << "\n"
       << "machine.l2Associativity = " << machine.l2Associativity
       << "\n"
       << "machine.l2HitCycles = " << num(machine.l2HitCycles) << "\n"
       << "machine.prefetchPerCycle = " << num(machine.prefetchPerCycle)
       << "\n"
       << "machine.issueWidth = " << machine.issueWidth << "\n"
       << "machine.memPorts = " << machine.memPorts << "\n"
       << "machine.fpUnits = " << machine.fpUnits << "\n"
       << "machine.loadLatency = " << machine.loadLatency << "\n"
       << "machine.fpLatency = " << machine.fpLatency << "\n";
}

void
renderConfig(std::ostringstream &os, const PipelineConfig &config)
{
    // Every semantic field by name. PipelineConfig::threads and
    // OptimizerConfig::threads are deliberately absent: the fan-outs
    // are bit-identical at every width, so thread counts must map to
    // the same key (verified by ServiceCache.ThreadCountExcluded).
    const OptimizerConfig &opt = config.optimizer;
    os << "optimizer.maxUnroll = " << opt.maxUnroll << "\n"
       << "optimizer.maxLoops = " << opt.maxLoops << "\n"
       << "optimizer.useCacheModel = " << opt.useCacheModel << "\n"
       << "optimizer.limitRegisters = " << opt.limitRegisters << "\n"
       << "optimizer.locality.cacheLineElems = "
       << opt.locality.cacheLineElems << "\n"
       << "optimizer.locality.localizedTrip = "
       << num(opt.locality.localizedTrip) << "\n";

    os << "pipeline.fuse = " << config.fuse << "\n"
       << "pipeline.normalize = " << config.normalize << "\n"
       << "pipeline.distribute = " << config.distribute << "\n"
       << "pipeline.interchange = " << config.interchange << "\n"
       << "pipeline.scalarReplace = " << config.scalarReplace << "\n"
       << "pipeline.prefetch = " << config.prefetch << "\n"
       << "pipeline.prefetchConfig.distanceIters = "
       << config.prefetchConfig.distanceIters << "\n";

    const SafetyConfig &safety = config.safety;
    os << "safety.validate = " << safety.validate << "\n"
       << "safety.oracle = " << safety.oracle << "\n"
       << "safety.oracleTrials = " << safety.oracleTrials << "\n"
       << "safety.tolerance = " << num(safety.tolerance) << "\n"
       << "safety.oracleSeed = " << safety.oracleSeed << "\n";
    os << "safety.oracleParams =";
    for (const auto &[name, value] : safety.oracleParams)
        os << " " << name << ":" << value;
    os << "\n";
    os << "safety.faults =";
    for (const FaultSpec &spec : safety.faults)
        os << " " << spec.toString();
    os << "\n";

    os << "lint.mode = " << lintModeName(config.lint) << "\n"
       << "lint.maxUnroll = " << config.lintOptions.maxUnroll << "\n"
       << "lint.haloElems = " << config.lintOptions.haloElems << "\n"
       << "lint.minSeverity = "
       << lintSeverityName(config.lintOptions.minSeverity) << "\n";
}

} // namespace

std::string
canonicalRequestText(const std::string &op, const Program &program,
                     const MachineModel &machine,
                     const PipelineConfig &config,
                     const CodegenOptions &codegen)
{
    std::ostringstream os;
    // v2: the codegen emission fields joined the text. The header is
    // part of the hashed bytes, so a version bump invalidates every
    // persisted v1 entry wholesale.
    os << "ujam-serve-cache-v2\n";
    os << "op = " << op << "\n";
    renderMachine(os, machine);
    renderConfig(os, config);
    // variantLabel is presentation, not semantics; it stays out.
    os << "codegen.seed = " << codegen.seed << "\n"
       << "codegen.emitMain = " << codegen.emitMain << "\n";
    os << "codegen.paramOverrides =";
    for (const auto &[name, value] : codegen.paramOverrides)
        os << " " << name << ":" << value;
    os << "\n";
    os << "program:\n" << canonicalProgram(program);
    return os.str();
}

std::string
computeCacheKey(const std::string &op, const Program &program,
                const MachineModel &machine,
                const PipelineConfig &config,
                const CodegenOptions &codegen)
{
    return sha256Hex(
        canonicalRequestText(op, program, machine, config, codegen));
}

// --- ResultCache -----------------------------------------------------------

ResultCache::ResultCache(std::size_t memory_capacity,
                         std::string disk_dir,
                         std::uint64_t max_disk_bytes)
    : capacity_(memory_capacity == 0 ? 1 : memory_capacity),
      diskDir_(std::move(disk_dir)), maxDiskBytes_(max_disk_bytes)
{}

std::string
ResultCache::diskPath(const std::string &key) const
{
    // Content-addressed layout: <dir>/<first two hex chars>/<key>.
    // The fan-out keeps directories small under sustained traffic.
    return diskDir_ + "/" + key.substr(0, 2) + "/" + key;
}

void
ResultCache::insertLocked(const std::string &key, std::string value)
{
    auto found = index_.find(key);
    if (found != index_.end()) {
        lru_.splice(lru_.begin(), lru_, found->second);
        found->second->second = std::move(value);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

std::optional<std::string>
ResultCache::get(const std::string &key, CacheTier *tier)
{
    if (tier)
        *tier = CacheTier::Miss;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto found = index_.find(key);
        if (found != index_.end()) {
            lru_.splice(lru_.begin(), lru_, found->second);
            if (tier)
                *tier = CacheTier::Memory;
            return found->second->second;
        }
    }
    if (diskDir_.empty())
        return std::nullopt;

    std::ifstream in(diskPath(key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    if (!in.good() && !in.eof())
        return std::nullopt;
    std::string value = text.str();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(key, value);
    }
    if (maxDiskBytes_ > 0) {
        // A disk hit refreshes the entry's write time, so the byte
        // budget evicts least-recently-*used* entries, not merely
        // oldest-written ones.
        std::error_code ec;
        std::filesystem::last_write_time(
            diskPath(key),
            std::filesystem::file_time_type::clock::now(), ec);
    }
    if (tier)
        *tier = CacheTier::Disk;
    return value;
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(key, value);
    }
    if (diskDir_.empty())
        return;

    namespace fs = std::filesystem;
    std::error_code ec;
    std::string path = diskPath(key);
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return; // persistence is best-effort; memory tier still serves

    // Atomic publish: write a unique temp file, then rename into
    // place. Readers either see the old content or the new, never a
    // torn write; concurrent writers of the same key write identical
    // bytes (content addressing), so last-rename-wins is benign.
    static std::atomic<std::uint64_t> temp_serial{0};
    std::string temp = diskDir_ + "/.tmp-" +
                       std::to_string(::getpid()) + "-" +
                       std::to_string(temp_serial.fetch_add(1));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return;
        }
        out.write(value.data(),
                  static_cast<std::streamsize>(value.size()));
        if (!out.good()) {
            out.close();
            fs::remove(temp, ec);
            return;
        }
    }
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        return;
    }
    enforceDiskBudget();
}

void
ResultCache::enforceDiskBudget()
{
    if (maxDiskBytes_ == 0 || diskDir_.empty())
        return;
    namespace fs = std::filesystem;
    // One sweep at a time; concurrent inserts wait rather than race
    // to delete the same files.
    std::lock_guard<std::mutex> sweep(evictMutex_);

    struct DiskEntry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<DiskEntry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (auto dir = fs::directory_iterator(diskDir_, ec);
         !ec && dir != fs::directory_iterator(); dir.increment(ec)) {
        // Keys live in two-hex fan-out subdirectories; top-level
        // files are in-flight .tmp-* writes and are never touched.
        if (!dir->is_directory(ec))
            continue;
        std::error_code sub_ec;
        for (auto file = fs::directory_iterator(dir->path(), sub_ec);
             !sub_ec && file != fs::directory_iterator();
             file.increment(sub_ec)) {
            std::error_code stat_ec;
            if (!file->is_regular_file(stat_ec))
                continue;
            std::uint64_t size = file->file_size(stat_ec);
            if (stat_ec)
                continue;
            fs::file_time_type mtime =
                file->last_write_time(stat_ec);
            if (stat_ec)
                continue;
            entries.push_back({file->path(), size, mtime});
            total += size;
        }
    }
    if (total <= maxDiskBytes_)
        return;

    std::sort(entries.begin(), entries.end(),
              [](const DiskEntry &a, const DiskEntry &b) {
                  return a.mtime < b.mtime;
              });
    for (const DiskEntry &entry : entries) {
        if (total <= maxDiskBytes_)
            break;
        std::error_code remove_ec;
        if (fs::remove(entry.path, remove_ec) && !remove_ec) {
            total -= entry.size;
            diskEvictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

std::size_t
ResultCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

} // namespace ujam
