/**
 * @file
 * The content-addressed result cache.
 *
 * The pipeline is a pure function of (parsed program IR, machine
 * model, pipeline configuration): the paper's tables -- like the
 * uniformly generated sets they are built from -- depend on nothing
 * else, and every stage on top is deterministic. That makes results
 * safe to memoize under a key that canonically serializes exactly
 * those three inputs (computeCacheKey); anything non-semantic --
 * request ids, whitespace, the worker thread count -- is excluded, so
 * equal work hits, and any semantic change (one optimizer knob, one
 * machine parameter, one statement) misses.
 *
 * Storage is two-tier: a bounded in-memory LRU in front of an
 * optional on-disk store, safe for concurrent use from any number of
 * threads *and processes* (every disk mutation is an atomic rename).
 *
 * The disk tier is sharded by key prefix: entry files live under
 * <dir>/shard-NN/<two hex chars>/<key>, where NN is the first key
 * byte modulo the shard count. Shards are independent resource
 * domains -- each carries its own slice of the byte budget and its
 * own eviction sweep -- so multi-worker servers never contend on one
 * store-wide scan, and per-shard traffic is observable (CacheCounters
 * in the metrics document).
 *
 * Reads are corruption-tolerant. Every entry is stored with a header
 * naming the payload's size and SHA-256; a load that fails any check
 * (missing/garbled header, short file, digest mismatch) is treated as
 * a miss, and the damaged file is moved into the shard's quarantine/
 * directory (disk_quarantined metric) for postmortem instead of being
 * served or crashing the worker. The next store of the key simply
 * writes a fresh good entry.
 */

#ifndef UJAM_SERVICE_CACHE_HH
#define UJAM_SERVICE_CACHE_HH

#include <array>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codegen/c_emitter.hh"
#include "driver/driver.hh"
#include "service/metrics.hh"
#include "support/fault_injection.hh"
#include "tune/autotuner.hh"

namespace ujam
{

/**
 * @return The canonical text hashed into a cache key: a format
 * version header, an "op" tag, every semantic MachineModel,
 * PipelineConfig, CodegenOptions and TuneConfig field by name, and
 * the canonical program rendering. Exposed separately from the hash
 * so tests can assert *why* two keys differ. The version header is
 * bumped whenever a field joins the text (v2: the codegen emission
 * fields; v4: the autotuner's search/budget fields and the
 * optimizer's forced unroll vector), so persisted entries from an
 * older schema can never be returned for a newer request shape.
 */
std::string canonicalRequestText(const std::string &op,
                                 const Program &program,
                                 const MachineModel &machine,
                                 const PipelineConfig &config,
                                 const CodegenOptions &codegen = {},
                                 const TuneConfig &tune = {});

/** @return The SHA-256 hex cache key for a request. */
std::string computeCacheKey(const std::string &op, const Program &program,
                            const MachineModel &machine,
                            const PipelineConfig &config,
                            const CodegenOptions &codegen = {},
                            const TuneConfig &tune = {});

/** Where a cache probe was answered from. */
enum class CacheTier
{
    Miss,
    Memory,
    Disk
};

/** ResultCache construction knobs. */
struct ResultCacheConfig
{
    std::size_t memoryCapacity = 256; //!< in-memory LRU entries
    std::string diskDir;              //!< "" = memory only
    /** Total disk byte budget, split evenly across shards; 0 =
     * unbounded. When a shard's slice overflows, its oldest entries
     * (disk hits refresh write time, so oldest = least recently
     * used) are evicted until the shard fits. */
    std::uint64_t maxDiskBytes = 0;
    /** Disk shard count, clamped to [1, kMaxCacheShards]. */
    std::size_t shards = 1;
    /** External per-shard counters (e.g. the server's shared-memory
     * metrics block); null = the cache owns private counters. */
    CacheCounters *counters = nullptr;
    /** Active process-level fault specs; only cache_corrupt is
     * consulted (flips a stored byte after the matching store). */
    std::vector<ProcessFaultSpec> faults;
};

/**
 * Two-tier LRU + sharded persistent store mapping hex keys to result
 * text. See the file comment.
 */
class ResultCache
{
  public:
    explicit ResultCache(ResultCacheConfig config);

    /** Convenience form of the config constructor. */
    explicit ResultCache(std::size_t memory_capacity,
                         std::string disk_dir = "",
                         std::uint64_t max_disk_bytes = 0);

    /**
     * Look up a key.
     *
     * A disk hit is digest-verified and promoted into the memory
     * tier; a corrupt disk entry is quarantined and reported as a
     * miss.
     *
     * @param key  The hex key.
     * @param tier Set to where the value came from (or Miss).
     * @return The stored value, or nothing.
     */
    std::optional<std::string> get(const std::string &key,
                                   CacheTier *tier = nullptr);

    /** Insert (or refresh) a key in both tiers. */
    void put(const std::string &key, const std::string &value);

    /** @return Current in-memory entry count. */
    std::size_t memoryEntries() const;

    /** @return Configured in-memory capacity. */
    std::size_t memoryCapacity() const { return capacity_; }

    /** @return The persistence directory ("" = memory only). */
    const std::string &diskDir() const { return diskDir_; }

    /** @return The configured disk byte budget (0 = unbounded). */
    std::uint64_t maxDiskBytes() const { return maxDiskBytes_; }

    /** @return The configured disk shard count. */
    std::size_t shards() const { return shards_; }

    /** @return The shard index a key routes to. */
    std::size_t shardOf(const std::string &key) const;

    /** @return The entry path for a key (for tests that damage it). */
    std::string diskPath(const std::string &key) const;

    /**
     * @return The on-disk size of an entry holding @p payload_bytes,
     * including the integrity header. Byte budgets count this, not
     * the bare payload -- size budgets from entry counts with it.
     */
    static std::uint64_t diskEntryBytes(std::uint64_t payload_bytes);

    /** @return The per-shard disk counters in use. */
    const CacheCounters &counters() const { return *counters_; }

    /** @return Disk entries evicted by the byte budget, all shards. */
    std::uint64_t
    diskEvictions() const
    {
        return counters_->total(&CacheShardCounters::diskEvictions);
    }

    /** @return Corrupt disk entries quarantined, all shards. */
    std::uint64_t
    diskQuarantined() const
    {
        return counters_->total(&CacheShardCounters::diskQuarantined);
    }

  private:
    std::string shardDir(std::size_t shard) const;
    void insertLocked(const std::string &key, std::string value);
    /** Move a damaged entry into its shard's quarantine/ dir. */
    void quarantine(const std::string &key, std::size_t shard);
    void enforceDiskBudget(std::size_t shard);

    std::size_t capacity_;
    std::string diskDir_;
    std::uint64_t maxDiskBytes_;
    std::size_t shards_;
    CacheCounters *counters_; //!< external or &ownedCounters_
    std::unique_ptr<CacheCounters> ownedCounters_;
    std::vector<ProcessFaultSpec> corruptFaults_;
    std::atomic<std::uint64_t> storeSerial_{0};
    std::array<std::mutex, kMaxCacheShards>
        evictMutex_; //!< serializes budget sweeps, per shard

    mutable std::mutex mutex_;
    /** Most recent at the front. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index_;
};

} // namespace ujam

#endif // UJAM_SERVICE_CACHE_HH
