/**
 * @file
 * The content-addressed result cache.
 *
 * The pipeline is a pure function of (parsed program IR, machine
 * model, pipeline configuration): the paper's tables -- like the
 * uniformly generated sets they are built from -- depend on nothing
 * else, and every stage on top is deterministic. That makes results
 * safe to memoize under a key that canonically serializes exactly
 * those three inputs (computeCacheKey); anything non-semantic --
 * request ids, whitespace, the worker thread count -- is excluded, so
 * equal work hits, and any semantic change (one optimizer knob, one
 * machine parameter, one statement) misses.
 *
 * Storage is two-tier: a bounded in-memory LRU in front of an
 * optional on-disk store (one file per key, atomically written), so
 * a restarted server is warm from its first request. Both tiers are
 * safe for concurrent use. The disk tier optionally carries a byte
 * budget: when an insert pushes the store past it, the
 * least-recently-used entries (disk hits refresh an entry's write
 * time) are deleted oldest-first until the store fits again.
 */

#ifndef UJAM_SERVICE_CACHE_HH
#define UJAM_SERVICE_CACHE_HH

#include <atomic>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "codegen/c_emitter.hh"
#include "driver/driver.hh"

namespace ujam
{

/**
 * @return The canonical text hashed into a cache key: a format
 * version header, an "op" tag, every semantic MachineModel,
 * PipelineConfig and CodegenOptions field by name, and the canonical
 * program rendering. Exposed separately from the hash so tests can
 * assert *why* two keys differ. The version header is bumped
 * whenever a field joins the text (v2: the codegen emission fields),
 * so persisted entries from an older schema can never be returned
 * for a newer request shape.
 */
std::string canonicalRequestText(const std::string &op,
                                 const Program &program,
                                 const MachineModel &machine,
                                 const PipelineConfig &config,
                                 const CodegenOptions &codegen = {});

/** @return The SHA-256 hex cache key for a request. */
std::string computeCacheKey(const std::string &op, const Program &program,
                            const MachineModel &machine,
                            const PipelineConfig &config,
                            const CodegenOptions &codegen = {});

/** Where a cache probe was answered from. */
enum class CacheTier
{
    Miss,
    Memory,
    Disk
};

/**
 * Two-tier LRU + persistent store mapping hex keys to result text.
 */
class ResultCache
{
  public:
    /**
     * @param memory_capacity Max in-memory entries (>= 1).
     * @param disk_dir        Persistence directory; empty = memory
     *                        only. Created (with parents) on first
     *                        store.
     * @param max_disk_bytes  Disk-tier byte budget summed over entry
     *                        payloads; 0 = unbounded. When an insert
     *                        pushes the store past the budget, the
     *                        oldest entries (by write/refresh time)
     *                        are evicted until it fits.
     */
    explicit ResultCache(std::size_t memory_capacity,
                         std::string disk_dir = "",
                         std::uint64_t max_disk_bytes = 0);

    /**
     * Look up a key.
     *
     * A disk hit is promoted into the memory tier.
     *
     * @param key  The hex key.
     * @param tier Set to where the value came from (or Miss).
     * @return The stored value, or nothing.
     */
    std::optional<std::string> get(const std::string &key,
                                   CacheTier *tier = nullptr);

    /** Insert (or refresh) a key in both tiers. */
    void put(const std::string &key, const std::string &value);

    /** @return Current in-memory entry count. */
    std::size_t memoryEntries() const;

    /** @return Configured in-memory capacity. */
    std::size_t memoryCapacity() const { return capacity_; }

    /** @return The persistence directory ("" = memory only). */
    const std::string &diskDir() const { return diskDir_; }

    /** @return The configured disk byte budget (0 = unbounded). */
    std::uint64_t maxDiskBytes() const { return maxDiskBytes_; }

    /** @return Disk entries evicted by the byte budget so far. */
    std::uint64_t
    diskEvictions() const
    {
        return diskEvictions_.load(std::memory_order_relaxed);
    }

  private:
    std::string diskPath(const std::string &key) const;
    void insertLocked(const std::string &key, std::string value);
    void enforceDiskBudget();

    std::size_t capacity_;
    std::string diskDir_;
    std::uint64_t maxDiskBytes_;
    std::atomic<std::uint64_t> diskEvictions_{0};
    std::mutex evictMutex_; //!< serializes budget sweeps

    mutable std::mutex mutex_;
    /** Most recent at the front. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index_;
};

} // namespace ujam

#endif // UJAM_SERVICE_CACHE_HH
