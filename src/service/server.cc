#include "service/server.hh"

#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <istream>
#include <ostream>

#include "ir/validate.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "service/fdpass.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"

namespace ujam
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
microsSince(Clock::time_point start)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start)
        .count();
}

/** Write all of text to fd, ignoring SIGPIPE-worthy failures. */
void
writeAll(int fd, const std::string &text)
{
    std::size_t sent = 0;
    while (sent < text.size()) {
        ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // a signal is not a dead peer
        if (n <= 0)
            return; // client went away; nothing to salvage
        sent += static_cast<std::size_t>(n);
    }
}

/**
 * @return The process-level fault specs this worker should honour: a
 * worker_crash spec whose arg names a worker index applies only to
 * that worker; everything else applies everywhere.
 */
std::vector<ProcessFaultSpec>
faultsForWorker(const std::vector<ProcessFaultSpec> &specs,
                int worker_index)
{
    int self = worker_index < 0 ? 0 : worker_index;
    std::vector<ProcessFaultSpec> mine;
    for (const ProcessFaultSpec &spec : specs) {
        if (spec.kind == ProcessFaultKind::WorkerCrash && spec.arg &&
            *spec.arg != self)
            continue;
        mine.push_back(spec);
    }
    return mine;
}

ResultCacheConfig
cacheConfigFor(const ServerConfig &config, ServiceMetrics &metrics,
               const std::vector<ProcessFaultSpec> &faults)
{
    ResultCacheConfig cache;
    cache.memoryCapacity = config.cacheMemEntries;
    cache.diskDir = config.cacheDir;
    cache.maxDiskBytes = config.cacheMaxBytes;
    cache.shards = config.cacheShards;
    cache.counters = &metrics.cacheCounters;
    cache.faults = faults;
    return cache;
}

} // namespace

UjamServer::UjamServer(ServerConfig config)
    : config_(std::move(config)),
      metrics_(config_.sharedMetrics ? *config_.sharedMetrics
                                     : ownedMetrics_),
      cache_(cacheConfigFor(
          config_, metrics_,
          config_.workerFaults ? *config_.workerFaults
                               : processFaultSpecsFromEnv())),
      workerFaults_(faultsForWorker(
          config_.workerFaults ? *config_.workerFaults
                               : processFaultSpecsFromEnv(),
          config_.workerIndex))
{
    if (config_.threads == 0)
        config_.threads = ThreadPool::defaultThreads();
    if (config_.queueLimit == 0)
        config_.queueLimit = 1;
}

UjamServer::~UjamServer()
{
    stop();
}

std::string
UjamServer::metricsSnapshot() const
{
    CacheStats cache;
    cache.memoryEntries = cache_.memoryEntries();
    cache.memoryCapacity = cache_.memoryCapacity();
    cache.shards = cache_.shards();
    if (config_.supervisorStats) {
        SupervisorStats supervisor = config_.supervisorStats();
        return metricsJson(metrics_, cache, &supervisor);
    }
    return metricsJson(metrics_, cache);
}

bool
UjamServer::stopping() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopRequested_;
}

void
UjamServer::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = true;
    }
    wake_.notify_all();
    stopped_.notify_all();
}

// --- request execution -----------------------------------------------------

void
UjamServer::applyWorkerFaults(std::uint64_t serial)
{
    for (const ProcessFaultSpec &spec : workerFaults_) {
        if (!spec.matches(serial))
            continue;
        switch (spec.kind) {
          case ProcessFaultKind::WorkerCrash:
            // The real thing, not an exception: the safety net under
            // test is the *supervisor*, so die the way a segfaulting
            // or OOM-killed worker dies -- uncatchably, mid-request.
            ::kill(::getpid(), SIGKILL);
            break;
          case ProcessFaultKind::WorkerHang:
            std::this_thread::sleep_for(std::chrono::milliseconds(
                spec.arg.value_or(3600000)));
            break;
          case ProcessFaultKind::SlowResponse:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(spec.arg.value_or(100)));
            break;
          case ProcessFaultKind::CacheCorrupt:
            break; // the cache owns this one
        }
    }
}

std::string
UjamServer::runOptimize(const ServiceRequest &request,
                        Clock::time_point arrival,
                        Clock::time_point deadline, bool has_deadline)
{
    const char *op_name = serviceOpName(request.op);
    std::atomic<std::uint64_t> &serial_source =
        config_.faultSerial ? *config_.faultSerial : requestSerial_;
    std::uint64_t serial =
        serial_source.fetch_add(1, std::memory_order_relaxed) + 1;
    applyWorkerFaults(serial);
    PipelineConfig config = request.config;
    // The server parallelizes across requests; one request's nest
    // fan-out stays serial so the shared pool is never entered
    // reentrantly from a worker thread.
    config.threads = 1;
    config.optimizer.threads = 1;

    // Environment-injected fault specs change pipeline behavior, so
    // they must be part of the cache key; resolving them here keeps
    // computeCacheKey a pure function of its arguments. A malformed
    // spec must surface as an error frame, never as an exception
    // escaping into a worker thread.
    try {
        for (FaultSpec &spec : faultSpecsFromEnv())
            config.safety.faults.push_back(std::move(spec));
    } catch (const FatalError &err) {
        metrics_.requestsError.add();
        return errorResponse(request.id, op_name, "error", err.what());
    }

    // Parse + structural validation.
    Clock::time_point parse_start = Clock::now();
    Program program;
    try {
        program = parseProgram(request.source,
                               request.scenarioName.empty()
                                   ? "<request>"
                                   : "scenario:" + request.scenarioName);
        std::vector<std::string> problems = validateProgram(program);
        if (!problems.empty()) {
            metrics_.parseLatency.record(microsSince(parse_start));
            metrics_.requestsError.add();
            return errorResponse(request.id, op_name, "error",
                                 "invalid program: " +
                                     problems.front());
        }
    } catch (const FatalError &err) {
        metrics_.parseLatency.record(microsSince(parse_start));
        metrics_.requestsError.add();
        return errorResponse(request.id, op_name, "error", err.what());
    }
    metrics_.parseLatency.record(microsSince(parse_start));

    if (has_deadline && Clock::now() > deadline) {
        metrics_.requestsTimeout.add();
        return errorResponse(request.id, op_name, "timeout",
                             "deadline expired after parse");
    }

    // Cache probe on the canonical (IR, machine, config, codegen)
    // key. The codegen fields are defaults for optimize/lint, so
    // they render identically for every request of those ops. In
    // degraded (cache-only) mode the probe is mandatory: a hit is
    // still a correct, byte-identical answer, but nothing new is
    // computed on a circuit-broken service.
    std::string key;
    if (!request.noCache || config_.degraded) {
        Clock::time_point probe_start = Clock::now();
        key = computeCacheKey(op_name, program, request.machine,
                              config, request.codegen, request.tune);
        CacheTier tier = CacheTier::Miss;
        std::optional<std::string> hit = cache_.get(key, &tier);
        metrics_.cacheProbeLatency.record(microsSince(probe_start));
        if (hit) {
            if (tier == CacheTier::Memory)
                metrics_.cacheMemoryHits.add();
            else
                metrics_.cacheDiskHits.add();
            if (request.op == ServiceOp::Tune)
                metrics_.tuneCacheHits.add();
            metrics_.requestsOk.add();
            return okResponse(request.id, op_name, *hit);
        }
        metrics_.cacheMisses.add();
    } else {
        metrics_.cacheBypassed.add();
    }

    if (config_.degraded) {
        metrics_.requestsDegraded.add();
        return errorResponse(request.id, op_name, "degraded",
                             "service degraded: cache-only mode, "
                             "result not cached");
    }

    // Run the pipeline (or the analyzer alone for "lint").
    Clock::time_point run_start = Clock::now();
    std::string result_json;
    bool cacheable = true;
    try {
        if (request.op == ServiceOp::Tune) {
            metrics_.tuneRequests.add();
            TuneConfig tune = request.tune;
            tune.pipeline = config;
            TuneResult tuned =
                tuneProgram(program, request.machine, tune);
            metrics_.optimizeLatency.record(microsSince(run_start));

            std::size_t measured = 0;
            for (const NestTune &nest : tuned.nests)
                measured += nest.measuredCount;
            metrics_.tuneCandidatesMeasured.add(measured);
            // A self-skipped run (wall mode, no host compiler) is a
            // property of this worker's environment, not of the
            // request; caching it would serve the skip to clients on
            // hosts that could measure.
            cacheable = !tuned.skipped;

            Clock::time_point render_start = Clock::now();
            result_json = tuneResultJson(tuned, tune);
            metrics_.renderLatency.record(microsSince(render_start));
        } else if (request.op == ServiceOp::Lint) {
            LintResult lint = lintProgram(program, request.machine,
                                          config.lintOptions);
            metrics_.optimizeLatency.record(microsSince(run_start));

            Clock::time_point render_start = Clock::now();
            result_json = lintResultJson(lint);
            metrics_.renderLatency.record(microsSince(render_start));
        } else if (request.op == ServiceOp::Codegen) {
            PipelineResult result =
                optimizeProgram(program, request.machine, config);
            metrics_.optimizeLatency.record(microsSince(run_start));

            metrics_.nestsOptimized.add(result.outcomes.size());
            metrics_.containedFaults.add(result.containedFaults());
            for (const NestOutcome &outcome : result.outcomes) {
                if (outcome.lintSkipped)
                    metrics_.lintRejections.add();
            }

            Clock::time_point render_start = Clock::now();
            CodegenOptions emit = request.codegen;
            emit.variantLabel = "original";
            CodegenUnit original = emitCProgram(program, emit);
            emit.variantLabel = "transformed";
            CodegenUnit transformed =
                emitCProgram(result.program, emit);
            result_json = codegenResultJson(result, original,
                                            transformed,
                                            request.codegen.seed);
            metrics_.renderLatency.record(microsSince(render_start));
        } else {
            PipelineResult result =
                optimizeProgram(program, request.machine, config);
            metrics_.optimizeLatency.record(microsSince(run_start));

            metrics_.nestsOptimized.add(result.outcomes.size());
            metrics_.containedFaults.add(result.containedFaults());
            for (const NestOutcome &outcome : result.outcomes) {
                if (outcome.lintSkipped)
                    metrics_.lintRejections.add();
            }

            Clock::time_point render_start = Clock::now();
            result_json = pipelineResultJson(result);
            metrics_.renderLatency.record(microsSince(render_start));
        }
    } catch (const FatalError &err) {
        metrics_.requestsError.add();
        return errorResponse(request.id, op_name, "error", err.what());
    } catch (const PanicError &err) {
        metrics_.requestsError.add();
        return errorResponse(request.id, op_name, "error", err.what());
    }

    if (has_deadline && Clock::now() > deadline) {
        // The work is done but the client stopped caring; the result
        // still lands in the cache so the retry is free.
        if (!request.noCache && cacheable) {
            cache_.put(key, result_json);
            metrics_.cacheStores.add();
        }
        metrics_.requestsTimeout.add();
        return errorResponse(request.id, op_name, "timeout",
                             "deadline expired during optimization");
    }

    if (!request.noCache && cacheable) {
        cache_.put(key, result_json);
        metrics_.cacheStores.add();
    }
    metrics_.requestsOk.add();
    (void)arrival;
    return okResponse(request.id, op_name, result_json);
}

std::string
UjamServer::process(const ServiceRequest &request,
                    Clock::time_point arrival)
{
    const char *op_name = serviceOpName(request.op);
    std::optional<std::int64_t> deadline_ms = request.deadlineMs;
    if (!deadline_ms)
        deadline_ms = config_.defaultDeadlineMs;
    bool has_deadline = deadline_ms.has_value();
    Clock::time_point deadline =
        has_deadline
            ? arrival + std::chrono::milliseconds(*deadline_ms)
            : Clock::time_point::max();

    if (has_deadline && Clock::now() > deadline) {
        metrics_.requestsTimeout.add();
        return errorResponse(request.id, op_name, "timeout",
                             "deadline expired before processing");
    }

    switch (request.op) {
      case ServiceOp::Ping: {
        metrics_.requestsOk.add();
        JsonWriter json;
        json.beginObject().field("pong", true).endObject();
        return okResponse(request.id, op_name, json.str());
      }
      case ServiceOp::Metrics:
        // A live gauge, deliberately uncacheable and volatile.
        metrics_.requestsOk.add();
        return okResponse(request.id, op_name, metricsSnapshot());
      case ServiceOp::Shutdown: {
        metrics_.requestsOk.add();
        JsonWriter json;
        json.beginObject().field("stopping", true).endObject();
        std::string response =
            okResponse(request.id, op_name, json.str());
        requestStop();
        return response;
      }
      case ServiceOp::Optimize:
      case ServiceOp::Lint:
      case ServiceOp::Codegen:
      case ServiceOp::Tune:
        return runOptimize(request, arrival, deadline, has_deadline);
    }
    metrics_.requestsError.add();
    return errorResponse(request.id, op_name, "error", "unhandled op");
}

std::string
UjamServer::processLine(const std::string &line,
                        Clock::time_point arrival)
{
    metrics_.requestsTotal.add();
    std::string response;
    RequestParse parsed = parseRequest(line);
    if (!parsed.ok()) {
        metrics_.requestsError.add();
        switch (parsed.kind) {
          case RequestErrorKind::Malformed:
            metrics_.requestsMalformed.add();
            break;
          case RequestErrorKind::BadOp:
            metrics_.requestsBadOp.add();
            break;
          case RequestErrorKind::BadField:
            metrics_.requestsBadField.add();
            break;
          case RequestErrorKind::None:
            break;
        }
        response = errorResponse("", "", "error", parsed.error);
    } else {
        switch (parsed.request->op) {
          case ServiceOp::Optimize:
            metrics_.opOptimize.add();
            break;
          case ServiceOp::Lint:
            metrics_.opLint.add();
            break;
          case ServiceOp::Codegen:
            metrics_.opCodegen.add();
            break;
          case ServiceOp::Tune:
            metrics_.opTune.add();
            break;
          case ServiceOp::Metrics:
            metrics_.opMetrics.add();
            break;
          case ServiceOp::Ping:
            metrics_.opPing.add();
            break;
          case ServiceOp::Shutdown:
            metrics_.opShutdown.add();
            break;
        }
        response = process(*parsed.request, arrival);
    }
    metrics_.totalLatency.record(microsSince(arrival));
    return response;
}

std::string
UjamServer::processLine(const std::string &line)
{
    return processLine(line, Clock::now());
}

// --- batch front end -------------------------------------------------------

std::size_t
UjamServer::runBatch(std::istream &in, std::ostream &out)
{
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }

    std::vector<std::string> responses(lines.size());
    std::size_t width = std::min(config_.threads, lines.size());
    if (width <= 1) {
        for (std::size_t i = 0; i < lines.size(); ++i)
            responses[i] = processLine(lines[i]);
    } else {
        // A private worker group (not the shared pool: requests may
        // reach it through optimizeProgram) filling index-addressed
        // slots; output order is input order at every width.
        std::atomic<std::size_t> next{0};
        auto work = [&] {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= lines.size())
                    break;
                responses[i] = processLine(lines[i]);
            }
        };
        std::vector<std::thread> workers;
        workers.reserve(width);
        for (std::size_t w = 0; w < width; ++w)
            workers.emplace_back(work);
        for (std::thread &worker : workers)
            worker.join();
    }

    for (const std::string &response : responses)
        out << response << "\n";
    out.flush();
    return lines.size();
}

// --- socket front end ------------------------------------------------------

void
UjamServer::start()
{
    // Writing to a client that vanished must be an error return in
    // writeAll, never a process-killing SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    if (config_.dispatchFd < 0 && config_.listenFd < 0) {
        if (config_.socketPath.empty())
            fatal("ujam-serve: no socket path configured");

        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.socketPath.size() >= sizeof(addr.sun_path)) {
            fatal("ujam-serve: socket path too long: ",
                  config_.socketPath);
        }
        std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);

        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            fatal("ujam-serve: socket(): ", std::strerror(errno));

        ::unlink(config_.socketPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            std::string reason = std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
            fatal("ujam-serve: bind(", config_.socketPath, "): ",
                  reason);
        }
        if (::listen(listenFd_, 128) != 0) {
            std::string reason = std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
            fatal("ujam-serve: listen(): ", reason);
        }
        ownsListenSocket_ = true;
    } else if (config_.listenFd >= 0) {
        // A supervisor bound the socket before forking us; every
        // worker accepts on the shared fd and the kernel spreads
        // connections across them.
        listenFd_ = config_.listenFd;
        ownsListenSocket_ = false;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = false;
        started_ = true;
    }
    if (config_.dispatchFd >= 0)
        threads_.emplace_back([this] { dispatchLoop(); });
    else
        threads_.emplace_back([this] { acceptLoop(); });
    for (std::size_t w = 0; w < config_.threads; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

void
UjamServer::dispatchLoop()
{
    // Dispatch mode: the supervisor accepts and hands us connected
    // fds over an SCM_RIGHTS channel. Channel EOF means the
    // supervisor died or is draining us -- either way, stop.
    while (!stopping()) {
        pollfd poller{config_.dispatchFd, POLLIN, 0};
        int ready = ::poll(&poller, 1, 100);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0)
            continue;
        RecvFdResult received = recvFd(config_.dispatchFd);
        if (received.closed) {
            requestStop();
            break;
        }
        if (received.fd < 0)
            continue;
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!stopRequested_ &&
                pending_.size() < config_.queueLimit) {
                pending_.push_back(received.fd);
                admitted = true;
            }
        }
        if (admitted) {
            wake_.notify_one();
        } else {
            metrics_.requestsTotal.add();
            metrics_.requestsOverloaded.add();
            writeAll(received.fd,
                     errorResponse("", "", "overloaded",
                                   "admission queue full") +
                         "\n");
            ::close(received.fd);
        }
    }
}

void
UjamServer::acceptLoop()
{
    while (!stopping()) {
        pollfd poller{listenFd_, POLLIN, 0};
        int ready = ::poll(&poller, 1, 100);
        if (ready <= 0)
            continue; // timeout, EINTR or transient error: re-check
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0)
            continue; // EINTR/ECONNABORTED/raced sibling worker

        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!stopRequested_ &&
                pending_.size() < config_.queueLimit) {
                pending_.push_back(fd);
                admitted = true;
            }
        }
        if (admitted) {
            wake_.notify_one();
        } else {
            // Explicit backpressure instead of unbounded queuing.
            metrics_.requestsTotal.add();
            metrics_.requestsOverloaded.add();
            writeAll(fd,
                     errorResponse("", "", "overloaded",
                                   "admission queue full") +
                         "\n");
            ::close(fd);
        }
    }
}

void
UjamServer::workerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopRequested_ || !pending_.empty();
            });
            if (pending_.empty()) {
                // stopRequested_ and nothing left to drain.
                return;
            }
            fd = pending_.front();
            pending_.pop_front();
        }
        handleConnection(fd);
    }
}

void
UjamServer::handleConnection(int fd)
{
    constexpr std::size_t kMaxBuffered = 9u << 20;
    std::string buffer;
    char chunk[64 * 1024];

    // Belt (SO_RCVTIMEO caps any blocking read the kernel sees) and
    // braces (the poll loop below tracks idleness explicitly): a
    // stalled client cannot pin this worker slot forever.
    if (config_.idleTimeoutMs > 0) {
        timeval timeout{};
        timeout.tv_sec = config_.idleTimeoutMs / 1000;
        timeout.tv_usec = (config_.idleTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
    }
    Clock::time_point last_activity = Clock::now();

    while (true) {
        // Serve every complete frame currently buffered.
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty())
                continue;
            writeAll(fd, processLine(line) + "\n");
            last_activity = Clock::now();
        }
        if (stopping())
            break; // graceful: current frames done, no new reads

        pollfd poller{fd, POLLIN, 0};
        int ready = ::poll(&poller, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0) {
            if (config_.idleTimeoutMs > 0 &&
                Clock::now() - last_activity >
                    std::chrono::milliseconds(config_.idleTimeoutMs)) {
                metrics_.connectionsIdleClosed.add();
                writeAll(fd,
                         errorResponse("", "", "error",
                                       "idle timeout") +
                             "\n");
                break;
            }
            continue; // timeout: re-check stopping()
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK))
            continue; // interrupted or SO_RCVTIMEO tick: re-poll
        if (n <= 0)
            break; // EOF or error
        last_activity = Clock::now();
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() > kMaxBuffered) {
            metrics_.requestsTotal.add();
            metrics_.requestsError.add();
            metrics_.requestsMalformed.add();
            writeAll(fd,
                     errorResponse("", "", "error",
                                   "frame larger than 8 MiB") +
                         "\n");
            break;
        }
    }
    ::close(fd);
}

void
UjamServer::stop()
{
    requestStop();
    for (std::thread &thread : threads_) {
        if (thread.joinable())
            thread.join();
    }
    threads_.clear();

    bool was_started;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        was_started = started_;
        started_ = false;
        for (int fd : pending_)
            ::close(fd);
        pending_.clear();
    }
    if (listenFd_ >= 0) {
        // An adopted fd is the supervisor's to close: other workers
        // are still accepting on it.
        if (ownsListenSocket_)
            ::close(listenFd_);
        listenFd_ = -1;
    }
    if (was_started && ownsListenSocket_ &&
        !config_.socketPath.empty())
        ::unlink(config_.socketPath.c_str());
    ownsListenSocket_ = false;
}

void
UjamServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    stopped_.wait(lock, [this] { return stopRequested_; });
}

} // namespace ujam
