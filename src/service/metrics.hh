/**
 * @file
 * Service observability: atomic counters and fixed-bucket latency
 * histograms.
 *
 * Every mutation is a relaxed atomic increment, so recording from
 * any number of worker threads is wait-free and never perturbs
 * request latency. metricsJson() renders a stable schema (fixed key
 * order, cumulative "le" buckets) so dashboards and tests can diff
 * two snapshots mechanically. Counter values are exact; a snapshot
 * taken while workers are active is a consistent-enough point-in-time
 * read (each counter individually correct, no torn values).
 */

#ifndef UJAM_SERVICE_METRICS_HH
#define UJAM_SERVICE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ujam
{

/**
 * A fixed-bucket latency histogram over microseconds.
 *
 * Bucket upper bounds are powers of four starting at 1us (1, 4, 16,
 * ..., ~67s) plus a final overflow bucket, covering everything from a
 * cache hit to a pathological optimize with 13 buckets of ~2x worst
 * case resolution per decade.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 14;

    /** @return The inclusive upper bound of bucket i in microseconds
     * (the last bucket is unbounded). */
    static std::uint64_t bucketBound(std::size_t i);

    /** Record one observation of micros microseconds. */
    void record(std::uint64_t micros);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sumMicros() const
    {
        return sumMicros_.load(std::memory_order_relaxed);
    }

    /** @return The raw (non-cumulative) count of bucket i. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumMicros_{0};
};

/** One relaxed atomic counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Everything ujam-serve counts. */
struct ServiceMetrics
{
    // --- requests, by outcome ---
    Counter requestsTotal;
    Counter requestsOk;
    Counter requestsError;     //!< all rejected frames (sum of kinds)
    Counter requestsMalformed; //!< not JSON / not an object / no op
    Counter requestsBadOp;     //!< well-formed frame, unknown op
    Counter requestsBadField;  //!< known op, bad field/option value
    Counter requestsOverloaded; //!< rejected by admission control
    Counter requestsTimeout;    //!< deadline expired

    // --- requests, by operation ---
    Counter opOptimize;
    Counter opLint;
    Counter opCodegen;
    Counter opMetrics;
    Counter opPing;
    Counter opShutdown;

    // --- result cache ---
    Counter cacheMemoryHits;
    Counter cacheDiskHits;
    Counter cacheMisses;
    Counter cacheStores;
    Counter cacheBypassed; //!< requests sent with "no_cache"

    // --- pipeline outcomes ---
    Counter nestsOptimized;
    Counter lintRejections;  //!< nests skipped by strict lint
    Counter containedFaults; //!< safety-net rollbacks across requests

    // --- per-stage latency ---
    LatencyHistogram parseLatency;    //!< DSL parse + validate
    LatencyHistogram optimizeLatency; //!< optimizeProgram / lintProgram
    LatencyHistogram renderLatency;   //!< result JSON assembly
    LatencyHistogram totalLatency;    //!< request receipt to response
    LatencyHistogram cacheProbeLatency; //!< key derivation + lookup
};

/**
 * @return The metrics as a stable one-line JSON document. Gauge
 * fields the cache owns (entry counts) are passed in by the caller.
 *
 * @param metrics        The counters to snapshot.
 * @param cache_entries  Current in-memory cache entries.
 * @param cache_capacity Configured in-memory cache capacity.
 * @param disk_evictions Disk entries evicted by the byte budget.
 */
std::string metricsJson(const ServiceMetrics &metrics,
                        std::uint64_t cache_entries,
                        std::uint64_t cache_capacity,
                        std::uint64_t disk_evictions = 0);

} // namespace ujam

#endif // UJAM_SERVICE_METRICS_HH
