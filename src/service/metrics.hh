/**
 * @file
 * Service observability: atomic counters and fixed-bucket latency
 * histograms.
 *
 * Every mutation is a relaxed atomic increment, so recording from
 * any number of worker threads is wait-free and never perturbs
 * request latency. metricsJson() renders a stable schema (fixed key
 * order, cumulative "le" buckets) so dashboards and tests can diff
 * two snapshots mechanically. Counter values are exact; a snapshot
 * taken while workers are active is a consistent-enough point-in-time
 * read (each counter individually correct, no torn values).
 */

#ifndef UJAM_SERVICE_METRICS_HH
#define UJAM_SERVICE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ujam
{

/**
 * Everything in this header is built from relaxed atomics and holds
 * no pointers, so a ServiceMetrics placed in a MAP_SHARED mapping
 * before fork() aggregates across worker processes for free: every
 * worker increments the same cache lines, and the `metrics` op
 * renders service-wide totals no matter which worker answers it.
 */

/**
 * A fixed-bucket latency histogram over microseconds.
 *
 * Bucket upper bounds are powers of four starting at 1us (1, 4, 16,
 * ..., ~67s) plus a final overflow bucket, covering everything from a
 * cache hit to a pathological optimize with 13 buckets of ~2x worst
 * case resolution per decade.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 14;

    /** @return The inclusive upper bound of bucket i in microseconds
     * (the last bucket is unbounded). */
    static std::uint64_t bucketBound(std::size_t i);

    /** Record one observation of micros microseconds. */
    void record(std::uint64_t micros);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sumMicros() const
    {
        return sumMicros_.load(std::memory_order_relaxed);
    }

    /** @return The raw (non-cumulative) count of bucket i. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumMicros_{0};
};

/** One relaxed atomic counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Upper bound on disk-cache shards (see ResultCache). */
constexpr std::size_t kMaxCacheShards = 16;

/** Disk-tier counters for one cache shard. */
struct CacheShardCounters
{
    Counter diskHits;
    Counter diskStores;
    Counter diskEvictions;   //!< removed by the byte budget
    Counter diskQuarantined; //!< corrupt entries moved aside
};

/** Disk-tier counters for every shard (fixed-size: shareable). */
struct CacheCounters
{
    std::array<CacheShardCounters, kMaxCacheShards> shard;

    std::uint64_t
    total(Counter CacheShardCounters::*member) const
    {
        std::uint64_t sum = 0;
        for (const CacheShardCounters &counters : shard)
            sum += (counters.*member).get();
        return sum;
    }
};

/** Everything ujam-serve counts. */
struct ServiceMetrics
{
    // --- requests, by outcome ---
    Counter requestsTotal;
    Counter requestsOk;
    Counter requestsError;     //!< all rejected frames (sum of kinds)
    Counter requestsMalformed; //!< not JSON / not an object / no op
    Counter requestsBadOp;     //!< well-formed frame, unknown op
    Counter requestsBadField;  //!< known op, bad field/option value
    Counter requestsOverloaded; //!< rejected by admission control
    Counter requestsTimeout;    //!< deadline expired
    Counter requestsDegraded;   //!< rejected in cache-only mode

    // --- requests, by operation ---
    Counter opOptimize;
    Counter opLint;
    Counter opCodegen;
    Counter opTune;
    Counter opMetrics;
    Counter opPing;
    Counter opShutdown;

    // --- autotuning ---
    Counter tuneRequests;           //!< tune ops accepted for work
    Counter tuneCandidatesMeasured; //!< candidates actually measured
    Counter tuneCacheHits;          //!< tune ops answered from cache

    // --- result cache ---
    Counter cacheMemoryHits;
    Counter cacheDiskHits;
    Counter cacheMisses;
    Counter cacheStores;
    Counter cacheBypassed; //!< requests sent with "no_cache"
    /** Per-shard disk-tier counters, written by the ResultCache. */
    CacheCounters cacheCounters;

    // --- connections ---
    Counter connectionsIdleClosed; //!< closed by the idle timeout

    // --- pipeline outcomes ---
    Counter nestsOptimized;
    Counter lintRejections;  //!< nests skipped by strict lint
    Counter containedFaults; //!< safety-net rollbacks across requests

    // --- per-stage latency ---
    LatencyHistogram parseLatency;    //!< DSL parse + validate
    LatencyHistogram optimizeLatency; //!< optimizeProgram / lintProgram
    LatencyHistogram renderLatency;   //!< result JSON assembly
    LatencyHistogram totalLatency;    //!< request receipt to response
    LatencyHistogram cacheProbeLatency; //!< key derivation + lookup
};

/** Cache gauges passed into metricsJson by the cache's owner. */
struct CacheStats
{
    std::uint64_t memoryEntries = 0;
    std::uint64_t memoryCapacity = 0;
    std::size_t shards = 1; //!< configured disk shard count
};

/** One worker's supervision history, for the metrics document. */
struct WorkerStats
{
    std::uint64_t restarts = 0;
    std::uint64_t crashes = 0;
    bool alive = false;
    std::int64_t lastExitCode = 0; //!< 0 when none yet
    std::int64_t lastSignal = 0;   //!< 0 when none yet
};

/** Supervision-tree gauges, when a supervisor is running. */
struct SupervisorStats
{
    std::uint64_t workersConfigured = 0;
    std::uint64_t workersAlive = 0;
    std::uint64_t restartsTotal = 0;
    std::uint64_t crashesTotal = 0;
    bool degraded = false;
    std::uint64_t degradedTransitions = 0;
    std::uint64_t forcedKills = 0;
    std::vector<WorkerStats> workers;
};

/**
 * @return The metrics as a stable one-line JSON document. Gauge
 * fields the cache owns (entry counts, shard layout) are passed in by
 * the caller; the per-shard disk counters render from
 * metrics.cacheCounters. A null supervisor omits the "supervisor"
 * section (single-process mode).
 */
std::string metricsJson(const ServiceMetrics &metrics,
                        const CacheStats &cache,
                        const SupervisorStats *supervisor = nullptr);

} // namespace ujam

#endif // UJAM_SERVICE_METRICS_HH
