/**
 * @file
 * The Wolf-Lam memory-cost model (paper Equation 1) and loop ranking.
 *
 * For a uniformly generated set with gT group-temporal and gS
 * group-spatial sets under a localized space L, the main-memory
 * accesses per iteration are
 *
 *     A = (gS + (gT - gS) / line) * sigma
 *
 * where sigma captures self reuse inside L: one stream leader per GSS
 * pays the full stream cost, every further GTS leader inside a GSS
 * shares cache lines with it (cost 1/line), and self reuse scales
 * every stream (amortized over the localized trip count for
 * self-temporal reuse, over the line length for self-spatial reuse).
 * See DESIGN.md for the reconstruction notes.
 */

#ifndef UJAM_REUSE_LOCALITY_HH
#define UJAM_REUSE_LOCALITY_HH

#include "reuse/group_reuse.hh"

namespace ujam
{

/** Parameters of the locality cost model. */
struct LocalityParams
{
    std::int64_t cacheLineElems = 4; //!< cache line size in elements
    double localizedTrip = 100.0;    //!< assumed trip of localized loops
};

/** Self-reuse classification of a UGS within a localized space. */
enum class SelfReuse
{
    None,     //!< every iteration touches a new cache line
    Spatial,  //!< RSS cap L != 0: new line every `line` iterations
    Temporal  //!< RST cap L != 0: same data across localized iterations
};

/** @return The self-reuse class of ugs within localized. */
SelfReuse classifySelfReuse(const UniformlyGeneratedSet &ugs,
                            const Subspace &localized);

/** @return sigma for the given self-reuse class. */
double selfReuseFactor(SelfReuse kind, const LocalityParams &params,
                       std::size_t temporal_dims);

/**
 * Equation 1 applied with explicit set counts (used by the unroll
 * tables, which know gT/gS after unrolling without repartitioning).
 *
 * @param group_temporal Number of GTSs.
 * @param group_spatial  Number of GSSs.
 * @param self           Self-reuse class of the set.
 * @param temporal_dims  dim(RST cap L), used when self == Temporal.
 * @param params         Model parameters.
 * @return Main-memory accesses per iteration for the whole set.
 */
double equationOneAccesses(double group_temporal, double group_spatial,
                           SelfReuse self, std::size_t temporal_dims,
                           const LocalityParams &params);

/** @return Eq. 1 for a UGS by partitioning it under localized. */
double ugsAccessesPerIteration(const UniformlyGeneratedSet &ugs,
                               const Subspace &localized,
                               const LocalityParams &params);

/** @return Sum of Eq. 1 over all UGSs of the nest body. */
double nestMemoryCost(const LoopNest &nest, const Subspace &localized,
                      const LocalityParams &params);

/**
 * Rank outer loops by how much localizing them (the effect of
 * unroll-and-jam) lowers the nest's Eq. 1 cost relative to the
 * innermost-only localized space.
 *
 * @param nest      The nest.
 * @param params    Model parameters.
 * @param max_loops At most this many candidates are returned.
 * @return Outer-loop indices, best first; never includes the
 *         innermost loop.
 */
std::vector<std::size_t> rankUnrollCandidates(const LoopNest &nest,
                                              const LocalityParams &params,
                                              std::size_t max_loops);

} // namespace ujam

#endif // UJAM_REUSE_LOCALITY_HH
