#include "reuse/ugs.hh"

#include "support/diagnostics.hh"

namespace ujam
{

bool
UniformlyGeneratedSet::innerInvariant() const
{
    if (subscript.cols() == 0)
        return true;
    std::size_t inner = subscript.cols() - 1;
    for (std::size_t r = 0; r < subscript.rows(); ++r) {
        if (!subscript.at(r, inner).isZero())
            return false;
    }
    return true;
}

Subspace
UniformlyGeneratedSet::selfTemporalSpace() const
{
    return Subspace::span(subscript.kernelBasis());
}

Subspace
UniformlyGeneratedSet::selfSpatialSpace() const
{
    UJAM_ASSERT(!members.empty(), "empty uniformly generated set");
    return Subspace::span(
        members.front().ref.spatialSubscriptMatrix().kernelBasis());
}

std::vector<UniformlyGeneratedSet>
partitionUGS(const std::vector<Access> &accesses)
{
    std::vector<UniformlyGeneratedSet> sets;
    for (const Access &access : accesses) {
        bool placed = false;
        for (UniformlyGeneratedSet &set : sets) {
            if (set.members.front().ref.uniformlyGeneratedWith(access.ref)) {
                set.members.push_back(access);
                placed = true;
                break;
            }
        }
        if (!placed) {
            UniformlyGeneratedSet set;
            set.array = access.ref.array();
            set.subscript = access.ref.subscriptMatrix();
            set.members.push_back(access);
            sets.push_back(std::move(set));
        }
    }
    return sets;
}

} // namespace ujam
