#include "reuse/locality.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"

namespace ujam
{

SelfReuse
classifySelfReuse(const UniformlyGeneratedSet &ugs,
                  const Subspace &localized)
{
    if (!ugs.selfTemporalSpace().intersect(localized).isZero())
        return SelfReuse::Temporal;
    if (!ugs.selfSpatialSpace().intersect(localized).isZero())
        return SelfReuse::Spatial;
    return SelfReuse::None;
}

double
selfReuseFactor(SelfReuse kind, const LocalityParams &params,
                std::size_t temporal_dims)
{
    switch (kind) {
      case SelfReuse::None:
        return 1.0;
      case SelfReuse::Spatial:
        return 1.0 / static_cast<double>(params.cacheLineElems);
      case SelfReuse::Temporal:
        return 1.0 /
               std::pow(params.localizedTrip,
                        static_cast<double>(std::max<std::size_t>(
                            temporal_dims, 1)));
    }
    panic("unknown self-reuse kind");
}

double
equationOneAccesses(double group_temporal, double group_spatial,
                    SelfReuse self, std::size_t temporal_dims,
                    const LocalityParams &params)
{
    UJAM_ASSERT(group_spatial <= group_temporal + 1e-9,
                "GSS partition must be coarser than GTS partition");
    double line = static_cast<double>(params.cacheLineElems);
    double streams =
        group_spatial + (group_temporal - group_spatial) / line;
    return streams * selfReuseFactor(self, params, temporal_dims);
}

double
ugsAccessesPerIteration(const UniformlyGeneratedSet &ugs,
                        const Subspace &localized,
                        const LocalityParams &params)
{
    if (!ugs.analyzable()) {
        // Non-separable references: assume no exploitable reuse; each
        // member is its own stream with a miss per iteration.
        return static_cast<double>(ugs.members.size());
    }
    std::size_t gt = groupTemporalSets(ugs, localized).size();
    std::size_t gs = groupSpatialSets(ugs, localized).size();
    SelfReuse self = classifySelfReuse(ugs, localized);
    std::size_t temporal_dims =
        ugs.selfTemporalSpace().intersect(localized).dim();
    return equationOneAccesses(static_cast<double>(gt),
                               static_cast<double>(gs), self,
                               temporal_dims, params);
}

double
nestMemoryCost(const LoopNest &nest, const Subspace &localized,
               const LocalityParams &params)
{
    double total = 0.0;
    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses()))
        total += ugsAccessesPerIteration(ugs, localized, params);
    return total;
}

std::vector<std::size_t>
rankUnrollCandidates(const LoopNest &nest, const LocalityParams &params,
                     std::size_t max_loops)
{
    const std::size_t depth = nest.depth();
    if (depth < 2 || max_loops == 0)
        return {};

    Subspace inner = Subspace::coordinate(depth, {depth - 1});
    double base_cost = nestMemoryCost(nest, inner, params);

    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t k = 0; k + 1 < depth; ++k) {
        Subspace widened = Subspace::coordinate(depth, {k, depth - 1});
        double benefit = base_cost - nestMemoryCost(nest, widened, params);
        ranked.emplace_back(benefit, k);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });

    std::vector<std::size_t> result;
    for (const auto &[benefit, k] : ranked) {
        if (result.size() >= max_loops)
            break;
        result.push_back(k);
    }
    return result;
}

} // namespace ujam
