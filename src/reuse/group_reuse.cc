#include "reuse/group_reuse.hh"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** exists x in localized : M x = delta ? */
bool
solvableInSpace(const RatMatrix &matrix, const RatVector &delta,
                const Subspace &localized)
{
    const RatMatrix &basis = localized.basis();
    // Build (dims x L.dim) system M * basis^T.
    RatMatrix system(matrix.rows(), basis.rows());
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
        for (std::size_t j = 0; j < basis.rows(); ++j) {
            Rational coeff;
            for (std::size_t k = 0; k < matrix.cols(); ++k)
                coeff += matrix.at(r, k) * basis.at(j, k);
            system.at(r, j) = coeff;
        }
    }
    return system.solve(delta).has_value();
}

std::vector<ReuseGroup>
partitionByRelation(const UniformlyGeneratedSet &ugs,
                    const RatMatrix &matrix, bool spatial,
                    const Subspace &localized)
{
    const std::size_t n = ugs.members.size();
    std::vector<std::size_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);

    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (find(i) == find(j))
                continue;
            IntVector delta =
                ugs.members[j].ref.offset() - ugs.members[i].ref.offset();
            RatVector rhs = toRatVector(delta);
            if (spatial && !rhs.empty())
                rhs[0] = Rational(0);
            if (solvableInSpace(matrix, rhs, localized))
                parent[find(i)] = find(j);
        }
    }

    // Collect groups, order members by lex offset, leader first.
    std::vector<ReuseGroup> groups;
    std::vector<int> group_of(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t root = find(i);
        if (group_of[root] < 0) {
            group_of[root] = static_cast<int>(groups.size());
            groups.emplace_back();
        }
        groups[group_of[root]].members.push_back(i);
    }
    for (ReuseGroup &group : groups) {
        std::stable_sort(group.members.begin(), group.members.end(),
                         [&](std::size_t a, std::size_t b) {
                             return ugs.members[a].ref.offset().lexLess(
                                 ugs.members[b].ref.offset());
                         });
        group.leader = group.members.front();
    }
    return groups;
}

} // namespace

bool
groupTemporalRelated(const RatMatrix &subscript, const IntVector &delta,
                     const Subspace &localized)
{
    return solvableInSpace(subscript, toRatVector(delta), localized);
}

bool
groupSpatialRelated(const RatMatrix &subscript, const IntVector &delta,
                    const Subspace &localized)
{
    RatMatrix spatial = subscript;
    for (std::size_t k = 0; k < spatial.cols(); ++k)
        spatial.at(0, k) = Rational(0);
    RatVector rhs = toRatVector(delta);
    if (!rhs.empty())
        rhs[0] = Rational(0);
    return solvableInSpace(spatial, rhs, localized);
}

std::vector<ReuseGroup>
groupTemporalSets(const UniformlyGeneratedSet &ugs,
                  const Subspace &localized)
{
    return partitionByRelation(ugs, ugs.subscript, false, localized);
}

std::vector<ReuseGroup>
groupSpatialSets(const UniformlyGeneratedSet &ugs,
                 const Subspace &localized)
{
    UJAM_ASSERT(!ugs.members.empty(), "empty uniformly generated set");
    RatMatrix spatial = ugs.members.front().ref.spatialSubscriptMatrix();
    return partitionByRelation(ugs, spatial, true, localized);
}

} // namespace ujam
