/**
 * @file
 * Group-temporal and group-spatial partitioning of a UGS.
 *
 * Two members with offsets c1, c2 are group-temporal w.r.t. a
 * localized space L when exists x in L with H x = c2 - c1; group-
 * spatial when the same holds after dropping the first (contiguous)
 * array dimension. The partitions' set counts feed Wolf & Lam's
 * memory-cost formula (paper Eq. 1).
 */

#ifndef UJAM_REUSE_GROUP_REUSE_HH
#define UJAM_REUSE_GROUP_REUSE_HH

#include "reuse/ugs.hh"

namespace ujam
{

/** One reuse group: indices into the UGS's member vector. */
struct ReuseGroup
{
    std::vector<std::size_t> members; //!< sorted by offset, lex order
    std::size_t leader = 0;           //!< lex-smallest offset member
};

/**
 * True iff two offsets of the same UGS are group-temporal related.
 *
 * @param subscript  The common H.
 * @param delta      c2 - c1.
 * @param localized  The localized iteration space.
 */
bool groupTemporalRelated(const RatMatrix &subscript,
                          const IntVector &delta,
                          const Subspace &localized);

/**
 * True iff two offsets are group-spatial related (H with its first
 * row zeroed and delta with its first component ignored).
 */
bool groupSpatialRelated(const RatMatrix &subscript,
                         const IntVector &delta,
                         const Subspace &localized);

/** Partition a UGS into group-temporal sets (GTSs). */
std::vector<ReuseGroup> groupTemporalSets(const UniformlyGeneratedSet &ugs,
                                          const Subspace &localized);

/** Partition a UGS into group-spatial sets (GSSs). */
std::vector<ReuseGroup> groupSpatialSets(const UniformlyGeneratedSet &ugs,
                                         const Subspace &localized);

} // namespace ujam

#endif // UJAM_REUSE_GROUP_REUSE_HH
