/**
 * @file
 * Uniformly generated sets (Gannon/Jalby/Gallivan [9], Wolf & Lam [5]).
 *
 * References are partitioned by (array, subscript matrix H): members
 * of one set differ only in their constant offset vectors, which is
 * exactly the structure the unroll tables exploit.
 */

#ifndef UJAM_REUSE_UGS_HH
#define UJAM_REUSE_UGS_HH

#include <string>
#include <vector>

#include "ir/loop_nest.hh"
#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"

namespace ujam
{

/**
 * One uniformly generated set.
 */
struct UniformlyGeneratedSet
{
    std::string array;          //!< the common array
    RatMatrix subscript;        //!< the common H (dims x depth)
    std::vector<Access> members; //!< accesses in textual order

    /** @return The loop-nest depth (columns of H). */
    std::size_t
    depth() const
    {
        return subscript.cols();
    }

    /** @return True iff the common H is SIV separable. */
    bool
    analyzable() const
    {
        return !members.empty() && members.front().ref.isSivSeparable();
    }

    /**
     * @return True iff H's innermost column is zero: every member
     * addresses the same element throughout an innermost sweep, so
     * its memory traffic hoists out of the innermost loop entirely.
     */
    bool innerInvariant() const;

    /** @return The self-temporal reuse vector space RST = ker H. */
    Subspace selfTemporalSpace() const;

    /** @return The self-spatial reuse vector space RSS = ker Hs. */
    Subspace selfSpatialSpace() const;
};

/**
 * Partition a nest body's accesses into uniformly generated sets.
 *
 * @param accesses Accesses in textual order (LoopNest::accesses()).
 * @return Sets in order of first appearance; members keep textual
 *         order within each set.
 */
std::vector<UniformlyGeneratedSet>
partitionUGS(const std::vector<Access> &accesses);

} // namespace ujam

#endif // UJAM_REUSE_UGS_HH
