#include "deps/graph.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

void
DependenceGraph::addEdge(Dependence edge)
{
    UJAM_ASSERT(edge.dirs.size() == depth_,
                "edge direction arity does not match nest depth");
    edges_.push_back(std::move(edge));
}

std::size_t
DependenceGraph::countOfKind(DepKind kind) const
{
    std::size_t count = 0;
    for (const Dependence &edge : edges_)
        count += (edge.kind == kind);
    return count;
}

double
DependenceGraph::inputFraction() const
{
    if (edges_.empty())
        return 0.0;
    return static_cast<double>(inputCount()) /
           static_cast<double>(edges_.size());
}

std::size_t
DependenceGraph::edgeBytes(std::size_t depth)
{
    // Fixed record: two endpoint ids (8), kind+flags (8), per-endpoint
    // adjacency links (16), reference back-pointers (16); then one
    // direction byte and one 8-byte distance slot per loop level,
    // rounded to the allocator's 8-byte granularity.
    std::size_t variable = depth * 9;
    variable = (variable + 7) / 8 * 8;
    return 48 + variable;
}

std::size_t
DependenceGraph::storageBytes() const
{
    return edges_.size() * edgeBytes(depth_);
}

std::size_t
DependenceGraph::storageBytesWithoutInput() const
{
    return (edges_.size() - inputCount()) * edgeBytes(depth_);
}

std::string
DependenceGraph::toString() const
{
    std::ostringstream os;
    for (const Dependence &edge : edges_)
        os << edge.toString() << "\n";
    return os.str();
}

} // namespace ujam
