/**
 * @file
 * Pairwise subscript dependence tests.
 *
 * Implements the practical dependence-testing hierarchy of Goff,
 * Kennedy & Tseng [10]: ZIV, strong SIV, weak-zero SIV, weak-crossing
 * SIV, with a GCD feasibility test as the MIV fallback. The result of
 * testing two references is a per-loop relation between the
 * iterations at which they touch the same memory location.
 */

#ifndef UJAM_DEPS_SUBSCRIPT_TESTS_HH
#define UJAM_DEPS_SUBSCRIPT_TESTS_HH

#include <optional>
#include <vector>

#include "ir/array_ref.hh"

namespace ujam
{

/**
 * Relation between the iteration coordinates of two accesses in one
 * loop dimension.
 */
struct LoopRelation
{
    enum class Kind
    {
        Free,  //!< loop constrains neither access: any pair of values
        Exact, //!< sink iteration == source iteration + exact
        Star   //!< constrained but not to a single distance
    };

    Kind kind = Kind::Free;
    std::int64_t exact = 0;
};

/**
 * Solve for iterations (i of a, i' of b) with a(i) and b(i')
 * addressing the same element.
 *
 * @param a First reference.
 * @param b Second reference (same array).
 * @return Per-loop relations of i' relative to i, or nullopt when the
 *         accesses can never touch the same location.
 */
std::optional<std::vector<LoopRelation>>
solveAccessPair(const ArrayRef &a, const ArrayRef &b);

} // namespace ujam

#endif // UJAM_DEPS_SUBSCRIPT_TESTS_HH
