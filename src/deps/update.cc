#include "deps/update.hh"

#include <map>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Euclidean division: remainder always in [0, f). */
std::pair<std::int64_t, std::int64_t>
divEuclid(std::int64_t value, std::int64_t f)
{
    std::int64_t q = value / f;
    std::int64_t r = value % f;
    if (r < 0) {
        r += f;
        --q;
    }
    return {q, r};
}

DepDir
dirOf(std::int64_t d)
{
    return d > 0 ? DepDir::Lt : d < 0 ? DepDir::Gt : DepDir::Eq;
}

} // namespace

std::vector<IntVector>
unrollCopyOrder(const IntVector &unroll)
{
    std::vector<IntVector> copies{IntVector(unroll.size())};
    // unrollAndJamNest expands one loop at a time in ascending order;
    // each step replicates the existing copy sequence, so the earliest
    // unrolled loop ends up varying fastest.
    for (std::size_t k = 0; k < unroll.size(); ++k) {
        if (unroll[k] == 0)
            continue;
        std::vector<IntVector> next;
        next.reserve(copies.size() *
                     static_cast<std::size_t>(unroll[k] + 1));
        for (std::int64_t c = 0; c <= unroll[k]; ++c) {
            for (const IntVector &base : copies) {
                IntVector offset = base;
                offset[k] = c;
                next.push_back(std::move(offset));
            }
        }
        copies = std::move(next);
    }
    return copies;
}

DependenceGraph
updateGraphAfterUnrollAndJam(const DependenceGraph &graph,
                             const LoopNest &nest,
                             const IntVector &unroll)
{
    const std::size_t depth = nest.depth();
    UJAM_ASSERT(unroll.size() == depth, "unroll vector depth mismatch");
    const std::size_t naccesses = nest.accesses().size();

    std::vector<IntVector> copies = unrollCopyOrder(unroll);
    // The copy order is not lexicographic; index offsets by content.
    std::map<IntVector, std::size_t, IntVectorLexLess> copy_index_by;
    for (std::size_t c = 0; c < copies.size(); ++c)
        copy_index_by.emplace(copies[c], c);

    auto ordinal = [&](std::size_t copy, std::size_t orig) {
        return copy * naccesses + orig;
    };

    DependenceGraph result(depth);

    for (const Dependence &edge : graph.edges()) {
        bool star_on_unrolled = false;
        for (std::size_t k = 0; k < depth; ++k) {
            if (unroll[k] > 0 && edge.dirs[k] == DepDir::Star)
                star_on_unrolled = true;
        }

        if (star_on_unrolled) {
            // An unrolled Star dim relates every pair of copy offsets
            // along it; unrolled EXACT dims still pin the destination
            // copy (other offsets cannot alias). Enumerate source
            // copies times the Star dims' free choices, keeping
            // re-analysis's textual orientation: a reversed-ordinal
            // pair mirrors kind and directions, and self edges pair
            // each copy combination once.
            std::vector<std::size_t> star_dims;
            for (std::size_t k = 0; k < depth; ++k) {
                if (unroll[k] > 0 && edge.dirs[k] == DepDir::Star)
                    star_dims.push_back(k);
            }
            std::size_t star_combos = 1;
            for (std::size_t k : star_dims)
                star_combos *= static_cast<std::size_t>(unroll[k] + 1);

            for (std::size_t s = 0; s < copies.size(); ++s) {
                const IntVector &src_copy = copies[s];
                IntVector dst_base(depth);
                IntVector exact_distance = edge.distance;
                for (std::size_t k = 0; k < depth; ++k) {
                    if (unroll[k] == 0 ||
                        edge.dirs[k] == DepDir::Star) {
                        continue;
                    }
                    std::int64_t f = unroll[k] + 1;
                    auto [block, offset] =
                        divEuclid(src_copy[k] + edge.distance[k], f);
                    dst_base[k] = offset;
                    exact_distance[k] = block;
                }
                for (std::size_t combo = 0; combo < star_combos;
                     ++combo) {
                    IntVector dst_copy = dst_base;
                    std::size_t rest = combo;
                    for (std::size_t k : star_dims) {
                        std::size_t f =
                            static_cast<std::size_t>(unroll[k] + 1);
                        dst_copy[k] =
                            static_cast<std::int64_t>(rest % f);
                        rest /= f;
                    }
                    std::size_t t = copy_index_by.at(dst_copy);
                    std::size_t o1 = ordinal(s, edge.src);
                    std::size_t o2 = ordinal(t, edge.dst);
                    if (edge.src == edge.dst && o2 < o1)
                        continue; // the mirror enumeration covers it

                    Dependence copy_edge = edge;
                    copy_edge.hasDistance = false;
                    copy_edge.representative = true;
                    bool mirrored = o1 > o2;
                    copy_edge.src = mirrored ? o2 : o1;
                    copy_edge.dst = mirrored ? o1 : o2;
                    if (mirrored) {
                        if (edge.kind == DepKind::Flow)
                            copy_edge.kind = DepKind::Anti;
                        else if (edge.kind == DepKind::Anti)
                            copy_edge.kind = DepKind::Flow;
                    }
                    for (std::size_t k = 0; k < depth; ++k) {
                        if (edge.dirs[k] == DepDir::Star) {
                            copy_edge.dirs[k] = DepDir::Star;
                            continue;
                        }
                        std::int64_t d = mirrored
                                             ? -exact_distance[k]
                                             : exact_distance[k];
                        copy_edge.dirs[k] = dirOf(d);
                        copy_edge.distance[k] = d;
                    }
                    result.addEdge(std::move(copy_edge));
                }
            }
            continue;
        }

        // Exact (or representative-exact) on every unrolled dim: the
        // closed-form copy mapping applies.
        for (std::size_t s = 0; s < copies.size(); ++s) {
            const IntVector &src_copy = copies[s];
            IntVector dst_copy(depth);
            IntVector new_distance = edge.distance;
            for (std::size_t k = 0; k < depth; ++k) {
                if (unroll[k] == 0) {
                    dst_copy[k] = 0;
                    continue;
                }
                std::int64_t f = unroll[k] + 1;
                auto [block, offset] =
                    divEuclid(src_copy[k] + edge.distance[k], f);
                dst_copy[k] = offset;
                new_distance[k] = block;
            }

            Dependence copy_edge = edge;
            copy_edge.distance = new_distance;
            std::size_t t = copy_index_by.at(dst_copy);

            int cmp = new_distance.lexCompare(IntVector(depth));
            bool star_somewhere = false;
            for (DepDir dir : edge.dirs)
                star_somewhere |= (dir == DepDir::Star);

            // A zero-distance copy pair is ordered by body layout:
            // with two unrolled loops the destination copy can be
            // emitted before the source copy.
            bool layout_reversed =
                cmp == 0 && copy_index_by.at(dst_copy) < s;

            if (!star_somewhere && (cmp < 0 || layout_reversed)) {
                // The copy pair's carried direction flipped: the sink
                // copy's instance now executes first. Reorient.
                copy_edge.src = ordinal(t, edge.dst);
                copy_edge.dst = ordinal(s, edge.src);
                copy_edge.distance = -new_distance;
                switch (edge.kind) {
                  case DepKind::Flow:
                    copy_edge.kind = DepKind::Anti;
                    break;
                  case DepKind::Anti:
                    copy_edge.kind = DepKind::Flow;
                    break;
                  default:
                    break; // input/output are symmetric
                }
            } else {
                copy_edge.src = ordinal(s, edge.src);
                copy_edge.dst = ordinal(t, edge.dst);
            }
            for (std::size_t k = 0; k < depth; ++k) {
                if (edge.dirs[k] == DepDir::Star)
                    copy_edge.dirs[k] = DepDir::Star;
                else
                    copy_edge.dirs[k] = dirOf(copy_edge.distance[k]);
            }
            result.addEdge(std::move(copy_edge));
        }
    }
    return result;
}

} // namespace ujam
