/**
 * @file
 * Incremental dependence-graph update across unroll-and-jam.
 *
 * Transforming compilers update their dependence graphs rather than
 * rebuild them ("the processing time of dependence graphs is reduced
 * for transformations that update the dependence graph", paper
 * section 5.1). For unroll-and-jam the update is closed-form: an
 * edge at distance d between statement instances maps, for each
 * source copy offset s over the unrolled loops, to an edge between
 * copy s and copy t where
 *
 *     t_k = (s_k + d_k) mod f_k,   d'_k = floor((s_k + d_k) / f_k)
 *
 * (f_k = unroll factor of loop k); non-unrolled components keep d.
 * No subscript is ever re-tested -- and the update's cost is again
 * proportional to the edge count, so dropping input dependences pays
 * once more.
 */

#ifndef UJAM_DEPS_UPDATE_HH
#define UJAM_DEPS_UPDATE_HH

#include "deps/graph.hh"
#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Enumerate the body-copy offsets of unrollAndJamNest's main nest in
 * the order the transform lays them out (the earliest-unrolled loop
 * varies fastest).
 *
 * @param unroll Per-loop unroll amounts (innermost 0).
 * @return Copy offset vectors; size is the product of (u_k + 1).
 */
std::vector<IntVector> unrollCopyOrder(const IntVector &unroll);

/**
 * Update a nest's dependence graph across unroll-and-jam.
 *
 * Access ordinals in the result follow the transformed main nest:
 * copy index (per unrollCopyOrder) times the original access count,
 * plus the original ordinal.
 *
 * @param graph  The original nest's graph.
 * @param nest   The original nest (for access/statement counts).
 * @param unroll The unroll vector applied.
 * @return The graph of the unroll-and-jammed main nest. Edges with
 *         exact distances map exactly; Star edges are mapped
 *         conservatively (every copy pair).
 */
DependenceGraph updateGraphAfterUnrollAndJam(const DependenceGraph &graph,
                                             const LoopNest &nest,
                                             const IntVector &unroll);

} // namespace ujam

#endif // UJAM_DEPS_UPDATE_HH
