#include "deps/analyzer.hh"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "analysis/dataflow.hh"
#include "deps/subscript_tests.hh"
#include "support/rational.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/**
 * Bounds facts for the range pre-filter, in the same (possibly
 * normalized) iteration space the pairwise tests run in: loops folded
 * by normalizeRef count iterations 1..trip, all others keep their
 * source values.
 */
struct RangeFacts
{
    bool enabled = false;
    bool nestDead = false;      //!< some loop provably runs 0 iterations
    std::vector<Interval> iv;   //!< per-loop induction interval
    //! Max |iv_sink - iv_src| per loop, in the units solveAccessPair
    //! reports exact distances in; nullopt when the trip is unknown.
    std::vector<std::optional<std::int64_t>> maxDelta;
};

RangeFacts
buildRangeFacts(const LoopNest &nest, const DepOptions &options,
                const std::vector<bool> &normalized)
{
    RangeFacts facts;
    facts.enabled = true;
    const std::size_t depth = nest.depth();
    facts.iv.assign(depth, Interval::top());
    facts.maxDelta.assign(depth, std::nullopt);
    for (std::size_t k = 0; k < depth; ++k) {
        const Loop &loop = nest.loop(k);
        std::optional<std::int64_t> trip;
        try {
            trip = loop.tripCount(options.params);
        } catch (const FatalError &) {
            // Symbolic trip under incomplete bindings: no facts here.
        }
        if (trip && *trip <= 0)
            facts.nestDead = true;
        if (normalized[k]) {
            // normalizeRef rewrote subscripts for iterations 1..trip;
            // distances are already in iteration units.
            if (trip) {
                facts.iv[k] = Interval::closed(1, *trip);
                facts.maxDelta[k] = *trip - 1;
            }
        } else {
            Interval lo = boundInterval(loop.lower, options.params);
            Interval hi = boundInterval(loop.upper, options.params);
            Interval values;
            values.hasLo = lo.hasLo;
            values.lo = lo.lo;
            values.hasHi = hi.hasHi;
            values.hi = hi.hi;
            if (trip && *trip <= 0)
                values = Interval::empty();
            facts.iv[k] = values;
            // Exact distances here are in induction-value units; the
            // loop covers (trip-1)*step value units end to end.
            if (trip)
                facts.maxDelta[k] = satMul(*trip - 1, loop.step);
        }
    }
    return facts;
}

/** Interval of subscript dimension d of ref over the iv intervals. */
Interval
refDimRange(const ArrayRef &ref, std::size_t d,
            const std::vector<Interval> &iv)
{
    Interval sub = Interval::point(ref.offset()[d]);
    const IntVector &row = ref.row(d);
    for (std::size_t k = 0; k < row.size() && k < iv.size(); ++k) {
        if (row[k] != 0)
            sub = sub.plus(iv[k].scaled(row[k]));
    }
    return sub;
}

/**
 * @return The pre-filter's proof that the otherwise-kept edge between
 * a and b (with the solver's per-loop relations) cannot be real, or
 * empty to keep the edge.
 */
std::string
rangePruneReason(const RangeFacts &facts, const ArrayRef &a,
                 const ArrayRef &b,
                 const std::vector<LoopRelation> &relations)
{
    if (facts.nestDead)
        return "the nest provably runs zero iterations";
    for (std::size_t d = 0; d < a.dims() && d < b.dims(); ++d) {
        Interval ra = refDimRange(a, d, facts.iv);
        Interval rb = refDimRange(b, d, facts.iv);
        if (Interval::disjoint(ra, rb)) {
            return concat("subscript ", d + 1, " ranges ",
                          ra.toString(), " and ", rb.toString(),
                          " are disjoint");
        }
    }
    for (std::size_t k = 0; k < relations.size(); ++k) {
        const LoopRelation &rel = relations[k];
        if (rel.kind != LoopRelation::Kind::Exact || !facts.maxDelta[k])
            continue;
        std::int64_t span = *facts.maxDelta[k];
        std::int64_t dist = rel.exact < 0 ? -rel.exact : rel.exact;
        if (dist > span) {
            return concat("distance ", rel.exact, " at loop ", k + 1,
                          " exceeds the loop's reach of ", span);
        }
    }
    return "";
}

/**
 * Rewrite an access for a normalized iteration space: loop k with
 * constant lower bound lb and step s becomes a unit loop from 1, so
 * a coefficient a scales to a*s with a*(lb - s) folded into the
 * offset. Distances are only meaningful on the normalized space --
 * without this, re-analyzing an unroll-and-jammed nest (step u+1)
 * would report spurious unit-stride dependences.
 */
ArrayRef
normalizeRef(const ArrayRef &ref, std::size_t k, std::int64_t lb,
             std::int64_t s)
{
    std::vector<IntVector> rows = ref.rows();
    IntVector offset = ref.offset();
    for (std::size_t d = 0; d < rows.size(); ++d) {
        std::int64_t a = rows[d][k];
        if (a == 0)
            continue;
        rows[d][k] = checkedMul(a, s);
        offset[d] = checkedAdd(offset[d], checkedMul(a, lb - s));
    }
    return ArrayRef(ref.array(), std::move(rows), std::move(offset));
}

DepKind
classify(bool src_write, bool dst_write)
{
    if (src_write)
        return dst_write ? DepKind::Output : DepKind::Flow;
    return dst_write ? DepKind::Anti : DepKind::Input;
}

/**
 * True when the edge between accesses a and b is the self cycle of a
 * recognized reduction statement (read and write of the accumulator).
 */
bool
isReductionEdge(const LoopNest &nest, const Access &a, const Access &b)
{
    if (a.stmt != b.stmt)
        return false;
    const Stmt &stmt = nest.body()[a.stmt];
    if (!stmt.lhsIsArray() || !stmt.isReduction())
        return false;
    return a.ref == stmt.lhsRef() && b.ref == stmt.lhsRef();
}

} // namespace

DependenceGraph
analyzeDependences(const LoopNest &nest, const DepOptions &options)
{
    const std::size_t depth = nest.depth();
    std::vector<Access> accesses = nest.accesses();
    DependenceGraph graph(depth);

    // Step-aware analysis: fold constant-origin stepped loops into
    // the subscripts so distances come out in iteration (not value)
    // units. Symbolic-origin stepped loops stay as-is (conservative:
    // treated like unit stride, which only over-approximates).
    std::vector<bool> normalized(depth, false);
    for (std::size_t k = 0; k < depth; ++k) {
        const Loop &loop = nest.loop(k);
        if (loop.step == 1 || !loop.lower.isConstant())
            continue;
        normalized[k] = true;
        std::int64_t lb = loop.lower.evaluate({});
        for (Access &access : accesses)
            access.ref = normalizeRef(access.ref, k, lb, loop.step);
    }

    RangeFacts range;
    if (options.rangePrune)
        range = buildRangeFacts(nest, options, normalized);

    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i; j < accesses.size(); ++j) {
            const Access &a = accesses[i];
            const Access &b = accesses[j];
            if (a.ref.array() != b.ref.array())
                continue;
            bool both_read = !a.isWrite && !b.isWrite;
            if (both_read && !options.includeInput)
                continue; // the whole point: skip the test entirely

            auto relations = solveAccessPair(a.ref, b.ref);
            if (!relations)
                continue;

            // Partition loops into exactly-known distances and
            // unresolved (Free/Star) dimensions.
            bool all_exact = true;
            IntVector dist(depth);
            std::vector<bool> unknown(depth, false);
            for (std::size_t k = 0; k < depth; ++k) {
                const LoopRelation &rel = (*relations)[k];
                if (rel.kind == LoopRelation::Kind::Exact) {
                    dist[k] = rel.exact;
                } else {
                    unknown[k] = true;
                    all_exact = false;
                }
            }

            // Range pre-filter: drop the pair when bounds prove the
            // solver's relations infeasible. A zero-distance self
            // pair never becomes an edge, so it is never "pruned".
            if (range.enabled &&
                !(all_exact && i == j &&
                  dist.lexCompare(IntVector(depth)) == 0)) {
                std::string reason =
                    rangePruneReason(range, a.ref, b.ref, *relations);
                if (!reason.empty()) {
                    if (options.pruned) {
                        options.pruned->push_back(
                            {i, j, classify(a.isWrite, b.isWrite),
                             std::move(reason)});
                    }
                    continue;
                }
            }

            Dependence edge;
            edge.dirs.assign(depth, DepDir::Eq);
            edge.reduction = isReductionEdge(nest, a, b);

            if (all_exact) {
                int cmp = dist.lexCompare(IntVector(depth));
                if (cmp == 0) {
                    if (i == j)
                        continue; // an access is not dependent on itself
                    edge.src = i;
                    edge.dst = j;
                    edge.kind = classify(a.isWrite, b.isWrite);
                    edge.hasDistance = true;
                    edge.distance = dist;
                    graph.addEdge(std::move(edge));
                    continue;
                }
                bool forward = cmp > 0;
                edge.src = forward ? i : j;
                edge.dst = forward ? j : i;
                const Access &src = accesses[edge.src];
                const Access &dst = accesses[edge.dst];
                edge.kind = classify(src.isWrite, dst.isWrite);
                edge.hasDistance = true;
                edge.distance = forward ? dist : -dist;
                for (std::size_t k = 0; k < depth; ++k) {
                    std::int64_t d = edge.distance[k];
                    edge.dirs[k] = d > 0   ? DepDir::Lt
                                   : d < 0 ? DepDir::Gt
                                           : DepDir::Eq;
                }
                graph.addEdge(std::move(edge));
                continue;
            }

            // Unresolved dimensions: a single Star edge, textual
            // orientation, with a representative distance (0 fills;
            // the leading unknown gets 1 for self dependences so the
            // distance is a valid carried representative).
            edge.src = i;
            edge.dst = j;
            edge.kind = classify(a.isWrite, b.isWrite);
            edge.hasDistance = false;
            edge.representative = true;
            edge.distance = dist;
            bool first_unknown = true;
            for (std::size_t k = 0; k < depth; ++k) {
                if (!unknown[k]) {
                    std::int64_t d = dist[k];
                    edge.dirs[k] = d > 0   ? DepDir::Lt
                                   : d < 0 ? DepDir::Gt
                                           : DepDir::Eq;
                    continue;
                }
                edge.dirs[k] = DepDir::Star;
                if (i == j && first_unknown)
                    edge.distance[k] = 1;
                first_unknown = false;
            }
            graph.addEdge(std::move(edge));
        }
    }
    return graph;
}

IntVector
safeUnrollBounds(const LoopNest &nest, const DependenceGraph &graph,
                 std::int64_t cap,
                 std::vector<UnrollConstraint> *constraints)
{
    const std::size_t depth = nest.depth();
    IntVector bounds(depth);
    for (std::size_t k = 0; k + 1 < depth; ++k)
        bounds[k] = cap;
    if (depth > 0)
        bounds[depth - 1] = 0; // the innermost loop is never unrolled

    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const Dependence &edge = graph.edges()[e];
        // Reordering two reads is always legal; reduction self-cycles
        // may be reassociated.
        if (edge.reduction || edge.kind == DepKind::Input)
            continue;

        bool has_star = false;
        for (std::size_t m = 0; m < depth; ++m) {
            if (edge.dirs[m] == DepDir::Star)
                has_star = true;
        }

        // A '*' component admits concrete pairs in either textual
        // order, so the mirrored direction vector must be checked as
        // well; exact edges are already oriented source-first and
        // have no mirror. Likewise a '*' includes '=', so any level
        // whose outer components all admit '=' can be the carrier --
        // not just the outermost non-'=' one.
        for (int sign = +1; sign >= (has_star ? -1 : +1); sign -= 2) {
            auto effective = [&](std::size_t m) {
                DepDir dir = edge.dirs[m];
                if (sign < 0 && dir == DepDir::Lt)
                    return DepDir::Gt;
                if (sign < 0 && dir == DepDir::Gt)
                    return DepDir::Lt;
                return dir;
            };
            for (std::size_t level = 0; level + 1 < depth; ++level) {
                // Unrolling `level` hoists the remainder iterations
                // into a fringe nest that runs after the main nest
                // has finished every outer iteration. A pair carried
                // at some outer loop whose component at `level`
                // points backward would then be reversed no matter
                // how small the unroll amount.
                bool outer_carrier = false;
                for (std::size_t m = 0; m < level; ++m) {
                    DepDir dir = effective(m);
                    if (dir == DepDir::Lt || dir == DepDir::Star)
                        outer_carrier = true;
                    if (dir == DepDir::Lt || dir == DepDir::Gt)
                        break; // fixed nonzero: no deeper carrier
                }
                if (outer_carrier &&
                    (effective(level) == DepDir::Gt ||
                     effective(level) == DepDir::Star)) {
                    bounds[level] = 0;
                    if (constraints)
                        constraints->push_back({level, e, 0, true});
                    continue;
                }

                // Loop `level` carries a pair of this edge only when
                // it can run '<' with every outer component '='.
                bool feasible = effective(level) == DepDir::Lt ||
                                effective(level) == DepDir::Star;
                for (std::size_t m = 0; feasible && m < level; ++m) {
                    feasible = effective(m) == DepDir::Eq ||
                               effective(m) == DepDir::Star;
                }
                if (!feasible)
                    continue;

                bool inner_hazard = false;
                for (std::size_t m = level + 1; m < depth; ++m) {
                    if (effective(m) == DepDir::Gt ||
                        effective(m) == DepDir::Star) {
                        inner_hazard = true;
                        break;
                    }
                }
                if (!inner_hazard)
                    continue;

                std::int64_t limit = 0;
                if (effective(level) == DepDir::Lt && edge.hasDistance)
                    limit = std::max<std::int64_t>(
                        0, std::abs(edge.distance[level]) - 1);
                if (constraints && limit < cap)
                    constraints->push_back({level, e, limit, false});
                bounds[level] = std::min(bounds[level], limit);
            }
        }
    }
    return bounds;
}

IntVector
safeUnrollBounds(const LoopNest &nest, const DependenceGraph &graph,
                 std::int64_t cap)
{
    return safeUnrollBounds(nest, graph, cap, nullptr);
}

} // namespace ujam
