/**
 * @file
 * Data-dependence representation.
 *
 * Dependences connect two accesses of a nest (by ordinal position in
 * LoopNest::accesses()) and carry a per-loop direction vector plus,
 * when every component is known exactly, a distance vector. Input
 * (read-read) dependences are first-class: the paper's headline
 * measurement is how much of a dependence graph they occupy.
 */

#ifndef UJAM_DEPS_DEPENDENCE_HH
#define UJAM_DEPS_DEPENDENCE_HH

#include <string>
#include <vector>

#include "linalg/int_vector.hh"

namespace ujam
{

/** Dependence kind, by the access types of source and sink. */
enum class DepKind
{
    Flow,   //!< write -> read (true)
    Anti,   //!< read -> write
    Output, //!< write -> write
    Input   //!< read -> read
};

/** @return "flow"/"anti"/"output"/"input". */
const char *depKindName(DepKind kind);

/** Per-loop dependence direction. */
enum class DepDir
{
    Lt,   //!< source iteration precedes sink ('<')
    Eq,   //!< same iteration ('=')
    Gt,   //!< source iteration follows sink ('>')
    Star  //!< unknown / all directions ('*')
};

/** @return '<', '=', '>' or '*'. */
char depDirSymbol(DepDir dir);

/**
 * One dependence edge.
 */
struct Dependence
{
    DepKind kind = DepKind::Input;
    std::size_t src = 0;  //!< source access ordinal (executes first)
    std::size_t dst = 0;  //!< sink access ordinal
    std::vector<DepDir> dirs; //!< direction per loop, outermost first

    /**
     * True when every direction component resolved to an exact
     * iteration distance; then distance holds sink minus source
     * iteration. Star components in dirs make this false only if no
     * representative could be chosen; a representative with Star
     * components set to 0 (or 1 for self dependences) is still
     * recorded with representative == true.
     */
    bool hasDistance = false;
    bool representative = false; //!< distance has arbitrary Star fills
    IntVector distance;

    /**
     * True when the edge arises from a recognized reduction statement
     * (e.g. the a(j) += ... self cycle); such edges do not constrain
     * unroll-and-jam because reduction reassociation is permitted.
     */
    bool reduction = false;

    /** @return True iff any direction is not Eq. */
    bool loopCarried() const;

    /**
     * @return Index of the outermost non-Eq direction (the carrier
     * level), or -1 for a loop-independent dependence.
     */
    int carrierLevel() const;

    /** @return e.g. "flow (<,=) d=(1, 0)". */
    std::string toString() const;
};

} // namespace ujam

#endif // UJAM_DEPS_DEPENDENCE_HH
