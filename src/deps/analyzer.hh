/**
 * @file
 * Whole-nest dependence analysis.
 */

#ifndef UJAM_DEPS_ANALYZER_HH
#define UJAM_DEPS_ANALYZER_HH

#include "deps/graph.hh"
#include "ir/loop_nest.hh"

namespace ujam
{

/** Options controlling dependence-graph construction. */
struct DepOptions
{
    /**
     * Record input (read-read) dependences. Dependence-based reuse
     * analysis requires them; the UGS model of this paper does not.
     */
    bool includeInput = true;
};

/**
 * Build the dependence graph of a nest.
 *
 * Tests every pair of accesses to the same array (including an access
 * against itself for loop-invariant self reuse), classifies edges by
 * kind, orients them source-before-sink, and tags edges arising from
 * recognized reduction statements.
 *
 * @param nest The nest to analyze.
 * @param options See DepOptions.
 * @return The dependence graph, directions indexed outermost-first.
 */
DependenceGraph analyzeDependences(const LoopNest &nest,
                                   const DepOptions &options = {});

/**
 * Compute, per loop, the largest unroll-and-jam amount the
 * dependence graph allows (capped).
 *
 * Unroll-and-jam of loop k by u interleaves u+1 consecutive k
 * iterations into one pass over the inner loops; it is illegal when a
 * dependence carried by k at distance dk <= u points backward in an
 * inner loop (direction '>' or '*'), because jamming would reverse
 * it. It is also illegal, at any amount, when a dependence carried by
 * a loop outer to k points backward at k ('>' or '*'), because the
 * remainder iterations of k are hoisted into a fringe nest that runs
 * after the main nest has finished every outer iteration. A '*'
 * component admits pairs in either textual order, so edges are
 * checked in both orientations. Reduction self-cycles do not
 * constrain the transformation.
 *
 * @param nest  The nest.
 * @param graph Its dependence graph.
 * @param cap   Upper bound for every entry (the optimizer's search
 *              bound).
 * @return Per-loop maximum safe unroll; the innermost entry is 0.
 */
IntVector safeUnrollBounds(const LoopNest &nest,
                           const DependenceGraph &graph, std::int64_t cap);

} // namespace ujam

#endif // UJAM_DEPS_ANALYZER_HH
