/**
 * @file
 * Whole-nest dependence analysis.
 */

#ifndef UJAM_DEPS_ANALYZER_HH
#define UJAM_DEPS_ANALYZER_HH

#include <string>
#include <vector>

#include "deps/graph.hh"
#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * One dependence edge the range pre-filter deleted, with the proof.
 * src/dst are access ordinals like Dependence's.
 */
struct PrunedEdge
{
    std::size_t src = 0;
    std::size_t dst = 0;
    DepKind kind = DepKind::Input;
    std::string reason; //!< human-readable disjointness/trip proof
};

/** Options controlling dependence-graph construction. */
struct DepOptions
{
    /**
     * Record input (read-read) dependences. Dependence-based reuse
     * analysis requires them; the UGS model of this paper does not.
     */
    bool includeInput = true;

    /**
     * Range-disjointness pre-filter: delete edges whose subscript
     * intervals (from the symbolic dataflow engine, evaluated under
     * `params`) can never intersect, and edges whose exact iteration
     * distance exceeds what the loop's trip count admits. The GKT
     * subscript tests ignore loop bounds entirely, so this removes
     * edges they must conservatively keep. Legality becomes
     * specialized to `params`; the pipeline's differential oracle
     * (which runs under the same bindings) backstops every transform
     * decided on a pruned graph.
     */
    bool rangePrune = false;

    /** Parameter bindings the pre-filter evaluates bounds under. */
    ParamBindings params;

    /** When non-null, receives one entry per deleted edge. */
    std::vector<PrunedEdge> *pruned = nullptr;
};

/**
 * Build the dependence graph of a nest.
 *
 * Tests every pair of accesses to the same array (including an access
 * against itself for loop-invariant self reuse), classifies edges by
 * kind, orients them source-before-sink, and tags edges arising from
 * recognized reduction statements.
 *
 * @param nest The nest to analyze.
 * @param options See DepOptions.
 * @return The dependence graph, directions indexed outermost-first.
 */
DependenceGraph analyzeDependences(const LoopNest &nest,
                                   const DepOptions &options = {});

/**
 * One reason a loop's unroll-and-jam amount is restricted: the edge
 * (by index into the graph) that imposed a limit at a level, and
 * whether it was the outer-carrier fringe-hoist hazard (which forbids
 * any unrolling of that level) or an ordinary jam-direction limit.
 */
struct UnrollConstraint
{
    std::size_t level = 0;    //!< the restricted loop, outermost-first
    std::size_t edgeIndex = 0; //!< offending edge in graph.edges()
    std::int64_t limit = 0;   //!< amount the edge allows at this level
    bool outerCarrier = false; //!< fringe-hoist hazard (limit is 0)
};

/**
 * Compute, per loop, the largest unroll-and-jam amount the
 * dependence graph allows (capped).
 *
 * Unroll-and-jam of loop k by u interleaves u+1 consecutive k
 * iterations into one pass over the inner loops; it is illegal when a
 * dependence carried by k at distance dk <= u points backward in an
 * inner loop (direction '>' or '*'), because jamming would reverse
 * it. It is also illegal, at any amount, when a dependence carried by
 * a loop outer to k points backward at k ('>' or '*'), because the
 * remainder iterations of k are hoisted into a fringe nest that runs
 * after the main nest has finished every outer iteration. A '*'
 * component admits pairs in either textual order, so edges are
 * checked in both orientations. Reduction self-cycles do not
 * constrain the transformation.
 *
 * @param nest  The nest.
 * @param graph Its dependence graph.
 * @param cap   Upper bound for every entry (the optimizer's search
 *              bound).
 * @param constraints When non-null, receives one entry per
 *              edge-imposed restriction tighter than the cap (the
 *              static analyzer's evidence trail).
 * @return Per-loop maximum safe unroll; the innermost entry is 0.
 */
IntVector safeUnrollBounds(const LoopNest &nest,
                           const DependenceGraph &graph, std::int64_t cap,
                           std::vector<UnrollConstraint> *constraints);

/** Overload without the evidence trail. */
IntVector safeUnrollBounds(const LoopNest &nest,
                           const DependenceGraph &graph, std::int64_t cap);

} // namespace ujam

#endif // UJAM_DEPS_ANALYZER_HH
