#include "deps/subscript_tests.hh"

#include "support/diagnostics.hh"
#include "support/rational.hh"

namespace ujam
{

namespace
{

/** Merge a new relation into the running per-loop state. */
bool
mergeRelation(LoopRelation &state, LoopRelation::Kind kind,
              std::int64_t exact)
{
    switch (state.kind) {
      case LoopRelation::Kind::Free:
        state.kind = kind;
        state.exact = exact;
        return true;
      case LoopRelation::Kind::Exact:
        if (kind == LoopRelation::Kind::Exact && exact != state.exact)
            return false; // two dimensions demand different distances
        return true;
      case LoopRelation::Kind::Star:
        state.kind = kind;
        state.exact = exact;
        return true;
    }
    panic("unknown relation kind");
}

} // namespace

std::optional<std::vector<LoopRelation>>
solveAccessPair(const ArrayRef &a, const ArrayRef &b)
{
    UJAM_ASSERT(a.array() == b.array(),
                "dependence test across different arrays");
    UJAM_ASSERT(a.depth() == b.depth(),
                "depth mismatch in dependence test");

    const std::size_t depth = a.depth();
    std::vector<LoopRelation> relations(depth);

    if (a.dims() != b.dims()) {
        // Rank-mismatched views of one array (EQUIVALENCE-style
        // aliasing): assume everything conflicts.
        for (LoopRelation &rel : relations)
            rel.kind = LoopRelation::Kind::Star;
        return relations;
    }

    for (std::size_t d = 0; d < a.dims(); ++d) {
        const IntVector &ra = a.row(d);
        const IntVector &rb = b.row(d);

        std::vector<std::size_t> involved;
        for (std::size_t k = 0; k < depth; ++k) {
            if (ra[k] != 0 || rb[k] != 0)
                involved.push_back(k);
        }

        if (involved.empty()) {
            // ZIV: both subscripts constant in this dimension.
            if (a.offset()[d] != b.offset()[d])
                return std::nullopt;
            continue;
        }

        if (involved.size() == 1) {
            std::size_t k = involved.front();
            std::int64_t ca = ra[k];
            std::int64_t cb = rb[k];
            if (ca == cb) {
                // Strong SIV: ca*i + oa == ca*i' + ob.
                std::int64_t delta = a.offset()[d] - b.offset()[d];
                if (delta % ca != 0)
                    return std::nullopt;
                if (!mergeRelation(relations[k],
                                   LoopRelation::Kind::Exact, delta / ca))
                    return std::nullopt;
            } else {
                // Weak-zero (cb == 0), weak-crossing (cb == -ca) or
                // general SIV: feasibility by GCD, direction unknown.
                std::int64_t g = gcd64(ca, cb);
                std::int64_t delta = b.offset()[d] - a.offset()[d];
                if (g != 0 && delta % g != 0)
                    return std::nullopt;
                if (!mergeRelation(relations[k], LoopRelation::Kind::Star,
                                   0)) {
                    return std::nullopt;
                }
            }
            continue;
        }

        // MIV fallback: GCD feasibility over all coefficients, with
        // every involved loop unresolved.
        std::int64_t g = 0;
        for (std::size_t k : involved) {
            g = gcd64(g, ra[k]);
            g = gcd64(g, rb[k]);
        }
        std::int64_t delta = b.offset()[d] - a.offset()[d];
        if (g != 0 && delta % g != 0)
            return std::nullopt;
        for (std::size_t k : involved) {
            if (!mergeRelation(relations[k], LoopRelation::Kind::Star, 0))
                return std::nullopt;
        }
    }
    return relations;
}

} // namespace ujam
