#include "deps/dependence.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

const char *
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::Flow:
        return "flow";
      case DepKind::Anti:
        return "anti";
      case DepKind::Output:
        return "output";
      case DepKind::Input:
        return "input";
    }
    panic("unknown dependence kind");
}

char
depDirSymbol(DepDir dir)
{
    switch (dir) {
      case DepDir::Lt:
        return '<';
      case DepDir::Eq:
        return '=';
      case DepDir::Gt:
        return '>';
      case DepDir::Star:
        return '*';
    }
    panic("unknown dependence direction");
}

bool
Dependence::loopCarried() const
{
    for (DepDir dir : dirs) {
        if (dir != DepDir::Eq)
            return true;
    }
    return false;
}

int
Dependence::carrierLevel() const
{
    for (std::size_t k = 0; k < dirs.size(); ++k) {
        if (dirs[k] != DepDir::Eq)
            return static_cast<int>(k);
    }
    return -1;
}

std::string
Dependence::toString() const
{
    std::ostringstream os;
    os << depKindName(kind) << " " << src << "->" << dst << " (";
    for (std::size_t k = 0; k < dirs.size(); ++k) {
        if (k > 0)
            os << ",";
        os << depDirSymbol(dirs[k]);
    }
    os << ")";
    if (hasDistance)
        os << " d=" << distance.toString();
    if (reduction)
        os << " [reduction]";
    return os.str();
}

} // namespace ujam
