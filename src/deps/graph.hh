/**
 * @file
 * Dependence graph with storage accounting.
 *
 * The graph records, besides the edges themselves, the modeled memory
 * footprint of each edge so the Table-1 experiment can report how
 * much space input dependences occupy. The per-edge cost model
 * follows dependence-graph implementations of the Memoria/ParaScope
 * family: a fixed record (endpoints, kind, flags, list links) plus
 * per-loop direction and distance slots.
 */

#ifndef UJAM_DEPS_GRAPH_HH
#define UJAM_DEPS_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "deps/dependence.hh"

namespace ujam
{

/**
 * A dependence graph over one loop nest's accesses.
 */
class DependenceGraph
{
  public:
    /** Construct an empty graph for a nest of the given depth. */
    explicit DependenceGraph(std::size_t depth = 0) : depth_(depth) {}

    /** @return Nest depth the directions are indexed by. */
    std::size_t depth() const { return depth_; }

    /** Append an edge. */
    void addEdge(Dependence edge);

    /** @return All edges. */
    const std::vector<Dependence> &edges() const { return edges_; }

    /** @return Total edge count. */
    std::size_t size() const { return edges_.size(); }

    /** @return Number of edges of the given kind. */
    std::size_t countOfKind(DepKind kind) const;

    /** @return Number of input (read-read) edges. */
    std::size_t inputCount() const { return countOfKind(DepKind::Input); }

    /** @return Input edges as a fraction of all edges (0 if empty). */
    double inputFraction() const;

    /** @return Modeled bytes for one edge at the given nest depth. */
    static std::size_t edgeBytes(std::size_t depth);

    /** @return Modeled bytes for the whole graph. */
    std::size_t storageBytes() const;

    /**
     * @return Modeled bytes for the graph with all input edges
     * removed -- the storage a UGS-based compiler needs.
     */
    std::size_t storageBytesWithoutInput() const;

    /** @return Multi-line dump of all edges. */
    std::string toString() const;

  private:
    std::size_t depth_;
    std::vector<Dependence> edges_;
};

} // namespace ujam

#endif // UJAM_DEPS_GRAPH_HH
