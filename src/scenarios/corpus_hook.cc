#include "scenarios/corpus_hook.hh"

#include <sstream>

#include "scenarios/scenario.hh"
#include "workloads/suite.hh"

namespace ujam
{

Program
loadCorpusProgram(const std::string &name)
{
    if (looksLikeScenarioName(name))
        return loadScenarioProgram(name);
    return loadSuiteProgram(suiteLoop(name));
}

std::string
renderCorpusList()
{
    std::ostringstream out;
    out << "suite loops (paper Table 2):\n";
    for (const SuiteLoop &loop : testSuite())
        out << "  " << loop.name << " -- " << loop.description
            << "\n";
    out << "\n" << renderScenarioCatalog();
    return out.str();
}

std::string
corpusFileStem(const std::string &name)
{
    std::string stem = name;
    for (char &c : stem)
        if (c == ':' || c == ',' || c == '=' || c == '*')
            c = '_';
    return stem.empty() ? std::string("program") : stem;
}

} // namespace ujam
