/**
 * @file
 * Dense linear-algebra scenario families: matrix multiply under two
 * loop orders, a banded forward recurrence with a skew knob, and a
 * DMXPY-style matrix-vector accumulation.
 *
 * These are the register-reuse workhorses: matmul and dmxpy carry
 * only reduction self-cycles (which never constrain unroll-and-jam),
 * while the banded recurrence's `skew` parameter moves its carried
 * flow dependence between forward, aligned and backward inner
 * directions -- legality of unrolling the outer loop flips exactly at
 * skew > 0, which the conformance tests assert against
 * safeUnrollBounds.
 */

#include "scenarios/families.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace ujam
{

namespace scenarios_detail
{

namespace
{

class MatmulGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "matmul"; }

    const char *
    summary() const override
    {
        return "dense matrix multiply x += c*y, kji or jki order";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 24, 4, 512, "shared/outer dimension"},
            {"m", 24, 4, 512, "row dimension (inner loop trip)"},
            {"order", 0, 0, 1, "loop order: 0 = k,j,i; 1 = j,k,i"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        bool jki = spec.at("order") != 0;
        Rng rng(Rng::deriveStream(spec.seed, 21));

        GeneratedScenario scenario;
        std::string out = concat("! scenario: ", spec.toString(), "\n",
                                 "param n = ", spec.at("n"), "\n",
                                 "param m = ", spec.at("m"), "\n",
                                 "real x(m, n)\n", "real c(m, n)\n",
                                 "real y(n, n)\n");
        out += "! nest: matmul\n";
        const char *outer = jki ? "j" : "k";
        const char *middle = jki ? "k" : "j";
        out += concat("do ", outer, " = 1, n\n");
        out += concat("  do ", middle, " = 1, n\n");
        out += "    do i = 1, m\n";
        out += concat("      x(i, j) = x(i, j) + ", coefLit(rng),
                      " * c(i, k) * y(k, j)\n");
        out += "    end do\n  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 3;
        // The x(i,j) accumulation is carried by the k loop.
        scenario.truth.carriedNonInput = true;
        // Reduction self-cycles do not constrain unroll-and-jam.
        scenario.truth.legalUnroll = {true, true, false};
        // Under the innermost-localized space (i): x and c walk
        // columns (spatial); y is invariant in i (temporal).
        scenario.truth.selfReuse = {{"x", SelfReuse::Spatial},
                                    {"c", SelfReuse::Spatial},
                                    {"y", SelfReuse::Temporal}};
        return scenario;
    }
};

class BandedGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "banded"; }

    const char *
    summary() const override
    {
        return "banded forward recurrence s(i,k) -= r*s(i+skew,k-1)";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 48, 4, 2048, "recurrence length (outer trip)"},
            {"m", 48, 6, 2048, "band height (inner trip)"},
            {"skew", 0, -2, 2,
             "row offset of the k-1 operand; > 0 forbids outer "
             "unroll"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t skew = spec.at("skew");
        Rng rng(Rng::deriveStream(spec.seed, 22));

        // Keep i + skew inside [1, m].
        std::int64_t lo = 1 + std::max<std::int64_t>(0, -skew);
        std::int64_t hi_off = std::max<std::int64_t>(0, skew);

        GeneratedScenario scenario;
        std::string out = concat("! scenario: ", spec.toString(), "\n",
                                 "param n = ", spec.at("n"), "\n",
                                 "param m = ", spec.at("m"), "\n",
                                 "real s(m, n)\n", "real r(m, n)\n");
        out += "! nest: banded\n";
        out += "do k = 2, n\n";
        if (hi_off == 0)
            out += concat("  do i = ", lo, ", m\n");
        else
            out += concat("  do i = ", lo, ", m - ", hi_off, "\n");
        out += concat("    s(i, k) = s(i, k) - ", coefLit(rng),
                      " * r(i, k) * s(", offsetTerm("i", skew),
                      ", k-1)\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        scenario.truth.carriedNonInput = true;
        // Flow s(i,k) -> s(i+skew,k-1) has distance (1, -skew):
        // carried by k, inner direction '>' exactly when skew > 0.
        scenario.truth.legalUnroll = {skew <= 0, false};
        scenario.truth.selfReuse = {{"s", SelfReuse::Spatial},
                                    {"r", SelfReuse::Spatial}};
        return scenario;
    }
};

class DmxpyGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "dmxpy"; }

    const char *
    summary() const override
    {
        return "matrix-vector accumulation y(i) += mat(i,j) * x(j)";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 64, 4, 4096, "columns (outer trip)"},
            {"m", 64, 4, 4096, "rows (inner trip)"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        Rng rng(Rng::deriveStream(spec.seed, 23));

        GeneratedScenario scenario;
        std::string out = concat("! scenario: ", spec.toString(), "\n",
                                 "param n = ", spec.at("n"), "\n",
                                 "param m = ", spec.at("m"), "\n",
                                 "real y(m)\n", "real mat(m, n)\n",
                                 "real x(n)\n");
        out += "! nest: dmxpy\n";
        out += "do j = 1, n\n";
        out += "  do i = 1, m\n";
        out += concat("    y(i) = y(i) + ", coefLit(rng),
                      " * mat(i, j) * x(j)\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        scenario.truth.carriedNonInput = true;
        scenario.truth.legalUnroll = {true, false};
        // y walks rows (spatial in i), x is invariant in i
        // (temporal), mat streams columns (spatial).
        scenario.truth.selfReuse = {{"y", SelfReuse::Spatial},
                                    {"mat", SelfReuse::Spatial},
                                    {"x", SelfReuse::Temporal}};
        return scenario;
    }
};

} // namespace

void
appendLinalgFamilies(std::vector<const IScenarioGenerator *> &out)
{
    static const MatmulGenerator matmul;
    static const BandedGenerator banded;
    static const DmxpyGenerator dmxpy;
    out.push_back(&matmul);
    out.push_back(&banded);
    out.push_back(&dmxpy);
}

} // namespace scenarios_detail

} // namespace ujam
