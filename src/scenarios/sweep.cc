#include "scenarios/sweep.hh"

#include <algorithm>
#include <array>
#include <map>

#include "driver/driver.hh"
#include "ir/validate.hh"
#include "model/machine.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"
#include "tune/autotuner.hh"

namespace ujam
{

namespace
{

/**
 * Machine presets by the names the service protocol uses. Kept local
 * so the scenarios library does not depend on the service layer
 * (which links scenarios).
 */
std::optional<MachineModel>
sweepMachine(const std::string &name)
{
    if (name == "alpha")
        return MachineModel::decAlpha21064();
    if (name == "parisc")
        return MachineModel::hpPa7100();
    if (name == "wide")
        return MachineModel::wideIlp();
    if (name == "wide-prefetch")
        return MachineModel::wideIlpPrefetch();
    return std::nullopt;
}

std::optional<LintMode>
lintModeFromName(const std::string &name)
{
    if (name == "off")
        return LintMode::Off;
    if (name == "warn")
        return LintMode::Warn;
    if (name == "strict")
        return LintMode::Strict;
    return std::nullopt;
}

/** One expanded unit of sweep work. */
struct SweepJob
{
    ScenarioSpec spec;
    std::string machine;
    SweepPipeline pipeline;
    bool oracle = false;
};

/**
 * Expand a manifest into jobs, in the fixed order the document and
 * the row slots use: families outermost (manifest order), then grid
 * combinations (last grid entry varies fastest), then seeds,
 * machines, pipelines.
 */
std::vector<SweepJob>
expandJobs(const SweepManifest &manifest)
{
    std::vector<SweepJob> jobs;
    for (const SweepFamily &entry : manifest.families) {
        const IScenarioGenerator *generator =
            findScenarioFamily(entry.family);
        if (!generator)
            fatal("sweep manifest names unknown family '",
                  entry.family, "'");

        std::vector<std::size_t> index(entry.grid.size(), 0);
        while (true) {
            ScenarioSpec spec;
            spec.family = entry.family;
            for (const ScenarioParam &param : generator->params())
                spec.params[param.name] = param.def;
            for (std::size_t g = 0; g < entry.grid.size(); ++g)
                spec.params[entry.grid[g].first] =
                    entry.grid[g].second[index[g]];

            for (std::uint64_t seed : manifest.seeds) {
                spec.seed = seed;
                for (const std::string &machine : manifest.machines) {
                    for (const SweepPipeline &pipeline :
                         manifest.pipelines) {
                        SweepJob job;
                        job.spec = spec;
                        job.machine = machine;
                        job.pipeline = pipeline;
                        job.oracle = manifest.oracle;
                        jobs.push_back(std::move(job));
                    }
                }
            }

            // Odometer step, last entry fastest.
            bool done = entry.grid.empty();
            std::size_t g = entry.grid.size();
            while (!done) {
                if (g == 0) {
                    done = true;
                    break;
                }
                --g;
                if (++index[g] < entry.grid[g].second.size())
                    break;
                index[g] = 0;
            }
            if (done)
                break;
        }
    }
    return jobs;
}

/** Run one job start to finish; never throws (faults -> row flags). */
SweepRow
runJob(const SweepJob &job)
{
    SweepRow row;
    row.scenario = job.spec.toString();
    row.family = job.spec.family;
    row.machine = job.machine;
    row.pipeline = job.pipeline.name;
    row.seed = job.spec.seed;

    std::optional<MachineModel> machine = sweepMachine(job.machine);
    if (!machine)
        fatal("sweep manifest names unknown machine '", job.machine,
              "'");

    GeneratedScenario scenario = generateScenario(job.spec);
    Program program =
        parseProgram(scenario.source, "scenario:" + scenario.name);
    row.validatorOk = validateProgram(program).empty();
    if (!program.nests().empty())
        row.depth = program.nests().front().depth();
    row.truthOk =
        verifyScenarioTruth(program, scenario.truth, &row.truthWhy);

    PipelineConfig config;
    config.threads = 1; // the sweep fans out above this level
    std::optional<LintMode> lint = lintModeFromName(job.pipeline.lint);
    if (!lint)
        fatal("sweep pipeline '", job.pipeline.name,
              "' has unknown lint mode '", job.pipeline.lint, "'");
    config.lint = *lint;
    config.distribute = job.pipeline.distribute;
    config.interchange = job.pipeline.interchange;
    config.scalarReplace = job.pipeline.scalarReplace;
    config.prefetch = job.pipeline.prefetch;
    config.safety.oracle = job.oracle;
    config.safety.oracleTrials = 1;

    PipelineResult optimized =
        optimizeProgram(program, *machine, config);
    row.lintErrors = optimized.lint.errorCount();
    row.lintWarnings = optimized.lint.warnCount();
    row.lintNotes = optimized.lint.noteCount();
    row.rollbacks = optimized.containedFaults();
    for (const StageDiagnostic &diag : optimized.programDiagnostics)
        row.rollbackDetail.push_back(diag.toString());
    for (const NestOutcome &outcome : optimized.outcomes)
        for (const StageDiagnostic &diag : outcome.contained)
            row.rollbackDetail.push_back(diag.toString());
    if (!optimized.outcomes.empty())
        row.modelPick =
            optimized.outcomes.front().decision.unroll.toString();

    // The tuner re-runs the pipeline per candidate: keep its copy
    // lint- and oracle-free (both were already accounted above).
    TuneConfig tune;
    tune.pipeline = config;
    tune.pipeline.lint = LintMode::Off;
    tune.pipeline.safety.oracle = false;
    tune.measure = MeasureMode::Model;
    tune.neighborhood = 1;
    TuneResult tuned = tuneProgram(program, *machine, tune);
    if (!tuned.skipped && !tuned.nests.empty()) {
        const NestTune &nest = tuned.nests.front();
        row.tunerPick = nest.measuredBest.toString();
        row.modelCycles = nest.modelPickRuntime;
        row.bestCycles = nest.bestRuntime;
        for (const TuneCandidate &candidate : nest.candidates)
            if (candidate.source == "baseline" && candidate.valid)
                row.baselineCycles = candidate.runtime;
        row.agree = !row.modelPick.empty() &&
                    row.modelPick == row.tunerPick;
        row.featureRow = tuneFeatureRowJson("scenario:" + row.scenario,
                                            tuned, nest);
    }
    return row;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

bool
intArray(const JsonValue &node, std::vector<std::int64_t> &out)
{
    if (!node.isArray() || node.elements.empty())
        return false;
    out.clear();
    for (const JsonValue &element : node.elements) {
        if (!element.isNumber())
            return false;
        std::optional<std::int64_t> value = element.asInt();
        if (!value)
            return false;
        out.push_back(*value);
    }
    return true;
}

bool
parseFamilies(const JsonValue &node, SweepManifest &manifest,
              std::string *error)
{
    if (!node.isArray() || node.elements.empty())
        return fail(error,
                    "manifest 'families' must be a non-empty array");
    for (const JsonValue &element : node.elements) {
        if (!element.isObject())
            return fail(error, "family entries must be objects");
        const JsonValue *name = element.find("family");
        if (!name || !name->isString())
            return fail(error,
                        "family entry needs a string 'family'");
        const IScenarioGenerator *generator =
            findScenarioFamily(name->stringValue);
        if (!generator)
            return fail(error, "unknown scenario family '" +
                                   name->stringValue + "'");

        SweepFamily family;
        family.family = name->stringValue;
        if (const JsonValue *grid = element.find("grid")) {
            if (!grid->isObject())
                return fail(error, "family 'grid' must be an object");
            for (const auto &[param, values] : grid->members) {
                const ScenarioParam *schema = nullptr;
                for (const ScenarioParam &candidate :
                     generator->params())
                    if (candidate.name == param)
                        schema = &candidate;
                if (!schema)
                    return fail(error, "family '" + family.family +
                                           "' has no parameter '" +
                                           param + "'");
                std::vector<std::int64_t> list;
                if (!intArray(values, list))
                    return fail(
                        error,
                        "grid '" + param +
                            "' must be a non-empty integer array");
                for (std::int64_t value : list)
                    if (value < schema->min || value > schema->max)
                        return fail(
                            error,
                            concat("grid '", param, "' value ", value,
                                   " out of range [", schema->min,
                                   ", ", schema->max, "]"));
                family.grid.emplace_back(param, std::move(list));
            }
        }
        manifest.families.push_back(std::move(family));
    }
    return true;
}

bool
parsePipelines(const JsonValue &node, SweepManifest &manifest,
               std::string *error)
{
    if (!node.isArray() || node.elements.empty())
        return fail(error,
                    "manifest 'pipelines' must be a non-empty array");
    manifest.pipelines.clear();
    for (const JsonValue &element : node.elements) {
        if (!element.isObject())
            return fail(error, "pipeline entries must be objects");
        SweepPipeline pipeline;
        const JsonValue *name = element.find("name");
        if (!name || !name->isString())
            return fail(error,
                        "pipeline entry needs a string 'name'");
        pipeline.name = name->stringValue;
        if (const JsonValue *lint = element.find("lint")) {
            if (!lint->isString() ||
                !lintModeFromName(lint->stringValue))
                return fail(error, "pipeline 'lint' must be 'off', "
                                   "'warn' or 'strict'");
            pipeline.lint = lint->stringValue;
        }
        auto flag = [&](const char *key, bool &slot) {
            if (const JsonValue *value = element.find(key)) {
                if (!value->isBool())
                    return false;
                slot = value->boolValue;
            }
            return true;
        };
        if (!flag("distribute", pipeline.distribute) ||
            !flag("interchange", pipeline.interchange) ||
            !flag("scalar_replace", pipeline.scalarReplace) ||
            !flag("prefetch", pipeline.prefetch))
            return fail(error,
                        "pipeline flags must be JSON booleans");
        manifest.pipelines.push_back(std::move(pipeline));
    }
    return true;
}

} // namespace

std::size_t
SweepManifest::jobCount() const
{
    std::size_t combos = 0;
    for (const SweepFamily &entry : families) {
        std::size_t per_family = 1;
        for (const auto &[param, values] : entry.grid)
            per_family *= values.size();
        combos += per_family;
    }
    return combos * seeds.size() * machines.size() * pipelines.size();
}

std::optional<SweepManifest>
parseSweepManifest(const std::string &text, std::string *error)
{
    JsonParseResult parsed = parseJson(text);
    if (!parsed.ok()) {
        fail(error, "manifest is not valid JSON: " + parsed.error);
        return std::nullopt;
    }
    const JsonValue &root = *parsed.value;
    if (!root.isObject()) {
        fail(error, "manifest must be a JSON object");
        return std::nullopt;
    }
    if (const JsonValue *schema = root.find("schema")) {
        if (!schema->isString() ||
            schema->stringValue != "ujam-sweep-manifest-v1") {
            fail(error,
                 "manifest 'schema' must be 'ujam-sweep-manifest-v1'");
            return std::nullopt;
        }
    }

    SweepManifest manifest;
    manifest.families.clear();
    const JsonValue *families = root.find("families");
    if (!families) {
        fail(error, "manifest needs a 'families' array");
        return std::nullopt;
    }
    if (!parseFamilies(*families, manifest, error))
        return std::nullopt;

    if (const JsonValue *machines = root.find("machines")) {
        if (!machines->isArray() || machines->elements.empty()) {
            fail(error,
                 "manifest 'machines' must be a non-empty array");
            return std::nullopt;
        }
        manifest.machines.clear();
        for (const JsonValue &element : machines->elements) {
            if (!element.isString() ||
                !sweepMachine(element.stringValue)) {
                fail(error,
                     "machines must name presets: alpha, parisc, "
                     "wide, wide-prefetch");
                return std::nullopt;
            }
            manifest.machines.push_back(element.stringValue);
        }
    }

    if (const JsonValue *pipelines = root.find("pipelines"))
        if (!parsePipelines(*pipelines, manifest, error))
            return std::nullopt;

    if (const JsonValue *seeds = root.find("seeds")) {
        std::vector<std::int64_t> list;
        if (!intArray(*seeds, list) ||
            std::any_of(list.begin(), list.end(),
                        [](std::int64_t s) { return s < 0; })) {
            fail(error, "manifest 'seeds' must be a non-empty array "
                        "of non-negative integers");
            return std::nullopt;
        }
        manifest.seeds.assign(list.begin(), list.end());
    }

    if (const JsonValue *oracle = root.find("oracle")) {
        if (!oracle->isBool()) {
            fail(error, "manifest 'oracle' must be a boolean");
            return std::nullopt;
        }
        manifest.oracle = oracle->boolValue;
    }
    return manifest;
}

SweepManifest
defaultSweepManifest()
{
    // Every family, small extents, two seeds and two machines:
    // 28 parameter combinations x 2 x 2 = 112 scenarios.
    SweepManifest manifest;
    manifest.seeds = {0, 1};
    manifest.machines = {"alpha", "parisc"};
    manifest.families = {
        {"stencil1d",
         {{"n", {48}}, {"radius", {1, 2}}, {"inplace", {0, 1}}}},
        {"stencil2d",
         {{"n", {20}},
          {"radius", {1, 2}},
          {"shape", {0, 1}},
          {"inplace", {0, 1}}}},
        {"stencil3d", {{"n", {10}}, {"inplace", {0, 1}}}},
        {"matmul", {{"n", {12}}, {"m", {12}}, {"order", {0, 1}}}},
        {"banded",
         {{"n", {16}}, {"m", {16}}, {"skew", {-1, 0, 1}}}},
        {"dmxpy", {{"n", {24}}, {"m", {24}}}},
        {"strided",
         {{"n", {32}},
          {"m", {12}},
          {"stride", {0, 1, 2}},
          {"terms", {1, 2}}}},
        {"irregular", {{"n", {24}}, {"m", {10}}, {"pattern", {1, 2}}}},
    };
    return manifest;
}

std::string
renderDefaultSweepManifest()
{
    SweepManifest manifest = defaultSweepManifest();
    JsonWriter w(2);
    w.beginObject();
    w.field("schema", "ujam-sweep-manifest-v1");
    w.key("seeds").beginArray();
    for (std::uint64_t seed : manifest.seeds)
        w.value(seed);
    w.endArray();
    w.field("oracle", manifest.oracle);
    w.key("machines").beginArray();
    for (const std::string &machine : manifest.machines)
        w.value(machine);
    w.endArray();
    w.key("pipelines").beginArray();
    for (const SweepPipeline &pipeline : manifest.pipelines) {
        w.beginObject();
        w.field("name", pipeline.name);
        w.field("lint", pipeline.lint);
        w.field("distribute", pipeline.distribute);
        w.field("interchange", pipeline.interchange);
        w.field("scalar_replace", pipeline.scalarReplace);
        w.field("prefetch", pipeline.prefetch);
        w.endObject();
    }
    w.endArray();
    w.key("families").beginArray();
    for (const SweepFamily &family : manifest.families) {
        w.beginObject();
        w.field("family", family.family);
        w.key("grid").beginObject();
        for (const auto &[param, values] : family.grid) {
            w.key(param).beginArray();
            for (std::int64_t value : values)
                w.value(value);
            w.endArray();
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

SweepResult
runSweep(const SweepManifest &manifest, std::size_t threads)
{
    std::vector<SweepJob> jobs = expandJobs(manifest);
    SweepResult result;
    result.oracle = manifest.oracle;
    result.rows.resize(jobs.size());
    parallelFor(jobs.size(), threads, [&](std::size_t i) {
        result.rows[i] = runJob(jobs[i]);
    });
    return result;
}

std::string
sweepResultJson(const SweepResult &result, int indent)
{
    // Census first: the numbers a reader (or a CI diff) wants before
    // the per-scenario detail.
    std::size_t validator_ok = 0;
    std::size_t truth_ok = 0;
    std::size_t rollbacks = 0;
    std::size_t lint_errors = 0;
    std::size_t lint_warnings = 0;
    std::size_t agree = 0;
    std::vector<std::string> family_order;
    std::map<std::string, std::array<std::size_t, 3>> by_family;
    for (const SweepRow &row : result.rows) {
        validator_ok += row.validatorOk;
        truth_ok += row.truthOk;
        rollbacks += row.rollbacks;
        lint_errors += row.lintErrors;
        lint_warnings += row.lintWarnings;
        agree += row.agree;
        if (!by_family.count(row.family))
            family_order.push_back(row.family);
        auto &cell = by_family[row.family];
        cell[0] += 1;
        cell[1] += row.agree;
        cell[2] += row.truthOk;
    }

    JsonWriter w(indent);
    w.beginObject();
    w.field("schema", "ujam-sweep-v1");
    w.field("oracle", result.oracle);
    w.key("census").beginObject();
    w.field("scenarios", static_cast<std::uint64_t>(result.rows.size()));
    w.field("validator_ok", static_cast<std::uint64_t>(validator_ok));
    w.field("truth_ok", static_cast<std::uint64_t>(truth_ok));
    w.field("rollbacks", static_cast<std::uint64_t>(rollbacks));
    w.field("lint_errors", static_cast<std::uint64_t>(lint_errors));
    w.field("lint_warnings",
            static_cast<std::uint64_t>(lint_warnings));
    w.key("model_tuner_agreement").beginObject();
    w.field("agree", static_cast<std::uint64_t>(agree));
    w.field("total", static_cast<std::uint64_t>(result.rows.size()));
    w.endObject();
    w.key("by_family").beginArray();
    for (const std::string &family : family_order) {
        const auto &cell = by_family[family];
        w.beginObject();
        w.field("family", family);
        w.field("scenarios", static_cast<std::uint64_t>(cell[0]));
        w.field("agree", static_cast<std::uint64_t>(cell[1]));
        w.field("truth_ok", static_cast<std::uint64_t>(cell[2]));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("scenarios").beginArray();
    for (const SweepRow &row : result.rows) {
        w.beginObject();
        w.field("scenario", row.scenario);
        w.field("family", row.family);
        w.field("machine", row.machine);
        w.field("pipeline", row.pipeline);
        w.field("seed", static_cast<std::uint64_t>(row.seed));
        w.field("depth", static_cast<std::uint64_t>(row.depth));
        w.field("validator_ok", row.validatorOk);
        w.field("truth_ok", row.truthOk);
        if (!row.truthOk)
            w.field("truth_why", row.truthWhy);
        w.field("lint_errors",
                static_cast<std::uint64_t>(row.lintErrors));
        w.field("lint_warnings",
                static_cast<std::uint64_t>(row.lintWarnings));
        w.field("lint_notes",
                static_cast<std::uint64_t>(row.lintNotes));
        w.field("rollbacks",
                static_cast<std::uint64_t>(row.rollbacks));
        if (!row.rollbackDetail.empty()) {
            w.key("rollback_detail").beginArray();
            for (const std::string &detail : row.rollbackDetail)
                w.value(detail);
            w.endArray();
        }
        w.field("model_pick", row.modelPick);
        w.field("tuner_pick", row.tunerPick);
        w.field("agree", row.agree);
        w.field("baseline_cycles", row.baselineCycles);
        w.field("model_cycles", row.modelCycles);
        w.field("best_cycles", row.bestCycles);
        if (row.featureRow.empty())
            w.key("features").nullValue();
        else
            w.key("features").rawValue(row.featureRow);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
sweepFeatureRows(const SweepResult &result)
{
    std::string out;
    for (const SweepRow &row : result.rows) {
        if (row.featureRow.empty())
            continue;
        out += row.featureRow;
        out += "\n";
    }
    return out;
}

} // namespace ujam
