/**
 * @file
 * The scenario sweep runner behind ujam-sweep and bench_sweep.
 *
 * A sweep manifest names families with parameter grids, machine
 * presets, pipeline configurations and seeds; the runner expands the
 * cross product into scenario jobs, fans them out through the
 * existing parallel pipeline, and records per scenario what every
 * layer said: validator verdict, ground-truth conformance, analyzer
 * finding counts, safety-net rollbacks, the model's unroll pick next
 * to the autotuner's measured-best pick (MeasureMode::Model, so the
 * whole sweep is deterministic), and the ujam-tune-features-v1
 * training row.
 *
 * Determinism contract: runSweep() fills index-addressed row slots
 * (one per expanded job, expansion order fixed by the manifest) with
 * every per-scenario pipeline pinned to one thread, and the rendered
 * "ujam-sweep-v1" document contains no wall-clock measurement, so
 * the same manifest produces bit-identical bytes at any thread
 * count.
 */

#ifndef UJAM_SCENARIOS_SWEEP_HH
#define UJAM_SCENARIOS_SWEEP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenarios/scenario.hh"

namespace ujam
{

/** One named pipeline configuration a sweep runs scenarios under. */
struct SweepPipeline
{
    std::string name = "default";
    std::string lint = "warn"; //!< "off", "warn" or "strict"
    bool distribute = false;
    bool interchange = false;
    bool scalarReplace = true;
    bool prefetch = false;
};

/** One family with an explicit parameter grid (schema order kept). */
struct SweepFamily
{
    std::string family;
    /** Parameter name -> values to sweep; unlisted parameters stay at
     * their schema defaults. Expansion varies the last entry
     * fastest. */
    std::vector<std::pair<std::string, std::vector<std::int64_t>>> grid;
};

/** A parsed sweep manifest ("ujam-sweep-manifest-v1"). */
struct SweepManifest
{
    std::vector<SweepFamily> families;
    std::vector<std::string> machines = {"alpha"};
    std::vector<SweepPipeline> pipelines = {SweepPipeline{}};
    std::vector<std::uint64_t> seeds = {0};
    bool oracle = true; //!< differentially verify every stage

    /** @return families x grid x seeds x machines x pipelines. */
    std::size_t jobCount() const;
};

/**
 * Parse a manifest document.
 *
 * Grammar (strict JSON): an object with optional "schema"
 * ("ujam-sweep-manifest-v1"), required non-empty "families" (array of
 * {"family": name, "grid": {param: [ints...]}}), and optional
 * "machines" (preset names), "pipelines" (array of {"name", "lint",
 * "distribute", "interchange", "scalar_replace", "prefetch"}),
 * "seeds" (array of non-negative ints) and "oracle" (bool). Grid
 * parameters are validated against the family schema up front so a
 * bad manifest fails before any work runs.
 *
 * @param text  The manifest bytes.
 * @param error Receives a one-line message on failure.
 * @return The manifest, or std::nullopt.
 */
std::optional<SweepManifest> parseSweepManifest(const std::string &text,
                                                std::string *error);

/**
 * @return The built-in manifest bench_sweep and `ujam-sweep
 * --default` run: every registered family with a small grid, two
 * seeds, two machines, one pipeline -- a bit over a hundred
 * scenarios sized to finish quickly under the oracle.
 */
SweepManifest defaultSweepManifest();

/** @return The default manifest rendered as manifest JSON. */
std::string renderDefaultSweepManifest();

/** Everything the sweep learned about one scenario job. */
struct SweepRow
{
    std::string scenario; //!< canonical family:params:seed name
    std::string family;
    std::string machine;  //!< preset name
    std::string pipeline; //!< SweepPipeline::name
    std::uint64_t seed = 0;
    std::size_t depth = 0;

    bool validatorOk = false; //!< structural validation of the source
    bool truthOk = false;     //!< verifyScenarioTruth verdict
    std::string truthWhy;     //!< mismatch reason when !truthOk

    std::size_t lintErrors = 0;
    std::size_t lintWarnings = 0;
    std::size_t lintNotes = 0;
    std::size_t rollbacks = 0; //!< safety-net contained faults
    /** One "stage:kind: message" line per contained fault. */
    std::vector<std::string> rollbackDetail;

    std::string modelPick; //!< pipeline decision's unroll vector
    std::string tunerPick; //!< autotuner measured-best vector
    bool agree = false;    //!< modelPick == tunerPick
    double baselineCycles = 0; //!< simulator cycles, zero vector
    double modelCycles = 0;    //!< simulator cycles, model pick
    double bestCycles = 0;     //!< simulator cycles, tuner pick

    std::string featureRow; //!< one ujam-tune-features-v1 NDJSON line
};

/** A finished sweep: one row per expanded job, expansion order. */
struct SweepResult
{
    bool oracle = false;        //!< manifest had the oracle on
    std::vector<SweepRow> rows;
};

/**
 * Run every job of a manifest.
 *
 * @param manifest The expanded work list.
 * @param threads  Sweep-level fan-out: 0 = one per core, 1 = serial.
 *                 Rows are written to index-addressed slots and each
 *                 job runs its pipeline single-threaded, so the
 *                 result is identical for every thread count.
 * @return One row per job, in expansion order.
 */
SweepResult runSweep(const SweepManifest &manifest,
                     std::size_t threads = 0);

/**
 * Render a sweep as one "ujam-sweep-v1" JSON document: a census
 * (job totals, validator/truth pass counts, rollback and lint
 * totals, model-vs-tuner agreement overall and per family) followed
 * by every scenario row. Deterministic: contains no timing fields.
 *
 * @param result A finished sweep.
 * @param indent Spaces per nesting level; 0 = compact one-line.
 */
std::string sweepResultJson(const SweepResult &result, int indent = 0);

/** @return All rows' feature lines as one NDJSON blob ("" if none). */
std::string sweepFeatureRows(const SweepResult &result);

} // namespace ujam

#endif // UJAM_SCENARIOS_SWEEP_HH
