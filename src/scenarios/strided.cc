/**
 * @file
 * Strided and skewed access scenario family.
 *
 * A 2D sweep reading a 1D table at `stride*i + skew*j + d`: the
 * subscript matrix H = [skew stride] degenerates self-temporal reuse
 * to ker H, so the table is invariant across the inner loop exactly
 * when stride == 0 (temporal reuse) and otherwise only line-sharing
 * (spatial class under the subspace model, which is blind to stride
 * magnitude -- the dataflow congruence rule UJ019 covers that side).
 * Multiple offset terms share one uniformly generated set, producing
 * pure input-dependence graphs: the paper's headline storage case.
 */

#include "scenarios/families.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace scenarios_detail
{

namespace
{

class StridedGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "strided"; }

    const char *
    summary() const override
    {
        return "b(i,j) = sum of table reads at stride*i + skew*j + d";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 64, 4, 2048, "inner trip count"},
            {"m", 32, 2, 2048, "outer trip count"},
            {"stride", 2, 0, 8, "inner-loop coefficient of the table"},
            {"skew", 0, 0, 8, "outer-loop coefficient of the table"},
            {"terms", 2, 1, 4, "adjacent table reads per iteration"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t stride = spec.at("stride");
        std::int64_t skew = spec.at("skew");
        std::int64_t terms = spec.at("terms");
        Rng rng(Rng::deriveStream(spec.seed, 31));

        GeneratedScenario scenario;
        std::string out = concat("! scenario: ", spec.toString(), "\n",
                                 "param n = ", spec.at("n"), "\n",
                                 "param m = ", spec.at("m"), "\n");
        // Table extent covers stride*n + skew*m + terms, plus slack
        // for unroll-and-jammed replicas (the optimizer caps unroll
        // at 8 per loop; the reach validator checks every replica
        // against extent + halo).
        std::vector<std::string> extent_terms = {
            scaledTerm(stride, "n"), scaledTerm(skew, "m")};
        std::int64_t slack = 8 * (stride + skew);
        out += concat("real tab(",
                      affineSum(extent_terms, terms + 1 + slack),
                      ")\n");
        out += "real b(n, m)\n";
        out += "! nest: strided\n";
        out += "do j = 1, m\n";
        out += "  do i = 1, n\n";

        std::string expr;
        for (std::int64_t d = 0; d < terms; ++d) {
            if (!expr.empty())
                expr += " + ";
            std::vector<std::string> sub = {scaledTerm(stride, "i"),
                                            scaledTerm(skew, "j")};
            expr += concat(coefLit(rng), " * tab(",
                           affineSum(sub, d + 1), ")");
        }
        out += concat("    b(i, j) = ", expr, "\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        scenario.truth.carriedNonInput = false;
        scenario.truth.legalUnroll = {true, false};
        scenario.truth.selfReuse = {
            {"b", SelfReuse::Spatial},
            {"tab", stride == 0 ? SelfReuse::Temporal
                                : SelfReuse::Spatial}};
        return scenario;
    }
};

} // namespace

void
appendStridedFamilies(std::vector<const IScenarioGenerator *> &out)
{
    static const StridedGenerator strided;
    out.push_back(&strided);
}

} // namespace scenarios_detail

} // namespace ujam
