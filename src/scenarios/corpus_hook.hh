/**
 * @file
 * One name space over both corpora: the Table-2 suite loops and the
 * generated scenario families.
 *
 * The CLIs (--suite NAME) and the service ("scenario"/"suite"
 * requests) accept either kind of name; a ':' marks a scenario
 * ("stencil2d:radius=2:7"), anything else is a suite-loop name
 * ("dmxpy"). Resolution is deterministic, so two runs (or two service
 * workers) given the same name always see byte-identical source.
 */

#ifndef UJAM_SCENARIOS_CORPUS_HOOK_HH
#define UJAM_SCENARIOS_CORPUS_HOOK_HH

#include <string>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Resolve a corpus name to a parsed, validated Program: scenario
 * names (containing ':') through the generators, anything else as a
 * Table-2 suite loop.
 *
 * @throws FatalError for an unknown name or invalid scenario spec.
 */
Program loadCorpusProgram(const std::string &name);

/**
 * @return The --list text: every Table-2 suite loop (name and
 * description), then the scenario-family catalog with parameter
 * schemas.
 */
std::string renderCorpusList();

/**
 * @return The name rewritten for use as a file stem: scenario
 * punctuation (':', ',', '=') becomes '_'; other names pass through.
 */
std::string corpusFileStem(const std::string &name);

} // namespace ujam

#endif // UJAM_SCENARIOS_CORPUS_HOOK_HH
