/**
 * @file
 * Synthetic scenario generators: parameterized loop-nest families.
 *
 * Every subsystem so far was evaluated on the same nineteen Table-2
 * loops, i.e. on the corpus the model was calibrated on. Scenario
 * generators open new workloads: each family (stencils of one to
 * three dimensions, dense linear algebra, banded recurrences, strided
 * and skewed access, regular-pattern-in-irregular nests) turns a
 * fully resolved parameter binding plus a seed into a valid ujam DSL
 * program, deterministically -- generation draws every free choice
 * from an Rng stream derived from (seed) alone, so a scenario name is
 * a stable, shareable identity:
 *
 *     family:key=value,...:seed        e.g.  stencil2d:n=64,radius=2:7
 *
 * Besides the program text, a generator declares *ground truth*: the
 * dependence shape, per-loop unroll legality and per-array self-reuse
 * class its construction guarantees. Conformance tests assert the
 * real analyses (deps/analyzer, reuse/locality) against these
 * declarations over sampled parameter grids, so the generators double
 * as an oracle for the analysis stack on inputs it was never
 * calibrated on.
 */

#ifndef UJAM_SCENARIOS_SCENARIO_HH
#define UJAM_SCENARIOS_SCENARIO_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"
#include "reuse/locality.hh"

namespace ujam
{

/** One generator parameter: name, default and legal range. */
struct ScenarioParam
{
    std::string name;
    std::int64_t def = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::string doc; //!< one-line description for --list
};

/**
 * A fully resolved scenario identity: family, every parameter bound
 * (defaults filled in), and the generation seed.
 */
struct ScenarioSpec
{
    std::string family;
    std::map<std::string, std::int64_t> params; //!< complete after parse
    std::uint64_t seed = 0;

    /** @return The parameter's value; fatal if absent. */
    std::int64_t at(const std::string &name) const;

    /**
     * @return The canonical name "family:k=v,...:seed" with the
     * parameters in the family's schema order. Parsing the canonical
     * name reproduces this spec exactly.
     */
    std::string toString() const;
};

/**
 * What the generator guarantees about the emitted program, by
 * construction. Conformance tests check each field against the real
 * analyses.
 */
struct ScenarioGroundTruth
{
    std::size_t depth = 0; //!< nest depth of the single emitted nest

    /**
     * True iff the body carries at least one non-input dependence
     * (flow/anti/output with a non-'=' direction component).
     */
    bool carriedNonInput = false;

    /**
     * Per loop, outermost first: whether unroll-and-jam of that loop
     * is legal at some positive amount (safeUnrollBounds > 0). The
     * innermost entry is always false (the innermost loop is never
     * unroll-and-jammed).
     */
    std::vector<bool> legalUnroll;

    /**
     * Expected self-reuse class per array under the innermost-only
     * localized space, for arrays whose accesses form a single
     * uniformly generated set. Arrays not listed are unchecked.
     */
    std::vector<std::pair<std::string, SelfReuse>> selfReuse;
};

/** One generated scenario: identity, program text, declared truth. */
struct GeneratedScenario
{
    std::string name;   //!< canonical "family:k=v,...:seed"
    std::string source; //!< valid ujam DSL (one nest)
    ScenarioGroundTruth truth;
};

/**
 * A scenario family. Implementations are stateless and registered
 * once in scenarioRegistry(); generate() must be a pure function of
 * the (complete) spec.
 */
class IScenarioGenerator
{
  public:
    virtual ~IScenarioGenerator() = default;

    /** @return The family name used in scenario specs. */
    virtual const char *family() const = 0;

    /** @return A one-line description for --list output. */
    virtual const char *summary() const = 0;

    /** @return The parameter schema, in canonical-name order. */
    virtual const std::vector<ScenarioParam> &params() const = 0;

    /**
     * Emit the scenario for a complete spec.
     *
     * @pre spec.family == family() and every schema parameter is
     *      bound to an in-range value (parseScenarioSpec guarantees
     *      this).
     */
    virtual GeneratedScenario generate(const ScenarioSpec &spec) const = 0;
};

/** @return All registered families, in stable registration order. */
const std::vector<const IScenarioGenerator *> &scenarioRegistry();

/** @return The family by name, or nullptr when unknown. */
const IScenarioGenerator *findScenarioFamily(const std::string &name);

/**
 * Parse "family[:k=v,...][:seed]" into a complete spec.
 *
 * Parameters may appear in any order and any subset; missing ones
 * take their schema defaults, unknown names and out-of-range values
 * are errors. A missing seed segment means seed 0.
 *
 * @param name  The scenario name.
 * @param error Receives a one-line message on failure.
 * @return The complete spec, or std::nullopt.
 */
std::optional<ScenarioSpec> parseScenarioSpec(const std::string &name,
                                              std::string *error);

/**
 * @return True when the name is syntactically a scenario name rather
 * than a Table-2 suite-loop name (it contains a ':').
 */
bool looksLikeScenarioName(const std::string &name);

/** Generate from a complete spec (pure; fatal on unknown family). */
GeneratedScenario generateScenario(const ScenarioSpec &spec);

/**
 * Resolve a scenario name to a parsed, validated Program.
 *
 * The program's sourceName() is "scenario:" + the canonical name.
 *
 * @throws FatalError on an invalid name or (a generator bug) an
 *         invalid emitted program.
 */
Program loadScenarioProgram(const std::string &name);

/**
 * @return A human-readable catalog of every registered family --
 * name, summary and parameter schema -- for the CLIs' --list output.
 */
std::string renderScenarioCatalog();

/**
 * Check a parsed scenario program against its declared ground truth
 * with the real analyses: dependence shape and per-loop unroll
 * legality against deps/analyzer, self-reuse classes against the UGS
 * partition under the innermost-only localized space.
 *
 * @param program The parsed scenario (one nest).
 * @param truth   The generator's declaration.
 * @param why     Receives a one-line mismatch explanation.
 * @return True when every declared fact matches the analyses.
 */
bool verifyScenarioTruth(const Program &program,
                         const ScenarioGroundTruth &truth,
                         std::string *why);

} // namespace ujam

#endif // UJAM_SCENARIOS_SCENARIO_HH
