/**
 * @file
 * Regular-pattern-in-irregular scenario family, after the
 * Intelligent-Unrolling observation (PAPERS.md): loops whose overall
 * access structure looks irregular often embed a strictly regular
 * sub-pattern that unrolling exposes.
 *
 * The nest accumulates over a gathered table: tbl is read at
 * coeff*i + rowc*j, a large-coefficient subscript that models
 * indirection-like traffic with no inner-loop line reuse, while the
 * `pattern` parameter adds reads spaced exactly `coeff` apart --
 * tbl(coeff*(i+p) + rowc*j) -- so consecutive unrolled i iterations
 * re-touch each other's table elements (group reuse the unroll
 * tables can exploit) even though each single iteration's accesses
 * look scattered. The regular accumulator and multiplier arrays keep
 * ordinary spatial locality, so the model still has a profitable
 * unroll to find.
 */

#include "scenarios/families.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace scenarios_detail
{

namespace
{

class IrregularGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "irregular"; }

    const char *
    summary() const override
    {
        return "regular pattern embedded in gather-style table reads";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 48, 4, 2048, "inner trip count"},
            {"m", 24, 2, 2048, "outer trip count"},
            {"coeff", 5, 1, 16, "gather coefficient of i"},
            {"rowc", 3, 0, 16, "gather coefficient of j"},
            {"pattern", 2, 1, 4,
             "regular reads spaced coeff apart (the unrollable "
             "pattern)"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t coeff = spec.at("coeff");
        std::int64_t rowc = spec.at("rowc");
        std::int64_t pattern = spec.at("pattern");
        Rng rng(Rng::deriveStream(spec.seed, 41));

        GeneratedScenario scenario;
        std::string out = concat("! scenario: ", spec.toString(), "\n",
                                 "param n = ", spec.at("n"), "\n",
                                 "param m = ", spec.at("m"), "\n");
        std::vector<std::string> extent_terms = {
            scaledTerm(coeff, "n"), scaledTerm(rowc, "m")};
        // Allocate the table with slack beyond the touched range (as
        // gather tables are in practice): unroll-and-jam replicates
        // the body at iteration offsets up to the optimizer's cap of
        // 8 per loop, and the reach validator bounds every replica's
        // subscript span against extent + halo.
        std::int64_t slack = 8 * (coeff + rowc);
        out += concat("real tbl(",
                      affineSum(extent_terms,
                                coeff * (pattern - 1) + 2 + slack),
                      ")\n");
        out += "real acc(n, m)\n";
        out += "real v(n, m)\n";
        out += "! nest: irregular\n";
        out += "do j = 1, m\n";
        out += "  do i = 1, n\n";

        std::string expr = "acc(i, j)";
        for (std::int64_t p = 0; p < pattern; ++p) {
            std::vector<std::string> sub = {scaledTerm(coeff, "i"),
                                            scaledTerm(rowc, "j")};
            expr += concat(" + ", coefLit(rng), " * tbl(",
                           affineSum(sub, coeff * p + 1),
                           ") * v(i, j)");
        }
        out += concat("    acc(i, j) = ", expr, "\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        // acc's read and write hit the same element in the same
        // iteration: loop-independent, nothing carried.
        scenario.truth.carriedNonInput = false;
        scenario.truth.legalUnroll = {true, false};
        scenario.truth.selfReuse = {
            {"acc", SelfReuse::Spatial},
            {"v", SelfReuse::Spatial},
            {"tbl", SelfReuse::Spatial}};
        return scenario;
    }
};

} // namespace

void
appendIrregularFamilies(std::vector<const IScenarioGenerator *> &out)
{
    static const IrregularGenerator irregular;
    out.push_back(&irregular);
}

} // namespace scenarios_detail

} // namespace ujam
