/**
 * @file
 * Stencil scenario families: batched 1D rows, 2D star/box, 3D star.
 *
 * Stencils are the regular-pattern workhorse beyond the Table-2
 * corpus: their ground truth is fully decided by shape. Out-of-place
 * stencils carry no non-input dependence and every outer loop is
 * legal to unroll-and-jam; in-place (Gauss-Seidel style) stencils
 * carry flow/anti dependences whose legality flips with the shape --
 * star offsets stay forward in the inner loop at every carried
 * level, while a box's diagonal terms (i+di, j-dj) produce a
 * backward inner direction under an outer carrier, forbidding any
 * unroll of the outer loop. The conformance tests assert exactly
 * these flips against the real dependence analysis.
 */

#include "scenarios/families.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace scenarios_detail
{

namespace
{

/** Shared head: scenario comment, params, declarations. */
std::string
programHead(const GeneratedScenario &, const ScenarioSpec &spec,
            const std::vector<std::string> &decls)
{
    std::string out = concat("! scenario: ", spec.toString(), "\n");
    for (const std::string &decl : decls)
        out += decl + "\n";
    return out;
}

class Stencil1dGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "stencil1d"; }

    const char *
    summary() const override
    {
        return "batched 1D stencils: rows of radius-r averaging";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 96, 8, 4096, "row length"},
            {"m", 32, 2, 4096, "number of rows"},
            {"radius", 1, 1, 3, "stencil radius"},
            {"inplace", 0, 0, 1, "1: update the input array"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t r = spec.at("radius");
        bool inplace = spec.at("inplace") != 0;
        Rng rng(Rng::deriveStream(spec.seed, 11));

        std::vector<std::string> decls = {
            concat("param n = ", spec.at("n")),
            concat("param m = ", spec.at("m")),
            "real a(n, m)",
        };
        if (!inplace)
            decls.push_back("real b(n, m)");

        GeneratedScenario scenario;
        std::string out = programHead(scenario, spec, decls);
        out += "! nest: stencil1d\n";
        out += concat("do j = 1, m\n");
        out += concat("  do i = ", 1 + r, ", n - ", r, "\n");

        std::string expr;
        for (std::int64_t d = -r; d <= r; ++d) {
            if (!expr.empty())
                expr += " + ";
            expr += concat(coefLit(rng), " * a(", offsetTerm("i", d),
                           ", j)");
        }
        out += concat("    ", inplace ? "a" : "b", "(i, j) = ", expr,
                      "\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        scenario.truth.carriedNonInput = inplace;
        // Carried dependences (in-place) live entirely in the inner
        // i loop with '=' at j, so unroll-and-jam of j stays legal.
        scenario.truth.legalUnroll = {true, false};
        scenario.truth.selfReuse = {{"a", SelfReuse::Spatial}};
        if (!inplace)
            scenario.truth.selfReuse.push_back(
                {"b", SelfReuse::Spatial});
        return scenario;
    }
};

class Stencil2dGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "stencil2d"; }

    const char *
    summary() const override
    {
        return "2D star/box stencils; in-place box forbids outer "
               "unroll";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 48, 8, 2048, "grid extent per dimension"},
            {"radius", 1, 1, 2, "stencil radius"},
            {"shape", 0, 0, 1, "0: star (axis offsets), 1: box"},
            {"inplace", 0, 0, 1, "1: update the input array"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t r = spec.at("radius");
        bool box = spec.at("shape") != 0;
        bool inplace = spec.at("inplace") != 0;
        Rng rng(Rng::deriveStream(spec.seed, 12));

        std::vector<std::string> decls = {
            concat("param n = ", spec.at("n")),
            "real a(n, n)",
        };
        if (!inplace)
            decls.push_back("real b(n, n)");

        GeneratedScenario scenario;
        std::string out = programHead(scenario, spec, decls);
        out += "! nest: stencil2d\n";
        out += concat("do j = ", 1 + r, ", n - ", r, "\n");
        out += concat("  do i = ", 1 + r, ", n - ", r, "\n");

        std::string expr = concat(coefLit(rng), " * a(i, j)");
        if (box) {
            for (std::int64_t dj = -r; dj <= r; ++dj)
                for (std::int64_t di = -r; di <= r; ++di) {
                    if (di == 0 && dj == 0)
                        continue;
                    expr += concat(" + ", coefLit(rng), " * a(",
                                   offsetTerm("i", di), ", ",
                                   offsetTerm("j", dj), ")");
                }
        } else {
            for (std::int64_t d = 1; d <= r; ++d) {
                expr += concat(" + ", coefLit(rng), " * a(",
                               offsetTerm("i", -d), ", j)");
                expr += concat(" + ", coefLit(rng), " * a(",
                               offsetTerm("i", d), ", j)");
                expr += concat(" + ", coefLit(rng), " * a(i, ",
                               offsetTerm("j", -d), ")");
                expr += concat(" + ", coefLit(rng), " * a(i, ",
                               offsetTerm("j", d), ")");
            }
        }
        out += concat("    ", inplace ? "a" : "b", "(i, j) = ", expr,
                      "\n");
        out += "  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 2;
        scenario.truth.carriedNonInput = inplace;
        // In-place box: the a(i+di, j-dj) diagonal creates a flow
        // dependence carried by j pointing backward in i -- no legal
        // unroll of j at any amount. Star offsets stay forward.
        bool outer_legal = !(inplace && box);
        scenario.truth.legalUnroll = {outer_legal, false};
        scenario.truth.selfReuse = {{"a", SelfReuse::Spatial}};
        if (!inplace)
            scenario.truth.selfReuse.push_back(
                {"b", SelfReuse::Spatial});
        return scenario;
    }
};

class Stencil3dGenerator final : public IScenarioGenerator
{
  public:
    const char *family() const override { return "stencil3d"; }

    const char *
    summary() const override
    {
        return "3D star stencils over a cubic grid";
    }

    const std::vector<ScenarioParam> &
    params() const override
    {
        static const std::vector<ScenarioParam> schema = {
            {"n", 20, 6, 256, "grid extent per dimension"},
            {"radius", 1, 1, 2, "stencil radius"},
            {"inplace", 0, 0, 1, "1: update the input array"},
        };
        return schema;
    }

    GeneratedScenario
    generate(const ScenarioSpec &spec) const override
    {
        std::int64_t r = spec.at("radius");
        bool inplace = spec.at("inplace") != 0;
        Rng rng(Rng::deriveStream(spec.seed, 13));

        std::vector<std::string> decls = {
            concat("param n = ", spec.at("n")),
            "real a(n, n, n)",
        };
        if (!inplace)
            decls.push_back("real b(n, n, n)");

        GeneratedScenario scenario;
        std::string out = programHead(scenario, spec, decls);
        out += "! nest: stencil3d\n";
        out += concat("do k = ", 1 + r, ", n - ", r, "\n");
        out += concat("  do j = ", 1 + r, ", n - ", r, "\n");
        out += concat("    do i = ", 1 + r, ", n - ", r, "\n");

        std::string expr = concat(coefLit(rng), " * a(i, j, k)");
        for (std::int64_t d = 1; d <= r; ++d) {
            expr += concat(" + ", coefLit(rng), " * a(",
                           offsetTerm("i", -d), ", j, k)");
            expr += concat(" + ", coefLit(rng), " * a(",
                           offsetTerm("i", d), ", j, k)");
            expr += concat(" + ", coefLit(rng), " * a(i, ",
                           offsetTerm("j", -d), ", k)");
            expr += concat(" + ", coefLit(rng), " * a(i, ",
                           offsetTerm("j", d), ", k)");
            expr += concat(" + ", coefLit(rng), " * a(i, j, ",
                           offsetTerm("k", -d), ")");
            expr += concat(" + ", coefLit(rng), " * a(i, j, ",
                           offsetTerm("k", d), ")");
        }
        out += concat("      ", inplace ? "a" : "b",
                      "(i, j, k) = ", expr, "\n");
        out += "    end do\n  end do\nend do\n";

        scenario.source = std::move(out);
        scenario.truth.depth = 3;
        scenario.truth.carriedNonInput = inplace;
        // Star offsets move along one axis at a time, so every
        // carried dependence is forward (or '=') in the inner loops:
        // both outer levels stay legal, in place or not.
        scenario.truth.legalUnroll = {true, true, false};
        scenario.truth.selfReuse = {{"a", SelfReuse::Spatial}};
        if (!inplace)
            scenario.truth.selfReuse.push_back(
                {"b", SelfReuse::Spatial});
        return scenario;
    }
};

} // namespace

void
appendStencilFamilies(std::vector<const IScenarioGenerator *> &out)
{
    static const Stencil1dGenerator stencil1d;
    static const Stencil2dGenerator stencil2d;
    static const Stencil3dGenerator stencil3d;
    out.push_back(&stencil1d);
    out.push_back(&stencil2d);
    out.push_back(&stencil3d);
}

} // namespace scenarios_detail

} // namespace ujam
