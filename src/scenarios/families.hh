/**
 * @file
 * Internal scenario-family registration and shared emission helpers.
 *
 * Each family translation unit owns static generator instances and
 * appends them to the registry through its append*Families() hook;
 * scenario.cc calls the hooks once, in a fixed order, so the registry
 * (and therefore --list output and sweep expansion order) is stable
 * across builds and platforms.
 */

#ifndef UJAM_SCENARIOS_FAMILIES_HH
#define UJAM_SCENARIOS_FAMILIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenarios/scenario.hh"
#include "support/rng.hh"

namespace ujam
{

namespace scenarios_detail
{

void appendStencilFamilies(std::vector<const IScenarioGenerator *> &out);
void appendLinalgFamilies(std::vector<const IScenarioGenerator *> &out);
void appendStridedFamilies(std::vector<const IScenarioGenerator *> &out);
void appendIrregularFamilies(std::vector<const IScenarioGenerator *> &out);

/**
 * @return A deterministic nonzero coefficient literal in (0.10,
 * 3.00), rendered with exactly two decimals ("1.37"). Drawn from the
 * generator's Rng stream, so distinct seeds produce different
 * constants while (spec, seed) reproduces bytes exactly.
 */
std::string coefLit(Rng &rng);

/** @return "iv", "iv+k" or "iv-k" for a constant subscript offset. */
std::string offsetTerm(const std::string &iv, std::int64_t offset);

/**
 * @return "c*iv" (c != 1), "iv" (c == 1) or "" (c == 0); the building
 * block for skewed subscripts like "2*i + 3*j - 1".
 */
std::string scaledTerm(std::int64_t scale, const std::string &iv);

/** Join non-empty affine terms plus a constant into one subscript. */
std::string affineSum(const std::vector<std::string> &terms,
                      std::int64_t constant);

} // namespace scenarios_detail

} // namespace ujam

#endif // UJAM_SCENARIOS_FAMILIES_HH
