#include "scenarios/scenario.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "deps/analyzer.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "reuse/ugs.hh"
#include "scenarios/families.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace scenarios_detail
{

std::string
coefLit(Rng &rng)
{
    // Hundredths in [10, 299]: never zero, rarely 1.00, and the
    // two-decimal rendering is exact (no platform float formatting).
    std::int64_t hundredths = rng.range(10, 299);
    return concat(hundredths / 100, ".", (hundredths % 100) / 10,
                  hundredths % 10);
}

std::string
offsetTerm(const std::string &iv, std::int64_t offset)
{
    if (offset == 0)
        return iv;
    if (offset > 0)
        return concat(iv, "+", offset);
    return concat(iv, "-", -offset);
}

std::string
scaledTerm(std::int64_t scale, const std::string &iv)
{
    if (scale == 0)
        return "";
    if (scale == 1)
        return iv;
    return concat(scale, "*", iv);
}

std::string
affineSum(const std::vector<std::string> &terms, std::int64_t constant)
{
    std::string out;
    for (const std::string &term : terms) {
        if (term.empty())
            continue;
        if (!out.empty())
            out += " + ";
        out += term;
    }
    if (out.empty())
        return concat(constant);
    if (constant > 0)
        out += concat(" + ", constant);
    else if (constant < 0)
        out += concat(" - ", -constant);
    return out;
}

} // namespace scenarios_detail

std::int64_t
ScenarioSpec::at(const std::string &name) const
{
    auto it = params.find(name);
    if (it == params.end())
        panic("scenario '", family, "': unbound parameter '", name,
              "'");
    return it->second;
}

std::string
ScenarioSpec::toString() const
{
    const IScenarioGenerator *generator = findScenarioFamily(family);
    std::string out = family + ":";
    bool first = true;
    if (generator) {
        // Schema order: stable and readable.
        for (const ScenarioParam &param : generator->params()) {
            auto it = params.find(param.name);
            if (it == params.end())
                continue;
            if (!first)
                out += ",";
            first = false;
            out += concat(param.name, "=", it->second);
        }
    } else {
        for (const auto &[name, value] : params) {
            if (!first)
                out += ",";
            first = false;
            out += concat(name, "=", value);
        }
    }
    out += concat(":", seed);
    return out;
}

const std::vector<const IScenarioGenerator *> &
scenarioRegistry()
{
    static const std::vector<const IScenarioGenerator *> registry = [] {
        std::vector<const IScenarioGenerator *> families;
        scenarios_detail::appendStencilFamilies(families);
        scenarios_detail::appendLinalgFamilies(families);
        scenarios_detail::appendStridedFamilies(families);
        scenarios_detail::appendIrregularFamilies(families);
        return families;
    }();
    return registry;
}

const IScenarioGenerator *
findScenarioFamily(const std::string &name)
{
    for (const IScenarioGenerator *generator : scenarioRegistry())
        if (name == generator->family())
            return generator;
    return nullptr;
}

bool
looksLikeScenarioName(const std::string &name)
{
    return name.find(':') != std::string::npos;
}

namespace
{

bool
parseInt64(const std::string &text, std::int64_t &value)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    value = parsed;
    return true;
}

bool
parseUint64(const std::string &text, std::uint64_t &value)
{
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    value = parsed;
    return true;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

bool
parseSpecInto(const std::string &name, ScenarioSpec &spec,
              std::string *error)
{
    std::vector<std::string> segments = split(name, ':');
    if (segments.empty() || segments.size() > 3)
        return fail(error, "scenario name must be "
                           "family[:key=value,...][:seed]");

    const IScenarioGenerator *generator =
        findScenarioFamily(segments[0]);
    if (!generator)
        return fail(error, "unknown scenario family '" + segments[0] +
                               "' (see --list)");
    spec.family = segments[0];

    spec.params.clear();
    for (const ScenarioParam &param : generator->params())
        spec.params[param.name] = param.def;

    if (segments.size() >= 2 && !segments[1].empty()) {
        for (const std::string &binding : split(segments[1], ',')) {
            std::size_t eq = binding.find('=');
            if (eq == std::string::npos || eq == 0)
                return fail(error, "bad parameter binding '" +
                                       binding + "' (want key=value)");
            std::string key = binding.substr(0, eq);
            std::int64_t value = 0;
            if (!parseInt64(binding.substr(eq + 1), value))
                return fail(error, "bad integer in binding '" +
                                       binding + "'");
            const ScenarioParam *schema = nullptr;
            for (const ScenarioParam &param : generator->params())
                if (param.name == key)
                    schema = &param;
            if (!schema)
                return fail(error, "family '" + spec.family +
                                       "' has no parameter '" + key +
                                       "'");
            if (value < schema->min || value > schema->max)
                return fail(
                    error,
                    concat("parameter '", key, "' = ", value,
                           " out of range [", schema->min, ", ",
                           schema->max, "]"));
            spec.params[key] = value;
        }
    }

    spec.seed = 0;
    if (segments.size() == 3 && !segments[2].empty()) {
        if (!parseUint64(segments[2], spec.seed))
            return fail(error, "bad scenario seed '" + segments[2] +
                                   "'");
    }
    return true;
}

} // namespace

std::optional<ScenarioSpec>
parseScenarioSpec(const std::string &name, std::string *error)
{
    ScenarioSpec spec;
    if (!parseSpecInto(name, spec, error))
        return std::nullopt;
    return spec;
}

GeneratedScenario
generateScenario(const ScenarioSpec &spec)
{
    const IScenarioGenerator *generator =
        findScenarioFamily(spec.family);
    if (!generator)
        fatal("unknown scenario family '", spec.family, "'");
    GeneratedScenario scenario = generator->generate(spec);
    scenario.name = spec.toString();
    return scenario;
}

Program
loadScenarioProgram(const std::string &name)
{
    std::string error;
    std::optional<ScenarioSpec> spec = parseScenarioSpec(name, &error);
    if (!spec)
        fatal("invalid scenario '", name, "': ", error);
    GeneratedScenario scenario = generateScenario(*spec);
    Program program =
        parseProgram(scenario.source, "scenario:" + scenario.name);
    std::vector<std::string> problems = validateProgram(program);
    if (!problems.empty())
        panic("scenario '", scenario.name,
              "' emitted an invalid program: ", problems.front());
    return program;
}

namespace
{

const char *
selfReuseName(SelfReuse kind)
{
    switch (kind) {
    case SelfReuse::None:
        return "none";
    case SelfReuse::Spatial:
        return "spatial";
    case SelfReuse::Temporal:
        return "temporal";
    }
    return "?";
}

} // namespace

bool
verifyScenarioTruth(const Program &program,
                    const ScenarioGroundTruth &truth, std::string *why)
{
    auto mismatch = [why](std::string message) {
        if (why)
            *why = std::move(message);
        return false;
    };

    if (program.nests().size() != 1)
        return mismatch(concat("expected 1 nest, got ",
                               program.nests().size()));
    const LoopNest &nest = program.nests().front();
    if (nest.depth() != truth.depth)
        return mismatch(concat("nest depth ", nest.depth(),
                               " != declared ", truth.depth));
    if (truth.legalUnroll.size() != truth.depth)
        return mismatch("declared legalUnroll has wrong arity");

    DependenceGraph graph = analyzeDependences(nest);
    bool carried = false;
    for (const Dependence &edge : graph.edges())
        if (edge.kind != DepKind::Input && edge.loopCarried())
            carried = true;
    if (carried != truth.carriedNonInput)
        return mismatch(concat(
            "carried non-input dependence: analysis says ", carried,
            ", generator declared ", truth.carriedNonInput));

    IntVector bounds = safeUnrollBounds(nest, graph, 8);
    for (std::size_t level = 0; level < nest.depth(); ++level) {
        bool legal = bounds[level] > 0;
        if (legal != static_cast<bool>(truth.legalUnroll[level]))
            return mismatch(concat("loop ", level, " unroll bound ",
                                   bounds[level],
                                   " contradicts declared legality ",
                                   truth.legalUnroll[level] ? 1 : 0));
    }

    std::vector<UniformlyGeneratedSet> sets =
        partitionUGS(nest.accesses());
    Subspace innermost =
        Subspace::coordinate(nest.depth(), {nest.depth() - 1});
    for (const auto &[array, expected] : truth.selfReuse) {
        bool found = false;
        for (const UniformlyGeneratedSet &ugs : sets) {
            if (ugs.array != array)
                continue;
            found = true;
            SelfReuse got = classifySelfReuse(ugs, innermost);
            if (got != expected)
                return mismatch(concat(
                    "array '", array, "' self-reuse is ",
                    selfReuseName(got), ", generator declared ",
                    selfReuseName(expected)));
        }
        if (!found)
            return mismatch(concat("declared array '", array,
                                   "' never accessed"));
    }
    return true;
}

std::string
renderScenarioCatalog()
{
    std::ostringstream out;
    out << "scenario families (name them family:key=value,...:seed):\n";
    for (const IScenarioGenerator *generator : scenarioRegistry()) {
        out << "  " << generator->family() << " -- "
            << generator->summary() << "\n";
        for (const ScenarioParam &param : generator->params()) {
            out << "      " << param.name << " = " << param.def
                << "  [" << param.min << ", " << param.max << "]  "
                << param.doc << "\n";
        }
    }
    return out.str();
}

} // namespace ujam
