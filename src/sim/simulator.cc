#include "sim/simulator.hh"

#include <algorithm>
#include <optional>

namespace ujam
{

SimResult
simulateProgram(const Program &program, const MachineModel &machine,
                const ParamBindings &overrides, std::uint64_t seed)
{
    SimResult result;
    Interpreter interp(program, overrides);
    interp.seedArrays(seed);

    CacheSim cache(machine.cacheBytes, machine.lineBytes,
                   machine.associativity, machine.elementBytes);
    std::optional<CacheSim> l2;
    if (machine.hasL2()) {
        l2.emplace(machine.l2Bytes, machine.l2LineBytes,
                   machine.l2Associativity, machine.elementBytes);
    }
    std::uint64_t prefetch_misses = 0; //!< L1 misses from prefetches
    std::uint64_t l2_misses = 0;       //!< demand misses past the L2
    interp.setAccessCallback([&](std::int64_t addr, MemAccessKind kind) {
        bool hit = cache.access(addr, kind == MemAccessKind::Write);
        if (hit)
            return;
        bool l2_hit = !l2 || l2->access(addr, kind == MemAccessKind::Write);
        if (kind == MemAccessKind::Prefetch)
            ++prefetch_misses;
        else if (!l2_hit)
            ++l2_misses;
    });

    for (const LoopNest &nest : program.nests()) {
        std::uint64_t iters_before = interp.iterationCount();
        std::uint64_t header_before = interp.headerStmtCount();
        std::uint64_t misses_before = cache.misses();
        std::uint64_t pf_misses_before = prefetch_misses;
        std::uint64_t l2_misses_before = l2_misses;

        interp.runNest(nest);

        std::uint64_t iters =
            interp.iterationCount() - iters_before;
        std::uint64_t headers =
            interp.headerStmtCount() - header_before;
        // Prefetch misses consume bandwidth (already charged as body
        // memory operations) but never stall the pipeline.
        std::uint64_t misses = (cache.misses() - misses_before) -
                               (prefetch_misses - pf_misses_before);
        std::uint64_t deep = l2_misses - l2_misses_before;

        double ii = steadyStateCyclesPerIteration(nest, machine);
        double issue_cycles = ii * static_cast<double>(iters) +
                              static_cast<double>(headers);

        // Software prefetching hides up to b prefetches per issued
        // cycle; the rest stall: L2 hits for the short penalty, L2
        // misses (all of them, when no L2 exists) for the full one.
        double hidden = issue_cycles * machine.prefetchPerCycle;
        double stalled =
            std::max(0.0, static_cast<double>(misses) - hidden);
        double nest_cycles = issue_cycles;
        if (machine.hasL2()) {
            double deep_fraction =
                misses > 0 ? static_cast<double>(deep) /
                                 static_cast<double>(misses)
                           : 0.0;
            nest_cycles +=
                stalled * (1.0 - deep_fraction) * machine.l2HitCycles +
                stalled * deep_fraction * machine.missPenaltyCycles;
        } else {
            nest_cycles += stalled * machine.missPenaltyCycles;
        }

        result.nestCycles.push_back(nest_cycles);
        result.cycles += nest_cycles;
    }

    result.iterations = interp.iterationCount();
    result.loads = interp.loadCount();
    result.stores = interp.storeCount();
    result.prefetches = interp.prefetchCount();
    result.cacheMisses = cache.misses();
    result.demandMisses = cache.misses() - prefetch_misses;
    result.missRatio = cache.missRatio();
    return result;
}

} // namespace ujam
