#include "sim/cache.hh"

#include "support/diagnostics.hh"

namespace ujam
{

CacheSim::CacheSim(std::int64_t cache_bytes, std::int64_t line_bytes,
                   std::int64_t associativity, std::int64_t element_bytes)
    : line_bytes_(line_bytes), element_bytes_(element_bytes),
      ways_(associativity)
{
    UJAM_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                "line size must be a power of two");
    UJAM_ASSERT(associativity >= 1, "associativity must be positive");
    UJAM_ASSERT(cache_bytes % (line_bytes * associativity) == 0,
                "capacity must be a whole number of sets");
    sets_ = cache_bytes / (line_bytes * associativity);
    UJAM_ASSERT(sets_ >= 1, "cache with no sets");
    lines_.resize(static_cast<std::size_t>(sets_ * ways_));
}

bool
CacheSim::access(std::int64_t element_addr, bool write)
{
    (void)write; // write-allocate: identical placement behaviour
    ++accesses_;
    ++clock_;

    std::int64_t byte_addr = element_addr * element_bytes_;
    std::int64_t line = byte_addr / line_bytes_;
    std::int64_t set = line % sets_;
    std::int64_t tag = line / sets_;

    Way *begin = &lines_[static_cast<std::size_t>(set * ways_)];
    Way *victim = begin;
    for (std::int64_t w = 0; w < ways_; ++w) {
        Way &way = begin[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = clock_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

void
CacheSim::flush()
{
    for (Way &way : lines_)
        way.valid = false;
}

void
CacheSim::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

double
CacheSim::missRatio() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(accesses_);
}

} // namespace ujam
