/**
 * @file
 * Steady-state pipeline model for one loop body.
 *
 * Models an in-order ILP machine running a software-pipelined
 * innermost loop: the sustained initiation interval is bounded by
 * each resource class (memory ports, FP units, total issue slots) and
 * by loop-carried recurrences (an accumulation chains one FP latency
 * per iteration). This is the "c" of the paper's balance formula made
 * concrete enough to produce execution times.
 */

#ifndef UJAM_SIM_PIPELINE_HH
#define UJAM_SIM_PIPELINE_HH

#include "ir/loop_nest.hh"
#include "model/machine.hh"

namespace ujam
{

/** Static operation counts of one body execution. */
struct BodyOps
{
    std::size_t loads = 0;
    std::size_t stores = 0;
    std::size_t flops = 0;
    std::size_t moves = 0;      //!< scalar-to-scalar register copies
    std::size_t prefetches = 0; //!< software prefetch instructions

    std::size_t
    memOps() const
    {
        return loads + stores + prefetches;
    }

    std::size_t
    totalOps() const
    {
        return loads + stores + prefetches + flops + moves;
    }
};

/** @return Operation counts of the nest's body statements. */
BodyOps countBodyOps(const LoopNest &nest);

/**
 * @return True iff the body carries a value recurrence from one
 * innermost iteration to the next through an arithmetic operation
 * (e.g. an accumulation t = t + x or a(j) = a(j) + x); such chains
 * bound the initiation interval by the FP latency.
 */
bool bodyHasArithmeticRecurrence(const LoopNest &nest);

/**
 * Steady-state cycles per innermost iteration (cache hits assumed).
 *
 * @param nest    The nest whose body is measured.
 * @param machine The target machine.
 * @return max(resource II over all classes, recurrence II), at least 1.
 */
double steadyStateCyclesPerIteration(const LoopNest &nest,
                                     const MachineModel &machine);

} // namespace ujam

#endif // UJAM_SIM_PIPELINE_HH
