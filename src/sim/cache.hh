/**
 * @file
 * Set-associative LRU cache simulator.
 *
 * Addresses are element indices in the interpreter's global element
 * space; the cache works in bytes internally (elementBytes per
 * element). Used by the execution-time experiments (Figs. 8/9) to
 * charge realistic miss counts to each loop variant.
 */

#ifndef UJAM_SIM_CACHE_HH
#define UJAM_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace ujam
{

/**
 * A single-level data cache with LRU replacement.
 */
class CacheSim
{
  public:
    /**
     * Construct a cache.
     *
     * @param cache_bytes   Total capacity; must be a multiple of
     *                      line_bytes * associativity.
     * @param line_bytes    Line size (power of two).
     * @param associativity Ways per set (>= 1).
     * @param element_bytes Bytes per array element (default 8).
     */
    CacheSim(std::int64_t cache_bytes, std::int64_t line_bytes,
             std::int64_t associativity, std::int64_t element_bytes = 8);

    /**
     * Access one element.
     *
     * @param element_addr Element index in the global element space.
     * @param write        True for stores (write-allocate, write-back).
     * @return True on a hit.
     */
    bool access(std::int64_t element_addr, bool write);

    /** Invalidate everything and keep statistics. */
    void flush();

    /** Reset statistics (contents keep). */
    void resetStats();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** @return Miss ratio in [0, 1]; 0 when no accesses happened. */
    double missRatio() const;

    std::int64_t lineBytes() const { return line_bytes_; }
    std::int64_t sets() const { return sets_; }

  private:
    struct Way
    {
        bool valid = false;
        std::int64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::int64_t line_bytes_;
    std::int64_t element_bytes_;
    std::int64_t sets_;
    std::int64_t ways_;
    std::vector<Way> lines_; //!< sets_ x ways_, row-major

    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace ujam

#endif // UJAM_SIM_CACHE_HH
