#include "sim/modulo_schedule.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "reuse/ugs.hh"
#include "support/diagnostics.hh"

namespace ujam
{

std::size_t
OpGraph::memOps() const
{
    std::size_t count = 0;
    for (const OpNode &node : nodes) {
        count += (node.kind == OpNode::Kind::Load ||
                  node.kind == OpNode::Kind::Store ||
                  node.kind == OpNode::Kind::Prefetch);
    }
    return count;
}

std::size_t
OpGraph::fpOps() const
{
    std::size_t count = 0;
    for (const OpNode &node : nodes)
        count += (node.kind == OpNode::Kind::Fp);
    return count;
}

namespace
{

/** Builder state while walking the body. */
struct GraphBuilder
{
    const MachineModel &machine;
    OpGraph graph;
    //! Scalar name -> defining node, for intra-iteration flow.
    std::map<std::string, std::size_t> defined;
    //! Scalar reads that precede the definition (cross-iteration).
    std::vector<std::pair<std::string, std::size_t>> pending_uses;
    //! Memory accesses by node, for memory-carried recurrences.
    std::vector<std::pair<ArrayRef, std::size_t>> loads;
    std::vector<std::pair<ArrayRef, std::size_t>> stores;

    std::size_t
    addNode(OpNode::Kind kind, int latency)
    {
        graph.nodes.push_back({kind, latency});
        return graph.nodes.size() - 1;
    }

    void
    addEdge(std::size_t src, std::size_t dst, int latency, int distance)
    {
        graph.edges.push_back({src, dst, latency, distance});
    }

    /**
     * Lower an expression; @return the producing node, or npos for
     * constants and not-yet-defined scalars.
     */
    std::size_t
    lowerExpr(const Expr &expr, std::size_t consumer)
    {
        switch (expr.kind()) {
          case Expr::Kind::Constant:
            return SIZE_MAX;
          case Expr::Kind::Scalar: {
            auto it = defined.find(expr.scalarName());
            if (it != defined.end())
                return it->second;
            // Defined later in the body (rotation) or live-in: record
            // for a cross-iteration edge once the definition appears.
            pending_uses.emplace_back(expr.scalarName(), consumer);
            return SIZE_MAX;
          }
          case Expr::Kind::ArrayRead: {
            std::size_t node =
                addNode(OpNode::Kind::Load, machine.loadLatency);
            loads.emplace_back(expr.ref(), node);
            return node;
          }
          case Expr::Kind::Binary: {
            std::size_t node =
                addNode(OpNode::Kind::Fp, machine.fpLatency);
            std::size_t lhs = lowerExpr(*expr.lhs(), node);
            std::size_t rhs = lowerExpr(*expr.rhs(), node);
            if (lhs != SIZE_MAX)
                addEdge(lhs, node, graph.nodes[lhs].latency, 0);
            if (rhs != SIZE_MAX)
                addEdge(rhs, node, graph.nodes[rhs].latency, 0);
            return node;
          }
        }
        panic("unknown expression kind");
    }
};

/**
 * Longest-path feasibility at a candidate II: infeasible iff the
 * constraint graph t_dst >= t_src + latency - II*distance contains a
 * positive cycle (Bellman-Ford style relaxation).
 */
bool
feasibleII(const OpGraph &graph, int ii)
{
    const std::size_t n = graph.nodes.size();
    std::vector<long long> dist(n, 0);
    for (std::size_t round = 0; round <= n; ++round) {
        bool changed = false;
        for (const OpEdge &edge : graph.edges) {
            long long bound = dist[edge.src] + edge.latency -
                              static_cast<long long>(ii) * edge.distance;
            if (bound > dist[edge.dst]) {
                dist[edge.dst] = bound;
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    return false; // still relaxing after n rounds: positive cycle
}

} // namespace

OpGraph
OpGraph::fromBody(const LoopNest &nest, const MachineModel &machine)
{
    GraphBuilder builder{machine, {}, {}, {}, {}, {}};

    for (const Stmt &stmt : nest.body()) {
        if (stmt.isPrefetch()) {
            builder.addNode(OpNode::Kind::Prefetch, 1);
            continue;
        }

        if (stmt.lhsIsArray()) {
            // The store consumes the value; it also serves as the
            // consumer for a bare-scalar RHS.
            std::size_t store = builder.addNode(OpNode::Kind::Store, 1);
            std::size_t value = builder.lowerExpr(*stmt.rhs(), store);
            if (value != SIZE_MAX)
                builder.addEdge(value, store,
                                builder.graph.nodes[value].latency, 0);
            builder.stores.emplace_back(stmt.lhsRef(), store);
            continue;
        }

        // Scalar destination: the producing node becomes the scalar's
        // definition. A bare-scalar RHS is a register move; a
        // constant RHS defines nothing schedulable.
        std::size_t root;
        if (stmt.rhs()->kind() == Expr::Kind::Scalar) {
            std::size_t node = builder.addNode(OpNode::Kind::Move, 1);
            std::size_t src = builder.lowerExpr(*stmt.rhs(), node);
            if (src != SIZE_MAX)
                builder.addEdge(src, node,
                                builder.graph.nodes[src].latency, 0);
            root = node;
        } else {
            root = builder.lowerExpr(*stmt.rhs(), SIZE_MAX);
        }
        builder.defined[stmt.lhsScalar()] = root;
    }

    // Cross-iteration scalar flow: a use that preceded its (re)
    // definition reads last iteration's value.
    for (const auto &[name, consumer] : builder.pending_uses) {
        auto it = builder.defined.find(name);
        if (it == builder.defined.end() || it->second == SIZE_MAX ||
            consumer == SIZE_MAX) {
            continue; // live-in or constant-defined: no constraint
        }
        builder.addEdge(it->second, consumer,
                        builder.graph.nodes[it->second].latency, 1);
    }

    // Memory-carried flow: a load of what a store in the same
    // uniformly generated set wrote d innermost iterations earlier.
    const std::size_t depth = nest.depth();
    for (const auto &[store_ref, store_node] : builder.stores) {
        if (depth == 0 || !store_ref.isSivSeparable())
            continue;
        auto [inner_dim, inner_coeff] =
            store_ref.termForLoop(depth - 1);
        for (const auto &[load_ref, load_node] : builder.loads) {
            if (!load_ref.uniformlyGeneratedWith(store_ref))
                continue;
            IntVector delta = store_ref.offset() - load_ref.offset();
            if (inner_dim < 0) {
                // Invariant reduction: same element next iteration.
                if (delta.isZero())
                    builder.addEdge(store_node, load_node, 1, 1);
                continue;
            }
            bool other_dims_zero = true;
            for (std::size_t d = 0; d < delta.size(); ++d) {
                if (static_cast<int>(d) != inner_dim && delta[d] != 0)
                    other_dims_zero = false;
            }
            if (!other_dims_zero)
                continue;
            std::int64_t num =
                delta[static_cast<std::size_t>(inner_dim)];
            if (num % inner_coeff != 0)
                continue;
            std::int64_t d = num / inner_coeff;
            if (d >= 1) {
                builder.addEdge(store_node, load_node, 1,
                                static_cast<int>(d));
            }
        }
    }
    return builder.graph;
}

ModuloScheduleResult
moduloSchedule(const OpGraph &graph, const MachineModel &machine)
{
    ModuloScheduleResult result;
    const std::size_t n = graph.nodes.size();
    if (n == 0)
        return result;

    // Resource MII.
    double mem = static_cast<double>(graph.memOps()) /
                 std::max(1, machine.memPorts);
    double fp = static_cast<double>(graph.fpOps()) /
                std::max(1.0, machine.flopsPerCycle);
    double issue = static_cast<double>(n) /
                   std::max(1, machine.issueWidth);
    result.resourceMii = std::max(
        1, static_cast<int>(std::ceil(std::max({mem, fp, issue}))));

    // Recurrence MII: smallest II with no positive constraint cycle.
    int lo = 1;
    int hi = 1;
    for (const OpNode &node : graph.nodes)
        hi += node.latency;
    while (!feasibleII(graph, hi))
        hi *= 2; // safety; distances >= 1 make large II feasible
    while (lo < hi) {
        int mid = lo + (hi - lo) / 2;
        if (feasibleII(graph, mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    result.recurrenceMii = lo;

    // Iterative scheduling: at each candidate II place nodes in
    // topological-ish order of intra-iteration edges, honoring all
    // constraints against already-placed nodes and the modulo
    // resource table; retry at II+1 on failure.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    // Height priority: longest intra-iteration path to any sink.
    std::vector<int> height(n, 0);
    for (std::size_t round = 0; round < n; ++round) {
        for (const OpEdge &edge : graph.edges) {
            if (edge.distance == 0) {
                height[edge.src] = std::max(
                    height[edge.src], height[edge.dst] + edge.latency);
            }
        }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return height[a] > height[b];
                     });

    for (int ii = result.mii(); ; ++ii) {
        std::vector<int> start(n, -1);
        std::vector<int> mem_slots(static_cast<std::size_t>(ii), 0);
        std::vector<int> fp_slots(static_cast<std::size_t>(ii), 0);
        std::vector<int> issue_slots(static_cast<std::size_t>(ii), 0);
        int fp_capacity = static_cast<int>(
            std::max(1.0, machine.flopsPerCycle));
        bool ok = true;

        for (std::size_t v : order) {
            int earliest = 0;
            bool progressed = true;
            // Constraints against already-placed nodes can interact
            // with resource probing; loop to a fixed point.
            while (progressed) {
                progressed = false;
                for (const OpEdge &edge : graph.edges) {
                    if (edge.dst != v || start[edge.src] < 0)
                        continue;
                    int bound = start[edge.src] + edge.latency -
                                ii * edge.distance;
                    if (bound > earliest) {
                        earliest = bound;
                        progressed = false;
                    }
                }
                // Find a start cycle with a free modulo slot.
                int tried = 0;
                int t = std::max(earliest, 0);
                for (; tried < ii; ++tried, ++t) {
                    std::size_t slot =
                        static_cast<std::size_t>(t % ii);
                    bool mem_op =
                        graph.nodes[v].kind == OpNode::Kind::Load ||
                        graph.nodes[v].kind == OpNode::Kind::Store ||
                        graph.nodes[v].kind == OpNode::Kind::Prefetch;
                    bool fp_op =
                        graph.nodes[v].kind == OpNode::Kind::Fp;
                    if (issue_slots[slot] >= machine.issueWidth)
                        continue;
                    if (mem_op && mem_slots[slot] >= machine.memPorts)
                        continue;
                    if (fp_op && fp_slots[slot] >= fp_capacity)
                        continue;
                    start[v] = t;
                    ++issue_slots[slot];
                    if (mem_op)
                        ++mem_slots[slot];
                    if (fp_op)
                        ++fp_slots[slot];
                    break;
                }
                if (tried == ii) {
                    ok = false;
                }
                break;
            }
            if (!ok)
                break;
        }

        if (!ok)
            continue;
        // Verify every constraint (cross-iteration edges against
        // later-placed nodes included).
        bool valid = true;
        for (const OpEdge &edge : graph.edges) {
            if (start[edge.dst] <
                start[edge.src] + edge.latency - ii * edge.distance) {
                valid = false;
                break;
            }
        }
        if (!valid)
            continue;

        result.achievedII = ii;
        result.startCycle = start;
        int last = 0;
        for (int t : start)
            last = std::max(last, t);
        result.scheduleLength = last + 1;
        return result;
    }
}

double
softwarePipelinedII(const LoopNest &nest, const MachineModel &machine)
{
    OpGraph graph = OpGraph::fromBody(nest, machine);
    if (graph.nodes.empty())
        return 1.0;
    return static_cast<double>(
        moduloSchedule(graph, machine).achievedII);
}

} // namespace ujam
