/**
 * @file
 * Whole-program execution-time simulation.
 *
 * Drives the reference interpreter over a program with the access
 * stream feeding a cache simulator, and charges cycles per nest:
 * steady-state issue cycles per innermost iteration (pipeline model)
 * plus miss stalls (less what software prefetching can hide). This is
 * the measurement harness behind the Figure 8/9 reproductions.
 */

#ifndef UJAM_SIM_SIMULATOR_HH
#define UJAM_SIM_SIMULATOR_HH

#include "ir/interp.hh"
#include "sim/cache.hh"
#include "sim/pipeline.hh"

namespace ujam
{

/** Result of simulating one program on one machine. */
struct SimResult
{
    double cycles = 0.0;            //!< total estimated cycles
    std::uint64_t iterations = 0;   //!< innermost iterations executed
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t prefetches = 0;   //!< prefetch statements executed
    std::uint64_t cacheMisses = 0;  //!< all misses, prefetches included
    std::uint64_t demandMisses = 0; //!< misses that stall (non-prefetch)
    double missRatio = 0.0;

    /** Per-nest cycle contributions, aligned with program nests. */
    std::vector<double> nestCycles;
};

/**
 * Simulate a program.
 *
 * @param program   The program (arrays are seeded deterministically).
 * @param machine   Target machine (cache geometry, rates, latencies).
 * @param overrides Parameter overrides for the run.
 * @param seed      Array seeding value.
 * @return Cycle estimate and dynamic statistics.
 */
SimResult simulateProgram(const Program &program,
                          const MachineModel &machine,
                          const ParamBindings &overrides = {},
                          std::uint64_t seed = 1);

} // namespace ujam

#endif // UJAM_SIM_SIMULATOR_HH
