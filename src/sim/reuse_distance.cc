#include "sim/reuse_distance.hh"

#include <algorithm>
#include <sstream>

#include "ir/interp.hh"
#include "support/diagnostics.hh"

namespace ujam
{

ReuseDistanceProfiler::ReuseDistanceProfiler(std::int64_t line_elems)
    : line_elems_(line_elems)
{
    UJAM_ASSERT(line_elems >= 1, "line size must be positive");
}

void
ReuseDistanceProfiler::grow(std::size_t need)
{
    std::size_t capacity = std::max<std::size_t>(64, fenwick_.size());
    while (capacity < need)
        capacity *= 2;
    if (capacity == fenwick_.size())
        return;
    marks_.resize(capacity, 0);
    // Rebuild the tree over the enlarged index range.
    fenwick_.assign(capacity, 0);
    for (std::size_t t = 0; t < capacity; ++t) {
        if (marks_[t] != 0) {
            for (std::size_t i = t + 1; i <= capacity;
                 i += i & (~i + 1)) {
                fenwick_[i - 1] += marks_[t];
            }
        }
    }
}

void
ReuseDistanceProfiler::fenwickAdd(std::size_t index, std::int64_t delta)
{
    marks_[index] += delta;
    for (std::size_t i = index + 1; i <= fenwick_.size(); i += i & (~i + 1))
        fenwick_[i - 1] += delta;
}

std::int64_t
ReuseDistanceProfiler::fenwickSum(std::size_t index) const
{
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1))
        sum += fenwick_[i - 1];
    return sum;
}

std::int64_t
ReuseDistanceProfiler::access(std::int64_t element_addr)
{
    std::int64_t line = element_addr >= 0
                            ? element_addr / line_elems_
                            : (element_addr - line_elems_ + 1) /
                                  line_elems_;
    std::size_t now = static_cast<std::size_t>(accesses_);
    ++accesses_;
    grow(now + 1);

    auto it = last_time_.find(line);
    std::int64_t distance = coldMiss;
    if (it != last_time_.end()) {
        // Distinct lines whose last access falls after this line's:
        // total marks minus marks at or before it.
        std::size_t prev = it->second;
        distance =
            fenwickSum(now > 0 ? now - 1 : 0) - fenwickSum(prev);
        fenwickAdd(prev, -1);
        it->second = now;
    } else {
        ++cold_;
        last_time_.emplace(line, now);
    }
    fenwickAdd(now, 1);

    if (distance >= 0) {
        std::size_t bucket = 0;
        std::int64_t bound = 2;
        while (distance >= bound) {
            ++bucket;
            bound <<= 1;
        }
        if (histogram_.size() <= bucket)
            histogram_.resize(bucket + 1, 0);
        ++histogram_[bucket];
        raw_distances_.push_back(distance);
    }
    return distance;
}

double
ReuseDistanceProfiler::hitFractionBelow(std::int64_t lines) const
{
    if (raw_distances_.empty())
        return 0.0;
    std::size_t hits = 0;
    for (std::int64_t d : raw_distances_)
        hits += (d < lines);
    return static_cast<double>(hits) /
           static_cast<double>(raw_distances_.size());
}

std::string
ReuseDistanceProfiler::toString() const
{
    std::ostringstream os;
    os << "accesses " << accesses_ << ", cold " << cold_ << "\n";
    std::int64_t lo = 0;
    std::int64_t hi = 2;
    for (std::size_t b = 0; b < histogram_.size(); ++b) {
        os << "  [" << lo << ", " << hi << "): " << histogram_[b]
           << "\n";
        lo = hi;
        hi <<= 1;
    }
    return os.str();
}

ReuseDistanceProfiler
profileReuseDistances(const Program &program, std::int64_t line_elems,
                      const ParamBindings &overrides)
{
    ReuseDistanceProfiler profiler(line_elems);
    Interpreter interp(program, overrides);
    interp.seedArrays(1);
    interp.setAccessCallback(
        [&](std::int64_t addr, MemAccessKind kind) {
            if (kind != MemAccessKind::Prefetch)
                profiler.access(addr);
        });
    interp.run();
    return profiler;
}

} // namespace ujam
