/**
 * @file
 * Modulo scheduling of innermost-loop bodies.
 *
 * The paper's closing direction is studying "unroll-and-jam and
 * software pipelining on machines that have large register files and
 * high degrees of ILP" (section 6). This module supplies the software
 * pipelining half: the body becomes an operation graph with intra-
 * and cross-iteration edges, the minimum initiation interval is
 * computed from both resources and recurrences (positive-cycle
 * feasibility, the standard formulation), and an iterative modulo
 * scheduler finds a concrete schedule at the smallest feasible II.
 *
 * The steady-state pipeline model (sim/pipeline.hh) approximates the
 * same quantity cheaply; this is the precise version, and the E14
 * benchmark quantifies the gap.
 */

#ifndef UJAM_SIM_MODULO_SCHEDULE_HH
#define UJAM_SIM_MODULO_SCHEDULE_HH

#include <string>
#include <vector>

#include "ir/loop_nest.hh"
#include "model/machine.hh"

namespace ujam
{

/** One operation of the loop body. */
struct OpNode
{
    enum class Kind
    {
        Load,
        Store,
        Fp,
        Move,
        Prefetch
    };

    Kind kind = Kind::Fp;
    int latency = 1;
};

/**
 * A scheduling constraint: dst must start at least `latency` cycles
 * after src's start, `distance` iterations earlier (0 = same
 * iteration).
 */
struct OpEdge
{
    std::size_t src = 0;
    std::size_t dst = 0;
    int latency = 1;
    int distance = 0;
};

/** The body as a scheduling problem. */
struct OpGraph
{
    std::vector<OpNode> nodes;
    std::vector<OpEdge> edges;

    std::size_t memOps() const;
    std::size_t fpOps() const;

    /**
     * Build the graph of a nest body: expression trees give intra-
     * iteration edges; scalar reads of values defined later in the
     * body (rotations, accumulators) and same-set memory flow at
     * positive innermost distance give cross-iteration edges.
     */
    static OpGraph fromBody(const LoopNest &nest,
                            const MachineModel &machine);
};

/** A modulo schedule. */
struct ModuloScheduleResult
{
    int resourceMii = 1;   //!< max over resource classes
    int recurrenceMii = 1; //!< from positive-cycle feasibility
    int achievedII = 0;    //!< the scheduled initiation interval
    int scheduleLength = 0; //!< last start cycle + 1 (one iteration)
    std::vector<int> startCycle; //!< per node

    /** @return max(resourceMii, recurrenceMii). */
    int
    mii() const
    {
        return resourceMii > recurrenceMii ? resourceMii
                                           : recurrenceMii;
    }
};

/**
 * Schedule a graph at the smallest II the machine admits.
 *
 * @param graph   The operation graph.
 * @param machine Resource capacities and latencies.
 * @return The schedule; achievedII == 0 only for empty graphs.
 */
ModuloScheduleResult moduloSchedule(const OpGraph &graph,
                                    const MachineModel &machine);

/**
 * Convenience: cycles per iteration of a nest body under software
 * pipelining (the achieved II).
 */
double softwarePipelinedII(const LoopNest &nest,
                           const MachineModel &machine);

} // namespace ujam

#endif // UJAM_SIM_MODULO_SCHEDULE_HH
