/**
 * @file
 * Reuse-distance (LRU stack distance) profiling.
 *
 * The reuse distance of an access is the number of distinct cache
 * lines touched since the previous access to the same line; an access
 * hits in a fully-associative LRU cache of C lines exactly when its
 * reuse distance is < C. Profiling a loop's address stream therefore
 * measures its locality independently of any particular cache -- the
 * empirical counterpart of the paper's Eq. 1 model, used here to
 * validate it (see the model-fidelity experiment).
 *
 * Implementation: Olken's algorithm -- last-access timestamps per
 * line plus a Fenwick tree over time counting distinct lines touched
 * since, O(log n) per access.
 */

#ifndef UJAM_SIM_REUSE_DISTANCE_HH
#define UJAM_SIM_REUSE_DISTANCE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Online reuse-distance profiler over a line-granular address stream.
 */
class ReuseDistanceProfiler
{
  public:
    /** Distance value reported for first-ever touches. */
    static constexpr std::int64_t coldMiss = -1;

    /**
     * @param line_elems Cache-line size in elements (addresses are
     *        divided by this before profiling).
     */
    explicit ReuseDistanceProfiler(std::int64_t line_elems);

    /**
     * Record one access.
     * @param element_addr Element address.
     * @return The access's reuse distance in distinct lines, or
     *         coldMiss on the first touch of a line.
     */
    std::int64_t access(std::int64_t element_addr);

    /** @return Accesses recorded. */
    std::uint64_t accesses() const { return accesses_; }

    /** @return First-touch (cold) accesses. */
    std::uint64_t coldMisses() const { return cold_; }

    /**
     * Histogram of observed distances, bucketed by powers of two:
     * bucket b holds distances in [2^b, 2^(b+1)) with bucket 0 for
     * distance 0..1. Cold misses are not included.
     */
    const std::vector<std::uint64_t> &histogram() const
    {
        return histogram_;
    }

    /**
     * @return Fraction of (non-cold) accesses whose reuse distance is
     * strictly below the given number of lines -- the hit ratio of a
     * fully-associative LRU cache of that capacity.
     */
    double hitFractionBelow(std::int64_t lines) const;

    /** @return Multi-line rendering of the histogram. */
    std::string toString() const;

  private:
    void fenwickAdd(std::size_t index, std::int64_t delta);
    std::int64_t fenwickSum(std::size_t index) const;

    std::int64_t line_elems_;
    std::uint64_t accesses_ = 0;
    std::uint64_t cold_ = 0;

    void grow(std::size_t need);

    std::map<std::int64_t, std::size_t> last_time_; //!< line -> time
    std::vector<std::int64_t> marks_;   //!< 1 at last-access times
    std::vector<std::int64_t> fenwick_; //!< prefix sums over marks_
    std::vector<std::uint64_t> histogram_;
    std::vector<std::int64_t> raw_distances_; //!< for exact quantiles
};

/**
 * Profile every array access of a program run.
 *
 * @param program    The program (seeded deterministically).
 * @param line_elems Line size in elements.
 * @param overrides  Parameter overrides.
 * @return The filled profiler.
 */
ReuseDistanceProfiler profileReuseDistances(
    const Program &program, std::int64_t line_elems,
    const ParamBindings &overrides = {});

} // namespace ujam

#endif // UJAM_SIM_REUSE_DISTANCE_HH
